//! Quickstart: drop-in concurrency-restricting mutex.
//!
//! Demonstrates the core value proposition: swap a fair mutex for
//! `McsCrMutex` on a contended hot lock and inspect the CR activity
//! (culls, reprovisions, fairness grants) plus the admission history.
//!
//! Run with `cargo run --release --example quickstart`.

use std::sync::Arc;
use std::time::Instant;

use malthusian::locks::{Instrumented, McsCrLock, Mutex};
use malthusian::metrics::{AdmissionLog, FairnessSummary};

fn main() {
    const THREADS: usize = 8;
    const ITERS: usize = 20_000;

    // An instrumented MCSCR lock records who got in, in order.
    let m: Arc<Mutex<u64, Instrumented<McsCrLock>>> =
        Arc::new(Mutex::with_raw(Instrumented::new(McsCrLock::stp()), 0));

    let started = Instant::now();
    let mut handles = Vec::new();
    for _ in 0..THREADS {
        let m = Arc::clone(&m);
        handles.push(std::thread::spawn(move || {
            for _ in 0..ITERS {
                let mut g = m.lock();
                *g += 1;
                // A little critical-section work so waiters queue up.
                std::hint::black_box(&*g);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = started.elapsed();

    assert_eq!(*m.lock(), (THREADS * ITERS) as u64);
    let history = m.raw().history_snapshot();
    let summary = FairnessSummary::from_log(&AdmissionLog::from_history(history));
    let stats = m.raw().inner().cr_stats();

    println!("counted to {} in {elapsed:?}", THREADS * ITERS);
    println!("fairness: {summary}");
    println!(
        "CR activity: {} culls, {} reprovisions, {} fairness grants",
        stats.culls, stats.reprovisions, stats.fairness_grants
    );
}
