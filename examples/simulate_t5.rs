//! Regenerate a slice of the paper's Figure 3 on the simulated T5.
//!
//! Shows the machinesim API end to end: build the RandArray workload
//! at a few thread counts, run each lock configuration, and print
//! throughput plus steady-state LWSS.
//!
//! Run with `cargo run --release --example simulate_t5`.

use malthusian::metrics::AdmissionLog;
use malthusian::workloads::{randarray, LockChoice};

fn main() {
    println!("RandArray on the simulated SPARC T5 (8 MB LLC, 128 CPUs)\n");
    println!(
        "{:>8} {:>12} {:>12} {:>10} {:>10}",
        "threads", "MCS-S", "MCSCR-STP", "LWSS(MCS)", "LWSS(CR)"
    );
    for threads in [2usize, 5, 16, 32, 64] {
        let mcs = randarray::sim(threads, LockChoice::McsS).run(0.01);
        let cr = randarray::sim(threads, LockChoice::McsCrStp).run(0.01);
        let lwss = |h: &[u32]| {
            let tail = if h.len() > 500 { &h[500..] } else { h };
            AdmissionLog::from_history(tail.to_vec()).average_lwss(500)
        };
        println!(
            "{threads:>8} {:>12.0} {:>12.0} {:>10.1} {:>10.1}",
            mcs.throughput(),
            cr.throughput(),
            lwss(&mcs.admissions[0]),
            lwss(&cr.admissions[0]),
        );
    }
    println!("\nMCS circulates everyone (LWSS = threads); MCSCR clamps the");
    println!("circulating set near saturation and avoids the LLC collapse.");
}
