//! Work crew: concurrency restriction one layer above the lock.
//!
//! Oversubscribes the host 4× with pool workers, then compares an
//! unrestricted pool against the Malthusian crew on the same saturated
//! KV task stream — the executor-level rendition of the paper's §7
//! claim that CR "can be applied to any contended resource".
//!
//! Run with `cargo run --release --example work_crew`.

use std::time::Duration;

use malthusian::pool::PoolConfig;
use malthusian::workloads::pool_saturation::{run_pool_saturation, SaturationShape};

fn main() {
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers = cpus * 4;
    let interval = Duration::from_millis(
        std::env::var("MALTHUS_BENCH_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300),
    );
    let shape = SaturationShape::default();

    println!("work crew at 4x oversubscription: {workers} workers on {cpus} CPU(s)\n");
    for (label, cfg) in [
        ("unrestricted", PoolConfig::unrestricted(workers, 64)),
        ("malthusian", PoolConfig::malthusian(workers, 64)),
    ] {
        let r = run_pool_saturation(cfg, interval, shape);
        println!(
            "{label:<13} {:>10.0} ops/s   p50 {:>7.1} us   p99 {:>7.1} us   \
             culls {:>4}  reprovisions {:>3}  promotions {:>4}",
            r.ops_per_sec,
            r.p50.as_secs_f64() * 1e6,
            r.p99.as_secs_f64() * 1e6,
            r.pool.culls,
            r.pool.reprovisions,
            r.pool.fairness_promotions,
        );
    }
    println!(
        "\nThe Malthusian crew keeps only ~{cpus} worker(s) circulating; the rest park on\n\
         a LIFO passive stack, reprovisioned on stalls and rotated episodically for\n\
         long-term fairness."
    );
}
