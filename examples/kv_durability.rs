//! Demonstrates the durability tier: write through the per-shard
//! group-committed WALs, "crash" (drop without any shutdown path),
//! reopen and find everything — then inject an fsync failure and
//! watch exactly one shard degrade to read-only while the rest keep
//! serving.
//!
//! ```sh
//! cargo run --release --example kv_durability
//! ```

use malthusian::storage::{BatchOp, BatchReply, FaultPlan, ShardedKv, WalOptions};

fn main() {
    let dir = std::env::temp_dir().join(format!("malthus-ex-durability-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let shards = 4;

    // Generation 1: write a batch and some singles, then just drop
    // the store — no flush call, no shutdown hook. Every acked write
    // is already fsynced by its group commit.
    {
        let (kv, report) = ShardedKv::open(&dir, shards, 1_024, 256).expect("first open");
        assert!(report.clean());
        let pairs: Vec<(u64, u64)> = (0..64u64).map(|k| (k, k * 10)).collect();
        kv.mset(&pairs).expect("healthy store");
        kv.put(1_000, 42).expect("healthy store");
        let synced = kv.stats().wal_syncs();
        println!("# gen 1: wrote 65 pairs with {synced} fsyncs (group commit)");
        assert!(synced < 65, "group commit must amortize fsyncs");
    }

    // Generation 2: reopen replays the logs.
    {
        let (kv, report) = ShardedKv::open(&dir, shards, 1_024, 256).expect("reopen");
        println!(
            "# gen 2: replayed {} pairs in {} records (clean={})",
            report.pairs(),
            report.records(),
            report.clean()
        );
        assert_eq!(kv.get(1_000), Some(42));
        assert_eq!(kv.get(63), Some(630));
    }

    // Generation 3: wire a fault into shard 0's log — its very next
    // fsync fails. The write that hits it is refused (and NOT
    // applied), shard 0 turns read-only, the other shards keep
    // accepting writes, and reads keep working everywhere.
    let opts = WalOptions {
        faults: vec![(
            0,
            FaultPlan {
                fail_sync_at: Some(0),
                ..FaultPlan::default()
            },
        )],
        ..WalOptions::default()
    };
    let (kv, _) = ShardedKv::open_with(&dir, shards, 1_024, 256, opts).expect("faulty open");
    let mut refused_shard = None;
    let mut landed = 0u64;
    for k in 0..200u64 {
        match kv.put(k, 7_000 + k) {
            Ok(()) => landed += 1,
            Err(e) => {
                refused_shard.get_or_insert(e.shard);
            }
        }
    }
    let stats = kv.stats();
    println!(
        "# gen 3: fsync fault -> shard {:?} read-only ({} of 200 writes landed), \
         wal_errors={}, readonly_shards={}",
        refused_shard,
        landed,
        stats.wal_errors(),
        stats.readonly_shards()
    );
    assert_eq!(refused_shard, Some(0));
    assert_eq!(
        stats.readonly_shards(),
        1,
        "only the faulted shard degrades"
    );
    assert!(landed > 0, "healthy shards must keep accepting writes");
    // Reads still serve everywhere — including the read-only shard.
    assert_eq!(kv.get(1_000), Some(42));
    // Batches report the refusal per-op instead of failing wholesale.
    let replies = kv.execute_batch(&[BatchOp::Put(0, 1), BatchOp::Get(1_000)]);
    println!("# gen 3: batch over the read-only shard -> {replies:?}");
    assert!(matches!(replies[0], BatchReply::Readonly));
    assert!(matches!(replies[1], BatchReply::Value(Some(42))));

    let _ = std::fs::remove_dir_all(&dir);
    println!("# ok");
}
