//! A server session cache under a Malthusian lock.
//!
//! Models the paper's keymap/LRUCache scenario as an application: many
//! worker threads consult one shared LRU session cache. The lock is
//! the contended resource; `McsCrLock` restricts how many distinct
//! workers circulate, which keeps the *software* cache hit rate high —
//! the displacement statistics distinguish self-displacement from
//! cross-thread interference exactly as §6.9 describes.
//!
//! Run with `cargo run --release --example session_cache`.

use std::sync::Arc;

use malthusian::locks::{McsCrLock, McsLock, Mutex, RawLock};
use malthusian::park::XorShift64;
use malthusian::storage::SimpleLru;

fn run<L: RawLock + 'static>(label: &str, lock_cache: Arc<Mutex<SimpleLru, L>>) {
    const WORKERS: usize = 8;
    const LOOKUPS: usize = 30_000;
    const KEYSET: u64 = 400;

    let mut handles = Vec::new();
    for w in 0..WORKERS {
        let cache = Arc::clone(&lock_cache);
        handles.push(std::thread::spawn(move || {
            let rng = XorShift64::new(0xCAFE + w as u64);
            // Each worker has its own session-key neighbourhood.
            let base = w as u64 * 10_000;
            for _ in 0..LOOKUPS {
                let key = base + rng.next_below(KEYSET);
                let mut c = cache.lock();
                c.lookup_or_insert(key as u32, w as u32);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let stats = lock_cache.lock().stats();
    println!(
        "{label:8} hit-rate {:.1}%  self-displacements {}  cross-displacements {}",
        (1.0 - stats.miss_ratio()) * 100.0,
        stats.self_displacements,
        stats.cross_displacements,
    );
}

fn main() {
    // Cache holds 2000 sessions; 8 workers x 400 keys oversubscribe it.
    println!("shared LRU session cache, 8 workers, capacity 2000:");
    run(
        "MCS",
        Arc::new(Mutex::with_raw(McsLock::stp(), SimpleLru::new(2_000))),
    );
    run(
        "MCSCR",
        Arc::new(Mutex::with_raw(McsCrLock::stp(), SimpleLru::new(2_000))),
    );
    println!("(CR typically shows fewer cross-thread displacements)");
}
