//! Demonstrates the pipelined KV protocol end to end over real
//! loopback TCP: tagged requests with in-order echoed responses,
//! tagged/untagged interleaving on one connection, and — the point of
//! pipelining — a deep window tripling throughput over the depth-1
//! closed loop while the server's drained batches amortize exclusive
//! lock admissions (visible in the batch and admission counters).
//!
//! ```sh
//! cargo run --release --example kv_pipeline
//! # knobs: MALTHUS_BENCH_MS (live interval, default 300)
//! ```

use std::sync::Arc;

use malthusian::pool::kv::{self, KvService};
use malthusian::pool::{KvClient, PoolConfig, WorkCrew};
use malthusian::workloads::pipeline::{run_pipeline_loop, PipelineShape};

fn interval_ms() -> u64 {
    std::env::var("MALTHUS_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300)
}

fn main() {
    // A small live server for the wire-level tour.
    let (listener, control) = kv::bind("127.0.0.1:0").expect("bind loopback");
    let addr = control.addr();
    let crew = Arc::new(WorkCrew::new(
        PoolConfig::malthusian(4, 64).with_acs_target(1),
    ));
    let service = Arc::new(KvService::with_shards(2, 1_024, 4_096));
    let server = {
        let crew = Arc::clone(&crew);
        let service = Arc::clone(&service);
        let control = control.clone();
        std::thread::spawn(move || kv::serve(listener, &control, crew, service).unwrap())
    };

    // A tagged burst: eight requests leave before any response is
    // read; the replies echo the tags in request order.
    let mut c = KvClient::connect(addr).unwrap();
    for tag in 0..8u64 {
        c.send_tagged(tag, &format!("PUT {tag} {}", tag * 100))
            .unwrap();
    }
    for tag in 0..8u64 {
        let (got, resp) = c.recv_tagged().unwrap();
        assert_eq!((got, resp), (tag, "OK"));
    }
    println!("# 8-deep tagged burst: all tags echoed in order");

    // Tagged and untagged interleave on one connection; untagged
    // lines keep the byte-identical legacy framing.
    c.send_tagged(99, "GET 3").unwrap();
    c.send_line("GET 3").unwrap();
    println!("# interleaved: {:?}", c.recv_line().unwrap());
    println!("# interleaved: {:?}", c.recv_line().unwrap());
    let stats = c.roundtrip("STATS").unwrap().to_string();
    println!("# {stats}");
    assert!(stats.contains("pbatches="), "{stats}");
    drop(c);
    control.stop();
    server.join().unwrap();
    crew.shutdown();

    // The A/B that motivates the protocol: same traffic at depth 1
    // and depth 16 (fresh server per run, 2 connections, 20% PUT).
    let seconds = interval_ms() as f64 / 1_000.0;
    println!(
        "\n{:<8} {:>12} {:>14} {:>12} {:>14}",
        "depth", "ops/s", "mean batch", "max batch", "excl/write"
    );
    let mut base = 0.0f64;
    for depth in [1usize, 16] {
        let report = run_pipeline_loop(
            2,
            2,
            seconds,
            PipelineShape::new(10_000, 20, depth),
            0x9C0FFEE,
        );
        let ops_s = report.ops() as f64 / report.elapsed_secs.max(f64::EPSILON);
        println!(
            "{:<8} {:>12.0} {:>14.1} {:>12} {:>14.2}",
            depth,
            ops_s,
            report.mean_batch(),
            report.max_batch,
            report.exclusive_per_write()
        );
        assert_eq!(report.errors, 0);
        if depth == 1 {
            base = ops_s;
            assert_eq!(report.max_batch, 1, "depth 1 cannot batch");
        } else if base > 0.0 {
            println!("# depth 16 vs depth 1: {:.2}x", ops_s / base);
        }
    }
}
