//! Demonstrates the Malthusian reader-writer lock: readers share, a
//! writer stream pays admission, surplus readers are culled onto the
//! passive list during write episodes and drained back in bounded
//! batches afterwards.
//!
//! ```sh
//! cargo run --release --example rw_readers
//! # knobs: MALTHUS_BENCH_MS (interval per phase, default 300)
//! ```

use std::sync::Arc;

use malthusian::rwlock::RwCrMutex;
use malthusian::workloads::rwreadwrite::{run_rw_loop, RwLoopShape, SharedTableRw};

fn interval_ms() -> u64 {
    std::env::var("MALTHUS_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300)
}

fn main() {
    let seconds = interval_ms() as f64 / 1_000.0;
    let threads = 4;
    println!("# RW-CR under {threads} threads, {seconds:.2} s per read fraction");
    println!(
        "{:<10} {:>12} {:>12} {:>10} {:>8} {:>8} {:>8}",
        "read %", "reads", "writes", "torn", "culls", "grants", "eldest"
    );
    for read_pct in [50u32, 90, 99] {
        let table = Arc::new(RwCrMutex::default_cr(vec![0u64; 64]));
        let report = run_rw_loop(
            Arc::clone(&table) as Arc<dyn SharedTableRw>,
            threads,
            seconds,
            RwLoopShape::new(64, read_pct),
            0xE9A0 + read_pct as u64,
        );
        let stats = table.raw().stats();
        println!(
            "{:<10} {:>12} {:>12} {:>10} {:>8} {:>8} {:>8}",
            format!("r{read_pct}"),
            report.reads,
            report.writes,
            report.torn_reads,
            stats.reader_culls,
            stats.reader_reprovisions,
            stats.reader_fairness_grants
        );
        assert_eq!(report.torn_reads, 0, "reader observed a torn write");
        assert_eq!(
            stats.reader_culls,
            stats.reader_reprovisions + stats.reader_fairness_grants,
            "every culled reader must be woken exactly once: {stats:?}"
        );
    }
    println!("# torn = reads that saw two stamps (must be 0: exclusion holds)");
    println!("# culls = reader passivation episodes; grants/eldest = wakeups");
}
