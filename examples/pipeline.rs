//! A producer/consumer pipeline over the CR bounded queue.
//!
//! The §6.7 structure (mutex + two condvars + queue) as a reusable
//! component: with mostly-LIFO condvars, a small stable set of
//! producers and consumers circulates ("fast flow") instead of the
//! whole population, and the acquisitions-per-message diagnostic
//! approaches 2 instead of 3.
//!
//! Run with `cargo run --release --example pipeline`.

use std::sync::Arc;

use malthusian::locks::McsCrLock;
use malthusian::storage::BoundedQueue;

fn main() {
    const PRODUCERS: usize = 6;
    const CONSUMERS: usize = 3;
    const MESSAGES_PER_PRODUCER: u64 = 30_000;

    let q: Arc<BoundedQueue<u64, McsCrLock>> = Arc::new(BoundedQueue::new(1_000, true));

    let mut handles = Vec::new();
    for p in 0..PRODUCERS as u64 {
        let q = Arc::clone(&q);
        handles.push(std::thread::spawn(move || {
            for i in 0..MESSAGES_PER_PRODUCER {
                q.push(p * MESSAGES_PER_PRODUCER + i);
            }
        }));
    }
    let total = PRODUCERS as u64 * MESSAGES_PER_PRODUCER;
    let mut consumers = Vec::new();
    for c in 0..CONSUMERS {
        let q = Arc::clone(&q);
        let share = total / CONSUMERS as u64 + u64::from(c == 0) * (total % CONSUMERS as u64);
        consumers.push(std::thread::spawn(move || {
            let mut sum = 0u64;
            for _ in 0..share {
                sum = sum.wrapping_add(q.pop());
            }
            sum
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let sum: u64 = consumers
        .into_iter()
        .map(|c| c.join().unwrap())
        .fold(0, u64::wrapping_add);

    let expected: u64 = (0..total).fold(0, u64::wrapping_add);
    assert_eq!(sum, expected, "every message must arrive exactly once");
    let s = q.stats();
    println!("conveyed {} messages", s.popped);
    println!(
        "lock acquisitions per message: {:.2} (3 = futile FIFO pattern, 2 = fast flow)",
        q.acquisitions_per_message()
    );
    println!("futile waits: {}", s.futile_waits);
}
