//! Demonstrates the sharded KV backend: fibonacci-hash routing,
//! batched cross-shard MGET/MSET, an aggregated SCAN, and — the point
//! of sharding — skewed traffic heating one shard while the others
//! keep serving, visible in the per-shard statistics.
//!
//! ```sh
//! cargo run --release --example sharded_kv
//! # knobs: MALTHUS_BENCH_MS (live interval, default 300)
//! ```

use std::sync::Arc;

use malthusian::storage::ShardedKv;
use malthusian::workloads::sharded_contention::{run_sharded_loop, ShardedShape};

fn interval_ms() -> u64 {
    std::env::var("MALTHUS_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300)
}

fn main() {
    let shards = 4;
    let kv = Arc::new(ShardedKv::new(shards, 1_024, 4_096));

    // Batched writes land on every shard; batched reads come back in
    // key order with `-`-style misses as None.
    let pairs: Vec<(u64, u64)> = (0..64u64).map(|k| (k, k * 10)).collect();
    kv.mset(&pairs)
        .expect("memory-only store cannot go read-only");
    let got = kv.mget(&[3, 500, 31]);
    println!("# MGET 3 500 31 -> {got:?}");
    assert_eq!(got, vec![Some(30), None, Some(310)]);

    // SCAN merges per-shard ranges into one ascending window.
    let window = kv.scan(10, 5);
    println!("# SCAN 10 5     -> {window:?}");
    assert_eq!(window.first(), Some(&(10, 100)));
    assert_eq!(window.len(), 5);

    // Skewed live traffic: the hot head of the key distribution
    // routes to one shard; the other shards stay cool and fast.
    let seconds = interval_ms() as f64 / 1_000.0;
    let report = run_sharded_loop(
        Arc::clone(&kv),
        4,
        seconds,
        ShardedShape::new(10_000, 80, 6.0),
        0x5AAD,
    );
    println!(
        "# skewed live traffic: {} ops ({} reads / {} writes) in {seconds:.2} s",
        report.ops(),
        report.reads,
        report.writes
    );
    println!(
        "{:<8} {:>12} {:>12} {:>8} {:>8} {:>10}",
        "shard", "reads", "writes", "keys", "rculls", "wepisodes"
    );
    for (i, s) in kv.stats().per_shard.iter().enumerate() {
        println!(
            "{:<8} {:>12} {:>12} {:>8} {:>8} {:>10}",
            i, s.reads, s.writes, s.keys, s.db_lock.reader_culls, s.db_lock.write_episodes
        );
    }
    println!(
        "# hottest shard took {:.0}% of interval writes (uniform would be {:.0}%)",
        100.0 * report.hottest_write_share(),
        100.0 / shards as f64
    );
    assert!(report.ops() > 0);
    assert!(
        report.hottest_write_share() >= 1.0 / shards as f64,
        "skew cannot be below uniform"
    );
}
