//! The machine model: topology, costs, and the execution-speed law.
//!
//! All figures in the paper were measured on one socket of an Oracle
//! SPARC T5-2: 16 cores, 2 pipelines per core that *fuse* when only
//! one strand is active, 8 hardware strands per core (128 logical
//! CPUs), an 8 MB shared L3, per-core 128-entry DTLBs, running at
//! 3.6 GHz under Solaris. We do not have that machine; this module is
//! its stand-in. Costs are in cycles and only their relative ordering
//! matters for reproducing curve *shapes*.

use malthus_cachesim::HierarchyConfig;

/// Simulated clock rate (cycles per second) — T5 @ 3.6 GHz.
pub const CLOCK_HZ: f64 = 3.6e9;

/// Converts seconds of simulated time to cycles.
pub fn seconds_to_cycles(s: f64) -> u64 {
    (s * CLOCK_HZ) as u64
}

/// Machine topology and cost model.
#[derive(Debug, Clone, Copy)]
pub struct MachineConfig {
    /// Cores on the socket.
    pub cores: usize,
    /// Hardware strands (logical CPUs) per core.
    pub strands_per_core: usize,
    /// Relative speed of a thread alone on a core (pipelines fused).
    pub fused_speed: f64,
    /// Relative speed with both pipelines active independently.
    pub unfused_speed: f64,
    /// Pipeline demand of a politely-spinning strand relative to a
    /// working strand (the `PAUSE`/`RD CCR,G0` discount, §5.1).
    pub polite_spin_weight: f64,
    /// Scheduler time slice in cycles (involuntary preemption).
    pub quantum_cycles: u64,
    /// Cost charged to the *caller* of unpark (§5.4 footnote: >9000
    /// cycles on the T5).
    pub unpark_call_cycles: u64,
    /// Latency from unpark until the wakee runs (§5.4: 30000+ cycles
    /// common even with idle CPUs available).
    pub unpark_latency_cycles: u64,
    /// Wake latency for a *freshly* parked thread: the kernel state is
    /// warm, its CPU has not idled into a sleep state, and dispatch is
    /// cheap. §5.1: exit latency grows with how long the CPU idles.
    pub warm_unpark_latency_cycles: u64,
    /// Park durations below this count as "warm" (see above).
    pub warm_park_threshold_cycles: u64,
    /// Extra wakeup latency when the wakee's CPU idled into a deep
    /// sleep state (§5.1).
    pub deep_sleep_exit_cycles: u64,
    /// Idle duration after which a CPU reaches a deep sleep state.
    pub deep_sleep_threshold_cycles: u64,
    /// Handover latency to a *spinning* successor (local-spin flag
    /// write plus pipeline restart).
    pub spin_handover_cycles: u64,
    /// Spin budget for spin-then-park waiting. The paper sets this to
    /// the measured context-switch round trip (~20k cycles on its
    /// Solaris/T5 stack); in *this* cost model a round trip is
    /// unpark-call (9k) plus wake latency (30k), so the 2-competitive
    /// rule (Karlin et al.) puts the budget at ~30k cycles.
    pub spin_then_park_budget: u64,
    /// Speed multiplier when at most half the cores have an active
    /// strand: idle CPUs in deep sleep free thermal/energy headroom
    /// and turbo accelerates the remaining threads — critically
    /// including the lock holder (§3, §5.1).
    pub turbo_boost: f64,
    /// Core-load threshold below which turbo engages.
    pub turbo_threshold: f64,
    /// Watts above idle per fully-working strand (energy model).
    pub watts_per_working: f64,
    /// Watts above idle per politely-spinning strand.
    pub watts_per_spinning: f64,
}

impl MachineConfig {
    /// One T5 socket as used in the paper (second socket offline).
    pub fn t5_socket() -> Self {
        MachineConfig {
            cores: 16,
            strands_per_core: 8,
            fused_speed: 1.0,
            unfused_speed: 0.62,
            polite_spin_weight: 0.9,
            quantum_cycles: 36_000_000, // 10 ms at 3.6 GHz
            unpark_call_cycles: 9_000,
            unpark_latency_cycles: 30_000,
            warm_unpark_latency_cycles: 6_000,
            warm_park_threshold_cycles: 50_000,
            deep_sleep_exit_cycles: 50_000,
            deep_sleep_threshold_cycles: 1_000_000,
            spin_handover_cycles: 600,
            spin_then_park_budget: 30_000,
            turbo_boost: 1.25,
            turbo_threshold: 0.5,
            watts_per_working: 3.2,
            watts_per_spinning: 2.6,
        }
    }

    /// Total logical CPUs.
    pub fn logical_cpus(&self) -> usize {
        self.cores * self.strands_per_core
    }

    /// The matching cache-hierarchy geometry.
    pub fn hierarchy(&self) -> HierarchyConfig {
        HierarchyConfig::t5(self.cores)
    }

    /// Relative execution speed of a *working* thread given the
    /// current on-CPU population.
    ///
    /// `working` counts threads executing CS/NCS code; `spinning`
    /// counts polite busy-waiters. Three regimes:
    ///
    /// 1. ≤1 active strand per core: pipelines fuse → full speed.
    /// 2. 1–2 active strands per core: fusion is progressively lost.
    /// 3. >2 per core: strands share the two pipelines proportionally.
    ///
    /// On top of pipeline sharing, when the on-CPU demand exceeds the
    /// logical CPUs the kernel time-multiplexes, dividing throughput
    /// by the oversubscription factor.
    pub fn working_speed(&self, working: usize, spinning: usize) -> f64 {
        let demand = working as f64 + spinning as f64;
        let cpus = self.logical_cpus() as f64;
        let multiplex = if demand > cpus { cpus / demand } else { 1.0 };

        let core_load =
            (working as f64 + self.polite_spin_weight * spinning as f64) / self.cores as f64;
        let pipe = if core_load <= self.turbo_threshold {
            // Mostly-idle socket: deep sleep elsewhere buys turbo here.
            self.fused_speed * self.turbo_boost
        } else if core_load <= 1.0 {
            self.fused_speed
        } else if core_load <= 2.0 {
            // Linear loss of fusion between one and two strands/core.
            self.fused_speed - (self.fused_speed - self.unfused_speed) * (core_load - 1.0)
        } else {
            self.unfused_speed * 2.0 / core_load
        };
        pipe * multiplex
    }

    /// Whether the kernel must time-multiplex (ready > CPUs).
    pub fn oversubscribed(&self, on_cpu_demand: usize) -> bool {
        on_cpu_demand > self.logical_cpus()
    }

    /// Expected dispatch delay for a ready thread when `demand`
    /// threads compete for the CPUs (zero when undersubscribed).
    ///
    /// When more threads are ready than CPUs, a ready-but-descheduled
    /// thread waits for spinners to exhaust their time slices; the
    /// expected lag grows with the oversubscription factor (§5.1).
    pub fn dispatch_delay(&self, demand: usize) -> u64 {
        let cpus = self.logical_cpus();
        if demand <= cpus {
            return 0;
        }
        let excess = (demand - cpus) as f64 / cpus as f64;
        // Half a quantum per unit of oversubscription, on average.
        (excess * self.quantum_cycles as f64 / 2.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t5_has_128_cpus() {
        let m = MachineConfig::t5_socket();
        assert_eq!(m.logical_cpus(), 128);
    }

    #[test]
    fn seconds_to_cycles_scale() {
        assert_eq!(seconds_to_cycles(1.0), 3_600_000_000);
        assert_eq!(seconds_to_cycles(0.001), 3_600_000);
    }

    #[test]
    fn speed_full_when_one_thread_per_core() {
        let m = MachineConfig::t5_socket();
        assert!((m.working_speed(16, 0) - 1.0).abs() < 1e-9);
        // A lone thread on a mostly-idle socket gets turbo on top.
        assert!((m.working_speed(1, 0) - m.turbo_boost).abs() < 1e-9);
    }

    #[test]
    fn turbo_requires_mostly_idle_socket() {
        let m = MachineConfig::t5_socket();
        assert!(m.working_speed(8, 0) > 1.0); // 0.5 load: turbo
        assert!((m.working_speed(9, 0) - 1.0).abs() < 1e-9); // just past
    }

    #[test]
    fn fusion_lost_between_one_and_two_per_core() {
        let m = MachineConfig::t5_socket();
        let s32 = m.working_speed(32, 0); // 2 per core
        assert!((s32 - m.unfused_speed).abs() < 1e-9);
        let s24 = m.working_speed(24, 0); // 1.5 per core: between
        assert!(s24 < 1.0 && s24 > s32);
    }

    #[test]
    fn pipelines_shared_beyond_two_per_core() {
        let m = MachineConfig::t5_socket();
        let s64 = m.working_speed(64, 0); // 4 per core
        assert!((s64 - m.unfused_speed * 0.5).abs() < 1e-9);
        assert!(m.working_speed(128, 0) < s64);
    }

    #[test]
    fn polite_spinners_cost_less_than_workers() {
        let m = MachineConfig::t5_socket();
        let with_spinners = m.working_speed(16, 16);
        let with_workers = m.working_speed(32, 0);
        assert!(with_spinners > with_workers);
        assert!(with_spinners < 1.0, "spinners still consume pipelines");
    }

    #[test]
    fn oversubscription_multiplexes() {
        let m = MachineConfig::t5_socket();
        let s = m.working_speed(256, 0);
        let expected_pipe = m.unfused_speed * 2.0 / 16.0; // 16 per core
        assert!((s - expected_pipe * 0.5).abs() < 1e-9, "128/256 multiplex");
        assert!(m.oversubscribed(129));
        assert!(!m.oversubscribed(128));
    }

    #[test]
    fn dispatch_delay_zero_until_oversubscribed() {
        let m = MachineConfig::t5_socket();
        assert_eq!(m.dispatch_delay(128), 0);
        assert!(m.dispatch_delay(256) > 0);
        assert!(m.dispatch_delay(256) >= m.quantum_cycles / 2);
    }
}
