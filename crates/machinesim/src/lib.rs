//! A discrete-event model of the paper's SPARC T5 evaluation machine.
//!
//! *Malthusian Locks* was evaluated on one socket of an Oracle SPARC
//! T5-2: 16 cores × 8 strands = 128 logical CPUs, two fusing pipelines
//! per core, an 8 MB shared L3, 128-entry per-core DTLBs, Solaris
//! parking primitives, 3.6 GHz. The scalability-collapse curves in the
//! paper's figures are properties of *that machine*; this crate
//! simulates it so every figure can be regenerated deterministically
//! on any host:
//!
//! * [`MachineConfig`] — topology and the execution-speed law
//!   (pipeline fusion/sharing, time multiplexing, park/unpark costs).
//! * [`SimLock`]/[`SimCondvar`]/[`SimSemaphore`] — queue-level models
//!   of the evaluated admission policies, making the same decisions as
//!   the live algorithms via the shared `malthus::policy` module.
//! * [`Simulation`] — the event engine: threads run [`Action`]
//!   programs; memory references are priced by `malthus-cachesim`.
//! * [`RunReport`] — throughput, admission histories (for LWSS/MTTR),
//!   park/unpark counts, CPU utilization, modeled watts, LLC misses.
//! * [`AnalyticModel`] — the closed-form Figure 1 model.
//!
//! # Examples
//!
//! ```
//! use malthus_machinesim::{
//!     Action, LockKind, LockSpec, MachineConfig, SimWorkload, Simulation, WaitMode, WorkloadCtx,
//! };
//!
//! struct Loop(u8);
//! impl SimWorkload for Loop {
//!     fn next_action(&mut self, _ctx: &mut WorkloadCtx<'_>) -> Action {
//!         let a = match self.0 {
//!             0 => Action::Acquire(0),
//!             1 => Action::Compute(1_000),
//!             2 => Action::Release(0),
//!             3 => Action::Compute(4_000),
//!             _ => Action::EndIteration,
//!         };
//!         self.0 = (self.0 + 1) % 5;
//!         a
//!     }
//! }
//!
//! let mut sim = Simulation::new(MachineConfig::t5_socket());
//! sim.add_lock(LockSpec { kind: LockKind::Fifo, wait: WaitMode::Spin });
//! for _ in 0..4 {
//!     sim.add_thread(Box::new(Loop(0)));
//! }
//! let report = sim.run(0.001); // 1 ms of simulated time
//! assert!(report.total_iterations > 0);
//! ```

#![warn(missing_docs)]

mod analytic;
mod engine;
mod locks;
mod machine;
mod report;
mod sync;
mod workload;

pub use analytic::AnalyticModel;
pub use engine::{CvSpec, LockSpec, SemSpec, Simulation};
pub use locks::{Arrival, LockKind, SimLock, SimLockStats, ThreadId, WaitMode};
pub use machine::{seconds_to_cycles, MachineConfig, CLOCK_HZ};
pub use report::RunReport;
pub use sync::{SemAcquire, SimCondvar, SimSemaphore};
pub use workload::{layout, Action, MemPattern, SimWorkload, WorkloadCtx};

// Re-export the policy vocabulary shared with the live locks.
pub use malthus::policy;
