//! The analytic throughput model behind the paper's Figure 1.
//!
//! Figure 1 is an idealized depiction: throughput rises to *peak*,
//! saturates, and then — without CR — collapses as excess threads
//! compete for shared resources, while with CR it plateaus at the
//! peak. This module reproduces that figure from a small closed-form
//! model (§1's 10-thread example): CS length `c`, NCS length `n`,
//! saturation at `(n + c)/c` threads, and a resource-competition
//! penalty that grows with the number of *circulating* threads beyond
//! a capacity knee (the LLC-capacity story of §2).

/// Parameters of the idealized model.
#[derive(Debug, Clone, Copy)]
pub struct AnalyticModel {
    /// Critical-section length (arbitrary time units).
    pub cs: f64,
    /// Non-critical-section length.
    pub ncs: f64,
    /// Number of circulating threads at which competition for the
    /// shared resource begins to inflate the critical section (e.g.
    /// combined footprint reaching the LLC capacity).
    pub capacity_knee: f64,
    /// Fractional CS inflation per circulating thread beyond the knee.
    pub penalty_per_thread: f64,
}

impl AnalyticModel {
    /// The paper's §1 example: CS 1 µs, NCS 5 µs (saturation at 6).
    pub fn paper_example() -> Self {
        AnalyticModel {
            cs: 1.0,
            ncs: 5.0,
            capacity_knee: 7.0,
            penalty_per_thread: 0.18,
        }
    }

    /// Thread count at which the lock saturates (continuously held).
    pub fn saturation(&self) -> f64 {
        (self.ncs + self.cs) / self.cs
    }

    /// Throughput at `threads` when the effective circulating set is
    /// `circulating` (iterations per time unit).
    fn throughput_with_circulation(&self, threads: f64, circulating: f64) -> f64 {
        // CS inflation from resource competition by circulating
        // threads beyond the knee.
        let excess = (circulating - self.capacity_knee).max(0.0);
        let cs_eff = self.cs * (1.0 + self.penalty_per_thread * excess);
        let saturation = (self.ncs + cs_eff) / cs_eff;
        if threads < saturation {
            // Below saturation the lock is not the bottleneck:
            // throughput is threads / (cs + ncs).
            threads / (cs_eff + self.ncs)
        } else {
            // At and beyond saturation, CS duration alone dictates
            // throughput (§3 footnote 7).
            1.0 / cs_eff
        }
    }

    /// Throughput without CR: every thread circulates.
    pub fn throughput_without_cr(&self, threads: usize) -> f64 {
        self.throughput_with_circulation(threads as f64, threads as f64)
    }

    /// Throughput with ideal CR: the circulating set is clamped to
    /// saturation, excess threads passivated.
    pub fn throughput_with_cr(&self, threads: usize) -> f64 {
        let circulating = (threads as f64).min(self.saturation());
        self.throughput_with_circulation(threads as f64, circulating)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_saturates_at_six() {
        let m = AnalyticModel::paper_example();
        assert!((m.saturation() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn below_saturation_cr_changes_nothing() {
        let m = AnalyticModel::paper_example();
        for t in 1..=5 {
            let a = m.throughput_without_cr(t);
            let b = m.throughput_with_cr(t);
            assert!((a - b).abs() < 1e-9, "t={t}: {a} vs {b}");
        }
    }

    #[test]
    fn throughput_rises_to_peak() {
        let m = AnalyticModel::paper_example();
        for t in 1..6 {
            assert!(m.throughput_without_cr(t + 1) > m.throughput_without_cr(t));
        }
    }

    #[test]
    fn without_cr_collapses_beyond_saturation() {
        let m = AnalyticModel::paper_example();
        let at_peak = m.throughput_without_cr(6);
        let at_64 = m.throughput_without_cr(64);
        assert!(
            at_64 < at_peak * 0.2,
            "collapse expected: {at_peak} -> {at_64}"
        );
    }

    #[test]
    fn with_cr_holds_the_plateau() {
        let m = AnalyticModel::paper_example();
        let at_peak = m.throughput_with_cr(6);
        for t in 7..=128 {
            let thr = m.throughput_with_cr(t);
            assert!(
                (thr - at_peak).abs() < 1e-9,
                "CR must hold the plateau at t={t}"
            );
        }
    }

    #[test]
    fn cr_dominates_no_cr_everywhere() {
        let m = AnalyticModel::paper_example();
        for t in 1..=128 {
            assert!(m.throughput_with_cr(t) >= m.throughput_without_cr(t) - 1e-12);
        }
    }
}
