//! The simulated-thread programming model.
//!
//! A workload is a small state machine: each time its thread is
//! runnable, the engine asks for the next [`Action`] and executes it
//! in simulated time (charging memory latencies through the cache
//! hierarchy and applying the machine's speed law). Blocking actions
//! (lock acquire, condvar wait, semaphore acquire) suspend the thread
//! until granted.

use malthus_park::XorShift64;

/// A batch of memory references issued as one action.
#[derive(Debug, Clone)]
pub enum MemPattern {
    /// `count` uniformly random 4-byte reads within `[base, base+bytes)`.
    RandomIn {
        /// Region base address.
        base: u64,
        /// Region size in bytes.
        bytes: u64,
        /// Number of references.
        count: u32,
    },
    /// `count` reads starting at `start`, advancing by `stride`, and
    /// wrapping within `[base, base+bytes)`.
    StrideIn {
        /// Region base address.
        base: u64,
        /// Region size in bytes.
        bytes: u64,
        /// First reference address (must be within the region).
        start: u64,
        /// Distance between consecutive references.
        stride: u64,
        /// Number of references.
        count: u32,
    },
    /// A single read at an explicit address.
    Single(
        /// The address.
        u64,
    ),
}

impl MemPattern {
    /// Materializes the reference addresses using `rng` for the
    /// random variant.
    pub fn addresses(&self, rng: &XorShift64) -> Vec<u64> {
        match *self {
            MemPattern::RandomIn { base, bytes, count } => (0..count)
                .map(|_| base + (rng.next_below(bytes / 4) * 4))
                .collect(),
            MemPattern::StrideIn {
                base,
                bytes,
                start,
                stride,
                count,
            } => {
                let mut addr = start;
                (0..count)
                    .map(|_| {
                        let a = addr;
                        addr += stride;
                        if addr >= base + bytes {
                            addr = base + (addr - base) % bytes;
                        }
                        a
                    })
                    .collect()
            }
            MemPattern::Single(a) => vec![a],
        }
    }
}

/// One step of a simulated thread's program.
#[derive(Debug, Clone)]
pub enum Action {
    /// Execute `0` cycles of pure computation (scaled by the speed
    /// law).
    Compute(
        /// Base cycles at full speed.
        u64,
    ),
    /// Issue a batch of memory references (latencies via the cache
    /// hierarchy, scaled by the speed law).
    Access(
        /// The reference pattern.
        MemPattern,
    ),
    /// Acquire lock `0` (blocking).
    Acquire(
        /// Lock index.
        usize,
    ),
    /// Release lock `0`.
    Release(
        /// Lock index.
        usize,
    ),
    /// Atomically release the lock and wait on the condvar; on wakeup
    /// the lock is reacquired before the program continues.
    CondWait {
        /// Condvar index.
        cv: usize,
        /// The lock protecting the condition.
        lock: usize,
    },
    /// Wake one condvar waiter.
    CondNotifyOne(
        /// Condvar index.
        usize,
    ),
    /// Wake all condvar waiters.
    CondNotifyAll(
        /// Condvar index.
        usize,
    ),
    /// Acquire a semaphore permit (blocking).
    SemAcquire(
        /// Semaphore index.
        usize,
    ),
    /// Release a semaphore permit.
    SemRelease(
        /// Semaphore index.
        usize,
    ),
    /// Mark the end of one benchmark iteration (throughput counter).
    EndIteration,
}

/// Context handed to workloads when they emit their next action.
pub struct WorkloadCtx<'a> {
    /// This thread's id.
    pub tid: usize,
    /// Deterministic per-thread generator.
    pub rng: &'a XorShift64,
    /// Iterations completed so far by this thread.
    pub iterations: u64,
}

/// A simulated thread body.
pub trait SimWorkload: Send {
    /// Returns the next action; called whenever the thread is
    /// runnable. Programs loop forever — the engine stops them at the
    /// end of the measurement interval.
    fn next_action(&mut self, ctx: &mut WorkloadCtx<'_>) -> Action;
}

/// Blanket impl so plain closures can serve as workloads.
impl<F> SimWorkload for F
where
    F: FnMut(&mut WorkloadCtx<'_>) -> Action + Send,
{
    fn next_action(&mut self, ctx: &mut WorkloadCtx<'_>) -> Action {
        self(ctx)
    }
}

/// Address-space layout helpers shared by the workload definitions.
pub mod layout {
    /// Base of the shared (critical-section) region.
    pub const SHARED_BASE: u64 = 0x1000_0000;

    /// Base of thread `tid`'s private region (regions are 1 GiB apart,
    /// far beyond any cache geometry's reach of aliasing concerns).
    pub fn private_base(tid: usize) -> u64 {
        0x40_0000_0000 + (tid as u64) * 0x4000_0000
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_pattern_stays_in_region() {
        let rng = XorShift64::new(9);
        let p = MemPattern::RandomIn {
            base: 0x1000,
            bytes: 4096,
            count: 1000,
        };
        for a in p.addresses(&rng) {
            assert!((0x1000..0x2000).contains(&a));
            assert_eq!(a % 4, 0);
        }
    }

    #[test]
    fn stride_pattern_wraps() {
        let rng = XorShift64::new(9);
        let p = MemPattern::StrideIn {
            base: 0,
            bytes: 100,
            start: 80,
            stride: 30,
            count: 3,
        };
        assert_eq!(p.addresses(&rng), vec![80, 10, 40]);
    }

    #[test]
    fn single_pattern() {
        let rng = XorShift64::new(9);
        assert_eq!(MemPattern::Single(7).addresses(&rng), vec![7]);
    }

    #[test]
    fn private_bases_are_disjoint() {
        let a = layout::private_base(0);
        let b = layout::private_base(1);
        assert!(b - a >= 0x4000_0000);
        assert!(a > layout::SHARED_BASE + 0x1000_0000);
    }

    #[test]
    fn closures_are_workloads() {
        let mut w = |_ctx: &mut WorkloadCtx<'_>| Action::Compute(10);
        let rng = XorShift64::new(1);
        let mut ctx = WorkloadCtx {
            tid: 0,
            rng: &rng,
            iterations: 0,
        };
        assert!(matches!(w.next_action(&mut ctx), Action::Compute(10)));
    }
}
