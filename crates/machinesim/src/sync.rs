//! Simulated condition variables and semaphores with CR disciplines.
//!
//! These model the paper's §6.10–6.11 constructs: explicit wait lists
//! whose insertion side is a Bernoulli append/prepend mix. Probability
//! 0 = strict FIFO (the baseline); 999/1000 = the paper's mostly-LIFO
//! CR form; 1 = strict LIFO (Folly `LifoSem`).

use std::collections::VecDeque;

use malthus::policy::AdmissionDiscipline;

use crate::locks::ThreadId;

/// A simulated condition variable.
#[derive(Debug)]
pub struct SimCondvar {
    waiters: VecDeque<ThreadId>,
    discipline: AdmissionDiscipline,
    /// Total waits (diagnostic).
    pub waits: u64,
    /// Total notifications that woke somebody.
    pub wakes: u64,
}

impl SimCondvar {
    /// Creates a condvar with the given prepend probability.
    pub fn new(prepend_probability: f64, seed: u64) -> Self {
        SimCondvar {
            waiters: VecDeque::new(),
            discipline: AdmissionDiscipline::new(prepend_probability, seed),
            waits: 0,
            wakes: 0,
        }
    }

    /// Adds a waiter per the admission discipline.
    pub fn wait(&mut self, t: ThreadId) {
        self.waits += 1;
        if self.discipline.prepend() {
            self.waiters.push_front(t);
        } else {
            self.waiters.push_back(t);
        }
    }

    /// Removes and returns the next waiter to wake, if any.
    pub fn notify_one(&mut self) -> Option<ThreadId> {
        let t = self.waiters.pop_front();
        if t.is_some() {
            self.wakes += 1;
        }
        t
    }

    /// Removes and returns all waiters.
    pub fn notify_all(&mut self) -> Vec<ThreadId> {
        self.wakes += self.waiters.len() as u64;
        self.waiters.drain(..).collect()
    }

    /// Current number of waiters.
    pub fn len(&self) -> usize {
        self.waiters.len()
    }

    /// Whether nobody is waiting.
    pub fn is_empty(&self) -> bool {
        self.waiters.is_empty()
    }
}

/// A simulated counting semaphore with direct permit handoff.
#[derive(Debug)]
pub struct SimSemaphore {
    permits: usize,
    waiters: VecDeque<ThreadId>,
    discipline: AdmissionDiscipline,
}

/// Result of a simulated semaphore acquire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SemAcquire {
    /// A permit was available; the caller proceeds.
    Granted,
    /// The caller joined the wait list.
    Enqueued,
}

impl SimSemaphore {
    /// Creates a semaphore with `permits` available permits.
    pub fn new(permits: usize, prepend_probability: f64, seed: u64) -> Self {
        SimSemaphore {
            permits,
            waiters: VecDeque::new(),
            discipline: AdmissionDiscipline::new(prepend_probability, seed),
        }
    }

    /// Attempts to take a permit; enqueues on exhaustion.
    pub fn acquire(&mut self, t: ThreadId) -> SemAcquire {
        if self.permits > 0 {
            self.permits -= 1;
            SemAcquire::Granted
        } else {
            if self.discipline.prepend() {
                self.waiters.push_front(t);
            } else {
                self.waiters.push_back(t);
            }
            SemAcquire::Enqueued
        }
    }

    /// Releases a permit; a waiter (if any) receives it directly.
    pub fn release(&mut self) -> Option<ThreadId> {
        match self.waiters.pop_front() {
            Some(t) => Some(t),
            None => {
                self.permits += 1;
                None
            }
        }
    }

    /// Available permits.
    pub fn permits(&self) -> usize {
        self.permits
    }

    /// Blocked acquirers.
    pub fn waiters(&self) -> usize {
        self.waiters.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_condvar_wakes_in_order() {
        let mut cv = SimCondvar::new(0.0, 1);
        cv.wait(1);
        cv.wait(2);
        cv.wait(3);
        assert_eq!(cv.notify_one(), Some(1));
        assert_eq!(cv.notify_one(), Some(2));
        assert_eq!(cv.notify_one(), Some(3));
        assert_eq!(cv.notify_one(), None);
    }

    #[test]
    fn lifo_condvar_wakes_most_recent() {
        let mut cv = SimCondvar::new(1.0, 1);
        cv.wait(1);
        cv.wait(2);
        cv.wait(3);
        assert_eq!(cv.notify_one(), Some(3));
        assert_eq!(cv.notify_one(), Some(2));
    }

    #[test]
    fn notify_all_drains() {
        let mut cv = SimCondvar::new(0.0, 1);
        cv.wait(1);
        cv.wait(2);
        assert_eq!(cv.notify_all(), vec![1, 2]);
        assert!(cv.is_empty());
        assert_eq!(cv.wakes, 2);
    }

    #[test]
    fn semaphore_counts_and_handoffs() {
        let mut s = SimSemaphore::new(1, 0.0, 1);
        assert_eq!(s.acquire(1), SemAcquire::Granted);
        assert_eq!(s.acquire(2), SemAcquire::Enqueued);
        // Release hands the permit directly to thread 2.
        assert_eq!(s.release(), Some(2));
        assert_eq!(s.permits(), 0);
        // No waiters: the permit is banked.
        assert_eq!(s.release(), None);
        assert_eq!(s.permits(), 1);
    }

    #[test]
    fn lifo_semaphore_wakes_most_recent() {
        let mut s = SimSemaphore::new(0, 1.0, 1);
        s.acquire(1);
        s.acquire(2);
        s.acquire(3);
        assert_eq!(s.release(), Some(3));
        assert_eq!(s.release(), Some(2));
        assert_eq!(s.release(), Some(1));
    }
}
