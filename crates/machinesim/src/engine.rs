//! The discrete-event simulation engine.
//!
//! Threads execute [`Action`] programs in simulated cycles. Compute
//! and memory segments are scaled by the machine's speed law (pipeline
//! sharing, fusion loss, time multiplexing); blocking actions suspend
//! threads on the lock/condvar/semaphore models; handover costs follow
//! §5 of the paper: cheap flag writes for spinning successors, kernel
//! unpark latencies for parked ones, and expected dispatch delays for
//! preempted spinners when the machine is oversubscribed.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use malthus_cachesim::Hierarchy;
use malthus_park::XorShift64;

use crate::locks::{Arrival, LockKind, SimLock, WaitMode};
use crate::machine::MachineConfig;
use crate::report::RunReport;
use crate::sync::{SemAcquire, SimCondvar, SimSemaphore};
use crate::workload::{Action, SimWorkload, WorkloadCtx};

/// What a blocked thread is waiting on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WaitOn {
    Lock(usize),
    /// Waiting inside a condvar's wait list (no wakeable object yet).
    Cv,
    Sem(usize),
}

/// Scheduler-visible thread state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TState {
    /// Executing program segments (counts as working).
    Running,
    /// Busy-waiting (counts as on-CPU spinning).
    Spinning,
    /// Voluntarily descheduled (off CPU).
    Parked,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// The thread's current segment (or wake delay) has elapsed;
    /// continue its program.
    Resume(usize),
    /// A spin-then-park budget expired (epoch-guarded).
    SpinExpire(usize, u64),
    /// A condvar-woken thread re-contends for its lock.
    CvReArrive(usize, usize),
}

struct Thread {
    workload: Box<dyn SimWorkload>,
    rng: XorShift64,
    iterations: u64,
    state: TState,
    waiting_on: Option<WaitOn>,
    wait_epoch: u64,
    park_started: u64,
    core: usize,
    /// The lock a condvar waiter must reacquire on wake.
    cv_relock: usize,
    /// Waiting with an *unbounded* spin policy (occupies a CPU for
    /// whole quanta, unlike spin-then-park's transient spinning).
    pure_spin_wait: bool,
    /// Whether the thread's first event has fired (threads are off
    /// CPU until their staggered start).
    started: bool,
    /// Exponential moving average of per-reference memory latency.
    ///
    /// Durations are charged from this smoothed value rather than the
    /// per-batch sampled sum: on real hardware the closed lock/NCS
    /// loop phase-locks (per-iteration jitter is far below the CS
    /// length), and that phase lock is what keeps the paper's ACS
    /// queue from ever emptying. Sampled batch costs would inject
    /// artificial variance and destroy the lock-step. The EMA still
    /// tracks regime changes (e.g. LLC thrashing) within a few
    /// iterations.
    avg_access_cost: f64,
}

/// Specification of a simulated lock.
pub struct LockSpec {
    /// Admission policy.
    pub kind: LockKind,
    /// Waiting policy for its waiters.
    pub wait: WaitMode,
}

/// Specification of a simulated condvar.
pub struct CvSpec {
    /// Probability a waiter is prepended (LIFO side).
    pub prepend_probability: f64,
    /// Discipline PRNG seed.
    pub seed: u64,
    /// Waiting policy for cv waiters.
    pub wait: WaitMode,
}

/// Specification of a simulated semaphore.
pub struct SemSpec {
    /// Initial permits.
    pub permits: usize,
    /// Probability a waiter is prepended (LIFO side).
    pub prepend_probability: f64,
    /// Discipline PRNG seed.
    pub seed: u64,
    /// Waiting policy for semaphore waiters.
    pub wait: WaitMode,
}

/// Builder for one simulation run.
pub struct Simulation {
    machine: MachineConfig,
    locks: Vec<SimLock>,
    lock_waits: Vec<WaitMode>,
    cvs: Vec<SimCondvar>,
    cv_waits: Vec<WaitMode>,
    /// For cv waiters: which lock to reacquire on wake.
    sems: Vec<SimSemaphore>,
    sem_waits: Vec<WaitMode>,
    threads: Vec<Thread>,
    hierarchy: Hierarchy,

    now: u64,
    seq: u64,
    events: BinaryHeap<Reverse<(u64, u64, Event)>>,

    // Accounting integrals.
    working: usize,
    spinning: usize,
    /// Spinners that never park (unbounded-spin waiters).
    pure_spinning: usize,
    last_bump: u64,
    working_integral: f64,
    spinning_integral: f64,
    voluntary_parks: u64,
    unpark_calls: u64,
    total_iterations: u64,
}

impl Simulation {
    /// Creates an empty simulation on the given machine.
    pub fn new(machine: MachineConfig) -> Self {
        Simulation {
            hierarchy: Hierarchy::new(machine.hierarchy()),
            machine,
            locks: Vec::new(),
            lock_waits: Vec::new(),
            cvs: Vec::new(),
            cv_waits: Vec::new(),
            sems: Vec::new(),
            sem_waits: Vec::new(),
            threads: Vec::new(),
            now: 0,
            seq: 0,
            events: BinaryHeap::new(),
            working: 0,
            spinning: 0,
            pure_spinning: 0,
            last_bump: 0,
            working_integral: 0.0,
            spinning_integral: 0.0,
            voluntary_parks: 0,
            unpark_calls: 0,
            total_iterations: 0,
        }
    }

    /// Adds a lock; returns its index.
    pub fn add_lock(&mut self, spec: LockSpec) -> usize {
        self.locks.push(SimLock::new(spec.kind, spec.wait));
        self.lock_waits.push(spec.wait);
        self.locks.len() - 1
    }

    /// Adds a condvar; returns its index.
    pub fn add_condvar(&mut self, spec: CvSpec) -> usize {
        self.cvs
            .push(SimCondvar::new(spec.prepend_probability, spec.seed));
        self.cv_waits.push(spec.wait);
        self.cvs.len() - 1
    }

    /// Adds a semaphore; returns its index.
    pub fn add_semaphore(&mut self, spec: SemSpec) -> usize {
        self.sems.push(SimSemaphore::new(
            spec.permits,
            spec.prepend_probability,
            spec.seed,
        ));
        self.sem_waits.push(spec.wait);
        self.sems.len() - 1
    }

    /// Adds a thread running `workload`; returns its id.
    pub fn add_thread(&mut self, workload: Box<dyn SimWorkload>) -> usize {
        let tid = self.threads.len();
        let core = tid % self.machine.cores;
        self.threads.push(Thread {
            workload,
            rng: XorShift64::new(
                0x9E37_79B9 ^ (tid as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F),
            ),
            iterations: 0,
            state: TState::Parked,
            waiting_on: None,
            wait_epoch: 0,
            park_started: 0,
            core,
            cv_relock: 0,
            pure_spin_wait: false,
            started: false,
            avg_access_cost: 0.0,
        });
        tid
    }

    fn bump(&mut self) {
        let dt = (self.now - self.last_bump) as f64;
        self.working_integral += dt * self.working as f64;
        self.spinning_integral += dt * self.spinning as f64;
        self.last_bump = self.now;
    }

    fn set_state(&mut self, tid: usize, state: TState) {
        let old = self.threads[tid].state;
        if old == state {
            return;
        }
        self.bump();
        match old {
            TState::Running => self.working -= 1,
            TState::Spinning => self.spinning -= 1,
            TState::Parked => {}
        }
        match state {
            TState::Running => self.working += 1,
            TState::Spinning => self.spinning += 1,
            TState::Parked => {}
        }
        self.threads[tid].state = state;
    }

    fn schedule(&mut self, at: u64, ev: Event) {
        self.seq += 1;
        self.events.push(Reverse((at, self.seq, ev)));
    }

    /// Scales base cycles by the current machine speed.
    fn scale(&self, base: u64) -> u64 {
        let speed = self.machine.working_speed(self.working, self.spinning);
        ((base as f64 / speed) as u64).max(1)
    }

    /// Starts a thread waiting on `target` with the given wait mode.
    fn begin_wait(&mut self, tid: usize, target: WaitOn, mode: WaitMode) {
        self.threads[tid].wait_epoch += 1;
        let epoch = self.threads[tid].wait_epoch;
        self.threads[tid].waiting_on = Some(target);
        match mode {
            WaitMode::Spin => {
                self.set_state(tid, TState::Spinning);
                self.threads[tid].pure_spin_wait = true;
                self.pure_spinning += 1;
            }
            WaitMode::SpinThenPark => {
                self.set_state(tid, TState::Spinning);
                self.schedule(
                    self.now + self.machine.spin_then_park_budget,
                    Event::SpinExpire(tid, epoch),
                );
            }
            WaitMode::Park => {
                self.set_state(tid, TState::Parked);
                self.threads[tid].park_started = self.now;
                self.voluntary_parks += 1;
            }
        }
    }

    /// Computes (wake delay for the wakee, immediate charge to the
    /// waker) for releasing thread `tid` from its wait.
    fn wake_cost(&mut self, tid: usize) -> (u64, u64) {
        // Only long-lived CPU occupants cause scheduler-level
        // congestion: working threads and *unbounded* spinners.
        // Spin-then-park waiters vacate their CPUs within the spin
        // budget, orders of magnitude below a time slice.
        let demand = self.working + self.pure_spinning;
        match self.threads[tid].state {
            TState::Spinning => {
                // The successor is polling: a flag write reaches it
                // almost immediately — unless it has been preempted.
                let dispatch = if self.machine.oversubscribed(demand) {
                    self.machine.dispatch_delay(demand)
                } else {
                    0
                };
                (self.machine.spin_handover_cycles + dispatch, 0)
            }
            TState::Parked => {
                self.unpark_calls += 1;
                let slept = self.now - self.threads[tid].park_started;
                // Wake cost grows with how long the wakee slept (§5.1):
                // a freshly parked thread is dispatched warm; a
                // long-parked one pays the full blocked->ready->running
                // path, plus deep-sleep exit if its CPU idled out.
                let base = if slept < self.machine.warm_park_threshold_cycles {
                    self.machine.warm_unpark_latency_cycles
                } else {
                    self.machine.unpark_latency_cycles
                };
                let deep = if slept >= self.machine.deep_sleep_threshold_cycles {
                    self.machine.deep_sleep_exit_cycles
                } else {
                    0
                };
                (
                    self.machine.unpark_call_cycles + base + deep,
                    self.machine.unpark_call_cycles,
                )
            }
            TState::Running => (self.machine.spin_handover_cycles, 0),
        }
    }

    /// Clears a thread's wait bookkeeping on grant.
    fn end_wait(&mut self, tid: usize) {
        self.threads[tid].wait_epoch += 1; // invalidate SpinExpire
        self.threads[tid].waiting_on = None;
        if self.threads[tid].pure_spin_wait {
            self.threads[tid].pure_spin_wait = false;
            self.pure_spinning -= 1;
        }
    }

    /// Grants a lock/semaphore wait: the wakee resumes its program.
    /// Returns the charge to the waker.
    fn grant_resume(&mut self, tid: usize) -> u64 {
        let (delay, charge) = self.wake_cost(tid);
        self.end_wait(tid);
        self.set_state(tid, TState::Running);
        self.schedule(self.now + delay, Event::Resume(tid));
        charge
    }

    /// Wakes a condvar waiter: it must re-contend for the lock it
    /// recorded at `CondWait` time. Returns the charge to the
    /// notifier.
    fn cv_wake(&mut self, tid: usize) -> u64 {
        let lock = self.threads[tid].cv_relock;
        let (delay, charge) = self.wake_cost(tid);
        self.end_wait(tid);
        self.set_state(tid, TState::Running);
        self.schedule(self.now + delay, Event::CvReArrive(tid, lock));
        charge
    }

    /// Releases `lock` on behalf of the current owner; returns the
    /// charge (unpark-call cycles) to the releaser.
    fn do_release(&mut self, lock: usize) -> u64 {
        match self.locks[lock].release() {
            Some(succ) => self.grant_resume(succ),
            None => 0,
        }
    }

    /// Runs `tid`'s program until it blocks or schedules a timed
    /// event.
    fn step_program(&mut self, tid: usize) {
        let mut fuel = 100_000u32;
        loop {
            fuel -= 1;
            assert!(
                fuel > 0,
                "workload for thread {tid} produced an unbounded zero-time action sequence"
            );
            let action = {
                let t = &mut self.threads[tid];
                let mut ctx = WorkloadCtx {
                    tid,
                    rng: &t.rng,
                    iterations: t.iterations,
                };
                t.workload.next_action(&mut ctx)
            };
            match action {
                Action::Compute(c) => {
                    let d = self.scale(c);
                    self.schedule(self.now + d, Event::Resume(tid));
                    return;
                }
                Action::Access(pattern) => {
                    let addrs = pattern.addresses(&self.threads[tid].rng);
                    let count = addrs.len().max(1) as f64;
                    let core = self.threads[tid].core;
                    let mut cycles = 0u64;
                    for a in addrs {
                        let (_, c) = self.hierarchy.access(core, tid as u32, a);
                        cycles += c;
                    }
                    // Smooth the charged duration (see `avg_access_cost`).
                    let sample = cycles as f64 / count;
                    let t = &mut self.threads[tid];
                    t.avg_access_cost = if t.avg_access_cost == 0.0 {
                        sample
                    } else {
                        0.9 * t.avg_access_cost + 0.1 * sample
                    };
                    let charged = (t.avg_access_cost * count) as u64;
                    let d = self.scale(charged.max(1));
                    self.schedule(self.now + d, Event::Resume(tid));
                    return;
                }
                Action::Acquire(l) => match self.locks[l].arrive(tid) {
                    Arrival::Granted => continue,
                    Arrival::Enqueued => {
                        let mode = self.lock_waits[l];
                        self.begin_wait(tid, WaitOn::Lock(l), mode);
                        return;
                    }
                },
                Action::Release(l) => {
                    let charge = self.do_release(l);
                    if charge > 0 {
                        self.schedule(self.now + charge, Event::Resume(tid));
                        return;
                    }
                    continue;
                }
                Action::CondWait { cv, lock } => {
                    // Release the lock (waking a successor) and join
                    // the wait list; the unpark charge is folded into
                    // our own blocking.
                    let _charge = self.do_release(lock);
                    self.threads[tid].cv_relock = lock;
                    self.cvs[cv].wait(tid);
                    let mode = self.cv_waits[cv];
                    self.begin_wait(tid, WaitOn::Cv, mode);
                    return;
                }
                Action::CondNotifyOne(cv) => {
                    // The workload model signals after releasing the
                    // lock (the paper notes signal can usually be
                    // shifted outside the critical section).
                    if let Some(w) = self.cvs[cv].notify_one() {
                        let charge = self.cv_wake(w);
                        if charge > 0 {
                            self.schedule(self.now + charge, Event::Resume(tid));
                            return;
                        }
                    }
                    continue;
                }
                Action::CondNotifyAll(cv) => {
                    let waiters = self.cvs[cv].notify_all();
                    let mut charge = 0;
                    for w in waiters {
                        charge += self.cv_wake(w);
                    }
                    if charge > 0 {
                        self.schedule(self.now + charge, Event::Resume(tid));
                        return;
                    }
                    continue;
                }
                Action::SemAcquire(s) => match self.sems[s].acquire(tid) {
                    SemAcquire::Granted => continue,
                    SemAcquire::Enqueued => {
                        let mode = self.sem_waits[s];
                        self.begin_wait(tid, WaitOn::Sem(s), mode);
                        return;
                    }
                },
                Action::SemRelease(s) => {
                    let woken = self.sems[s].release();
                    if let Some(w) = woken {
                        let charge = self.grant_resume(w);
                        if charge > 0 {
                            self.schedule(self.now + charge, Event::Resume(tid));
                            return;
                        }
                    }
                    continue;
                }
                Action::EndIteration => {
                    self.threads[tid].iterations += 1;
                    self.total_iterations += 1;
                    continue;
                }
            }
        }
    }

    /// Cycles between successive thread start times: real harnesses
    /// create threads with a `pthread_create` loop, so arrivals are
    /// never perfectly synchronized; a perfectly synchronized stampede
    /// would drive every waiter past its spin budget at t = 0 and
    /// could trap spin-then-park configurations in a parked-convoy
    /// regime no real run starts in.
    pub const START_STAGGER_CYCLES: u64 = 12_000;

    /// Runs until `sim_seconds` of simulated time have elapsed.
    pub fn run(mut self, sim_seconds: f64) -> RunReport {
        let end = crate::machine::seconds_to_cycles(sim_seconds);
        for tid in 0..self.threads.len() {
            self.schedule(tid as u64 * Self::START_STAGGER_CYCLES, Event::Resume(tid));
        }
        while let Some(Reverse((t, _s, ev))) = self.events.pop() {
            if t > end {
                break;
            }
            self.now = t;
            match ev {
                Event::Resume(tid) => {
                    if !self.threads[tid].started {
                        // Staggered start: the thread only now joins
                        // the on-CPU accounting.
                        self.threads[tid].started = true;
                        self.set_state(tid, TState::Running);
                    }
                    self.step_program(tid)
                }
                Event::SpinExpire(tid, epoch) => {
                    let th = &self.threads[tid];
                    if th.wait_epoch == epoch
                        && th.waiting_on.is_some()
                        && th.state == TState::Spinning
                    {
                        self.set_state(tid, TState::Parked);
                        self.threads[tid].park_started = self.now;
                        self.voluntary_parks += 1;
                    }
                }
                Event::CvReArrive(tid, lock) => match self.locks[lock].arrive(tid) {
                    Arrival::Granted => self.step_program(tid),
                    Arrival::Enqueued => {
                        let mode = self.lock_waits[lock];
                        self.begin_wait(tid, WaitOn::Lock(lock), mode);
                    }
                },
            }
        }
        self.now = end;
        self.bump();

        RunReport {
            sim_seconds,
            total_iterations: self.total_iterations,
            per_thread_iterations: self.threads.iter().map(|t| t.iterations).collect(),
            admissions: self.locks.iter().map(|l| l.admissions().to_vec()).collect(),
            lock_stats: self.locks.iter().map(|l| l.stats()).collect(),
            voluntary_parks: self.voluntary_parks,
            unpark_calls: self.unpark_calls,
            avg_working: self.working_integral / end as f64,
            avg_spinning: self.spinning_integral / end as f64,
            watts_above_idle: (self.working_integral * self.machine.watts_per_working
                + self.spinning_integral * self.machine.watts_per_spinning)
                / end as f64,
            hierarchy: self.hierarchy.stats(),
            llc: self.hierarchy.llc_stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::layout;
    use crate::workload::MemPattern;
    use malthus::policy::FairnessTrigger;

    /// A minimal lock workload: CS = `cs` compute cycles under lock 0,
    /// NCS = `ncs` compute cycles.
    struct SpinLoop {
        phase: u8,
        cs: u64,
        ncs: u64,
    }

    impl SimWorkload for SpinLoop {
        fn next_action(&mut self, _ctx: &mut WorkloadCtx<'_>) -> Action {
            self.phase = (self.phase + 1) % 4;
            match self.phase {
                1 => Action::Acquire(0),
                2 => Action::Compute(self.cs),
                3 => Action::Release(0),
                _ => {
                    if self.ncs == 0 {
                        Action::EndIteration
                    } else {
                        self.phase = 0;
                        Action::Compute(self.ncs)
                    }
                }
            }
        }
    }

    /// Standard loop with an end-of-iteration marker.
    struct LockLoop {
        step: u8,
        cs: u64,
        ncs: u64,
    }

    impl SimWorkload for LockLoop {
        fn next_action(&mut self, _ctx: &mut WorkloadCtx<'_>) -> Action {
            let a = match self.step {
                0 => Action::Acquire(0),
                1 => Action::Compute(self.cs),
                2 => Action::Release(0),
                3 => Action::Compute(self.ncs),
                _ => Action::EndIteration,
            };
            self.step = (self.step + 1) % 5;
            a
        }
    }

    fn fifo_sim(threads: usize, cs: u64, ncs: u64, wait: WaitMode) -> RunReport {
        let mut sim = Simulation::new(MachineConfig::t5_socket());
        sim.add_lock(LockSpec {
            kind: LockKind::Fifo,
            wait,
        });
        for _ in 0..threads {
            sim.add_thread(Box::new(LockLoop { step: 0, cs, ncs }));
        }
        sim.run(0.002)
    }

    /// Longer run for oversubscription scenarios: with 256 staggered
    /// thread starts the ramp-up alone spans ~3 M cycles, so steady
    /// state needs a wider window.
    fn fifo_sim_long(threads: usize, cs: u64, ncs: u64, wait: WaitMode) -> RunReport {
        let mut sim = Simulation::new(MachineConfig::t5_socket());
        sim.add_lock(LockSpec {
            kind: LockKind::Fifo,
            wait,
        });
        for _ in 0..threads {
            sim.add_thread(Box::new(LockLoop { step: 0, cs, ncs }));
        }
        sim.run(0.04)
    }

    #[test]
    fn single_thread_throughput_matches_arithmetic() {
        // CS 1000 + NCS 4000 = 5000 cycles/iter at turbo speed
        // (lone thread on an idle socket runs at 1.25x):
        // 7.2 M cycles / 4000 -> ~1800 iterations.
        let r = fifo_sim(1, 1_000, 4_000, WaitMode::Spin);
        assert!(
            (1_700..=1_860).contains(&(r.total_iterations as i64)),
            "got {}",
            r.total_iterations
        );
    }

    #[test]
    fn two_threads_share_fifo_lock_evenly() {
        let r = fifo_sim(2, 1_000, 1_000, WaitMode::Spin);
        let a = r.per_thread_iterations[0] as f64;
        let b = r.per_thread_iterations[1] as f64;
        assert!(r.total_iterations > 100);
        assert!((a - b).abs() / (a + b) < 0.05, "FIFO must be fair: {a} {b}");
    }

    #[test]
    fn saturated_fifo_admissions_are_round_robin() {
        let r = fifo_sim(4, 1_000, 500, WaitMode::Spin);
        let h = &r.admissions[0];
        assert!(h.len() > 100);
        // After warmup, every window of 4 admissions covers all 4
        // threads (cyclic order).
        let tail = &h[h.len() - 40..];
        for w in tail.chunks(4) {
            let distinct: std::collections::HashSet<_> = w.iter().collect();
            assert_eq!(distinct.len(), 4, "FIFO saturated order must cycle: {w:?}");
        }
    }

    #[test]
    fn cr_lock_restricts_circulation() {
        let mut sim = Simulation::new(MachineConfig::t5_socket());
        sim.add_lock(LockSpec {
            kind: LockKind::Cr {
                fairness: FairnessTrigger::new(1000, 7),
                cull_slack: 0,
            },
            wait: WaitMode::Spin,
        });
        for _ in 0..16 {
            sim.add_thread(Box::new(LockLoop {
                step: 0,
                cs: 1_000,
                ncs: 2_000,
            }));
        }
        let r = sim.run(0.002);
        let h = &r.admissions[0];
        assert!(h.len() > 200);
        let tail = &h[h.len() - 200..];
        let distinct: std::collections::HashSet<_> = tail.iter().collect();
        assert!(
            distinct.len() <= 8,
            "CR must restrict the circulating set: {} distinct",
            distinct.len()
        );
    }

    #[test]
    fn stp_waiters_park_and_are_counted() {
        // 8 threads x 5000-cycle CS: FIFO queue waits reach ~35k
        // cycles, beyond the 20k spin budget.
        let r = fifo_sim(8, 5_000, 1_000, WaitMode::SpinThenPark);
        assert!(r.voluntary_parks > 0, "FIFO queue waits exceed the budget");
        assert!(r.unpark_calls > 0);
    }

    #[test]
    fn pure_spin_never_parks() {
        let r = fifo_sim(8, 2_000, 1_000, WaitMode::Spin);
        assert_eq!(r.voluntary_parks, 0);
        assert_eq!(r.unpark_calls, 0);
    }

    #[test]
    fn memory_access_charges_hierarchy() {
        let mut sim = Simulation::new(MachineConfig::t5_socket());
        sim.add_lock(LockSpec {
            kind: LockKind::Null,
            wait: WaitMode::Spin,
        });
        struct Toucher {
            step: u8,
        }
        impl SimWorkload for Toucher {
            fn next_action(&mut self, ctx: &mut WorkloadCtx<'_>) -> Action {
                self.step = (self.step + 1) % 2;
                if self.step == 1 {
                    Action::Access(MemPattern::RandomIn {
                        base: layout::private_base(ctx.tid),
                        bytes: 64 * 1024,
                        count: 100,
                    })
                } else {
                    Action::EndIteration
                }
            }
        }
        sim.add_thread(Box::new(Toucher { step: 0 }));
        let r = sim.run(0.001);
        assert!(r.hierarchy.cycles > 0);
        assert!(r.hierarchy.l1_hits + r.hierarchy.dram_accesses > 0);
        assert!(r.total_iterations > 0);
    }

    #[test]
    fn oversubscription_slows_spin_locks() {
        let fast = fifo_sim_long(64, 500, 500, WaitMode::Spin);
        let slow = fifo_sim_long(256, 500, 500, WaitMode::Spin);
        assert!(
            slow.total_iterations * 5 < fast.total_iterations,
            "256 spinners on 128 CPUs must collapse: {} vs {}",
            slow.total_iterations,
            fast.total_iterations
        );
    }

    #[test]
    fn stp_beats_spin_when_oversubscribed() {
        let spin = fifo_sim_long(256, 500, 500, WaitMode::Spin);
        let stp = fifo_sim_long(256, 500, 500, WaitMode::SpinThenPark);
        assert!(
            stp.total_iterations * 2 > spin.total_iterations * 3,
            "parking must win at 2x oversubscription: stp={} spin={}",
            stp.total_iterations,
            spin.total_iterations
        );
    }

    #[test]
    fn work_accounting_integrates() {
        let r = fifo_sim(4, 1_000, 1_000, WaitMode::Spin);
        assert!(r.avg_working > 0.5 && r.avg_working <= 4.0);
        assert!(r.watts_above_idle > 0.0);
    }

    #[test]
    fn null_lock_scales_linearly() {
        let mut one = Simulation::new(MachineConfig::t5_socket());
        one.add_lock(LockSpec {
            kind: LockKind::Null,
            wait: WaitMode::Spin,
        });
        one.add_thread(Box::new(SpinLoop {
            phase: 0,
            cs: 500,
            ncs: 0,
        }));
        let r1 = one.run(0.001);

        let mut eight = Simulation::new(MachineConfig::t5_socket());
        eight.add_lock(LockSpec {
            kind: LockKind::Null,
            wait: WaitMode::Spin,
        });
        for _ in 0..8 {
            eight.add_thread(Box::new(SpinLoop {
                phase: 0,
                cs: 500,
                ncs: 0,
            }));
        }
        let r8 = eight.run(0.001);
        let ratio = r8.total_iterations as f64 / r1.total_iterations as f64;
        assert!(
            (6.0..=8.5).contains(&ratio),
            "null lock should scale ~linearly, ratio {ratio}"
        );
    }
}
