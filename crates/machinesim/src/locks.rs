//! Queue-level models of the evaluated lock admission policies.
//!
//! The simulator re-expresses each lock as a policy over an explicit
//! waiter queue, making the *same* decisions as the live algorithms in
//! the `malthus` crate — culling (one surplus waiter per release),
//! work-conserving reprovisioning, and the Bernoulli fairness trial —
//! via the shared `malthus::policy` module. What the simulator omits
//! is the memory-level mechanics (CAS races, chain links); what it
//! keeps is the admission order, which is what the paper's metrics
//! measure.

use std::collections::VecDeque;

use malthus::policy::{should_cull, should_reprovision, FairnessTrigger};

/// Simulator thread identifier.
pub type ThreadId = usize;

/// How waiters on this lock wait (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitMode {
    /// Unbounded polite spinning (`-S`).
    Spin,
    /// Spin for the machine's budget, then park (`-STP`).
    SpinThenPark,
    /// Park immediately.
    Park,
}

/// Which admission policy the lock uses.
#[derive(Debug)]
pub enum LockKind {
    /// Degenerate no-op lock (the paper's `null`): never blocks,
    /// provides no exclusion. Only valid for trivial workloads.
    Null,
    /// Strict-FIFO direct-handoff queue (classic MCS).
    Fifo,
    /// MCSCR: FIFO queue plus culling/reprovision/fairness editing.
    Cr {
        /// The Bernoulli fairness trial (default period 1000).
        fairness: FairnessTrigger,
        /// Hysteresis: extra waiters (beyond the paper's minimum of
        /// 2) required before culling fires. The live lock reacts to
        /// instantaneous queue shape on real hardware where timing
        /// variance is small; the discrete-event model sees coarser
        /// variance (batched wakeups), so a slack of 1 damps the
        /// cull/reprovision oscillation that would otherwise thrash
        /// threads through park/unpark. 0 reproduces the exact paper
        /// condition.
        cull_slack: usize,
    },
    /// LIFO-CR: stack admission with periodic eldest extraction.
    Lifo {
        /// The Bernoulli fairness trial.
        fairness: FairnessTrigger,
    },
}

/// CR activity counters (mirrors `malthus::CrStats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimLockStats {
    /// Surplus waiters moved to the passive list.
    pub culls: u64,
    /// Passive threads promoted on queue drain.
    pub reprovisions: u64,
    /// Fairness promotions of the eldest passive thread.
    pub fairness_grants: u64,
}

/// One simulated lock instance.
#[derive(Debug)]
pub struct SimLock {
    kind: LockKind,
    /// How its waiters wait.
    pub wait_mode: WaitMode,
    held: bool,
    /// Main queue; front = next in FIFO order.
    queue: VecDeque<ThreadId>,
    /// Passive list; front = most recently culled ("warm"), back =
    /// eldest.
    passive: VecDeque<ThreadId>,
    /// Admission history (thread ids, in grant order).
    admissions: Vec<u32>,
    stats: SimLockStats,
}

/// Result of an arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arrival {
    /// The lock was free; the arriver now holds it.
    Granted,
    /// The arriver joined the waiters.
    Enqueued,
}

impl SimLock {
    /// Creates a free lock.
    pub fn new(kind: LockKind, wait_mode: WaitMode) -> Self {
        SimLock {
            kind,
            wait_mode,
            held: false,
            queue: VecDeque::new(),
            passive: VecDeque::new(),
            admissions: Vec::new(),
            stats: SimLockStats::default(),
        }
    }

    /// Whether the lock is currently held.
    pub fn is_held(&self) -> bool {
        self.held
    }

    /// Number of threads waiting (main queue + passive list).
    pub fn waiters(&self) -> usize {
        self.queue.len() + self.passive.len()
    }

    /// Number of passivated threads.
    pub fn passive_len(&self) -> usize {
        self.passive.len()
    }

    /// The admission history so far.
    pub fn admissions(&self) -> &[u32] {
        &self.admissions
    }

    /// CR activity counters.
    pub fn stats(&self) -> SimLockStats {
        self.stats
    }

    /// A thread arrives at the lock.
    pub fn arrive(&mut self, t: ThreadId) -> Arrival {
        if matches!(self.kind, LockKind::Null) {
            // Degenerate: always grant, never track.
            self.admissions.push(t as u32);
            return Arrival::Granted;
        }
        if !self.held {
            debug_assert!(self.queue.is_empty() && self.passive.is_empty());
            self.held = true;
            self.admissions.push(t as u32);
            return Arrival::Granted;
        }
        match self.kind {
            LockKind::Lifo { .. } => self.queue.push_front(t),
            _ => self.queue.push_back(t),
        }
        Arrival::Enqueued
    }

    /// The holder releases; returns the next owner if any.
    ///
    /// For CR kinds this is where queue editing happens, mirroring the
    /// MCSCR unlock path (§4).
    pub fn release(&mut self) -> Option<ThreadId> {
        if matches!(self.kind, LockKind::Null) {
            return None;
        }
        debug_assert!(self.held, "release of an unheld SimLock");
        let next = match &mut self.kind {
            LockKind::Null => unreachable!(),
            LockKind::Fifo => self.queue.pop_front(),
            LockKind::Cr {
                fairness,
                cull_slack,
            } => {
                let cull_slack = *cull_slack;
                if !self.passive.is_empty() && fairness.fire() {
                    // Long-term fairness: the eldest passive thread is
                    // grafted in as the immediate successor.
                    self.stats.fairness_grants += 1;
                    self.passive.pop_back()
                } else if should_reprovision(self.queue.is_empty(), self.passive.len()) {
                    // Work conservation: promote the warm end.
                    self.stats.reprovisions += 1;
                    self.passive.pop_front()
                } else {
                    let succ = self.queue.pop_front();
                    if let Some(succ) = succ {
                        if should_cull(self.queue.len() + 1) && self.queue.len() > cull_slack {
                            // Surplus: passivate the longest waiter and
                            // grant the next one, exactly as MCSCR
                            // excises the first intermediate node.
                            self.passive.push_front(succ);
                            self.stats.culls += 1;
                            self.queue.pop_front()
                        } else {
                            Some(succ)
                        }
                    } else {
                        None
                    }
                }
            }
            LockKind::Lifo { fairness } => {
                if !self.queue.is_empty() && fairness.fire() {
                    self.stats.fairness_grants += 1;
                    self.queue.pop_back()
                } else {
                    self.queue.pop_front()
                }
            }
        };
        match next {
            Some(t) => {
                self.admissions.push(t as u32);
                Some(t)
            }
            None => {
                self.held = false;
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cr_lock(period: u64) -> SimLock {
        SimLock::new(
            LockKind::Cr {
                fairness: FairnessTrigger::new(period, 42),
                cull_slack: 0,
            },
            WaitMode::SpinThenPark,
        )
    }

    #[test]
    fn free_lock_grants_immediately() {
        let mut l = SimLock::new(LockKind::Fifo, WaitMode::Spin);
        assert_eq!(l.arrive(1), Arrival::Granted);
        assert!(l.is_held());
        assert_eq!(l.release(), None);
        assert!(!l.is_held());
    }

    #[test]
    fn fifo_grants_in_arrival_order() {
        let mut l = SimLock::new(LockKind::Fifo, WaitMode::Spin);
        l.arrive(0);
        assert_eq!(l.arrive(1), Arrival::Enqueued);
        l.arrive(2);
        l.arrive(3);
        assert_eq!(l.release(), Some(1));
        assert_eq!(l.release(), Some(2));
        assert_eq!(l.release(), Some(3));
        assert_eq!(l.release(), None);
        assert_eq!(l.admissions(), &[0, 1, 2, 3]);
    }

    #[test]
    fn lifo_grants_most_recent_first() {
        let mut l = SimLock::new(
            LockKind::Lifo {
                fairness: FairnessTrigger::new(1_000_000, 7),
            },
            WaitMode::Spin,
        );
        l.arrive(0);
        l.arrive(1);
        l.arrive(2);
        l.arrive(3);
        assert_eq!(l.release(), Some(3));
        assert_eq!(l.release(), Some(2));
        assert_eq!(l.release(), Some(1));
    }

    #[test]
    fn cr_culls_surplus_and_stays_work_conserving() {
        let mut l = cr_lock(1_000_000);
        l.arrive(0);
        l.arrive(1);
        l.arrive(2);
        l.arrive(3);
        // Queue [1, 2, 3]: surplus → cull 1, grant 2.
        assert_eq!(l.release(), Some(2));
        assert_eq!(l.passive_len(), 1);
        assert_eq!(l.stats().culls, 1);
        // Queue [3]: no surplus → grant 3.
        assert_eq!(l.release(), Some(3));
        // Queue empty, passive [1] → reprovision 1.
        assert_eq!(l.release(), Some(1));
        assert_eq!(l.stats().reprovisions, 1);
        assert_eq!(l.release(), None);
        assert!(!l.is_held());
    }

    #[test]
    fn cr_steady_state_acs_is_small() {
        // 8 threads; each grant is followed by a re-arrival (saturated
        // lock). After warmup the same couple of threads circulate.
        let mut l = cr_lock(1_000_000);
        assert_eq!(l.arrive(0), Arrival::Granted);
        for t in 1..8 {
            l.arrive(t);
        }
        let mut current = 0;
        for _ in 0..10_000 {
            let next = l.release().expect("work conserving under load");
            l.arrive(current); // previous owner circulates back
            current = next;
        }
        let history = l.admissions();
        let tail = &history[history.len() - 1000..];
        let distinct: std::collections::HashSet<_> = tail.iter().collect();
        assert!(
            distinct.len() <= 3,
            "steady-state ACS should be minimal, got {}",
            distinct.len()
        );
    }

    #[test]
    fn cr_fairness_promotes_eldest() {
        let mut l = cr_lock(1); // fires every release
        l.arrive(0);
        l.arrive(1);
        l.arrive(2);
        l.arrive(3);
        // First release: passive empty → normal path with cull of 1.
        assert_eq!(l.release(), Some(2));
        // Passive [1]; fairness fires → eldest (1) is granted.
        assert_eq!(l.release(), Some(1));
        assert_eq!(l.stats().fairness_grants, 1);
    }

    #[test]
    fn null_lock_never_blocks() {
        let mut l = SimLock::new(LockKind::Null, WaitMode::Spin);
        assert_eq!(l.arrive(0), Arrival::Granted);
        assert_eq!(l.arrive(1), Arrival::Granted);
        assert_eq!(l.release(), None);
        assert_eq!(l.admissions().len(), 2);
    }

    #[test]
    fn admissions_record_every_grant() {
        let mut l = cr_lock(1_000_000);
        l.arrive(0);
        for t in 1..5 {
            l.arrive(t);
        }
        let mut grants = 1; // thread 0's arrival grant
        while let Some(_t) = l.release() {
            grants += 1;
        }
        assert_eq!(l.admissions().len(), grants);
        assert_eq!(grants, 5);
    }
}
