//! Run reports: everything a figure harness needs from one run.

use malthus_cachesim::{CacheStats, HierarchyStats};
use malthus_metrics::{AdmissionLog, FairnessSummary};

use crate::locks::SimLockStats;

/// The outcome of one simulation run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Simulated measurement interval (seconds).
    pub sim_seconds: f64,
    /// Total completed iterations across all threads.
    pub total_iterations: u64,
    /// Iterations per thread (long-term fairness source data).
    pub per_thread_iterations: Vec<u64>,
    /// Admission history per lock.
    pub admissions: Vec<Vec<u32>>,
    /// CR activity per lock.
    pub lock_stats: Vec<SimLockStats>,
    /// Voluntary context switches (threads that parked).
    pub voluntary_parks: u64,
    /// Kernel unpark notifications issued.
    pub unpark_calls: u64,
    /// Time-averaged number of working (CS/NCS) threads.
    pub avg_working: f64,
    /// Time-averaged number of politely-spinning threads.
    pub avg_spinning: f64,
    /// Modeled power draw above idle.
    pub watts_above_idle: f64,
    /// Cache-hierarchy counters for the run.
    pub hierarchy: HierarchyStats,
    /// LLC counters including self/extrinsic classification.
    pub llc: CacheStats,
}

impl RunReport {
    /// Aggregate throughput in iterations per simulated second.
    pub fn throughput(&self) -> f64 {
        self.total_iterations as f64 / self.sim_seconds
    }

    /// Time-averaged on-CPU thread count (the paper's "CPU
    /// utilization 32x" notation).
    pub fn cpu_utilization(&self) -> f64 {
        self.avg_working + self.avg_spinning
    }

    /// Fairness summary for lock `i` (LWSS, MTTR from the admission
    /// history; Gini/RSTDDEV from per-thread iteration counts, as the
    /// paper computes them over completed work).
    pub fn fairness(&self, lock: usize) -> FairnessSummary {
        let log = AdmissionLog::from_history(self.admissions[lock].clone());
        let mut s = FairnessSummary::from_log(&log);
        // Long-term indices over completed work, not admissions.
        s.gini = malthus_metrics::gini_coefficient(&self.per_thread_iterations);
        s.rstddev = malthus_metrics::relative_stddev(&self.per_thread_iterations);
        s
    }

    /// LLC misses during the run (the paper's "L3 Misses" row).
    pub fn llc_misses(&self) -> u64 {
        self.llc.total_misses()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy() -> RunReport {
        RunReport {
            sim_seconds: 2.0,
            total_iterations: 1000,
            per_thread_iterations: vec![500, 500],
            admissions: vec![vec![0, 1, 0, 1]],
            lock_stats: vec![SimLockStats::default()],
            voluntary_parks: 3,
            unpark_calls: 2,
            avg_working: 1.5,
            avg_spinning: 0.5,
            watts_above_idle: 6.0,
            hierarchy: HierarchyStats::default(),
            llc: CacheStats::default(),
        }
    }

    #[test]
    fn throughput_divides_by_interval() {
        assert_eq!(dummy().throughput(), 500.0);
    }

    #[test]
    fn utilization_sums_working_and_spinning() {
        assert!((dummy().cpu_utilization() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fairness_uses_iterations_for_gini() {
        let f = dummy().fairness(0);
        assert_eq!(f.admissions, 4);
        assert!(f.gini < 1e-12, "equal work -> Gini 0");
    }
}
