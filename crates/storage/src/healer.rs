//! The background shard healer: turns read-only poisoning from a
//! life sentence into a fault *window*.
//!
//! A WAL failure poisons its shard read-only (see [`crate::sharded`])
//! because acking a write whose log record may not be durable would
//! break the recovery contract. Before this module that state was
//! permanent; the healer makes it recoverable: a single low-priority
//! thread scans the shards, and for each read-only one probes its WAL
//! — reopen the file layer, then fsync ([`ShardWal::heal_probe`]) —
//! with **capped, jittered exponential backoff** per shard. A probe
//! that succeeds flips the shard writable; one that fails doubles the
//! shard's backoff up to the cap, so a persistently broken disk costs
//! a bounded, tiny probe rate instead of a spin.
//!
//! Jitter (±25%, from a seedable xorshift stream) keeps a fleet of
//! servers that all lost the same disk from probing in lockstep — the
//! same thundering-herd hygiene as the KV client's connect backoff.
//!
//! [`ShardWal::heal_probe`]: crate::wal::ShardWal::heal_probe

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::sharded::ShardedKv;

/// Backoff policy (and determinism knob) for [`spawn_healer`].
#[derive(Debug, Clone, Copy)]
pub struct HealerConfig {
    /// First retry delay after a failed probe (and the delay before
    /// the *first* probe of a freshly poisoned shard is at most one
    /// tick, not this).
    pub initial_backoff_ms: u64,
    /// Backoff cap: a persistently failing shard is probed at least
    /// this often (± jitter), at most every `initial_backoff_ms`.
    pub max_backoff_ms: u64,
    /// Scan granularity: how often the healer wakes to look for
    /// read-only shards and due probes.
    pub tick_ms: u64,
    /// Seed for the jitter stream (any value; 0 is fixed up).
    pub seed: u64,
}

impl Default for HealerConfig {
    fn default() -> Self {
        HealerConfig {
            initial_backoff_ms: 50,
            max_backoff_ms: 2_000,
            tick_ms: 10,
            seed: 0x6d61_6c74_6875_7331, // "malthus1"
        }
    }
}

/// Applies ±25% jitter to `ms` from the xorshift state `rng`.
fn jittered(rng: &mut u64, ms: u64) -> u64 {
    *rng ^= *rng << 13;
    *rng ^= *rng >> 7;
    *rng ^= *rng << 17;
    let span = (ms / 2).max(1); // jitter range: [-25%, +25%] of ms
    ms - ms / 4 + *rng % span
}

/// Spawns the healer thread over `store`. It scans every `tick_ms`
/// for poisoned shards, probes the due ones, and exits promptly once
/// `stop` is set. Join the handle on shutdown.
///
/// Attempt/success counts land in the store's per-shard
/// `heal_attempts`/`heals` counters, so they flow into STATS, the
/// metrics registry (`kv_shard_heal_attempts_total`,
/// `kv_shard_heals_total`) and kvtop with no extra wiring.
pub fn spawn_healer(
    store: Arc<ShardedKv>,
    stop: Arc<AtomicBool>,
    cfg: HealerConfig,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("kv-healer".into())
        .spawn(move || run_healer(&store, &stop, cfg))
        .expect("spawn kv-healer")
}

fn run_healer(store: &ShardedKv, stop: &AtomicBool, cfg: HealerConfig) {
    let n = store.shard_count();
    let mut rng = if cfg.seed == 0 { 1 } else { cfg.seed };
    let mut backoff_ms = vec![cfg.initial_backoff_ms; n];
    let mut next_probe: Vec<Option<Instant>> = vec![None; n];
    while !stop.load(Ordering::Relaxed) {
        let now = Instant::now();
        for i in 0..n {
            if !store.shard_readonly(i) {
                // Healthy (or just healed): reset the shard's ladder
                // so the next poisoning starts from the bottom.
                backoff_ms[i] = cfg.initial_backoff_ms;
                next_probe[i] = None;
                continue;
            }
            match next_probe[i] {
                Some(due) if now < due => continue,
                _ => {}
            }
            if store.try_heal_shard(i) {
                backoff_ms[i] = cfg.initial_backoff_ms;
                next_probe[i] = None;
            } else {
                let delay = jittered(&mut rng, backoff_ms[i]);
                backoff_ms[i] = (backoff_ms[i] * 2).min(cfg.max_backoff_ms);
                next_probe[i] = Some(now + Duration::from_millis(delay));
            }
        }
        std::thread::sleep(Duration::from_millis(cfg.tick_ms));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::{FaultPlan, WalOptions};
    use std::sync::atomic::AtomicU64;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "malthus-healer-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn jitter_stays_within_a_quarter_band() {
        let mut rng = 42u64;
        for _ in 0..1_000 {
            let d = jittered(&mut rng, 100);
            assert!((75..125).contains(&d), "jittered(100) = {d}");
        }
    }

    #[test]
    fn healer_revives_a_poisoned_shard_within_its_backoff_budget() {
        let dir = temp_dir("revive");
        // Shard 0's first sync fails, everything after succeeds —
        // the single-fault window the healer exists for.
        let opts = WalOptions {
            faults: vec![(
                0,
                FaultPlan {
                    fail_sync_at: Some(0),
                    ..FaultPlan::default()
                },
            )],
            ..WalOptions::default()
        };
        let (kv, _) = ShardedKv::open_with(&dir, 2, 64, 64, opts).unwrap();
        let kv = Arc::new(kv);
        let key0 = (0..1_000u64).find(|&k| kv.router().route(k) == 0).unwrap();
        assert!(kv.put(key0, 1).is_err(), "first sync poisons shard 0");
        assert!(kv.shard_readonly(0));

        let stop = Arc::new(AtomicBool::new(false));
        let handle = spawn_healer(
            Arc::clone(&kv),
            Arc::clone(&stop),
            HealerConfig {
                initial_backoff_ms: 5,
                max_backoff_ms: 50,
                tick_ms: 2,
                seed: 7,
            },
        );
        let deadline = Instant::now() + Duration::from_secs(10);
        while kv.shard_readonly(0) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(!kv.shard_readonly(0), "healer did not revive shard 0");
        kv.put(key0, 2).expect("healed shard accepts writes");
        assert_eq!(kv.get(key0), Some(2));
        let stats = kv.stats();
        assert!(stats.heal_attempts() >= 1);
        assert_eq!(stats.heals(), 1);
        assert!(stats.readonly_rejects() >= 1, "the refusal was counted");
        stop.store(true, Ordering::Relaxed);
        handle.join().unwrap();
        // The write that failed its commit is absent, the healed one
        // durable.
        drop(kv);
        let (kv2, _) = ShardedKv::open(&dir, 2, 64, 64).unwrap();
        assert_eq!(kv2.get(key0), Some(2));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn direct_probe_heals_and_counts_only_real_attempts() {
        let dir = temp_dir("probe");
        let opts = WalOptions {
            faults: vec![(
                0,
                FaultPlan {
                    fail_sync_at: Some(0),
                    ..FaultPlan::default()
                },
            )],
            ..WalOptions::default()
        };
        let (kv, _) = ShardedKv::open_with(&dir, 1, 64, 64, opts).unwrap();
        assert!(kv.put(1, 1).is_err());
        assert!(kv.shard_readonly(0));
        // Direct probe: first succeeds (the injected failure was the
        // one-shot op 0), flips writable, and counts.
        assert!(kv.try_heal_shard(0));
        assert!(!kv.shard_readonly(0));
        assert!(kv.try_heal_shard(0), "healthy shard heals trivially");
        let s = kv.stats();
        assert_eq!(s.heal_attempts(), 1, "healthy-shard call is not an attempt");
        assert_eq!(s.heals(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
