//! Per-shard write-ahead logging with group commit.
//!
//! *Malthusian Locks* amortizes writer **admission** over batches:
//! `ShardedKv::execute_batch` executes a batch's per-shard write group
//! under one exclusive hold. This module amortizes **durability** over
//! the exact same boundary: the whole group is encoded into one
//! length-prefixed, CRC32-checksummed record, appended and fsynced
//! once ([`ShardWal::append_group`]) *before* the writes are applied
//! to the in-memory store. One admission, one fsync, `n` writes.
//!
//! # Record format
//!
//! All integers little-endian:
//!
//! ```text
//! [len: u32] [crc: u32] [payload: len bytes]
//! payload = [count: u32] [key: u64, value: u64] × count
//! ```
//!
//! `crc` covers the payload only. Replay ([`replay`]) walks records
//! until the first problem and recovers the valid prefix:
//!
//! * a record whose header or body runs past end-of-file is a **torn
//!   tail** — the expected shape after `kill -9` mid-append;
//! * a complete record whose checksum mismatches is **corruption**
//!   and counted in [`ReplayOutcome::bad_records`].
//!
//! Either way replay stops — bytes after the first bad record cannot
//! be trusted (a wrong length desynchronizes all framing after it) —
//! and the opener truncates the file back to the valid prefix so new
//! appends extend a well-formed log.
//!
//! # Fault injection
//!
//! The file layer is the [`WalIo`] trait: [`FileWalIo`] is the real
//! thing, [`FaultyWalIo`] wraps any `WalIo` and fails, short-writes,
//! or errors-on-fsync at the Nth operation per a [`FaultPlan`]. The
//! sharded store uses it to prove graceful degradation: an fsync
//! error poisons only that shard into read-only mode.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use malthus_metrics::LatencyHistogram;

/// Bytes of header before each record's payload (`len` + `crc`).
pub const RECORD_HEADER_BYTES: usize = 8;

/// Default log size past which reopening compacts the shard's log to
/// a single checkpoint record of its live pairs.
pub const DEFAULT_CHECKPOINT_BYTES: u64 = 1 << 20;

const CRC32_TABLE: [u32; 256] = crc32_table();

const fn crc32_table() -> [u32; 256] {
    // IEEE 802.3 reflected polynomial, the one zlib/`cksum -o3` use.
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE, reflected) of `bytes` — hand-rolled so the workspace
/// stays dependency-free. `crc32(b"123456789") == 0xCBF4_3926`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = u32::MAX;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Appends one encoded record for `pairs` to `out`.
///
/// # Panics
///
/// Panics if `pairs` is too large for the `u32` framing (more than
/// ~268M pairs — far beyond any wire batch).
pub fn encode_record(out: &mut Vec<u8>, pairs: &[(u64, u64)]) {
    let payload_len = 4 + 16 * pairs.len();
    assert!(
        u32::try_from(payload_len).is_ok() && u32::try_from(pairs.len()).is_ok(),
        "record too large for u32 framing"
    );
    out.reserve(RECORD_HEADER_BYTES + payload_len);
    let header_at = out.len();
    out.extend_from_slice(&(payload_len as u32).to_le_bytes());
    out.extend_from_slice(&[0u8; 4]); // crc, patched below
    out.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
    for &(k, v) in pairs {
        out.extend_from_slice(&k.to_le_bytes());
        out.extend_from_slice(&v.to_le_bytes());
    }
    let crc = crc32(&out[header_at + RECORD_HEADER_BYTES..]);
    out[header_at + 4..header_at + RECORD_HEADER_BYTES].copy_from_slice(&crc.to_le_bytes());
}

/// What [`replay`] recovered from one shard's log bytes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// Recovered `(key, value)` pairs in append order (apply in order;
    /// later duplicates win, as with sequential puts).
    pub pairs: Vec<(u64, u64)>,
    /// Whole records recovered.
    pub records: u64,
    /// Byte length of the valid prefix — the truncation point.
    pub valid_bytes: u64,
    /// The log ended mid-record (expected after a crash mid-append).
    pub torn_tail: bool,
    /// Complete records rejected for a checksum/shape mismatch.
    /// Replay stops at the first one, so this is 0 or 1 per log.
    pub bad_records: u64,
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"))
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"))
}

/// Walks `bytes` as a record stream, recovering the valid prefix.
///
/// Never panics on malformed input: a header or body running past the
/// end is a torn tail; a complete record whose CRC (or internal pair
/// count) disagrees is a bad record. Both stop the walk — see the
/// module docs for why nothing after the first bad record is used.
pub fn replay(bytes: &[u8]) -> ReplayOutcome {
    let mut out = ReplayOutcome::default();
    let mut at = 0usize;
    while at < bytes.len() {
        if bytes.len() - at < RECORD_HEADER_BYTES {
            out.torn_tail = true;
            break;
        }
        let len = read_u32(bytes, at) as usize;
        let crc = read_u32(bytes, at + 4);
        let body_at = at + RECORD_HEADER_BYTES;
        if len < 4 {
            // Impossible frame (payload must hold at least its count):
            // corrupted length field.
            out.bad_records += 1;
            break;
        }
        if bytes.len() - body_at < len {
            // The body runs past EOF. A corrupted length field looks
            // identical to a crash mid-append; treat it as torn — the
            // recovery action (truncate to the valid prefix) is the
            // same either way.
            out.torn_tail = true;
            break;
        }
        let body = &bytes[body_at..body_at + len];
        if crc32(body) != crc {
            out.bad_records += 1;
            break;
        }
        let count = read_u32(body, 0) as usize;
        if len != 4 + 16 * count {
            out.bad_records += 1;
            break;
        }
        for i in 0..count {
            let k = read_u64(body, 4 + 16 * i);
            let v = read_u64(body, 4 + 16 * i + 8);
            out.pairs.push((k, v));
        }
        out.records += 1;
        at = body_at + len;
        out.valid_bytes = at as u64;
    }
    out
}

/// The WAL's file layer: sequential appends plus a durability point.
///
/// `Send + Sync` because a [`ShardWal`] lives inside the shard state
/// guarded by the shard's `RwCrMutex`, whose `Sync` impl requires it.
/// Both methods take `&mut self`: the caller always holds the shard's
/// exclusive lock, so implementations need no internal locking.
pub trait WalIo: Send + Sync {
    /// Appends `bytes` at the end of the log. Must write all of
    /// `bytes` or return an error (no silent short writes).
    fn append(&mut self, bytes: &[u8]) -> io::Result<()>;
    /// Makes everything appended so far durable (fsync).
    fn sync(&mut self) -> io::Result<()>;
    /// Attempts to restore a failed layer — the shard healer's probe
    /// calls this before its fsync probe. The file layer reopens its
    /// fd (a failed fsync may have latched an error flag the kernel
    /// will never clear on that fd); layers with nothing to restore
    /// keep the default no-op.
    fn reopen(&mut self) -> io::Result<()> {
        Ok(())
    }
    /// Shrinks the log to `len` bytes — the healer's tail amputation:
    /// a commit that failed mid-way (append landed, fsync refused; or
    /// a torn short write) leaves un-acked bytes past the last
    /// committed record, and healing without cutting them off would
    /// let refused writes resurrect on the next replay. Layers without
    /// a length keep the default no-op.
    fn truncate(&mut self, _len: u64) -> io::Result<()> {
        Ok(())
    }
}

/// The real file layer: `write_all` + `sync_data`.
#[derive(Debug)]
pub struct FileWalIo {
    file: File,
    /// Where the log lives, when known — enables [`WalIo::reopen`].
    path: Option<PathBuf>,
}

impl FileWalIo {
    /// Wraps an append-positioned file (no path: `reopen` is a
    /// no-op).
    pub fn new(file: File) -> Self {
        FileWalIo { file, path: None }
    }

    /// Wraps an append-positioned file that lives at `path`, so the
    /// healer's [`WalIo::reopen`] can swap in a fresh fd.
    pub fn with_path(file: File, path: PathBuf) -> Self {
        FileWalIo {
            file,
            path: Some(path),
        }
    }
}

impl WalIo for FileWalIo {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.file.write_all(bytes)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    fn reopen(&mut self) -> io::Result<()> {
        if let Some(path) = &self.path {
            self.file = OpenOptions::new().append(true).open(path)?;
        }
        Ok(())
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        // Safe under O_APPEND: every subsequent append targets the
        // file's (new) end, not a remembered offset.
        self.file.set_len(len)
    }
}

/// A [`WalIo`] adapter consulting the process-global
/// [`malthus_fault`] plan on every operation: fsync failures
/// (`storage.fsync`), ENOSPC-style append failures (`storage.enospc`,
/// nothing written), and torn short writes (`storage.short_write`).
/// Wrapped onto every shard's file layer by `ShardedKv::open_with`
/// when a plan arms any storage site.
#[derive(Debug)]
pub struct ChaosWalIo<W> {
    inner: W,
}

impl<W: WalIo> ChaosWalIo<W> {
    /// Wraps `inner`; faults fire per the installed global plan.
    pub fn new(inner: W) -> Self {
        ChaosWalIo { inner }
    }
}

impl<W: WalIo> WalIo for ChaosWalIo<W> {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        if malthus_fault::fire(malthus_fault::Site::StorageEnospc) {
            return Err(io::Error::other("injected ENOSPC: no space left on device"));
        }
        if malthus_fault::fire(malthus_fault::Site::StorageShortWrite) {
            self.inner.append(&bytes[..bytes.len() / 2])?;
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "injected short write",
            ));
        }
        self.inner.append(bytes)
    }

    fn sync(&mut self) -> io::Result<()> {
        if malthus_fault::fire(malthus_fault::Site::StorageFsync) {
            return Err(io::Error::other("injected fsync failure"));
        }
        self.inner.sync()
    }

    fn reopen(&mut self) -> io::Result<()> {
        self.inner.reopen()
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.inner.truncate(len)
    }
}

/// Which operations a [`FaultyWalIo`] sabotages. Counters are 0-based:
/// `fail_sync_at: Some(0)` fails the very first sync.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultPlan {
    /// Fail the Nth append outright (nothing written).
    pub fail_append_at: Option<u64>,
    /// Write only half the bytes of the Nth append, then error — the
    /// torn-write shape a crash mid-`write` leaves behind.
    pub short_append_at: Option<u64>,
    /// Fail the Nth sync (bytes may be in the page cache but are not
    /// durable).
    pub fail_sync_at: Option<u64>,
}

/// A [`WalIo`] wrapper that injects faults per a [`FaultPlan`].
#[derive(Debug)]
pub struct FaultyWalIo<W> {
    inner: W,
    plan: FaultPlan,
    appends: u64,
    syncs: u64,
}

impl<W: WalIo> FaultyWalIo<W> {
    /// Wraps `inner`, sabotaging per `plan`.
    pub fn new(inner: W, plan: FaultPlan) -> Self {
        FaultyWalIo {
            inner,
            plan,
            appends: 0,
            syncs: 0,
        }
    }
}

impl<W: WalIo> WalIo for FaultyWalIo<W> {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        let n = self.appends;
        self.appends += 1;
        if self.plan.fail_append_at == Some(n) {
            return Err(io::Error::other("injected append failure"));
        }
        if self.plan.short_append_at == Some(n) {
            self.inner.append(&bytes[..bytes.len() / 2])?;
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "injected short write",
            ));
        }
        self.inner.append(bytes)
    }

    fn sync(&mut self) -> io::Result<()> {
        let n = self.syncs;
        self.syncs += 1;
        if self.plan.fail_sync_at == Some(n) {
            return Err(io::Error::other("injected fsync failure"));
        }
        self.inner.sync()
    }

    fn reopen(&mut self) -> io::Result<()> {
        self.inner.reopen()
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.inner.truncate(len)
    }
}

/// One shard's write-ahead log: group-commit appends over a [`WalIo`].
///
/// Not internally synchronized — it lives inside the shard state
/// behind the shard's exclusive lock, the same hold that serializes
/// the writes it logs. The counters are plain `u64`s readable by
/// stats snapshots holding the *shared* lock (readers exclude the
/// writer, so no torn reads).
pub struct ShardWal {
    io: Box<dyn WalIo>,
    buf: Vec<u8>,
    appends: u64,
    syncs: u64,
    bytes: u64,
    /// Byte length of the committed (acked-durable) prefix of the log:
    /// the on-disk valid prefix at open plus every group committed
    /// since. Anything past it is residue of a failed commit — an
    /// append whose fsync was refused, or a torn short write — and is
    /// amputated by [`ShardWal::heal_probe`] before the shard is
    /// flipped writable, so a refused write can never resurrect on
    /// replay.
    committed_len: u64,
    /// Shard id reported in flight-recorder events.
    shard: u64,
    /// Shared fsync-latency histogram, when an observer is attached.
    sync_hist: Option<Arc<LatencyHistogram>>,
}

impl std::fmt::Debug for ShardWal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardWal")
            .field("appends", &self.appends)
            .field("syncs", &self.syncs)
            .field("bytes", &self.bytes)
            .finish_non_exhaustive()
    }
}

impl ShardWal {
    /// Wraps an append-positioned file layer.
    pub fn new(io: Box<dyn WalIo>) -> Self {
        ShardWal {
            io,
            buf: Vec::new(),
            appends: 0,
            syncs: 0,
            bytes: 0,
            committed_len: 0,
            shard: 0,
            sync_hist: None,
        }
    }

    /// Declares the committed prefix already on disk when the log was
    /// opened over a pre-existing file (the recovered valid byte
    /// length, or the file length after a checkpoint rewrite). Without
    /// this, a heal probe would truncate the replayed prefix away.
    pub fn set_committed_len(&mut self, len: u64) {
        self.committed_len = len;
    }

    /// Attaches an observer: flight-recorder events carry `shard` as
    /// their shard id and every fsync latency is recorded into
    /// `sync_hist` (typically one histogram shared by all shards).
    pub fn set_observer(&mut self, shard: u64, sync_hist: Arc<LatencyHistogram>) {
        self.shard = shard;
        self.sync_hist = Some(sync_hist);
    }

    /// Group commit: encodes `pairs` as **one** record, appends it,
    /// and fsyncs **once**. This is the durability point — when it
    /// returns `Ok`, the whole group survives `kill -9`. Called with
    /// the shard's exclusive lock held, so fsync cost amortizes over
    /// the group exactly as the lock amortizes writer admission.
    ///
    /// No-op for an empty group.
    pub fn append_group(&mut self, pairs: &[(u64, u64)]) -> io::Result<()> {
        self.append_group_span(pairs, &mut malthus_obs::SpanContext::detached())
    }

    /// [`ShardWal::append_group`] with span tracing: the group's fsync
    /// duration is also folded into `span`'s `wal_fsync` stage (the
    /// one stage an active batch span cannot observe from outside the
    /// shard lock).
    pub fn append_group_span(
        &mut self,
        pairs: &[(u64, u64)],
        span: &mut malthus_obs::SpanContext,
    ) -> io::Result<()> {
        if pairs.is_empty() {
            return Ok(());
        }
        self.buf.clear();
        encode_record(&mut self.buf, pairs);
        self.io.append(&self.buf)?;
        malthus_obs::record(
            malthus_obs::EventKind::WalAppend,
            self.shard,
            self.buf.len() as u64,
        );
        let sync_start = Instant::now();
        self.io.sync()?;
        let sync_ns = u64::try_from(sync_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if let Some(hist) = &self.sync_hist {
            hist.record_ns(sync_ns);
        }
        if span.is_active() {
            span.add(malthus_obs::Stage::WalFsync, sync_ns);
        }
        malthus_obs::record(malthus_obs::EventKind::WalFsync, self.shard, sync_ns);
        self.appends += 1;
        self.syncs += 1;
        self.bytes += self.buf.len() as u64;
        self.committed_len += self.buf.len() as u64;
        Ok(())
    }

    /// The shard healer's durability probe: reopens the file layer
    /// (a failed fsync may have latched a per-fd error flag),
    /// truncates away any un-committed tail a failed commit left
    /// behind (a refused-but-appended record, or a torn short write —
    /// either would resurrect or corrupt on the next replay), and
    /// fsyncs, without appending anything. `Ok` means the log can
    /// take durable writes again. Not counted in
    /// [`ShardWal::syncs`] — that counter means group commits.
    pub fn heal_probe(&mut self) -> io::Result<()> {
        self.io.reopen()?;
        self.io.truncate(self.committed_len)?;
        self.io.sync()
    }

    /// The graceful-shutdown final fsync: makes everything appended
    /// so far durable without appending. Like [`ShardWal::heal_probe`]
    /// but without the reopen (the fd is presumed healthy on the
    /// graceful path) and likewise uncounted.
    pub fn final_sync(&mut self) -> io::Result<()> {
        self.io.sync()
    }

    /// Group records committed.
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// Fsyncs issued (== appends: one per group commit).
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    /// Bytes appended since open (excludes the replayed prefix).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

/// What [`open_shard_log`] found and did for one shard.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardRecovery {
    /// Whole records replayed.
    pub records: u64,
    /// `(key, value)` pairs replayed.
    pub pairs: u64,
    /// Byte length of the valid prefix found on disk.
    pub valid_bytes: u64,
    /// The log ended mid-record (normal after a crash).
    pub torn_tail: bool,
    /// Records rejected for checksum/shape mismatch (0 or 1).
    pub bad_records: u64,
    /// The log was compacted to a single checkpoint record.
    pub checkpointed: bool,
}

/// Per-shard [`ShardRecovery`] reports plus aggregation helpers, as
/// returned by `ShardedKv::open`.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// One report per shard, index = shard id.
    pub per_shard: Vec<ShardRecovery>,
    /// The previous process stamped the clean-shutdown marker (and
    /// this open consumed it) — see [`take_clean_shutdown`].
    pub clean_marker: bool,
}

impl RecoveryReport {
    /// Total records replayed across shards.
    pub fn records(&self) -> u64 {
        self.per_shard.iter().map(|s| s.records).sum()
    }

    /// Total pairs replayed across shards.
    pub fn pairs(&self) -> u64 {
        self.per_shard.iter().map(|s| s.pairs).sum()
    }

    /// Shards whose log ended mid-record.
    pub fn torn_tails(&self) -> usize {
        self.per_shard.iter().filter(|s| s.torn_tail).count()
    }

    /// Total checksum-rejected records across shards. Non-zero means
    /// data past the rejection point was lost — worth a warning.
    pub fn bad_records(&self) -> u64 {
        self.per_shard.iter().map(|s| s.bad_records).sum()
    }

    /// Shards whose log was compacted to a checkpoint on open.
    pub fn checkpointed(&self) -> usize {
        self.per_shard.iter().filter(|s| s.checkpointed).count()
    }

    /// No torn tails and no bad records: the previous shutdown left
    /// every log whole.
    pub fn clean(&self) -> bool {
        self.torn_tails() == 0 && self.bad_records() == 0
    }
}

/// What [`open_shard_log`] yields: the replayed `(key, value)` pairs
/// in append order, the append-positioned log file, and the shard's
/// recovery report.
pub type OpenedShardLog = (Vec<(u64, u64)>, File, ShardRecovery);

/// Opens (creating if absent) one shard's log, replaying its valid
/// prefix.
///
/// Recovery actions, in order:
///
/// 1. replay the bytes on disk ([`replay`]);
/// 2. if the valid prefix exceeds `checkpoint_bytes`, rewrite the log
///    as a single record of the live (deduplicated) pairs — written
///    to a temp file, fsynced, then atomically `rename`d over the log
///    so a crash mid-checkpoint leaves the old log intact;
/// 3. otherwise truncate any torn/corrupt suffix so new appends
///    extend a well-formed log.
///
/// Returns the replayed pairs (apply in order), the append-positioned
/// file, and the per-shard recovery report.
pub fn open_shard_log(path: &Path, checkpoint_bytes: u64) -> io::Result<OpenedShardLog> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let outcome = replay(&bytes);
    let mut recovery = ShardRecovery {
        records: outcome.records,
        pairs: outcome.pairs.len() as u64,
        valid_bytes: outcome.valid_bytes,
        torn_tail: outcome.torn_tail,
        bad_records: outcome.bad_records,
        checkpointed: false,
    };
    // Compact once the surviving prefix is large enough: replaying N
    // overwrites of the same keys forever would make reopen cost grow
    // without bound. More than one record, else compaction would
    // rewrite an already-compact log on every open.
    if outcome.valid_bytes > checkpoint_bytes && outcome.records > 1 {
        let live: std::collections::BTreeMap<u64, u64> = outcome.pairs.iter().copied().collect();
        let live_pairs: Vec<(u64, u64)> = live.into_iter().collect();
        let mut checkpoint = Vec::new();
        encode_record(&mut checkpoint, &live_pairs);
        let tmp = tmp_sibling(path);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&checkpoint)?;
            f.sync_data()?;
        }
        fs::rename(&tmp, path)?;
        sync_parent_dir(path);
        recovery.checkpointed = true;
        let file = OpenOptions::new().append(true).open(path)?;
        return Ok((live_pairs, file, recovery));
    }
    let file = OpenOptions::new().create(true).append(true).open(path)?;
    if bytes.len() as u64 > outcome.valid_bytes {
        // Drop the torn/corrupt suffix; appends (append mode always
        // writes at current EOF) then extend the valid prefix.
        file.set_len(outcome.valid_bytes)?;
    }
    Ok((outcome.pairs, file, recovery))
}

fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "wal".into());
    name.push(".tmp");
    path.with_file_name(name)
}

/// Best-effort fsync of `path`'s parent directory so a rename is
/// durable. Errors are ignored: some filesystems refuse directory
/// fsync, and the fallback (rename durable at the next full sync) is
/// acceptable for a checkpoint — the pre-checkpoint log contents were
/// themselves durable.
fn sync_parent_dir(path: &Path) {
    if let Some(parent) = path.parent() {
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_data();
        }
    }
}

/// Verifies (creating on first open) the data directory's `MANIFEST`,
/// which pins the shard count: logs are per-shard and keys are
/// hash-routed, so reopening with a different count would replay keys
/// onto shards that will never serve them.
pub fn check_manifest(dir: &Path, shards: usize) -> io::Result<()> {
    let path = dir.join("MANIFEST");
    match fs::read_to_string(&path) {
        Ok(text) => {
            let recorded = text
                .lines()
                .find_map(|l| l.strip_prefix("shards "))
                .and_then(|n| n.trim().parse::<usize>().ok());
            match recorded {
                Some(n) if n == shards => Ok(()),
                Some(n) => Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "data dir {} was created with {n} shards, reopened with {shards}",
                        dir.display()
                    ),
                )),
                None => Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("malformed MANIFEST in {}", dir.display()),
                )),
            }
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            fs::write(&path, format!("malthus-wal v1\nshards {shards}\n"))?;
            sync_parent_dir(&path);
            Ok(())
        }
        Err(e) => Err(e),
    }
}

/// The MANIFEST line a graceful shutdown stamps after its final group
/// fsync. Its *presence* on the next open means the previous process
/// exited through the drain path; openers consume it immediately
/// ([`take_clean_shutdown`]), so a later crash cannot inherit it.
pub const CLEAN_SHUTDOWN_MARKER: &str = "clean-shutdown";

fn rewrite_manifest(dir: &Path, text: &str) -> io::Result<()> {
    // Same tmp + fsync + rename discipline as a checkpoint: a crash
    // mid-rewrite must never corrupt the `shards` pin.
    let path = dir.join("MANIFEST");
    let tmp = tmp_sibling(&path);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_data()?;
    }
    fs::rename(&tmp, &path)?;
    sync_parent_dir(&path);
    Ok(())
}

/// Stamps the [`CLEAN_SHUTDOWN_MARKER`] into `dir`'s MANIFEST —
/// called by the graceful-shutdown path *after* the final group
/// fsync. Idempotent.
pub fn stamp_clean_shutdown(dir: &Path) -> io::Result<()> {
    let mut text = fs::read_to_string(dir.join("MANIFEST"))?;
    if text.lines().any(|l| l.trim() == CLEAN_SHUTDOWN_MARKER) {
        return Ok(());
    }
    if !text.ends_with('\n') {
        text.push('\n');
    }
    text.push_str(CLEAN_SHUTDOWN_MARKER);
    text.push('\n');
    rewrite_manifest(dir, &text)
}

/// Reads **and clears** the clean-shutdown marker: returns whether
/// the previous process shut down gracefully, and rewrites the
/// MANIFEST without the marker so a crash of *this* process reports
/// unclean. A missing MANIFEST (fresh dir) reads as `false`.
pub fn take_clean_shutdown(dir: &Path) -> io::Result<bool> {
    let text = match fs::read_to_string(dir.join("MANIFEST")) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(false),
        Err(e) => return Err(e),
    };
    if !text.lines().any(|l| l.trim() == CLEAN_SHUTDOWN_MARKER) {
        return Ok(false);
    }
    let mut kept = String::with_capacity(text.len());
    for line in text.lines() {
        if line.trim() != CLEAN_SHUTDOWN_MARKER {
            kept.push_str(line);
            kept.push('\n');
        }
    }
    rewrite_manifest(dir, &kept)?;
    Ok(true)
}

/// Per-store durability options for `ShardedKv::open_with`.
#[derive(Debug, Clone, Default)]
pub struct WalOptions {
    /// Log size past which reopening compacts to a checkpoint record;
    /// 0 means [`DEFAULT_CHECKPOINT_BYTES`].
    pub checkpoint_bytes: u64,
    /// Fault plans keyed by shard index — those shards' file layers
    /// are wrapped in [`FaultyWalIo`]. Empty in production; tests use
    /// it to prove readonly degradation stays per-shard.
    pub faults: Vec<(usize, FaultPlan)>,
}

impl WalOptions {
    /// The effective checkpoint threshold.
    pub fn checkpoint_threshold(&self) -> u64 {
        if self.checkpoint_bytes == 0 {
            DEFAULT_CHECKPOINT_BYTES
        } else {
            self.checkpoint_bytes
        }
    }
}

/// An in-memory [`WalIo`] for unit tests (and a handy crash
/// simulator: clone the buffer at any point and [`replay`] it).
#[derive(Debug, Default)]
pub struct VecWalIo {
    /// Everything appended so far.
    pub bytes: Vec<u8>,
    /// Syncs issued.
    pub syncs: u64,
}

impl WalIo for VecWalIo {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.bytes.extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        self.syncs += 1;
        Ok(())
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.bytes
            .truncate(usize::try_from(len).unwrap_or(usize::MAX));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_ieee_reference_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_then_replay_round_trips() {
        let pairs = vec![(1u64, 10u64), (2, 20), (u64::MAX, 0)];
        let mut buf = Vec::new();
        encode_record(&mut buf, &pairs);
        encode_record(&mut buf, &[(7, 70)]);
        let out = replay(&buf);
        assert_eq!(out.records, 2);
        assert_eq!(out.pairs, vec![(1, 10), (2, 20), (u64::MAX, 0), (7, 70)]);
        assert_eq!(out.valid_bytes, buf.len() as u64);
        assert!(!out.torn_tail);
        assert_eq!(out.bad_records, 0);
    }

    #[test]
    fn replay_of_empty_log_is_empty_and_clean() {
        let out = replay(&[]);
        assert_eq!(out, ReplayOutcome::default());
    }

    #[test]
    fn torn_tail_recovers_the_whole_prefix() {
        let mut buf = Vec::new();
        encode_record(&mut buf, &[(1, 10)]);
        let whole = buf.len();
        encode_record(&mut buf, &[(2, 20)]);
        // Chop the second record anywhere: header-only, mid-body.
        for cut in [whole + 3, whole + RECORD_HEADER_BYTES, buf.len() - 1] {
            let out = replay(&buf[..cut]);
            assert!(out.torn_tail, "cut at {cut}");
            assert_eq!(out.records, 1, "cut at {cut}");
            assert_eq!(out.pairs, vec![(1, 10)], "cut at {cut}");
            assert_eq!(out.valid_bytes, whole as u64, "cut at {cut}");
            assert_eq!(out.bad_records, 0, "cut at {cut}");
        }
    }

    #[test]
    fn checksum_mismatch_stops_replay_and_counts() {
        let mut buf = Vec::new();
        encode_record(&mut buf, &[(1, 10)]);
        let first = buf.len();
        encode_record(&mut buf, &[(2, 20)]);
        encode_record(&mut buf, &[(3, 30)]);
        // Flip one payload byte of the middle record.
        buf[first + RECORD_HEADER_BYTES + 5] ^= 0xFF;
        let out = replay(&buf);
        assert_eq!(out.bad_records, 1);
        assert_eq!(out.records, 1, "replay stops at the corruption");
        assert_eq!(out.pairs, vec![(1, 10)]);
        assert_eq!(out.valid_bytes, first as u64);
        assert!(!out.torn_tail);
    }

    #[test]
    fn garbage_length_field_is_survived() {
        // A corrupted length pointing past EOF → torn tail, never a
        // panic or an allocation of the bogus size.
        let mut buf = Vec::new();
        encode_record(&mut buf, &[(1, 10)]);
        let first = buf.len();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&[0u8; 12]);
        let out = replay(&buf);
        assert!(out.torn_tail);
        assert_eq!(out.valid_bytes, first as u64);
        // And a length too small to hold its own count → bad record.
        let mut buf2 = Vec::new();
        buf2.extend_from_slice(&2u32.to_le_bytes());
        buf2.extend_from_slice(&[0u8; 6]);
        assert_eq!(replay(&buf2).bad_records, 1);
    }

    #[test]
    fn group_commit_syncs_once_per_group() {
        let mut wal = ShardWal::new(Box::<VecWalIo>::default());
        wal.append_group(&[(1, 1), (2, 2), (3, 3)]).unwrap();
        wal.append_group(&[]).unwrap(); // no-op
        wal.append_group(&[(4, 4)]).unwrap();
        assert_eq!(wal.appends(), 2);
        assert_eq!(wal.syncs(), 2, "one fsync per non-empty group");
    }

    #[test]
    fn faulty_io_fails_the_nth_sync_only() {
        let plan = FaultPlan {
            fail_sync_at: Some(1),
            ..FaultPlan::default()
        };
        let mut wal = ShardWal::new(Box::new(FaultyWalIo::new(VecWalIo::default(), plan)));
        wal.append_group(&[(1, 1)]).unwrap();
        assert!(wal.append_group(&[(2, 2)]).is_err(), "second sync fails");
        assert_eq!(wal.syncs(), 1, "failed commit not counted");
    }

    #[test]
    fn faulty_io_short_write_leaves_a_torn_record() {
        let plan = FaultPlan {
            short_append_at: Some(1),
            ..FaultPlan::default()
        };
        let mut io = FaultyWalIo::new(VecWalIo::default(), plan);
        let mut rec = Vec::new();
        encode_record(&mut rec, &[(1, 10)]);
        io.append(&rec).unwrap();
        let mut rec2 = Vec::new();
        encode_record(&mut rec2, &[(2, 20)]);
        assert!(io.append(&rec2).is_err());
        // What "hit disk" replays as exactly one record + torn tail.
        let out = replay(&io.inner.bytes);
        assert_eq!(out.records, 1);
        assert!(out.torn_tail);
    }

    fn temp_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "malthus-wal-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn open_truncates_a_torn_suffix_and_appends_cleanly() {
        let dir = temp_dir("torn");
        let path = dir.join("shard-0.wal");
        let mut buf = Vec::new();
        encode_record(&mut buf, &[(1, 10)]);
        let valid = buf.len();
        encode_record(&mut buf, &[(2, 20)]);
        fs::write(&path, &buf[..buf.len() - 3]).unwrap();

        let (pairs, file, rec) = open_shard_log(&path, u64::MAX).unwrap();
        assert_eq!(pairs, vec![(1, 10)]);
        assert!(rec.torn_tail);
        assert_eq!(rec.valid_bytes, valid as u64);
        // New appends extend the *valid* prefix.
        let mut wal = ShardWal::new(Box::new(FileWalIo::new(file)));
        wal.append_group(&[(3, 30)]).unwrap();
        drop(wal);
        let (pairs2, _f, rec2) = open_shard_log(&path, u64::MAX).unwrap();
        assert_eq!(pairs2, vec![(1, 10), (3, 30)]);
        assert!(!rec2.torn_tail);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_checkpoints_past_the_threshold() {
        let dir = temp_dir("ckpt");
        let path = dir.join("shard-0.wal");
        {
            let (_, file, _) = open_shard_log(&path, u64::MAX).unwrap();
            let mut wal = ShardWal::new(Box::new(FileWalIo::new(file)));
            for i in 0..50u64 {
                wal.append_group(&[(i % 5, i)]).unwrap();
            }
        }
        let before = fs::metadata(&path).unwrap().len();
        let (pairs, _f, rec) = open_shard_log(&path, 64).unwrap();
        assert!(rec.checkpointed);
        assert_eq!(rec.records, 50);
        // Compacted to the 5 live keys, newest values.
        assert_eq!(pairs.len(), 5);
        for (k, v) in &pairs {
            assert_eq!(v % 5, *k, "live value for key {k}");
        }
        let after = fs::metadata(&path).unwrap().len();
        assert!(
            after < before,
            "checkpoint must shrink: {after} >= {before}"
        );
        // Reopen again: below threshold now (single record).
        let (pairs2, _f2, rec2) = open_shard_log(&path, 64).unwrap();
        assert!(!rec2.checkpointed);
        assert_eq!(pairs2, pairs);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn clean_shutdown_marker_stamps_and_takes_once() {
        let dir = temp_dir("marker");
        check_manifest(&dir, 2).unwrap();
        assert!(!take_clean_shutdown(&dir).unwrap(), "fresh dir is unclean");
        stamp_clean_shutdown(&dir).unwrap();
        stamp_clean_shutdown(&dir).unwrap(); // idempotent
        check_manifest(&dir, 2).unwrap(); // shard pin survives the marker
        assert!(take_clean_shutdown(&dir).unwrap());
        assert!(!take_clean_shutdown(&dir).unwrap(), "marker is consumed");
        check_manifest(&dir, 2).unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn heal_probe_reopens_and_syncs_a_real_file() {
        let dir = temp_dir("heal");
        let path = dir.join("shard-0.wal");
        let (_, file, _) = open_shard_log(&path, u64::MAX).unwrap();
        let mut wal = ShardWal::new(Box::new(FileWalIo::with_path(file, path.clone())));
        wal.append_group(&[(1, 10)]).unwrap();
        wal.heal_probe().unwrap();
        wal.final_sync().unwrap();
        // Appends keep extending the log through the reopened fd.
        wal.append_group(&[(2, 20)]).unwrap();
        assert_eq!(wal.syncs(), 2, "probe and final sync are uncounted");
        drop(wal);
        let (pairs, _f, _rec) = open_shard_log(&path, u64::MAX).unwrap();
        assert_eq!(pairs, vec![(1, 10), (2, 20)]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn heal_probe_amputates_the_refused_record_so_it_cannot_resurrect() {
        let dir = temp_dir("amputate");
        let path = dir.join("shard-0.wal");
        // Seed one committed record so the probe must preserve a
        // non-empty prefix, not just truncate to zero.
        let (_, file, _) = open_shard_log(&path, u64::MAX).unwrap();
        let mut wal = ShardWal::new(Box::new(FileWalIo::with_path(file, path.clone())));
        wal.append_group(&[(1, 10)]).unwrap();
        drop(wal);

        let (pairs, file, rec) = open_shard_log(&path, u64::MAX).unwrap();
        assert_eq!(pairs, vec![(1, 10)]);
        let plan = FaultPlan {
            fail_sync_at: Some(0),
            ..FaultPlan::default()
        };
        let mut wal = ShardWal::new(Box::new(FaultyWalIo::new(
            FileWalIo::with_path(file, path.clone()),
            plan,
        )));
        wal.set_committed_len(rec.valid_bytes);
        // The refused commit: append lands, fsync is injected to fail,
        // so the record's bytes sit un-acked past the committed
        // prefix. Without amputation they would replay as (2, 20).
        wal.append_group(&[(2, 20)]).unwrap_err();
        assert!(fs::metadata(&path).unwrap().len() > rec.valid_bytes);
        wal.heal_probe().unwrap();
        assert_eq!(fs::metadata(&path).unwrap().len(), rec.valid_bytes);
        // Healed means writable: the next commit lands cleanly after
        // the preserved prefix.
        wal.append_group(&[(3, 30)]).unwrap();
        drop(wal);
        let (pairs, _f, rec) = open_shard_log(&path, u64::MAX).unwrap();
        assert_eq!(pairs, vec![(1, 10), (3, 30)], "refused write resurrected");
        assert_eq!(rec.bad_records, 0);
        assert!(!rec.torn_tail);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_pins_the_shard_count() {
        let dir = temp_dir("manifest");
        check_manifest(&dir, 4).unwrap();
        check_manifest(&dir, 4).unwrap();
        let err = check_manifest(&dir, 8).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_io_round_trips_through_a_real_file() {
        let dir = temp_dir("file");
        let path = dir.join("shard-0.wal");
        let (pairs0, file, rec0) = open_shard_log(&path, u64::MAX).unwrap();
        assert!(pairs0.is_empty());
        assert_eq!(rec0.records, 0);
        let mut wal = ShardWal::new(Box::new(FileWalIo::new(file)));
        wal.append_group(&[(9, 90), (8, 80)]).unwrap();
        assert_eq!(wal.bytes(), fs::metadata(&path).unwrap().len());
        drop(wal);
        let (pairs, _f, rec) = open_shard_log(&path, u64::MAX).unwrap();
        assert_eq!(pairs, vec![(9, 90), (8, 80)]);
        assert_eq!(rec.records, 1);
        assert!(rec.valid_bytes > 0);
        fs::remove_dir_all(&dir).unwrap();
    }
}
