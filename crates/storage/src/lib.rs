//! Storage substrates backing the paper's application benchmarks.
//!
//! The paper evaluates CR on real lock-hungry software we cannot ship:
//! the Solaris libc splay-tree allocator (mmicro, Figure 7), leveldb
//! (Figure 8), Kyoto Cabinet (Figure 9), CEPH's `SimpleLRU`
//! (Figure 12), a COZ-style bounded queue (Figure 10), and a blocking
//! buffer pool (Figure 14). This crate implements functional
//! equivalents from scratch so those workloads run as real code:
//!
//! | Type | Stands in for | Used by |
//! |---|---|---|
//! | [`SplayArena`] | Solaris libc malloc (splay tree + one mutex) | mmicro |
//! | [`MiniKv`] | leveldb 1.18 (memtable + block-cache) | readwhilewriting |
//! | [`KcCacheDb`] | Kyoto Cabinet `CacheDB` | kccachetest |
//! | [`SimpleLru`] | CEPH `SimpleLRU` | LRUCache |
//! | [`BoundedQueue`] | COZ `producer_consumer` queue | prodcons |
//! | [`BufferPool`] | the §6.11 blocking buffer pool | bufferpool |
//!
//! On top of the substrates, the crate ships two genuinely new
//! layers: [`ShardedKv`], a sharded KV backend where each shard is a
//! [`MiniKv`] + [`SimpleLru`] behind its **own** Malthusian
//! `RwCrMutex`/`McsCrMutex` pair with fixed fibonacci-hash routing
//! ([`ShardRouter`]) — N independent admission-restricted locks
//! instead of §6.5's single hot pair (see the [`sharded`] module docs
//! for the cross-shard snapshot-consistency contract) — and a
//! durability tier ([`wal`]): per-shard group-committed write-ahead
//! logs where a batch's per-shard write group costs **one** fsync
//! under the same exclusive hold that amortizes writer admission.

#![warn(missing_docs)]

mod bounded_queue;
mod buffer_pool;
pub mod healer;
mod kccache;
mod minikv;
mod router;
pub mod sharded;
mod simplelru;
mod splay;
pub mod wal;

pub use bounded_queue::BoundedQueue;
pub use buffer_pool::{BufferPool, PoolBuffer, SemBufferPool};
pub use healer::{spawn_healer, HealerConfig};
pub use kccache::KcCacheDb;
pub use minikv::MiniKv;
pub use router::{ShardRouter, FIB_HASH_MULT};
pub use sharded::{
    hottest_share, BatchOp, BatchReply, ShardSnapshot, ShardState, ShardedKv, ShardedKvStats,
    WriteError, MAX_SCAN_LIMIT,
};
pub use simplelru::{LruStats, SimpleLru};
pub use splay::SplayArena;
pub use wal::{
    crc32, stamp_clean_shutdown, take_clean_shutdown, ChaosWalIo, FaultPlan, FaultyWalIo,
    FileWalIo, RecoveryReport, ShardRecovery, ShardWal, WalIo, WalOptions, CLEAN_SHUTDOWN_MARKER,
    DEFAULT_CHECKPOINT_BYTES,
};
