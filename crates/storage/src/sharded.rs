//! The sharded KV backend: N independent Malthusian lock pairs.
//!
//! §6.5 of *Malthusian Locks* evaluates CR on leveldb's two hot locks
//! — faithful, but a single-lock design caps the whole service at one
//! admission point: however well the lock behaves under contention,
//! only one writer makes progress at a time. [`ShardedKv`] splits the
//! store into `N` shards, each a [`MiniKv`] plus its own
//! [`SimpleLru`] block cache behind its **own**
//! [`RwCrMutex`]/[`McsCrMutex`] pair, with fixed fibonacci-hash
//! routing ([`ShardRouter`]). The N Malthusian locks *are* the
//! system's admission surface: contention on one hot shard culls that
//! shard's surplus threads while the other shards keep serving at
//! full speed.
//!
//! # Snapshot-consistency contract
//!
//! Cross-shard operations ([`ShardedKv::mget`], [`ShardedKv::mset`],
//! [`ShardedKv::scan`], [`ShardedKv::stats`]) visit shards **one at a
//! time and never hold two shard locks at once**. That buys three
//! things — no lock-ordering deadlock by construction, admission
//! stays per-shard (a batch never stalls a cold shard behind a hot
//! one), and bounded lock hold times — at the price of atomicity:
//!
//! * Operations are atomic **per shard**. An `mset` becomes visible
//!   shard-by-shard; a concurrent `mget` may observe the part of the
//!   batch that landed on shards it visits later and miss the part on
//!   shards it visited earlier.
//! * `scan` and `stats` are **racy snapshots**: each shard's
//!   contribution is internally consistent (taken under that shard's
//!   lock), but shards are sampled at slightly different times. Sums
//!   are exact only while the store is quiescent — the same contract
//!   as the locks' own `cr_stats`.
//! * Single-key [`ShardedKv::get`]/[`ShardedKv::put`] are fully
//!   linearizable per key (a key lives on exactly one shard, and its
//!   shard never changes).
//!
//! Callers that need a cross-shard atomic view must quiesce writers
//! themselves; the service layer documents the same contract on the
//! wire protocol.
//!
//! # Durability
//!
//! A store opened with [`ShardedKv::open`] keeps a per-shard
//! write-ahead log (see [`crate::wal`]). Every write path commits its
//! per-shard group to that shard's log — one append, **one fsync** —
//! under the same exclusive hold that serializes the writes, *before*
//! applying them to the in-memory [`MiniKv`]: the batch boundary that
//! amortizes writer admission amortizes fsync too (group commit).
//! When a write returns (is acked), it survives `kill -9`.
//!
//! Degradation is per shard: if a shard's fsync fails, that shard is
//! poisoned read-only — further writes return [`WriteError`], reads
//! keep working, and the other shards are untouched. A store built
//! with [`ShardedKv::new`] is memory-only (no logs, infallible-ish
//! writes that still return `Result` for a uniform signature).

use std::io;
use std::ops::{Deref, DerefMut};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use malthus::{current_thread_index, LockCounter, McsCrMutex};
use malthus_metrics::LatencyHistogram;
use malthus_rwlock::{RwCrMutex, RwStats};

use crate::minikv::MiniKv;
use crate::router::ShardRouter;
use crate::simplelru::{LruStats, SimpleLru};
use crate::wal::{
    check_manifest, open_shard_log, stamp_clean_shutdown, take_clean_shutdown, ChaosWalIo,
    FaultyWalIo, FileWalIo, RecoveryReport, ShardWal, WalIo, WalOptions,
};

/// Upper bound a single [`ShardedKv::scan`] will return, whatever the
/// caller asks for: bounds both response size and per-shard lock hold
/// time.
pub const MAX_SCAN_LIMIT: usize = 4_096;

/// One operation of a request group handed to
/// [`ShardedKv::execute_batch`].
///
/// Key slices are borrowed from the caller (the pipelined connection
/// handler keeps its parsed requests alive across the batch), so
/// batching adds no per-operation allocation on the storage side.
#[derive(Debug, Clone, Copy)]
pub enum BatchOp<'a> {
    /// Point lookup.
    Get(u64),
    /// Single insert/update.
    Put(u64, u64),
    /// Batched lookup; results come back in key order.
    Mget(&'a [u64]),
    /// Batched insert/update; later duplicates win, as with
    /// sequential puts.
    Mset(&'a [(u64, u64)]),
}

impl BatchOp<'_> {
    /// Whether executing this op mutates its shard(s).
    fn is_write(&self) -> bool {
        matches!(self, BatchOp::Put(..) | BatchOp::Mset(..))
    }

    /// How many keys this op routes (one flat work item per key).
    fn key_count(&self) -> usize {
        match self {
            BatchOp::Get(_) | BatchOp::Put(..) => 1,
            BatchOp::Mget(keys) => keys.len(),
            BatchOp::Mset(pairs) => pairs.len(),
        }
    }

    /// The `slot`-th key this op routes.
    fn key_at(&self, slot: usize) -> u64 {
        match self {
            BatchOp::Get(k) | BatchOp::Put(k, _) => *k,
            BatchOp::Mget(keys) => keys[slot],
            BatchOp::Mset(pairs) => pairs[slot].0,
        }
    }
}

/// The result of one [`BatchOp`], in the same position of the reply
/// vector [`ShardedKv::execute_batch`] returns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchReply {
    /// [`BatchOp::Get`]: the value, if present.
    Value(Option<u64>),
    /// [`BatchOp::Put`]: the write was applied.
    Done,
    /// [`BatchOp::Mget`]: one slot per requested key, in key order.
    Values(Vec<Option<u64>>),
    /// [`BatchOp::Mset`]: number of pairs written.
    Wrote(usize),
    /// A write op refused because (at least one of) its shard(s) is
    /// poisoned read-only after a WAL failure. For a cross-shard
    /// `Mset` this is sticky: pairs on healthy shards were still
    /// committed (the module's per-shard atomicity contract), but the
    /// op as a whole reports the refusal.
    Readonly,
}

/// A write refused because the key's shard is read-only: its
/// write-ahead log hit an I/O error (typically a failed fsync) and
/// the shard was poisoned rather than risk acking writes that might
/// not be durable. Reads on the shard keep working; other shards are
/// unaffected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteError {
    /// The poisoned shard's index.
    pub shard: usize,
}

impl std::fmt::Display for WriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shard {} is read-only after a write-ahead log failure",
            self.shard
        )
    }
}

impl std::error::Error for WriteError {}

/// The largest element's share of the slice's sum, in `[0, 1]`;
/// 0 when the sum is 0 (or the slice is empty).
///
/// The skew diagnostic shared by [`ShardedKvStats`] and the
/// `sharded_contention` workload report: applied to per-shard write
/// counts it answers "how hot is the hottest shard".
pub fn hottest_share(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    counts.iter().copied().max().unwrap_or(0) as f64 / total as f64
}

/// What one shard's DB lock protects: the [`MiniKv`] plus (when the
/// store is durable) the shard's write-ahead log.
///
/// The WAL sits under the **same** lock as the store it guards so a
/// group's log record and its in-memory application are one critical
/// section — no window where another writer interleaves between a
/// group's fsync and its visibility.
///
/// Derefs to [`MiniKv`] so lock-semantics tests and diagnostics that
/// take `db_lock(i).read()`/`.write()` keep calling `get_memtable`,
/// `put`, `reads` … straight through the guard.
pub struct ShardState {
    kv: MiniKv,
    wal: Option<ShardWal>,
}

impl ShardState {
    fn memory(kv: MiniKv) -> Self {
        ShardState { kv, wal: None }
    }

    fn durable(kv: MiniKv, wal: ShardWal) -> Self {
        ShardState { kv, wal: Some(wal) }
    }

    /// Group commits appended to this shard's log (0 when
    /// memory-only).
    pub fn wal_appends(&self) -> u64 {
        self.wal.as_ref().map_or(0, ShardWal::appends)
    }

    /// Fsyncs this shard's log has issued (0 when memory-only).
    pub fn wal_syncs(&self) -> u64 {
        self.wal.as_ref().map_or(0, ShardWal::syncs)
    }

    /// Bytes appended to this shard's log since open (0 when
    /// memory-only).
    pub fn wal_bytes(&self) -> u64 {
        self.wal.as_ref().map_or(0, ShardWal::bytes)
    }
}

impl Deref for ShardState {
    type Target = MiniKv;

    fn deref(&self) -> &MiniKv {
        &self.kv
    }
}

impl DerefMut for ShardState {
    fn deref_mut(&mut self) -> &mut MiniKv {
        &mut self.kv
    }
}

impl std::fmt::Debug for ShardState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardState")
            .field("durable", &self.wal.is_some())
            .finish_non_exhaustive()
    }
}

/// One shard: a [`MiniKv`] (+ optional WAL) and its block cache
/// behind their own lock pair, plus batch counters.
struct Shard {
    /// The shard's central database lock (memtable + runs + WAL).
    db: RwCrMutex<ShardState>,
    /// The shard's block-cache lock (exclusive: lookups edit recency).
    cache: McsCrMutex<SimpleLru>,
    /// MGET batches that touched this shard. Bumped under the
    /// *shared* `db` lock, where concurrent bumpers are legal, so
    /// this must be a real RMW ([`LockCounter::bump`]'s plain
    /// load+store would lose counts) — same relaxed-atomic treatment
    /// as `MiniKv`'s read counter.
    mgets: AtomicU64,
    /// MSET batches that touched this shard. Bumped only under the
    /// exclusive `db` write lock, which serializes writers — exactly
    /// the [`LockCounter`] contract (plain load+store, no RMW).
    msets: LockCounter,
    /// Scans that visited this shard (bumped under the shared `db`
    /// lock; relaxed atomic for the same reason as `mgets`).
    scans: AtomicU64,
    /// Poisoned read-only after a WAL failure. Checked and set under
    /// the exclusive `db` hold; relaxed atomic so the read path and
    /// stats can sample it without any lock.
    readonly: AtomicBool,
    /// WAL I/O errors observed (each one poisons, so in practice 0
    /// or 1 per heal cycle — kept a counter for the STATS wire
    /// format).
    wal_errors: AtomicU64,
    /// Write groups refused because the shard was read-only — the
    /// `ERR shard readonly` replies that would otherwise vanish.
    readonly_rejects: AtomicU64,
    /// Heal probes attempted against this shard while read-only.
    heal_attempts: AtomicU64,
    /// Heal probes that succeeded and flipped the shard writable.
    heals: AtomicU64,
}

impl Shard {
    fn build(state: ShardState, cache_blocks: usize) -> Self {
        Shard {
            db: RwCrMutex::default_cr(state),
            cache: McsCrMutex::default_cr(SimpleLru::new(cache_blocks)),
            mgets: AtomicU64::new(0),
            msets: LockCounter::new(),
            scans: AtomicU64::new(0),
            readonly: AtomicBool::new(false),
            wal_errors: AtomicU64::new(0),
            readonly_rejects: AtomicU64::new(0),
            heal_attempts: AtomicU64::new(0),
            heals: AtomicU64::new(0),
        }
    }

    /// The write path's durability gate, called with `state` being
    /// this shard's **exclusive** guard: refuses if poisoned, then
    /// group-commits `pairs` (one append + one fsync). A commit error
    /// poisons the shard read-only — acking a write whose log record
    /// may not be durable would break the recovery contract — and the
    /// already-failed group is refused too (its pairs are *not*
    /// applied in memory).
    fn wal_commit(
        &self,
        index: usize,
        state: &mut ShardState,
        pairs: &[(u64, u64)],
        span: &mut malthus_obs::SpanContext,
    ) -> Result<(), WriteError> {
        if let Some(ms) = malthus_fault::stall_ms(malthus_fault::Site::ShardStall) {
            // Injected lock-holder stall: sleep while holding the
            // shard's exclusive lock — the preemption/convoy shape
            // the Malthusian policy's stall detection reprovisions
            // around.
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
        if self.readonly.load(Ordering::Relaxed) {
            self.readonly_rejects.fetch_add(1, Ordering::Relaxed);
            return Err(WriteError { shard: index });
        }
        if let Some(wal) = state.wal.as_mut() {
            if let Err(e) = wal.append_group_span(pairs, span) {
                self.wal_errors.fetch_add(1, Ordering::Relaxed);
                self.readonly.store(true, Ordering::Relaxed);
                self.readonly_rejects.fetch_add(1, Ordering::Relaxed);
                eprintln!("# malthus-storage: shard {index} WAL error, going read-only: {e}");
                return Err(WriteError { shard: index });
            }
        }
        Ok(())
    }
}

/// Racy-snapshot statistics of one shard (see the module-level
/// contract).
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardSnapshot {
    /// Reads served by this shard's [`MiniKv`].
    pub reads: u64,
    /// Writes accepted by this shard's [`MiniKv`].
    pub writes: u64,
    /// Resident keys (memtable + runs, duplicates included).
    pub keys: usize,
    /// Frozen runs.
    pub runs: usize,
    /// MGET batches that touched this shard.
    pub mgets: u64,
    /// MSET batches that touched this shard.
    pub msets: u64,
    /// Scans that visited this shard.
    pub scans: u64,
    /// Group commits appended to this shard's WAL (0 if memory-only).
    pub wal_appends: u64,
    /// Fsyncs issued by this shard's WAL (0 if memory-only).
    pub wal_syncs: u64,
    /// Bytes appended to this shard's WAL since open.
    pub wal_bytes: u64,
    /// WAL I/O errors observed on this shard.
    pub wal_errors: u64,
    /// The shard is poisoned read-only after a WAL failure.
    pub readonly: bool,
    /// Write groups refused while the shard was read-only.
    pub readonly_rejects: u64,
    /// Heal probes attempted against this shard.
    pub heal_attempts: u64,
    /// Heal probes that flipped the shard back to writable.
    pub heals: u64,
    /// The shard DB lock's RW-CR counters.
    pub db_lock: RwStats,
    /// The shard block cache's hit/miss/displacement counters.
    pub cache: LruStats,
}

/// Per-shard snapshots plus aggregation helpers.
#[derive(Debug, Clone, Default)]
pub struct ShardedKvStats {
    /// One snapshot per shard, index = shard id.
    pub per_shard: Vec<ShardSnapshot>,
}

impl ShardedKvStats {
    /// Total reads across shards (racy sum; exact while quiescent).
    pub fn reads(&self) -> u64 {
        self.per_shard.iter().map(|s| s.reads).sum()
    }

    /// Total writes across shards (racy sum; exact while quiescent).
    pub fn writes(&self) -> u64 {
        self.per_shard.iter().map(|s| s.writes).sum()
    }

    /// Field-wise sum of the per-shard DB lock counters.
    pub fn db_lock_totals(&self) -> RwStats {
        let mut t = RwStats::default();
        for s in &self.per_shard {
            t.reader_culls += s.db_lock.reader_culls;
            t.reader_reprovisions += s.db_lock.reader_reprovisions;
            t.reader_fairness_grants += s.db_lock.reader_fairness_grants;
            t.write_episodes += s.db_lock.write_episodes;
            t.writer_drain_waits += s.db_lock.writer_drain_waits;
        }
        t
    }

    /// The busiest shard's share of all writes, in `[0, 1]`
    /// (0 when no writes happened). The skew diagnostic the
    /// `sharded_contention` workload reports.
    pub fn hottest_write_share(&self) -> f64 {
        let writes: Vec<u64> = self.per_shard.iter().map(|s| s.writes).collect();
        hottest_share(&writes)
    }

    /// Total WAL fsyncs across shards. With group commit this divided
    /// by [`ShardedKvStats::writes`] is the fsyncs-per-write ratio the
    /// `bench_wal` sweep records.
    pub fn wal_syncs(&self) -> u64 {
        self.per_shard.iter().map(|s| s.wal_syncs).sum()
    }

    /// Total WAL I/O errors across shards.
    pub fn wal_errors(&self) -> u64 {
        self.per_shard.iter().map(|s| s.wal_errors).sum()
    }

    /// Shards currently poisoned read-only.
    pub fn readonly_shards(&self) -> usize {
        self.per_shard.iter().filter(|s| s.readonly).count()
    }

    /// Total write groups refused while a shard was read-only.
    pub fn readonly_rejects(&self) -> u64 {
        self.per_shard.iter().map(|s| s.readonly_rejects).sum()
    }

    /// Total heal probes attempted across shards.
    pub fn heal_attempts(&self) -> u64 {
        self.per_shard.iter().map(|s| s.heal_attempts).sum()
    }

    /// Total successful heals across shards.
    pub fn heals(&self) -> u64 {
        self.per_shard.iter().map(|s| s.heals).sum()
    }
}

/// A sharded KV store: `N` × ([`MiniKv`] + [`SimpleLru`]) behind `N`
/// independent Malthusian lock pairs, with fixed fibonacci-hash
/// routing — optionally durable via per-shard group-committed WALs
/// ([`ShardedKv::open`]).
///
/// See the module docs for the cross-shard snapshot-consistency and
/// durability contracts.
///
/// # Examples
///
/// ```
/// use malthus_storage::ShardedKv;
///
/// let kv = ShardedKv::new(4, 1_024, 1_024);
/// kv.mset(&[(1, 10), (2, 20), (3, 30)]).unwrap();
/// assert_eq!(kv.mget(&[1, 2, 9]), vec![Some(10), Some(20), None]);
/// assert_eq!(kv.scan(2, 8), vec![(2, 20), (3, 30)]);
/// ```
pub struct ShardedKv {
    router: ShardRouter,
    shards: Vec<Shard>,
    /// Fsync latencies across all shards (empty for memory-only
    /// stores: no WAL, no fsyncs). Shared with each [`ShardWal`].
    fsync_hist: Arc<LatencyHistogram>,
    /// The data directory of a durable store (`None` when
    /// memory-only) — where [`ShardedKv::shutdown_clean`] stamps the
    /// clean-shutdown marker.
    dir: Option<PathBuf>,
}

impl ShardedKv {
    /// Creates a **memory-only** store (no WAL) with `shards` shards,
    /// each freezing its memtable at `memtable_limit` entries and
    /// caching `cache_blocks` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero (via [`ShardRouter::new`]) or the
    /// per-shard parameters are invalid (via [`MiniKv::new`] /
    /// [`SimpleLru::new`]).
    pub fn new(shards: usize, memtable_limit: usize, cache_blocks: usize) -> Self {
        let router = ShardRouter::new(shards);
        let shards = (0..shards)
            .map(|_| {
                Shard::build(
                    ShardState::memory(MiniKv::new(memtable_limit)),
                    cache_blocks,
                )
            })
            .collect();
        ShardedKv {
            router,
            shards,
            fsync_hist: Arc::new(LatencyHistogram::new()),
            dir: None,
        }
    }

    /// Opens a **durable** store rooted at `dir` with default
    /// [`WalOptions`], creating the directory and per-shard logs on
    /// first open and replaying them on every open. See
    /// [`ShardedKv::open_with`].
    pub fn open(
        dir: &Path,
        shards: usize,
        memtable_limit: usize,
        cache_blocks: usize,
    ) -> io::Result<(Self, RecoveryReport)> {
        Self::open_with(
            dir,
            shards,
            memtable_limit,
            cache_blocks,
            WalOptions::default(),
        )
    }

    /// Opens a durable store rooted at `dir`: one `shard-<i>.wal` per
    /// shard plus a `MANIFEST` pinning the shard count (keys are
    /// hash-routed; reopening with a different count is refused with
    /// [`io::ErrorKind::InvalidInput`]).
    ///
    /// Each shard's log is replayed — tolerating a torn tail and
    /// stopping at the first checksum mismatch, recovering the valid
    /// prefix — and compacted to a checkpoint record once it exceeds
    /// `opts.checkpoint_threshold()`. Replayed pairs are applied
    /// through the normal [`MiniKv::put`] path, so they count toward
    /// the shard's `writes` counter like any other write.
    ///
    /// `opts.faults` wires [`FaultyWalIo`] wrappers onto selected
    /// shards (tests of the read-only degradation path).
    ///
    /// # Panics
    ///
    /// Same parameter panics as [`ShardedKv::new`].
    pub fn open_with(
        dir: &Path,
        shards: usize,
        memtable_limit: usize,
        cache_blocks: usize,
        opts: WalOptions,
    ) -> io::Result<(Self, RecoveryReport)> {
        std::fs::create_dir_all(dir)?;
        check_manifest(dir, shards)?;
        let clean_marker = take_clean_shutdown(dir)?;
        let router = ShardRouter::new(shards);
        let threshold = opts.checkpoint_threshold();
        let fsync_hist = Arc::new(LatencyHistogram::new());
        let mut built = Vec::with_capacity(shards);
        let mut report = RecoveryReport {
            clean_marker,
            ..RecoveryReport::default()
        };
        let chaos = malthus_fault::storage_armed();
        for i in 0..shards {
            let path = dir.join(format!("shard-{i}.wal"));
            let (pairs, file, recovery) = open_shard_log(&path, threshold)?;
            // The whole file is committed state at this point:
            // recovery truncated any torn tail and a checkpoint
            // rewrite was fsynced. A later heal probe amputates back
            // to here plus every group committed since.
            let committed_len = file.metadata()?.len();
            let file_io = FileWalIo::with_path(file, path);
            let io: Box<dyn WalIo> = match opts.faults.iter().find(|(s, _)| *s == i) {
                Some((_, plan)) => Box::new(FaultyWalIo::new(file_io, *plan)),
                None if chaos => Box::new(ChaosWalIo::new(file_io)),
                None => Box::new(file_io),
            };
            let mut kv = MiniKv::new(memtable_limit);
            for (k, v) in pairs {
                debug_assert_eq!(router.route(k), i, "replayed key routed off-shard");
                kv.put(k, v);
            }
            let mut wal = ShardWal::new(io);
            wal.set_committed_len(committed_len);
            wal.set_observer(i as u64, Arc::clone(&fsync_hist));
            built.push(Shard::build(ShardState::durable(kv, wal), cache_blocks));
            report.per_shard.push(recovery);
        }
        Ok((
            ShardedKv {
                router,
                shards: built,
                fsync_hist,
                dir: Some(dir.to_path_buf()),
            },
            report,
        ))
    }

    /// The store-wide WAL fsync-latency histogram (one observation
    /// per group commit, all shards merged). Always present; never
    /// records for memory-only stores.
    pub fn fsync_hist(&self) -> &Arc<LatencyHistogram> {
        &self.fsync_hist
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The router (so callers — tests, diagnostics — can predict
    /// which shard a key lands on).
    pub fn router(&self) -> ShardRouter {
        self.router
    }

    /// The DB lock of shard `index`, exposed for lock-semantics tests
    /// and diagnostics (e.g. proving two writers on different shards
    /// run concurrently). The guard derefs through [`ShardState`] to
    /// [`MiniKv`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= shard_count()`.
    pub fn db_lock(&self, index: usize) -> &RwCrMutex<ShardState> {
        &self.shards[index].db
    }

    /// Whether shard `index` is currently poisoned read-only — one
    /// relaxed load, no locks, so the healer can scan every shard on
    /// every tick.
    ///
    /// # Panics
    ///
    /// Panics if `index >= shard_count()`.
    pub fn shard_readonly(&self, index: usize) -> bool {
        self.shards[index].readonly.load(Ordering::Relaxed)
    }

    /// One heal attempt against a read-only shard: under the shard's
    /// exclusive lock, reopen the WAL's file layer and fsync-probe it
    /// ([`ShardWal::heal_probe`]). A successful probe flips the shard
    /// writable again — safe because refused groups were never
    /// applied in memory, so the log and the store agree.
    ///
    /// Returns `true` when the shard is writable on exit (including
    /// "was never read-only"). Counted in the shard's
    /// `heal_attempts`/`heals` counters only when a probe actually
    /// ran.
    ///
    /// # Panics
    ///
    /// Panics if `index >= shard_count()`.
    pub fn try_heal_shard(&self, index: usize) -> bool {
        let shard = &self.shards[index];
        if !shard.readonly.load(Ordering::Relaxed) {
            return true;
        }
        shard.heal_attempts.fetch_add(1, Ordering::Relaxed);
        let mut db = shard.db.write();
        let healed = match db.wal.as_mut() {
            Some(wal) => match wal.heal_probe() {
                Ok(()) => true,
                Err(e) => {
                    eprintln!("# malthus-storage: shard {index} heal probe failed: {e}");
                    false
                }
            },
            // Memory-only shards cannot stay poisoned: nothing to
            // probe, flip straight back.
            None => true,
        };
        if healed {
            shard.readonly.store(false, Ordering::Relaxed);
            shard.heals.fetch_add(1, Ordering::Relaxed);
            eprintln!("# malthus-storage: shard {index} healed, writable again");
        }
        healed
    }

    /// The graceful-shutdown epilogue: issues a final fsync on every
    /// healthy shard's WAL (belt-and-braces — every acked write was
    /// already fsynced by group commit) and stamps the clean-shutdown
    /// marker in the MANIFEST. Read-only shards are skipped: their
    /// refused writes were never applied, so they have nothing
    /// unacked to lose, and their file layer is known bad.
    ///
    /// No-op for memory-only stores. Errors on a *healthy* shard's
    /// final sync abort the stamp — a marker must never overpromise.
    pub fn shutdown_clean(&self) -> io::Result<()> {
        let Some(dir) = &self.dir else {
            return Ok(());
        };
        for (i, shard) in self.shards.iter().enumerate() {
            if shard.readonly.load(Ordering::Relaxed) {
                continue;
            }
            let mut db = shard.db.write();
            if let Some(wal) = db.wal.as_mut() {
                wal.final_sync()
                    .map_err(|e| io::Error::new(e.kind(), format!("shard {i} final sync: {e}")))?;
            }
        }
        stamp_clean_shutdown(dir)
    }

    /// Inserts or updates one key (exclusive access to its shard
    /// only). On a durable store the pair is group-committed (here a
    /// group of one — batch writes via [`ShardedKv::mset`] or
    /// [`ShardedKv::execute_batch`] to amortize the fsync) before it
    /// is applied; `Err` means the shard is read-only and nothing was
    /// written.
    pub fn put(&self, key: u64, value: u64) -> Result<(), WriteError> {
        let index = self.router.route(key);
        let shard = &self.shards[index];
        let mut db = shard.db.write();
        shard.wal_commit(
            index,
            &mut db,
            &[(key, value)],
            &mut malthus_obs::SpanContext::detached(),
        )?;
        db.put(key, value);
        Ok(())
    }

    /// Point lookup on the key's shard: shared DB lock, memtable
    /// first, block cache only on a memtable miss — the same split
    /// read path as the single-lock service, now per shard.
    pub fn get(&self, key: u64) -> Option<u64> {
        let tid = current_thread_index();
        let shard = &self.shards[self.router.route(key)];
        let db = shard.db.read();
        if let Some(v) = db.get_memtable(key) {
            return Some(v);
        }
        let mut cache = shard.cache.lock();
        db.get_runs(key, &mut cache, tid)
    }

    /// Batched lookup: results in `keys` order, each shard's lock
    /// taken at most once. Per-shard atomic, cross-shard racy (see
    /// the module contract).
    pub fn mget(&self, keys: &[u64]) -> Vec<Option<u64>> {
        let tid = current_thread_index();
        let mut out = vec![None; keys.len()];
        for (shard, indices) in self
            .router
            .group_indices(keys.iter().copied())
            .into_iter()
            .enumerate()
        {
            if indices.is_empty() {
                continue;
            }
            let shard = &self.shards[shard];
            let db = shard.db.read();
            shard.mgets.fetch_add(1, Ordering::Relaxed);
            for i in indices {
                let key = keys[i];
                out[i] = db.get_memtable(key).or_else(|| {
                    let mut cache = shard.cache.lock();
                    db.get_runs(key, &mut cache, tid)
                });
            }
        }
        out
    }

    /// Batched insert/update; later duplicates in `pairs` win, as
    /// with sequential puts. Each shard's write lock is taken at most
    /// once, and on a durable store each shard's sub-group commits
    /// with **one** fsync (group commit) before it is applied; the
    /// batch becomes visible shard-by-shard (see the module
    /// contract). Returns the number of pairs written, or the first
    /// refusal if any touched shard is read-only — per-shard
    /// atomicity means pairs on healthy shards were still written.
    pub fn mset(&self, pairs: &[(u64, u64)]) -> Result<usize, WriteError> {
        let mut refused = None;
        for (shard, indices) in self
            .router
            .group_indices(pairs.iter().map(|&(k, _)| k))
            .into_iter()
            .enumerate()
        {
            if indices.is_empty() {
                continue;
            }
            let index = shard;
            let shard = &self.shards[shard];
            let group: Vec<(u64, u64)> = indices.iter().map(|&i| pairs[i]).collect();
            let mut db = shard.db.write();
            match shard.wal_commit(
                index,
                &mut db,
                &group,
                &mut malthus_obs::SpanContext::detached(),
            ) {
                Ok(()) => {
                    shard.msets.bump();
                    for (k, v) in group {
                        db.put(k, v);
                    }
                }
                Err(e) => refused = refused.or(Some(e)),
            }
        }
        match refused {
            Some(e) => Err(e),
            None => Ok(pairs.len()),
        }
    }

    /// Executes a request group with **one lock acquisition per
    /// touched shard**: the ops' keys are grouped by destination via
    /// [`ShardRouter::group_indices`], and each shard's sub-group runs
    /// under a single hold of that shard's DB lock — *shared* when the
    /// group is read-only, *exclusive* when it contains any write.
    /// Replies come back in `ops` order.
    ///
    /// This is the under-lock amortization the pipelined KV protocol
    /// exists for: a connection that delivers a batch of `n` puts to
    /// one shard pays **one** writer admission instead of `n` — the
    /// few-threads-much-work-per-admission shape *Malthusian Locks*
    /// argues saturated locks want (and what flat-combining designs
    /// exploit).
    ///
    /// Consistency is the module contract, refined per batch:
    ///
    /// * Each shard's sub-group executes **in op order** under one
    ///   hold, so per-key (a key lives on one shard) the batch behaves
    ///   exactly like the same ops issued sequentially — a `Get`
    ///   placed after a `Put` of the same key observes it.
    /// * A mixed read/write sub-group escalates its reads into the
    ///   exclusive hold rather than splitting into two holds, which
    ///   would reorder same-key ops (and cost a second admission).
    /// * Cross-shard remains a racy snapshot: shards are visited one
    ///   at a time, never two locks at once.
    ///
    /// The per-shard `mgets`/`msets` batch counters bump **once per
    /// batch** that brought that op type to the shard, not once per
    /// [`BatchOp`] — under pipelining the batch is the admission unit.
    pub fn execute_batch(&self, ops: &[BatchOp<'_>]) -> Vec<BatchReply> {
        self.execute_batch_span(ops, &mut malthus_obs::SpanContext::detached())
    }

    /// [`ShardedKv::execute_batch`] with span tracing: the batch's
    /// group-commit fsyncs are folded into `span`'s `wal_fsync` stage
    /// (lock admission flows through the thread-local accumulators
    /// the CR locks feed — see `malthus_obs::span`).
    pub fn execute_batch_span(
        &self,
        ops: &[BatchOp<'_>],
        span: &mut malthus_obs::SpanContext,
    ) -> Vec<BatchReply> {
        let tid = current_thread_index();
        // One flat work item per routed key: flat index -> (op, slot).
        let mut flat: Vec<(u32, u32)> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            for slot in 0..op.key_count() {
                flat.push((i as u32, slot as u32));
            }
        }
        let groups = self.router.group_indices(
            ops.iter()
                .flat_map(|op| (0..op.key_count()).map(move |s| op.key_at(s))),
        );
        let mut replies: Vec<BatchReply> = ops
            .iter()
            .map(|op| match op {
                BatchOp::Get(_) => BatchReply::Value(None),
                BatchOp::Put(..) => BatchReply::Done,
                BatchOp::Mget(keys) => BatchReply::Values(vec![None; keys.len()]),
                BatchOp::Mset(pairs) => BatchReply::Wrote(pairs.len()),
            })
            .collect();
        for (shard_idx, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let shard = &self.shards[shard_idx];
            malthus_obs::record(
                malthus_obs::EventKind::ShardBatchBegin,
                shard_idx as u64,
                group.len() as u64,
            );
            let dirty = group.iter().any(|&f| ops[flat[f].0 as usize].is_write());
            let mut saw_mget = false;
            if dirty {
                let mut db = shard.db.write();
                // Group commit: the whole sub-group's writes (in op
                // order) become durable with ONE append + ONE fsync
                // *before* any op executes — the same boundary that
                // amortizes writer admission amortizes the fsync. On
                // refusal (shard read-only, or this very commit
                // failing fsync) the group's writes are skipped and
                // their replies turn `Readonly`; its reads still run.
                let write_pairs: Vec<(u64, u64)> = group
                    .iter()
                    .filter_map(|&f| {
                        let (oi, slot) = flat[f];
                        match &ops[oi as usize] {
                            BatchOp::Put(k, v) => Some((*k, *v)),
                            BatchOp::Mset(pairs) => Some(pairs[slot as usize]),
                            BatchOp::Get(_) | BatchOp::Mget(_) => None,
                        }
                    })
                    .collect();
                let committed = shard.wal_commit(shard_idx, &mut db, &write_pairs, span);
                let mut saw_mset = false;
                for &f in &group {
                    let (oi, slot) = flat[f];
                    let (oi, slot) = (oi as usize, slot as usize);
                    match &ops[oi] {
                        BatchOp::Put(k, v) => match committed {
                            Ok(()) => db.put(*k, *v),
                            Err(_) => replies[oi] = BatchReply::Readonly,
                        },
                        BatchOp::Mset(pairs) => match committed {
                            Ok(()) => {
                                let (k, v) = pairs[slot];
                                db.put(k, v);
                                saw_mset = true;
                            }
                            Err(_) => replies[oi] = BatchReply::Readonly,
                        },
                        BatchOp::Get(k) => {
                            let v = Self::get_in_shard(shard, &db, *k, tid);
                            replies[oi] = BatchReply::Value(v);
                        }
                        BatchOp::Mget(keys) => {
                            let v = Self::get_in_shard(shard, &db, keys[slot], tid);
                            if let BatchReply::Values(vs) = &mut replies[oi] {
                                vs[slot] = v;
                            }
                            saw_mget = true;
                        }
                    }
                }
                if saw_mset {
                    shard.msets.bump();
                }
            } else {
                let db = shard.db.read();
                for &f in &group {
                    let (oi, slot) = flat[f];
                    let (oi, slot) = (oi as usize, slot as usize);
                    match &ops[oi] {
                        BatchOp::Get(k) => {
                            let v = Self::get_in_shard(shard, &db, *k, tid);
                            replies[oi] = BatchReply::Value(v);
                        }
                        BatchOp::Mget(keys) => {
                            let v = Self::get_in_shard(shard, &db, keys[slot], tid);
                            if let BatchReply::Values(vs) = &mut replies[oi] {
                                vs[slot] = v;
                            }
                            saw_mget = true;
                        }
                        BatchOp::Put(..) | BatchOp::Mset(..) => {
                            unreachable!("read-only group contains a write")
                        }
                    }
                }
            }
            if saw_mget {
                shard.mgets.fetch_add(1, Ordering::Relaxed);
            }
            malthus_obs::record(
                malthus_obs::EventKind::ShardBatchEnd,
                shard_idx as u64,
                group.len() as u64,
            );
        }
        replies
    }

    /// The split read path of [`ShardedKv::get`] against an
    /// already-held DB guard: memtable first, block cache only on a
    /// miss (the cache lock nests inside the db hold, the fixed
    /// db → cache order).
    fn get_in_shard(shard: &Shard, db: &ShardState, key: u64, tid: u32) -> Option<u64> {
        db.get_memtable(key).or_else(|| {
            let mut cache = shard.cache.lock();
            db.get_runs(key, &mut cache, tid)
        })
    }

    /// Ordered range scan: up to `limit` pairs with `key >= start`,
    /// ascending, `limit` clamped to [`MAX_SCAN_LIMIT`].
    ///
    /// Visits every shard (keys are hash-routed, so any shard may
    /// hold part of any key range) **one at a time**, collecting up
    /// to `limit` candidates per shard under that shard's read lock,
    /// then merges. Shards hold disjoint key sets, so the merge is a
    /// plain sort. The result is a racy cross-shard snapshot:
    /// per-shard consistent, but a concurrent writer may land between
    /// two shard visits (module contract).
    pub fn scan(&self, start: u64, limit: usize) -> Vec<(u64, u64)> {
        let limit = limit.min(MAX_SCAN_LIMIT);
        if limit == 0 {
            return Vec::new();
        }
        let mut merged: Vec<(u64, u64)> = Vec::new();
        for shard in &self.shards {
            let db = shard.db.read();
            shard.scans.fetch_add(1, Ordering::Relaxed);
            merged.extend(db.scan_from(start, limit));
        }
        merged.sort_unstable_by_key(|&(k, _)| k);
        merged.truncate(limit);
        merged
    }

    /// Per-shard statistics, sampled shard-by-shard without ever
    /// holding two shard locks at once (racy cross-shard snapshot;
    /// module contract). Within one shard, the DB counters are read
    /// under the read lock and the cache counters under the cache
    /// lock — taken one after the other, not nested.
    pub fn stats(&self) -> ShardedKvStats {
        ShardedKvStats {
            per_shard: (0..self.shards.len())
                .map(|i| self.shard_stats(i))
                .collect(),
        }
    }

    /// Racy snapshot of a single shard (see [`ShardedKv::stats`]).
    /// Cheaper than a full [`ShardedKvStats`] when only one shard is
    /// being sampled, e.g. by per-shard registry closures.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn shard_stats(&self, index: usize) -> ShardSnapshot {
        let shard = &self.shards[index];
        let (reads, writes, keys, runs, wal_appends, wal_syncs, wal_bytes) = {
            let db = shard.db.read();
            (
                db.reads(),
                db.writes(),
                db.len_estimate(),
                db.run_count(),
                db.wal_appends(),
                db.wal_syncs(),
                db.wal_bytes(),
            )
        };
        let cache = shard.cache.lock().stats();
        ShardSnapshot {
            reads,
            writes,
            keys,
            runs,
            mgets: shard.mgets.load(Ordering::Relaxed),
            msets: shard.msets.get(),
            scans: shard.scans.load(Ordering::Relaxed),
            wal_appends,
            wal_syncs,
            wal_bytes,
            wal_errors: shard.wal_errors.load(Ordering::Relaxed),
            readonly: shard.readonly.load(Ordering::Relaxed),
            readonly_rejects: shard.readonly_rejects.load(Ordering::Relaxed),
            heal_attempts: shard.heal_attempts.load(Ordering::Relaxed),
            heals: shard.heals.load(Ordering::Relaxed),
            db_lock: shard.db.raw().stats(),
            cache,
        }
    }

    /// Registers the store's per-shard counters, the skew gauge, and
    /// the WAL fsync histogram with a metrics
    /// [`Registry`](malthus_obs::Registry).
    ///
    /// Closures capture an `Arc` of the store, so the registry may
    /// outlive the registering call site; each sample takes only the
    /// one shard's locks it reports on.
    pub fn register_metrics(self: &Arc<Self>, registry: &malthus_obs::Registry) {
        type SnapshotCounter = fn(&ShardSnapshot) -> u64;
        let shard_counters: [(&str, &str, SnapshotCounter); 11] = [
            ("kv_shard_reads_total", "Reads served by the shard.", |s| {
                s.reads
            }),
            (
                "kv_shard_writes_total",
                "Writes accepted by the shard.",
                |s| s.writes,
            ),
            (
                "kv_shard_scans_total",
                "Scans that visited the shard.",
                |s| s.scans,
            ),
            (
                "kv_shard_wal_appends_total",
                "WAL group commits appended.",
                |s| s.wal_appends,
            ),
            ("kv_shard_wal_syncs_total", "WAL fsyncs issued.", |s| {
                s.wal_syncs
            }),
            (
                "kv_shard_wal_bytes_total",
                "Bytes appended to the WAL.",
                |s| s.wal_bytes,
            ),
            (
                "kv_shard_wal_errors_total",
                "WAL I/O errors observed.",
                |s| s.wal_errors,
            ),
            ("kv_shard_runs_total", "Frozen memtable runs.", |s| {
                s.runs as u64
            }),
            (
                "kv_readonly_rejects_total",
                "Write groups refused while the shard was read-only.",
                |s| s.readonly_rejects,
            ),
            (
                "kv_shard_heal_attempts_total",
                "Heal probes attempted against the shard.",
                |s| s.heal_attempts,
            ),
            (
                "kv_shard_heals_total",
                "Heal probes that flipped the shard back to writable.",
                |s| s.heals,
            ),
        ];
        let lock_counters: [(&str, &str, SnapshotCounter); 5] = [
            (
                "lock_reader_culls_total",
                "Readers passivated by the shard DB lock.",
                |s| s.db_lock.reader_culls,
            ),
            (
                "lock_reader_reprovisions_total",
                "Readers reprovisioned by the shard DB lock.",
                |s| s.db_lock.reader_reprovisions,
            ),
            (
                "lock_reader_fairness_grants_total",
                "Reader fairness grants by the shard DB lock.",
                |s| s.db_lock.reader_fairness_grants,
            ),
            (
                "lock_write_episodes_total",
                "Exclusive write episodes on the shard DB lock.",
                |s| s.db_lock.write_episodes,
            ),
            (
                "lock_writer_drain_waits_total",
                "Writer waits for the reader count to drain.",
                |s| s.db_lock.writer_drain_waits,
            ),
        ];
        for i in 0..self.shards.len() {
            let shard_label = i.to_string();
            for (name, help, f) in shard_counters {
                let store = Arc::clone(self);
                registry.counter(name, help, &[("shard", &shard_label)], move || {
                    f(&store.shard_stats(i))
                });
            }
            for (name, help, f) in lock_counters {
                let store = Arc::clone(self);
                registry.counter(
                    name,
                    help,
                    &[("lock", "db"), ("shard", &shard_label)],
                    move || f(&store.shard_stats(i)),
                );
            }
            let store = Arc::clone(self);
            registry.gauge(
                "kv_shard_keys",
                "Resident keys (memtable + runs, duplicates included).",
                &[("shard", &shard_label)],
                move || store.shard_stats(i).keys as f64,
            );
            let store = Arc::clone(self);
            registry.gauge(
                "kv_shard_readonly",
                "1 when the shard is poisoned read-only after a WAL failure.",
                &[("shard", &shard_label)],
                move || u8::from(store.shard_stats(i).readonly) as f64,
            );
        }
        let store = Arc::clone(self);
        registry.gauge(
            "kv_hottest_shard_write_share",
            "Fraction of all writes landing on the hottest shard (1/shards = uniform).",
            &[],
            move || store.stats().hottest_write_share(),
        );
        let hist = Arc::clone(&self.fsync_hist);
        registry.histogram(
            "kv_wal_fsync_ns",
            "WAL fsync latency per group commit, nanoseconds.",
            &[],
            move || hist.snapshot(),
        );
    }
}

impl std::fmt::Debug for ShardedKv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedKv")
            .field("shards", &self.shards.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn put_get_round_trip_across_shards() {
        let kv = ShardedKv::new(4, 64, 256);
        for k in 0..500u64 {
            kv.put(k, k * 3).unwrap();
        }
        for k in 0..500u64 {
            assert_eq!(kv.get(k), Some(k * 3), "key {k}");
        }
        assert_eq!(kv.get(10_000), None);
        // Every shard must have received some of the keys.
        let stats = kv.stats();
        for (i, s) in stats.per_shard.iter().enumerate() {
            assert!(s.writes > 0, "shard {i} got no writes");
        }
        assert_eq!(stats.writes(), 500);
    }

    #[test]
    fn single_shard_degenerates_to_minikv_semantics() {
        let kv = ShardedKv::new(1, 8, 64);
        for k in 0..40u64 {
            kv.put(k, k + 1).unwrap();
        }
        for k in 0..40u64 {
            assert_eq!(kv.get(k), Some(k + 1));
        }
        let stats = kv.stats();
        assert_eq!(stats.per_shard.len(), 1);
        assert_eq!(stats.writes(), 40);
    }

    #[test]
    fn mget_answers_in_key_order() {
        let kv = ShardedKv::new(4, 16, 64);
        kv.mset(&[(1, 10), (2, 20), (3, 30)]).unwrap();
        assert_eq!(
            kv.mget(&[3, 99, 1, 2, 3]),
            vec![Some(30), None, Some(10), Some(20), Some(30)]
        );
        assert_eq!(kv.mget(&[]), Vec::<Option<u64>>::new());
    }

    #[test]
    fn mset_later_duplicates_win() {
        let kv = ShardedKv::new(4, 16, 64);
        assert_eq!(kv.mset(&[(7, 1), (7, 2), (7, 3)]), Ok(3));
        assert_eq!(kv.get(7), Some(3));
    }

    #[test]
    fn scan_merges_shards_in_key_order() {
        let kv = ShardedKv::new(4, 8, 64);
        for k in 0..100u64 {
            kv.put(k, k + 500).unwrap();
        }
        let all = kv.scan(0, 1_000);
        assert_eq!(all.len(), 100);
        for (i, &(k, v)) in all.iter().enumerate() {
            assert_eq!(k, i as u64, "keys ascending and dense");
            assert_eq!(v, k + 500);
        }
        assert_eq!(kv.scan(90, 5).len(), 5);
        assert_eq!(kv.scan(90, 5)[0].0, 90);
        assert!(kv.scan(1_000, 5).is_empty());
        assert!(kv.scan(0, 0).is_empty());
    }

    #[test]
    fn scan_limit_is_clamped() {
        let kv = ShardedKv::new(2, 16, 64);
        kv.put(1, 1).unwrap();
        assert_eq!(kv.scan(0, usize::MAX).len(), 1);
    }

    #[test]
    fn batch_counters_count_per_shard_touches() {
        let kv = ShardedKv::new(2, 16, 64);
        kv.mset(&[(1, 1), (2, 2), (3, 3), (4, 4)]).unwrap();
        kv.mget(&[1, 2, 3, 4]);
        kv.scan(0, 10);
        let stats = kv.stats();
        let msets: u64 = stats.per_shard.iter().map(|s| s.msets).sum();
        let mgets: u64 = stats.per_shard.iter().map(|s| s.mgets).sum();
        let scans: u64 = stats.per_shard.iter().map(|s| s.scans).sum();
        // Four keys over two shards: each batch touches 1..=2 shards;
        // the scan visits both.
        assert!((1..=2).contains(&msets), "msets = {msets}");
        assert!((1..=2).contains(&mgets), "mgets = {mgets}");
        assert_eq!(scans, 2);
    }

    #[test]
    fn read_side_batch_counters_survive_concurrent_batches() {
        // mgets/scans are bumped under the *shared* DB lock, where
        // bumpers run concurrently — they must be real RMWs, not
        // LockCounter's plain load+store. Lost counts would leave the
        // quiescent totals short.
        let kv = Arc::new(ShardedKv::new(1, 64, 256));
        let per_thread = 5_000u64;
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let kv = Arc::clone(&kv);
                std::thread::spawn(move || {
                    for _ in 0..per_thread {
                        kv.mget(&[1, 2]);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // One shard: every mget bumps exactly once.
        assert_eq!(kv.stats().per_shard[0].mgets, 4 * per_thread);
    }

    #[test]
    fn stats_while_writing_is_a_coherent_racy_sum() {
        let kv = Arc::new(ShardedKv::new(4, 64, 256));
        let writers: Vec<_> = (0..2)
            .map(|t| {
                let kv = Arc::clone(&kv);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        kv.put(t * 100_000 + i, i).unwrap();
                    }
                })
            })
            .collect();
        // Sampled sums must be monotonic and never exceed the final
        // total — per-shard counters only grow.
        let mut last = 0u64;
        for _ in 0..50 {
            let w = kv.stats().writes();
            assert!(w >= last, "sum went backwards: {w} < {last}");
            assert!(w <= 4_000);
            last = w;
        }
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(kv.stats().writes(), 4_000, "exact once quiescent");
    }

    #[test]
    fn hottest_write_share_detects_skew() {
        let kv = ShardedKv::new(4, 64, 256);
        assert_eq!(kv.stats().hottest_write_share(), 0.0);
        // All writes to one key = one shard: share 1.0.
        for _ in 0..100 {
            kv.put(42, 1).unwrap();
        }
        assert!((kv.stats().hottest_write_share() - 1.0).abs() < 1e-12);
        // Spread writes: share drops toward 1/shards.
        for k in 0..10_000u64 {
            kv.put(k, 1).unwrap();
        }
        assert!(kv.stats().hottest_write_share() < 0.5);
    }

    #[test]
    fn execute_batch_round_trips_and_reads_its_own_writes() {
        let kv = ShardedKv::new(4, 16, 64);
        kv.put(9, 90).unwrap();
        let mget_keys = [1u64, 9, 777];
        let mset_pairs = [(20u64, 200u64), (21, 210)];
        let replies = kv.execute_batch(&[
            BatchOp::Put(1, 10),
            BatchOp::Get(1),   // sees the put earlier in the batch
            BatchOp::Get(9),   // pre-existing key
            BatchOp::Get(555), // miss
            BatchOp::Mset(&mset_pairs),
            BatchOp::Mget(&mget_keys),
            BatchOp::Get(20),
        ]);
        assert_eq!(
            replies,
            vec![
                BatchReply::Done,
                BatchReply::Value(Some(10)),
                BatchReply::Value(Some(90)),
                BatchReply::Value(None),
                BatchReply::Wrote(2),
                BatchReply::Values(vec![Some(10), Some(90), None]),
                BatchReply::Value(Some(200)),
            ]
        );
    }

    #[test]
    fn execute_batch_same_key_ops_apply_in_op_order() {
        let kv = ShardedKv::new(4, 16, 64);
        let replies = kv.execute_batch(&[
            BatchOp::Put(7, 1),
            BatchOp::Get(7),
            BatchOp::Put(7, 2),
            BatchOp::Get(7),
        ]);
        assert_eq!(
            replies,
            vec![
                BatchReply::Done,
                BatchReply::Value(Some(1)),
                BatchReply::Done,
                BatchReply::Value(Some(2)),
            ]
        );
        assert_eq!(kv.get(7), Some(2));
    }

    #[test]
    fn execute_batch_amortizes_writer_admission() {
        // 16 puts to a single-shard store: one exclusive acquisition,
        // not 16 — the admission amortization the pipelined protocol
        // exists for.
        let kv = ShardedKv::new(1, 1_024, 64);
        let before = kv.stats().per_shard[0].db_lock.write_episodes;
        let ops: Vec<BatchOp> = (0..16u64).map(|k| BatchOp::Put(k, k)).collect();
        kv.execute_batch(&ops);
        let after = kv.stats().per_shard[0].db_lock.write_episodes;
        assert_eq!(after - before, 1, "one write episode for 16 puts");
        for k in 0..16u64 {
            assert_eq!(kv.get(k), Some(k));
        }
    }

    #[test]
    fn execute_batch_read_only_group_takes_no_write_episode() {
        let kv = ShardedKv::new(2, 64, 64);
        for k in 0..32u64 {
            kv.put(k, k + 1).unwrap();
        }
        let before: u64 = kv
            .stats()
            .per_shard
            .iter()
            .map(|s| s.db_lock.write_episodes)
            .sum();
        let mget_keys = [3u64, 4];
        let replies = kv.execute_batch(&[
            BatchOp::Get(0),
            BatchOp::Get(1),
            BatchOp::Mget(&mget_keys),
            BatchOp::Get(31),
        ]);
        let after: u64 = kv
            .stats()
            .per_shard
            .iter()
            .map(|s| s.db_lock.write_episodes)
            .sum();
        assert_eq!(after, before, "read-only batch must stay on the read side");
        assert_eq!(replies[0], BatchReply::Value(Some(1)));
        assert_eq!(replies[2], BatchReply::Values(vec![Some(4), Some(5)]));
        assert_eq!(replies[3], BatchReply::Value(Some(32)));
    }

    #[test]
    fn execute_batch_counters_bump_once_per_batch_per_shard() {
        let kv = ShardedKv::new(1, 64, 64);
        let a = [(1u64, 1u64)];
        let b = [(2u64, 2u64)];
        let ka = [1u64];
        let kb = [2u64];
        // Two MSETs and two MGETs in ONE batch on one shard: the
        // batch, not the op, is the admission unit — one bump each.
        kv.execute_batch(&[
            BatchOp::Mset(&a),
            BatchOp::Mset(&b),
            BatchOp::Mget(&ka),
            BatchOp::Mget(&kb),
        ]);
        let s = &kv.stats().per_shard[0];
        assert_eq!(s.msets, 1, "one mset touch per batch");
        assert_eq!(s.mgets, 1, "one mget touch per batch");
    }

    #[test]
    fn execute_batch_empty_and_degenerate_ops() {
        let kv = ShardedKv::new(2, 16, 64);
        assert!(kv.execute_batch(&[]).is_empty());
        let no_keys: [u64; 0] = [];
        let no_pairs: [(u64, u64); 0] = [];
        let replies = kv.execute_batch(&[BatchOp::Mget(&no_keys), BatchOp::Mset(&no_pairs)]);
        assert_eq!(
            replies,
            vec![BatchReply::Values(Vec::new()), BatchReply::Wrote(0)]
        );
    }

    #[test]
    fn sharded_kv_is_sync() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<ShardedKv>();
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "malthus-sharded-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn durable_store_survives_reopen() {
        let dir = temp_dir("reopen");
        {
            let (kv, report) = ShardedKv::open(&dir, 4, 64, 256).unwrap();
            assert_eq!(report.pairs(), 0, "fresh dir replays nothing");
            kv.put(1, 10).unwrap();
            kv.mset(&(0..100u64).map(|k| (k + 50, k)).collect::<Vec<_>>())
                .unwrap();
            let pairs = [(200u64, 1u64)];
            kv.execute_batch(&[BatchOp::Put(7, 70), BatchOp::Mset(&pairs)]);
        }
        let (kv, report) = ShardedKv::open(&dir, 4, 64, 256).unwrap();
        assert!(report.clean(), "clean shutdown: {report:?}");
        assert!(report.pairs() >= 103);
        assert_eq!(kv.get(1), Some(10));
        assert_eq!(kv.get(7), Some(70));
        assert_eq!(kv.get(200), Some(1));
        for k in 0..100u64 {
            assert_eq!(kv.get(k + 50), Some(k), "mset key {}", k + 50);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batch_writes_group_commit_with_one_fsync_per_shard() {
        let dir = temp_dir("group");
        let (kv, _) = ShardedKv::open(&dir, 1, 1_024, 64).unwrap();
        let before = kv.stats().wal_syncs();
        let ops: Vec<BatchOp> = (0..16u64).map(|k| BatchOp::Put(k, k)).collect();
        kv.execute_batch(&ops);
        let after = kv.stats().wal_syncs();
        assert_eq!(after - before, 1, "16 batched puts, one fsync");
        // 16 singleton puts: 16 fsyncs — the contrast bench_wal
        // measures as fsyncs-per-write vs pipeline depth.
        for k in 0..16u64 {
            kv.put(100 + k, k).unwrap();
        }
        assert_eq!(kv.stats().wal_syncs() - after, 16);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_failure_poisons_only_the_affected_shard() {
        use crate::wal::FaultPlan;
        let dir = temp_dir("poison");
        let opts = WalOptions {
            faults: vec![(
                0,
                FaultPlan {
                    fail_sync_at: Some(0),
                    ..FaultPlan::default()
                },
            )],
            ..WalOptions::default()
        };
        let (kv, _) = ShardedKv::open_with(&dir, 4, 64, 256, opts).unwrap();
        let keys = {
            // One key per shard.
            let router = kv.router();
            let mut keys = vec![None; 4];
            for k in 0..100_000u64 {
                keys[router.route(k)].get_or_insert(k);
            }
            keys.into_iter().map(Option::unwrap).collect::<Vec<_>>()
        };
        // Shard 0's first fsync fails: the write is refused and the
        // shard goes read-only.
        let err = kv.put(keys[0], 1).unwrap_err();
        assert_eq!(err, WriteError { shard: 0 });
        assert_eq!(kv.get(keys[0]), None, "refused write must not apply");
        // Healthy shards keep serving writes.
        for (shard, &k) in keys.iter().enumerate().skip(1) {
            kv.put(k, k + 1)
                .unwrap_or_else(|e| panic!("shard {shard}: {e}"));
            assert_eq!(kv.get(k), Some(k + 1));
        }
        // Reads on the poisoned shard keep working; repeat writes
        // keep failing without touching the WAL again.
        assert_eq!(kv.get(keys[0]), None);
        assert!(kv.put(keys[0], 2).is_err());
        let stats = kv.stats();
        assert_eq!(stats.readonly_shards(), 1);
        assert_eq!(stats.wal_errors(), 1);
        assert!(stats.per_shard[0].readonly);
        assert!(!stats.per_shard[1].readonly);
        // A cross-shard mset reports the refusal but still lands the
        // healthy shards' pairs (per-shard atomicity).
        let pairs: Vec<(u64, u64)> = keys.iter().map(|&k| (k, 900)).collect();
        assert_eq!(kv.mset(&pairs), Err(WriteError { shard: 0 }));
        assert_eq!(kv.get(keys[1]), Some(900));
        assert_eq!(kv.get(keys[0]), None);
        // Same refusal through the batch path.
        let replies = kv.execute_batch(&[
            BatchOp::Put(keys[0], 5),
            BatchOp::Put(keys[1], 5),
            BatchOp::Get(keys[1]),
        ]);
        assert_eq!(replies[0], BatchReply::Readonly);
        assert_eq!(replies[1], BatchReply::Done);
        assert_eq!(replies[2], BatchReply::Value(Some(5)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopening_with_a_different_shard_count_is_refused() {
        let dir = temp_dir("mismatch");
        {
            let (kv, _) = ShardedKv::open(&dir, 2, 64, 64).unwrap();
            kv.put(1, 1).unwrap();
        }
        let err = ShardedKv::open(&dir, 4, 64, 64).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
