//! An in-memory hashed cache database (the Figure 9 substrate).
//!
//! §6.6 drives Kyoto Cabinet's `kccachetest` against its in-memory
//! `CacheDB` — a hash table of records whose "performance ... is known
//! to be sensitive to the choice of lock algorithm". `KcCacheDb`
//! reproduces the structure: an open-addressed record table with a
//! bounded record count and FIFO-ish eviction, meant to live behind a
//! single process-wide mutex exactly like the benchmark configuration
//! (the paper modified kccachetest to use plain POSIX mutexes).

use std::collections::{HashMap, VecDeque};

/// Operation mix statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KcStats {
    /// set() calls.
    pub sets: u64,
    /// get() calls that found the record.
    pub get_hits: u64,
    /// get() calls that missed.
    pub get_misses: u64,
    /// remove() calls that deleted something.
    pub removes: u64,
    /// Records evicted by the capacity bound.
    pub evictions: u64,
}

/// An in-memory cache database with a record-count bound.
///
/// Values are fixed-size small payloads (like kccachetest's records);
/// the structure is unsynchronized and is wrapped in one central
/// mutex by the benchmark.
///
/// # Examples
///
/// ```
/// use malthus_storage::KcCacheDb;
///
/// let mut db = KcCacheDb::new(100);
/// db.set(7, [7u8; 16]);
/// assert_eq!(db.get(7), Some([7u8; 16]));
/// assert!(db.remove(7));
/// assert_eq!(db.get(7), None);
/// ```
#[derive(Debug)]
pub struct KcCacheDb {
    records: HashMap<u64, [u8; 16]>,
    /// Insertion order for capacity eviction.
    order: VecDeque<u64>,
    capacity: usize,
    stats: KcStats,
}

impl KcCacheDb {
    /// Creates a database bounded at `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "zero-capacity database");
        KcCacheDb {
            records: HashMap::with_capacity(capacity.min(1 << 20)),
            order: VecDeque::new(),
            capacity,
            stats: KcStats::default(),
        }
    }

    /// Inserts or replaces a record, evicting the oldest insertion if
    /// the bound is hit.
    pub fn set(&mut self, key: u64, value: [u8; 16]) {
        self.stats.sets += 1;
        if self.records.insert(key, value).is_none() {
            self.order.push_back(key);
            if self.records.len() > self.capacity {
                // Evict in insertion order, skipping stale entries of
                // keys that were removed.
                while let Some(victim) = self.order.pop_front() {
                    if self.records.remove(&victim).is_some() {
                        self.stats.evictions += 1;
                        break;
                    }
                }
            }
        }
    }

    /// Fetches a record.
    pub fn get(&mut self, key: u64) -> Option<[u8; 16]> {
        match self.records.get(&key) {
            Some(v) => {
                self.stats.get_hits += 1;
                Some(*v)
            }
            None => {
                self.stats.get_misses += 1;
                None
            }
        }
    }

    /// Deletes a record; returns whether it existed.
    pub fn remove(&mut self, key: u64) -> bool {
        let existed = self.records.remove(&key).is_some();
        if existed {
            self.stats.removes += 1;
        }
        existed
    }

    /// Record count.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Operation statistics.
    pub fn stats(&self) -> KcStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_remove() {
        let mut db = KcCacheDb::new(10);
        db.set(1, [1; 16]);
        assert_eq!(db.get(1), Some([1; 16]));
        assert!(db.remove(1));
        assert!(!db.remove(1));
        assert_eq!(db.get(1), None);
        let s = db.stats();
        assert_eq!(s.sets, 1);
        assert_eq!(s.get_hits, 1);
        assert_eq!(s.get_misses, 1);
        assert_eq!(s.removes, 1);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut db = KcCacheDb::new(3);
        for k in 0..5u64 {
            db.set(k, [k as u8; 16]);
        }
        assert_eq!(db.len(), 3);
        assert_eq!(db.get(0), None, "oldest must be evicted");
        assert!(db.get(4).is_some());
        assert_eq!(db.stats().evictions, 2);
    }

    #[test]
    fn overwrite_does_not_grow() {
        let mut db = KcCacheDb::new(2);
        db.set(1, [1; 16]);
        db.set(1, [2; 16]);
        db.set(1, [3; 16]);
        assert_eq!(db.len(), 1);
        assert_eq!(db.get(1), Some([3; 16]));
        assert_eq!(db.stats().evictions, 0);
    }

    #[test]
    fn eviction_skips_removed_keys() {
        let mut db = KcCacheDb::new(2);
        db.set(1, [1; 16]);
        db.set(2, [2; 16]);
        db.remove(1);
        db.set(3, [3; 16]); // no eviction needed: len is 2
        assert_eq!(db.len(), 2);
        db.set(4, [4; 16]); // evicts 2 (1's order entry is stale)
        assert_eq!(db.get(2), None);
        assert!(db.get(3).is_some() && db.get(4).is_some());
    }

    #[test]
    fn ten_million_key_range_smoke() {
        // The paper fixes the key range at 10 M; a bounded DB over a
        // wide range must keep len at capacity.
        let mut db = KcCacheDb::new(1000);
        for i in 0..10_000u64 {
            db.set((i * 997) % 10_000_000, [0; 16]);
        }
        assert_eq!(db.len(), 1000);
    }
}
