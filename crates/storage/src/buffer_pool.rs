//! Blocking buffer pools (the Figure 14 substrate), in condvar and
//! semaphore flavours.
//!
//! §6.11: a central pool of 1 MB buffers guarded by a mutex, a
//! `NotEmpty` condvar, and a deque of available buffers with LIFO
//! allocation. The experiment varies the condvar's append probability
//! P; the semaphore variant produced "effectively identical" results.
//! CR means fewer distinct buffers circulate, so LLC pressure falls.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use malthus::{CrCondvar, CrSemaphore, Mutex, RawLock, TasLock};

/// A pool-managed buffer: an id (for distinct-buffer accounting) plus
/// its payload.
#[derive(Debug)]
pub struct PoolBuffer {
    /// Stable identity of this buffer within the pool.
    pub id: usize,
    /// Payload bytes.
    pub data: Vec<u8>,
}

/// Condvar-based blocking buffer pool with configurable admission.
///
/// # Examples
///
/// ```
/// use malthus::McsLock;
/// use malthus_storage::BufferPool;
///
/// // 2 buffers of 1 KiB, mostly-LIFO wakeups (P_append = 1/1000).
/// let pool: BufferPool<McsLock> = BufferPool::new(2, 1024, 1.0 - 1.0 / 1000.0, 42);
/// let b = pool.take();
/// pool.put(b);
/// ```
pub struct BufferPool<L: RawLock> {
    available: Mutex<VecDeque<PoolBuffer>, L>,
    not_empty: CrCondvar,
    takes: AtomicU64,
    waits: AtomicU64,
}

impl<L: RawLock + Default> BufferPool<L> {
    /// Creates a pool of `buffers` buffers of `bytes` bytes each, with
    /// condvar prepend probability `prepend_p`.
    ///
    /// # Panics
    ///
    /// Panics if `buffers` is zero.
    pub fn new(buffers: usize, bytes: usize, prepend_p: f64, seed: u64) -> Self {
        assert!(buffers > 0, "empty pool");
        let available = (0..buffers)
            .map(|id| PoolBuffer {
                id,
                data: vec![0u8; bytes],
            })
            .collect();
        BufferPool {
            available: Mutex::new(available),
            not_empty: CrCondvar::with_prepend_probability(prepend_p, seed),
            takes: AtomicU64::new(0),
            waits: AtomicU64::new(0),
        }
    }
}

impl<L: RawLock> BufferPool<L> {
    /// Takes a buffer, blocking until one is available. LIFO
    /// allocation: the most recently returned buffer is preferred
    /// (it is the warmest).
    pub fn take(&self) -> PoolBuffer {
        self.takes.fetch_add(1, Ordering::Relaxed);
        let mut g = self.available.lock();
        while g.is_empty() {
            self.waits.fetch_add(1, Ordering::Relaxed);
            g = self.not_empty.wait(g);
        }
        g.pop_back().expect("non-empty by loop condition")
    }

    /// Returns a buffer to the pool and wakes one waiter.
    pub fn put(&self, buffer: PoolBuffer) {
        self.available.lock().push_back(buffer);
        self.not_empty.notify_one();
    }

    /// Buffers currently available (racy diagnostic).
    pub fn available(&self) -> usize {
        self.available.lock().len()
    }

    /// (takes, waits) counters.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.takes.load(Ordering::Relaxed),
            self.waits.load(Ordering::Relaxed),
        )
    }
}

/// Semaphore-based buffer pool (§6.11's `sem_wait`/`sem_post`
/// variant): the semaphore gates availability, a small spinlock-
/// protected stack holds the buffers.
pub struct SemBufferPool {
    gate: CrSemaphore,
    stack: Mutex<Vec<PoolBuffer>, TasLock>,
}

impl SemBufferPool {
    /// Creates a pool of `buffers` buffers of `bytes` each with
    /// semaphore prepend probability `prepend_p`.
    ///
    /// # Panics
    ///
    /// Panics if `buffers` is zero.
    pub fn new(buffers: usize, bytes: usize, prepend_p: f64, seed: u64) -> Self {
        assert!(buffers > 0, "empty pool");
        let stack = (0..buffers)
            .map(|id| PoolBuffer {
                id,
                data: vec![0u8; bytes],
            })
            .collect();
        SemBufferPool {
            gate: CrSemaphore::with_prepend_probability(buffers, prepend_p, seed),
            stack: Mutex::new(stack),
        }
    }

    /// Takes a buffer, blocking on the semaphore until one exists.
    pub fn take(&self) -> PoolBuffer {
        self.gate.acquire();
        self.stack
            .lock()
            .pop()
            .expect("semaphore guarantees availability")
    }

    /// Returns a buffer and posts the semaphore.
    pub fn put(&self, buffer: PoolBuffer) {
        self.stack.lock().push(buffer);
        self.gate.release();
    }

    /// Buffers currently in the stack (racy diagnostic).
    pub fn available(&self) -> usize {
        self.stack.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malthus::McsLock;
    use std::sync::Arc;

    #[test]
    fn take_put_round_trip() {
        let pool: BufferPool<McsLock> = BufferPool::new(2, 64, 0.0, 1);
        let a = pool.take();
        let b = pool.take();
        assert_ne!(a.id, b.id);
        assert_eq!(pool.available(), 0);
        pool.put(a);
        pool.put(b);
        assert_eq!(pool.available(), 2);
    }

    #[test]
    fn lifo_allocation_prefers_warm_buffer() {
        let pool: BufferPool<McsLock> = BufferPool::new(3, 16, 0.0, 1);
        let a = pool.take();
        let a_id = a.id;
        pool.put(a);
        let again = pool.take();
        assert_eq!(again.id, a_id, "most recently returned must come first");
        pool.put(again);
    }

    #[test]
    fn blocked_take_released_by_put() {
        let pool: Arc<BufferPool<McsLock>> = Arc::new(BufferPool::new(1, 16, 0.999, 7));
        let b = pool.take();
        let p2 = Arc::clone(&pool);
        let h = std::thread::spawn(move || p2.take().id);
        std::thread::sleep(std::time::Duration::from_millis(30));
        let id = b.id;
        pool.put(b);
        assert_eq!(h.join().unwrap(), id);
        let (_takes, waits) = pool.stats();
        assert!(waits >= 1);
    }

    #[test]
    fn contended_pool_conserves_buffers() {
        let pool: Arc<BufferPool<McsLock>> = Arc::new(BufferPool::new(5, 64, 0.999, 3));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let pool = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                for _ in 0..300 {
                    let mut b = pool.take();
                    b.data[0] = b.data[0].wrapping_add(1);
                    pool.put(b);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(pool.available(), 5, "no buffer may be lost");
    }

    #[test]
    fn semaphore_pool_equivalent_behaviour() {
        let pool = Arc::new(SemBufferPool::new(3, 64, 0.999, 5));
        let mut handles = Vec::new();
        for _ in 0..6 {
            let pool = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                for _ in 0..300 {
                    let b = pool.take();
                    pool.put(b);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(pool.available(), 3);
    }
}
