//! A blocking bounded queue (the COZ `producer_consumer` structure).
//!
//! §6.7: "a bounded blocking queue by means of a pthread mutex, a pair
//! of pthread condition variables to signal not-empty and not-full
//! conditions, and a standard C++ `std::queue`. (This implementation
//! idiom ... is common)." Under a FIFO lock, producers typically make
//! a *futile* acquisition (find the queue full, wait), so each message
//! costs 3 lock acquisitions; under CR the system enters "fast flow"
//! where messages cost only 2. The acquisition counters here expose
//! exactly that effect.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use malthus::{CrCondvar, Mutex, RawLock};

/// Queue statistics demonstrating the Figure 10 fast-flow effect.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Total lock acquisitions (initial plus condvar reacquisitions).
    pub acquisitions: u64,
    /// Operations that had to wait at least once (futile first
    /// acquisitions).
    pub futile_waits: u64,
    /// Messages pushed.
    pub pushed: u64,
    /// Messages popped.
    pub popped: u64,
}

/// A mutex + two-condvar bounded queue, generic over the lock.
///
/// # Examples
///
/// ```
/// use malthus::McsLock;
/// use malthus_storage::BoundedQueue;
///
/// let q: BoundedQueue<u32, McsLock> = BoundedQueue::new(4, true);
/// q.push(1);
/// assert_eq!(q.pop(), 1);
/// ```
pub struct BoundedQueue<T, L: RawLock> {
    inner: Mutex<VecDeque<T>, L>,
    not_full: CrCondvar,
    not_empty: CrCondvar,
    bound: usize,
    acquisitions: AtomicU64,
    futile_waits: AtomicU64,
    pushed: AtomicU64,
    popped: AtomicU64,
}

impl<T, L: RawLock + Default> BoundedQueue<T, L> {
    /// Creates a queue bounded at `bound` elements; `cr_condvars`
    /// selects mostly-LIFO (true) or strict FIFO (false) wait lists.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn new(bound: usize, cr_condvars: bool) -> Self {
        assert!(bound > 0, "queue must hold at least one element");
        let mk = || {
            if cr_condvars {
                CrCondvar::mostly_lifo()
            } else {
                CrCondvar::fifo()
            }
        };
        BoundedQueue {
            inner: Mutex::new(VecDeque::new()),
            not_full: mk(),
            not_empty: mk(),
            bound,
            acquisitions: AtomicU64::new(0),
            futile_waits: AtomicU64::new(0),
            pushed: AtomicU64::new(0),
            popped: AtomicU64::new(0),
        }
    }
}

impl<T, L: RawLock> BoundedQueue<T, L> {
    /// Blocking push; waits while the queue is full.
    pub fn push(&self, value: T) {
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
        let mut g = self.inner.lock();
        if g.len() >= self.bound {
            self.futile_waits.fetch_add(1, Ordering::Relaxed);
            while g.len() >= self.bound {
                g = self.not_full.wait(g);
                self.acquisitions.fetch_add(1, Ordering::Relaxed);
            }
        }
        g.push_back(value);
        drop(g);
        self.pushed.fetch_add(1, Ordering::Relaxed);
        self.not_empty.notify_one();
    }

    /// Blocking pop; waits while the queue is empty.
    pub fn pop(&self) -> T {
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
        let mut g = self.inner.lock();
        if g.is_empty() {
            self.futile_waits.fetch_add(1, Ordering::Relaxed);
            while g.is_empty() {
                g = self.not_empty.wait(g);
                self.acquisitions.fetch_add(1, Ordering::Relaxed);
            }
        }
        let v = g.pop_front().expect("non-empty by loop condition");
        drop(g);
        self.popped.fetch_add(1, Ordering::Relaxed);
        self.not_full.notify_one();
        v
    }

    /// Current length (racy diagnostic).
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the queue is empty (racy diagnostic).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            acquisitions: self.acquisitions.load(Ordering::Relaxed),
            futile_waits: self.futile_waits.load(Ordering::Relaxed),
            pushed: self.pushed.load(Ordering::Relaxed),
            popped: self.popped.load(Ordering::Relaxed),
        }
    }

    /// Acquisitions per conveyed message (the Figure 10 figure of
    /// merit: 3 under FIFO pressure, 2 in CR fast flow).
    pub fn acquisitions_per_message(&self) -> f64 {
        let s = self.stats();
        if s.popped == 0 {
            return 0.0;
        }
        s.acquisitions as f64 / s.popped as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malthus::McsLock;
    use std::sync::Arc;

    #[test]
    fn fifo_order_single_thread() {
        let q: BoundedQueue<u32, McsLock> = BoundedQueue::new(10, false);
        q.push(1);
        q.push(2);
        q.push(3);
        assert_eq!(q.pop(), 1);
        assert_eq!(q.pop(), 2);
        assert_eq!(q.pop(), 3);
    }

    #[test]
    fn blocking_pop_waits_for_push() {
        let q: Arc<BoundedQueue<u32, McsLock>> = Arc::new(BoundedQueue::new(4, true));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(30));
        q.push(9);
        assert_eq!(h.join().unwrap(), 9);
    }

    #[test]
    fn blocking_push_waits_for_room() {
        let q: Arc<BoundedQueue<u32, McsLock>> = Arc::new(BoundedQueue::new(1, true));
        q.push(1);
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.push(2));
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert_eq!(q.pop(), 1);
        h.join().unwrap();
        assert_eq!(q.pop(), 2);
        assert!(q.stats().futile_waits >= 1);
    }

    #[test]
    fn producers_and_consumers_convey_everything() {
        let q: Arc<BoundedQueue<u64, McsLock>> = Arc::new(BoundedQueue::new(100, true));
        let mut handles = Vec::new();
        for p in 0..4u64 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..500 {
                    q.push(p * 1_000 + i);
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..2 {
            let q = Arc::clone(&q);
            consumers.push(std::thread::spawn(move || {
                let mut sum = 0u64;
                for _ in 0..1_000 {
                    sum += q.pop();
                }
                sum
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        let expected: u64 = (0..4u64)
            .flat_map(|p| (0..500u64).map(move |i| p * 1_000 + i))
            .sum();
        assert_eq!(total, expected);
        let s = q.stats();
        assert_eq!(s.pushed, 2_000);
        assert_eq!(s.popped, 2_000);
    }

    #[test]
    fn acquisition_accounting_uncontended() {
        let q: BoundedQueue<u32, McsLock> = BoundedQueue::new(10, false);
        q.push(1);
        let _ = q.pop();
        // One acquisition each, no futility.
        let s = q.stats();
        assert_eq!(s.acquisitions, 2);
        assert_eq!(s.futile_waits, 0);
        assert!((q.acquisitions_per_message() - 2.0).abs() < 1e-12);
    }
}
