//! Fixed fibonacci-hash key routing for the sharded KV backend.
//!
//! The sharded store splits one hot lock pair into N independent
//! pairs, which only helps if keys spread across shards no matter how
//! the client picks them — sequential IDs, strided IDs, and xorshift
//! streams must all fan out. Routing is **fibonacci hashing**
//! (Knuth's multiplicative method): multiply the key by
//! 2⁶⁴/φ rounded to odd ([`FIB_HASH_MULT`]), which diffuses
//! low-entropy input bits into the high bits, then map the full hash
//! onto `0..shards` with a multiply-shift (no modulo bias, works for
//! any shard count, not just powers of two).
//!
//! The routing is **fixed**: a key's shard depends only on the key
//! and the shard count. There is no rebalancing and no directory —
//! changing the shard count reshuffles almost every key, so a store's
//! shard count is chosen at construction and never changes.

/// 2⁶⁴ divided by the golden ratio, rounded to the nearest odd
/// integer — the classic fibonacci-hashing multiplier.
pub const FIB_HASH_MULT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Maps keys onto a fixed number of shards.
///
/// # Examples
///
/// ```
/// use malthus_storage::ShardRouter;
///
/// let router = ShardRouter::new(4);
/// // Sequential keys do not pile onto one shard.
/// let shards: Vec<usize> = (0..8u64).map(|k| router.route(k)).collect();
/// assert!(shards.iter().any(|&s| s != shards[0]));
/// // Routing is a pure function of (key, shard count).
/// assert_eq!(router.route(42), ShardRouter::new(4).route(42));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    shards: usize,
}

impl ShardRouter {
    /// A router over `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "a sharded store needs at least one shard");
        ShardRouter { shards }
    }

    /// The shard count this router was built for.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard index of `key`, in `0..shards`.
    #[inline]
    pub fn route(&self, key: u64) -> usize {
        let h = key.wrapping_mul(FIB_HASH_MULT);
        // Multiply-shift range reduction: the high 64 bits of
        // h * shards are uniform over 0..shards for uniform h.
        ((u128::from(h) * self.shards as u128) >> 64) as usize
    }

    /// Groups the *indices* of `keys` by destination shard: entry `s`
    /// holds the positions in `keys` routed to shard `s`, in input
    /// order.
    ///
    /// Batched cross-shard operations (MGET/MSET) use this to touch
    /// each shard's lock exactly once while still answering in the
    /// caller's key order.
    pub fn group_indices(&self, keys: impl IntoIterator<Item = u64>) -> Vec<Vec<usize>> {
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.shards];
        for (i, key) in keys.into_iter().enumerate() {
            groups[self.route(key)].push(i);
        }
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_are_in_range_and_deterministic() {
        for shards in [1usize, 2, 3, 4, 7, 16] {
            let r = ShardRouter::new(shards);
            for key in (0..1_000u64).chain([u64::MAX, u64::MAX / 2]) {
                let s = r.route(key);
                assert!(s < shards, "key {key} -> {s} of {shards}");
                assert_eq!(s, r.route(key), "routing must be stable");
            }
        }
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let r = ShardRouter::new(1);
        for key in [0u64, 1, 99, u64::MAX] {
            assert_eq!(r.route(key), 0);
        }
    }

    #[test]
    fn sequential_keys_spread_evenly() {
        // The distribution bound the integration tests rely on:
        // under uniform (here: sequential, the worst low-entropy
        // case) keys, no shard receives more than 2x the mean.
        for shards in [2usize, 4, 8] {
            let r = ShardRouter::new(shards);
            let mut counts = vec![0u64; shards];
            let n = 10_000u64;
            for key in 0..n {
                counts[r.route(key)] += 1;
            }
            let mean = n as f64 / shards as f64;
            for (s, &c) in counts.iter().enumerate() {
                assert!(
                    (c as f64) < 2.0 * mean,
                    "shard {s} got {c} of {n} ({shards} shards)"
                );
                assert!(c > 0, "shard {s} starved");
            }
        }
    }

    #[test]
    fn strided_keys_spread_too() {
        // Strides defeat naive modulo routing (stride 4 mod 4 pins
        // one shard); the fibonacci multiplier must break them up.
        let r = ShardRouter::new(4);
        let mut counts = [0u64; 4];
        for i in 0..4_000u64 {
            counts[r.route(i * 4)] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(c > 400, "shard {s} got {c} of 4000 under stride 4");
        }
    }

    #[test]
    fn group_indices_partitions_in_input_order() {
        let r = ShardRouter::new(3);
        let keys = [5u64, 17, 5, 900, 42];
        let groups = r.group_indices(keys.iter().copied());
        assert_eq!(groups.len(), 3);
        let mut seen: Vec<usize> = groups.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4], "every index exactly once");
        for (shard, group) in groups.iter().enumerate() {
            for &i in group {
                assert_eq!(r.route(keys[i]), shard);
            }
            assert!(group.windows(2).all(|w| w[0] < w[1]), "input order kept");
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        ShardRouter::new(0);
    }
}
