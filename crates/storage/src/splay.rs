//! A splay-tree free-list allocator arena (the Solaris libc design).
//!
//! §6.4: "the default Solaris libc memory allocator ... is implemented
//! as a splay tree protected by a central mutex. While not scalable,
//! this allocator yields a dense heap and small footprint and thus
//! remains the default." The mmicro experiment (Figure 7) hammers that
//! central mutex; this arena reproduces the design: free blocks live
//! in a size-keyed splay tree, allocation splays a best-fit block to
//! the root, splits the remainder back, and frees coalesce forward.
//!
//! The arena hands out *offsets* into a notional heap rather than raw
//! pointers — the workloads only need the allocator's lock-and-tree
//! behaviour, not actual storage.

use std::collections::BTreeMap;

/// A block handle: offset into the arena plus its size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Block {
    /// Byte offset within the arena.
    pub offset: u64,
    /// Usable size in bytes.
    pub size: u64,
}

#[derive(Debug)]
struct SplayNode {
    /// Key: (size, offset) so equal sizes stay distinct.
    size: u64,
    offset: u64,
    left: Option<Box<SplayNode>>,
    right: Option<Box<SplayNode>>,
}

/// A single-heap splay-tree allocator.
///
/// Not internally synchronized: wrap it in a
/// [`Mutex`](malthus::Mutex) exactly as libc wraps its heap in one
/// mutex — that central lock is the point of the experiment.
///
/// # Examples
///
/// ```
/// use malthus_storage::SplayArena;
///
/// let mut arena = SplayArena::new(1 << 20);
/// let b = arena.alloc(1000).unwrap();
/// assert!(b.size >= 1000);
/// arena.free(b);
/// assert_eq!(arena.allocated_bytes(), 0);
/// ```
#[derive(Debug)]
pub struct SplayArena {
    root: Option<Box<SplayNode>>,
    capacity: u64,
    allocated: u64,
    /// Offset -> size of live allocations (for free validation).
    live: BTreeMap<u64, u64>,
    /// Offset -> size of *free* blocks: a side index for O(log n)
    /// adjacency lookups during coalescing. The splay tree remains
    /// the size-ordered allocation structure (the authentic Solaris
    /// design); this index is bookkeeping.
    free_by_offset: BTreeMap<u64, u64>,
    splay_steps: u64,
}

impl SplayArena {
    /// Minimum carved block size (small remainders are kept attached).
    const MIN_SPLIT: u64 = 16;

    /// Creates an arena managing `capacity` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "empty arena");
        let mut free_by_offset = BTreeMap::new();
        free_by_offset.insert(0, capacity);
        SplayArena {
            root: Some(Box::new(SplayNode {
                size: capacity,
                offset: 0,
                left: None,
                right: None,
            })),
            capacity,
            allocated: 0,
            live: BTreeMap::new(),
            free_by_offset,
            splay_steps: 0,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated
    }

    /// Number of live allocations.
    pub fn live_blocks(&self) -> usize {
        self.live.len()
    }

    /// Total splay rotations performed (workload cost proxy).
    pub fn splay_steps(&self) -> u64 {
        self.splay_steps
    }

    /// Allocates a block of at least `size` bytes, or `None` if no
    /// free block fits.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn alloc(&mut self, size: u64) -> Option<Block> {
        assert!(size > 0, "zero-sized allocation");
        let root = self.root.take();
        let (root, steps) = splay_best_fit(root, size);
        self.splay_steps += steps;
        self.root = root;
        let fits = matches!(&self.root, Some(n) if n.size >= size);
        if !fits {
            return None;
        }
        // Detach the root (best-fit block).
        let mut node = self.root.take().expect("checked above");
        self.free_by_offset.remove(&node.offset);
        self.root = join(node.left.take(), node.right.take());
        // Split the remainder back into the tree.
        let granted = if node.size >= size + Self::MIN_SPLIT {
            let rem = SplayNode {
                size: node.size - size,
                offset: node.offset + size,
                left: None,
                right: None,
            };
            self.insert(Box::new(rem));
            size
        } else {
            node.size
        };
        let block = Block {
            offset: node.offset,
            size: granted,
        };
        self.allocated += granted;
        self.live.insert(block.offset, block.size);
        Some(block)
    }

    /// Returns a block to the free tree, coalescing with an adjacent
    /// following free block when possible.
    ///
    /// # Panics
    ///
    /// Panics if `block` is not a live allocation from this arena.
    pub fn free(&mut self, block: Block) {
        let size = self
            .live
            .remove(&block.offset)
            .expect("free of unknown or already-freed block");
        assert_eq!(size, block.size, "free with corrupted block size");
        self.allocated -= size;
        // Coalesce with the free neighbour that starts right after us.
        let mut start = block.offset;
        let mut total = block.size;
        if let Some(next) = self.remove_free_block(block.offset + block.size) {
            total += next.size;
        }
        // Coalesce with the free neighbour that ends right at us.
        let prev = self
            .free_by_offset
            .range(..block.offset)
            .next_back()
            .map(|(&o, &s)| (o, s));
        if let Some((po, ps)) = prev {
            if po + ps == start {
                let removed = self.remove_free_block(po).expect("index consistent");
                start = removed.offset;
                total += removed.size;
            }
        }
        self.insert(Box::new(SplayNode {
            size: total,
            offset: start,
            left: None,
            right: None,
        }));
    }

    fn insert(&mut self, node: Box<SplayNode>) {
        self.free_by_offset.insert(node.offset, node.size);
        let root = self.root.take();
        self.root = Some(insert_node(root, node));
    }

    /// Removes the free block starting exactly at `offset`, if any,
    /// keeping the offset index in sync.
    fn remove_free_block(&mut self, offset: u64) -> Option<Block> {
        self.free_by_offset.remove(&offset)?;
        let removed = self.try_remove_free_at(offset);
        debug_assert!(removed.is_some(), "offset index out of sync");
        removed
    }

    /// Removes the free block starting exactly at `offset` from the
    /// splay tree, if present.
    fn try_remove_free_at(&mut self, offset: u64) -> Option<Block> {
        fn walk(node: &mut Option<Box<SplayNode>>, offset: u64) -> Option<Block> {
            let n = node.as_mut()?;
            if n.offset == offset {
                let detached = node.take().expect("present");
                let block = Block {
                    offset: detached.offset,
                    size: detached.size,
                };
                let mut d = detached;
                *node = join(d.left.take(), d.right.take());
                return Some(block);
            }
            walk(&mut n.left, offset).or_else(|| {
                let n = node.as_mut().expect("still present");
                walk(&mut n.right, offset)
            })
        }
        walk(&mut self.root, offset)
    }

    /// Largest free block available (diagnostic).
    pub fn largest_free(&self) -> u64 {
        fn walk(n: &Option<Box<SplayNode>>) -> u64 {
            match n {
                None => 0,
                Some(b) => b.size.max(walk(&b.left)).max(walk(&b.right)),
            }
        }
        walk(&self.root)
    }
}

/// Key comparison: by (size, offset).
fn key_less(a_size: u64, a_off: u64, b_size: u64, b_off: u64) -> bool {
    (a_size, a_off) < (b_size, b_off)
}

/// Bottom-up-style splay via the simple top-down rotation pair walk;
/// brings the best-fit (smallest size >= want) candidate toward the
/// root. Returns (new root, rotation count).
fn splay_best_fit(root: Option<Box<SplayNode>>, want: u64) -> (Option<Box<SplayNode>>, u64) {
    // Find the best-fit key first.
    let mut best: Option<(u64, u64)> = None;
    {
        let mut cur = &root;
        while let Some(n) = cur {
            if n.size >= want {
                best = Some((n.size, n.offset));
                cur = &n.left;
            } else {
                cur = &n.right;
            }
        }
    }
    let Some((bs, bo)) = best else {
        return (root, 0);
    };
    splay_to_root(root, bs, bo)
}

/// Splays the node with key (size, offset) to the root via recursive
/// zig rotations; the node must exist.
fn splay_to_root(
    root: Option<Box<SplayNode>>,
    size: u64,
    offset: u64,
) -> (Option<Box<SplayNode>>, u64) {
    let Some(mut n) = root else {
        return (None, 0);
    };
    if n.size == size && n.offset == offset {
        return (Some(n), 0);
    }
    if key_less(size, offset, n.size, n.offset) {
        let (child, steps) = splay_to_root(n.left.take(), size, offset);
        match child {
            Some(mut c) => {
                // Right rotation: c becomes root.
                n.left = c.right.take();
                c.right = Some(n);
                (Some(c), steps + 1)
            }
            None => (Some(n), steps),
        }
    } else {
        let (child, steps) = splay_to_root(n.right.take(), size, offset);
        match child {
            Some(mut c) => {
                // Left rotation.
                n.right = c.left.take();
                c.left = Some(n);
                (Some(c), steps + 1)
            }
            None => (Some(n), steps),
        }
    }
}

fn insert_node(root: Option<Box<SplayNode>>, node: Box<SplayNode>) -> Box<SplayNode> {
    match root {
        None => node,
        Some(mut r) => {
            if key_less(node.size, node.offset, r.size, r.offset) {
                r.left = Some(insert_node(r.left.take(), node));
            } else {
                r.right = Some(insert_node(r.right.take(), node));
            }
            r
        }
    }
}

/// Joins two subtrees where all keys in `left` < all keys in `right`:
/// the maximum of `left` is rotated to its root, whose (now empty)
/// right child receives `right`.
fn join(left: Option<Box<SplayNode>>, right: Option<Box<SplayNode>>) -> Option<Box<SplayNode>> {
    match (left, right) {
        (None, r) => r,
        (l, None) => l,
        (Some(l), Some(r)) => {
            let mut root = rotate_max_to_root(l);
            debug_assert!(root.right.is_none());
            root.right = Some(r);
            Some(root)
        }
    }
}

/// Left-rotates until the subtree maximum is the root.
fn rotate_max_to_root(mut n: Box<SplayNode>) -> Box<SplayNode> {
    while n.right.is_some() {
        let mut r = n.right.take().expect("checked");
        n.right = r.left.take();
        r.left = Some(n);
        n = r;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_round_trip() {
        let mut a = SplayArena::new(4096);
        let b = a.alloc(100).unwrap();
        assert!(b.size >= 100);
        assert_eq!(a.live_blocks(), 1);
        a.free(b);
        assert_eq!(a.allocated_bytes(), 0);
        assert_eq!(a.live_blocks(), 0);
    }

    #[test]
    fn distinct_blocks_do_not_overlap() {
        let mut a = SplayArena::new(1 << 16);
        let mut blocks = Vec::new();
        for _ in 0..32 {
            blocks.push(a.alloc(1000).unwrap());
        }
        let mut sorted = blocks.clone();
        sorted.sort_by_key(|b| b.offset);
        for w in sorted.windows(2) {
            assert!(
                w[0].offset + w[0].size <= w[1].offset,
                "overlap: {:?} {:?}",
                w[0],
                w[1]
            );
        }
        for b in blocks {
            a.free(b);
        }
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut a = SplayArena::new(1024);
        let b = a.alloc(1000).unwrap();
        assert!(a.alloc(1000).is_none());
        a.free(b);
        assert!(a.alloc(1000).is_some());
    }

    #[test]
    fn coalescing_recovers_large_blocks() {
        let mut a = SplayArena::new(4096);
        let b1 = a.alloc(2048).unwrap();
        let b2 = a.alloc(2000).unwrap();
        // Free in address order so forward coalescing applies.
        a.free(b1);
        a.free(b2);
        assert!(
            a.largest_free() >= 4000,
            "coalescing failed: largest {}",
            a.largest_free()
        );
    }

    #[test]
    fn steady_state_mmicro_pattern() {
        // The mmicro loop: allocate 1000 blocks of 1000 bytes, free
        // them all, repeatedly. Frees are interleaved (evens then
        // odds) so the free tree genuinely fragments and re-coalesces.
        let mut a = SplayArena::new(4 << 20);
        for _round in 0..10 {
            let blocks: Vec<Block> = (0..1000).map(|_| a.alloc(1000).unwrap()).collect();
            assert_eq!(a.live_blocks(), 1000);
            // Free the evens: ~500 disjoint free fragments.
            for (i, b) in blocks.iter().enumerate() {
                if i % 2 == 0 {
                    a.free(*b);
                }
            }
            // Allocate small blocks *from the fragmented tree* — this
            // is where real splay rotations happen.
            let smalls: Vec<Block> = (0..300).map(|_| a.alloc(500).unwrap()).collect();
            for b in smalls {
                a.free(b);
            }
            for (i, b) in blocks.iter().enumerate() {
                if i % 2 == 1 {
                    a.free(*b);
                }
            }
            assert_eq!(a.allocated_bytes(), 0);
        }
        assert!(a.splay_steps() > 0, "splaying must actually happen");
        // Full coalescing must eventually restore one maximal block.
        assert_eq!(a.largest_free(), a.capacity());
    }

    #[test]
    #[should_panic(expected = "free of unknown")]
    fn double_free_panics() {
        let mut a = SplayArena::new(4096);
        let b = a.alloc(64).unwrap();
        a.free(b);
        a.free(b);
    }

    #[test]
    fn varied_sizes_best_fit() {
        let mut a = SplayArena::new(1 << 16);
        let small = a.alloc(64).unwrap();
        let big = a.alloc(8192).unwrap();
        a.free(small);
        a.free(big);
        // A 100-byte request should not consume the 8 KB block when a
        // small one fits... after coalescing both may have merged; at
        // minimum the allocation succeeds and stays within capacity.
        let c = a.alloc(100).unwrap();
        assert!(c.size < 8192 || a.largest_free() > 0);
        a.free(c);
    }
}
