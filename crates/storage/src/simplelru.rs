//! A port of CEPH's `SimpleLRU` (the Figure 12 software cache).
//!
//! §6.9: an ordered map (CEPH uses a red-black `std::map`; we use the
//! standard library's `BTreeMap`) plus an LRU list; recently accessed
//! elements move to the front and excess elements are trimmed from the
//! tail. On a miss the key itself is installed as the value. The
//! interesting behaviour for the paper is *software-cache thrashing*:
//! with many threads circulating, each thread's keyset evicts the
//! others' — the LRU cache behaves like a small perfectly-associative
//! shared hardware cache.

use std::collections::BTreeMap;

/// Hit/miss and displacement counters.
///
/// §6.9 footnote: "In LRUCache it is trivial to collect displacement
/// statistics and discern self-displacement of cache elements versus
/// displacement caused by other threads, which reflects destructive
/// interference."
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LruStats {
    /// Lookups that found the key.
    pub hits: u64,
    /// Lookups that installed the key.
    pub misses: u64,
    /// Evictions where the evicted entry was installed by the same
    /// thread now inserting.
    pub self_displacements: u64,
    /// Evictions caused by a different thread (interference).
    pub cross_displacements: u64,
}

impl LruStats {
    /// Miss ratio in `[0, 1]`; 0 for no lookups.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct Entry {
    value: u32,
    /// Monotonic recency stamp (larger = more recent).
    stamp: u64,
    /// Which thread installed this entry.
    installer: u32,
}

/// A capacity-bounded LRU map from `u32` keys to `u32` values.
///
/// Like the original, this structure is not internally synchronized;
/// the benchmark wraps it in a single mutex — that lock is the
/// experiment.
///
/// # Examples
///
/// ```
/// use malthus_storage::SimpleLru;
///
/// let mut lru = SimpleLru::new(2);
/// lru.lookup_or_insert(1, 0);
/// lru.lookup_or_insert(2, 0);
/// lru.lookup_or_insert(3, 0); // evicts key 1 (LRU)
/// assert!(!lru.contains(1));
/// assert!(lru.contains(2) && lru.contains(3));
/// ```
#[derive(Debug)]
pub struct SimpleLru {
    map: BTreeMap<u32, Entry>,
    /// stamp -> key, the recency order (BTreeMap as ordered list).
    order: BTreeMap<u64, u32>,
    capacity: usize,
    clock: u64,
    stats: LruStats,
}

impl SimpleLru {
    /// Creates a cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "zero-capacity cache");
        SimpleLru {
            map: BTreeMap::new(),
            order: BTreeMap::new(),
            capacity,
            clock: 0,
            stats: LruStats::default(),
        }
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether `key` is resident (does not touch recency).
    pub fn contains(&self, key: u32) -> bool {
        self.map.contains_key(&key)
    }

    /// Counters.
    pub fn stats(&self) -> LruStats {
        self.stats
    }

    /// Looks `key` up on behalf of `thread`; on a miss, installs the
    /// key as its own value (the paper's miss policy) and trims the
    /// tail. Returns the value.
    pub fn lookup_or_insert(&mut self, key: u32, thread: u32) -> u32 {
        self.clock += 1;
        let clock = self.clock;
        if let Some(e) = self.map.get_mut(&key) {
            self.stats.hits += 1;
            // Move to the front of the recency order.
            let old = e.stamp;
            e.stamp = clock;
            let v = e.value;
            self.order.remove(&old);
            self.order.insert(clock, key);
            return v;
        }
        self.stats.misses += 1;
        if self.map.len() == self.capacity {
            // Trim the LRU tail (smallest stamp).
            let (&oldest, &victim_key) = self.order.iter().next().expect("cache full");
            let victim = self.map.remove(&victim_key).expect("consistent");
            self.order.remove(&oldest);
            if victim.installer == thread {
                self.stats.self_displacements += 1;
            } else {
                self.stats.cross_displacements += 1;
            }
        }
        self.map.insert(
            key,
            Entry {
                value: key,
                stamp: clock,
                installer: thread,
            },
        );
        self.order.insert(clock, key);
        key
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_value_and_refreshes() {
        let mut c = SimpleLru::new(2);
        c.lookup_or_insert(10, 0);
        c.lookup_or_insert(20, 0);
        // Touch 10 so 20 becomes LRU.
        assert_eq!(c.lookup_or_insert(10, 0), 10);
        c.lookup_or_insert(30, 0);
        assert!(c.contains(10));
        assert!(!c.contains(20));
    }

    #[test]
    fn capacity_is_enforced() {
        let mut c = SimpleLru::new(5);
        for k in 0..100 {
            c.lookup_or_insert(k, 0);
        }
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn displacement_attribution() {
        let mut c = SimpleLru::new(1);
        c.lookup_or_insert(1, 7); // installed by thread 7
        c.lookup_or_insert(2, 7); // evicts own entry
        assert_eq!(c.stats().self_displacements, 1);
        c.lookup_or_insert(3, 9); // thread 9 evicts thread 7's entry
        assert_eq!(c.stats().cross_displacements, 1);
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let mut c = SimpleLru::new(4);
        c.lookup_or_insert(1, 0);
        c.lookup_or_insert(1, 0);
        c.lookup_or_insert(2, 0);
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
    }

    #[test]
    fn working_set_within_capacity_stops_missing() {
        let mut c = SimpleLru::new(10);
        for _ in 0..5 {
            for k in 0..10 {
                c.lookup_or_insert(k, 0);
            }
        }
        assert_eq!(c.stats().misses, 10);
        assert_eq!(c.stats().hits, 40);
    }

    #[test]
    #[should_panic(expected = "zero-capacity cache")]
    fn zero_capacity_panics() {
        SimpleLru::new(0);
    }
}
