//! A leveldb-shaped key-value store (the Figure 8 substrate).
//!
//! §6.5 runs leveldb 1.18's `readwhilewriting` benchmark and notes
//! that "both the central database lock and internal LRUCache locks
//! are highly contended". MiniKv reproduces that *locking structure*:
//! a write-ahead memtable behind one central mutex-protected state
//! plus a block cache ([`SimpleLru`]) behind its own lock. Compaction
//! is modeled by freezing the memtable into sorted immutable runs.
//!
//! Like leveldb, reads consult the memtable, then the frozen runs via
//! the block cache.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::simplelru::SimpleLru;

/// A tiny LSM-style store: memtable + immutable sorted runs + block
/// cache.
///
/// Not internally synchronized: the benchmark wraps the *database*
/// (memtable + runs) in one lock and the block cache in another,
/// matching the two contended locks of §6.5. The read/write counters
/// are relaxed atomics so the read path ([`MiniKv::get`],
/// [`MiniKv::get_memtable`]) takes `&self` **and** `MiniKv` is `Sync`
/// — several readers may share the store at once behind a Malthusian
/// read-write lock. Like the locks' `cr_stats`, counter snapshots are
/// tear-free but exact only while the owning lock is quiescent.
#[derive(Debug)]
pub struct MiniKv {
    memtable: BTreeMap<u64, u64>,
    /// Immutable runs, newest first. Each run is sorted.
    runs: Vec<Vec<(u64, u64)>>,
    memtable_limit: usize,
    writes: AtomicU64,
    reads: AtomicU64,
}

impl MiniKv {
    /// Creates a store that freezes its memtable at `memtable_limit`
    /// entries.
    ///
    /// # Panics
    ///
    /// Panics if `memtable_limit` is zero.
    pub fn new(memtable_limit: usize) -> Self {
        assert!(memtable_limit > 0, "memtable must hold something");
        MiniKv {
            memtable: BTreeMap::new(),
            runs: Vec::new(),
            memtable_limit,
            writes: AtomicU64::new(0),
            reads: AtomicU64::new(0),
        }
    }

    /// Inserts or updates a key; may freeze the memtable into a run.
    pub fn put(&mut self, key: u64, value: u64) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.memtable.insert(key, value);
        if self.memtable.len() >= self.memtable_limit {
            let run: Vec<(u64, u64)> = std::mem::take(&mut self.memtable).into_iter().collect();
            self.runs.insert(0, run);
            // Background compaction stand-in: bound the run count by
            // merging the two oldest runs.
            if self.runs.len() > 4 {
                let old = self.runs.pop().expect("len > 4");
                let older = self.runs.pop().expect("len > 3");
                let mut merged: BTreeMap<u64, u64> = older.into_iter().collect();
                // `old` is newer than `older`: its values win.
                for (k, v) in old {
                    merged.insert(k, v);
                }
                self.runs.push(merged.into_iter().collect());
            }
        }
    }

    /// Point lookup through memtable then runs; `cache` is consulted
    /// per run block touched (modeling block-cache traffic).
    ///
    /// Takes `&self` and counts one read: the whole read path works
    /// through a shared reference, so a Malthusian read-write lock can
    /// serve gets without exclusive access to the store.
    pub fn get(&self, key: u64, cache: &mut SimpleLru, thread: u32) -> Option<u64> {
        self.get_memtable(key)
            .or_else(|| self.get_runs(key, cache, thread))
    }

    /// The first half of the read path: memtable only, no block-cache
    /// traffic. Counts one read.
    ///
    /// Split out so a caller holding only a *shared* DB lock can serve
    /// memtable hits without ever touching the (exclusive) block-cache
    /// lock; on a miss it continues with [`MiniKv::get_runs`].
    pub fn get_memtable(&self, key: u64) -> Option<u64> {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.memtable.get(&key).copied()
    }

    /// The second half of the read path: the frozen runs, consulting
    /// `cache` once per run touched. Does **not** count a read (the
    /// preceding [`MiniKv::get_memtable`] already did).
    pub fn get_runs(&self, key: u64, cache: &mut SimpleLru, thread: u32) -> Option<u64> {
        for (run_idx, run) in self.runs.iter().enumerate() {
            // One cache lookup per run consulted: block id = run plus
            // the key's block within the run.
            let block = ((run_idx as u32) << 24) | (((key as u32) & 0x00FF_FFFF) / 64);
            cache.lookup_or_insert(block, thread);
            if let Ok(pos) = run.binary_search_by_key(&key, |&(k, _)| k) {
                return Some(run[pos].1);
            }
        }
        None
    }

    /// Ordered range scan: up to `limit` live `(key, value)` pairs
    /// with `key >= start`, ascending, with the usual LSM shadowing
    /// (memtable over runs, newer runs over older).
    ///
    /// Takes `&self` like the rest of the read path, so a caller
    /// holding only a shared DB lock can scan. Does not touch the
    /// block cache: a scan is modeled as a sequential run sweep, which
    /// leveldb also services outside the random-lookup cache path.
    /// Counts one read.
    pub fn scan_from(&self, start: u64, limit: usize) -> Vec<(u64, u64)> {
        self.reads.fetch_add(1, Ordering::Relaxed);
        if limit == 0 {
            return Vec::new();
        }
        // Any key among the merged view's first `limit` must be among
        // the first `limit` candidates of *some* source, so clipping
        // each source to `limit` entries loses nothing. Sources are
        // merged oldest-first so newer values overwrite older ones.
        let mut merged: BTreeMap<u64, u64> = BTreeMap::new();
        for run in self.runs.iter().rev() {
            let from = run.partition_point(|&(k, _)| k < start);
            for &(k, v) in run[from..].iter().take(limit) {
                merged.insert(k, v);
            }
        }
        for (&k, &v) in self.memtable.range(start..).take(limit) {
            merged.insert(k, v);
        }
        merged.into_iter().take(limit).collect()
    }

    /// Total keys resident (memtable + runs, with duplicates).
    pub fn len_estimate(&self) -> usize {
        self.memtable.len() + self.runs.iter().map(Vec::len).sum::<usize>()
    }

    /// Writes accepted.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Reads served.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Number of frozen runs.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> SimpleLru {
        SimpleLru::new(1024)
    }

    #[test]
    fn put_get_round_trip() {
        let mut kv = MiniKv::new(100);
        let mut c = cache();
        kv.put(1, 10);
        kv.put(2, 20);
        assert_eq!(kv.get(1, &mut c, 0), Some(10));
        assert_eq!(kv.get(2, &mut c, 0), Some(20));
        assert_eq!(kv.get(3, &mut c, 0), None);
    }

    #[test]
    fn update_wins() {
        let mut kv = MiniKv::new(100);
        let mut c = cache();
        kv.put(1, 10);
        kv.put(1, 11);
        assert_eq!(kv.get(1, &mut c, 0), Some(11));
    }

    #[test]
    fn memtable_freezes_into_runs() {
        let mut kv = MiniKv::new(10);
        let mut c = cache();
        for k in 0..25 {
            kv.put(k, k * 2);
        }
        assert!(kv.run_count() >= 2, "freezes expected");
        // All keys still readable after freezing.
        for k in 0..25 {
            assert_eq!(kv.get(k, &mut c, 0), Some(k * 2), "key {k}");
        }
    }

    #[test]
    fn newer_runs_shadow_older() {
        let mut kv = MiniKv::new(4);
        let mut c = cache();
        for round in 0..6u64 {
            for k in 0..4u64 {
                kv.put(k, round * 100 + k);
            }
        }
        for k in 0..4u64 {
            assert_eq!(kv.get(k, &mut c, 0), Some(500 + k), "key {k}");
        }
    }

    #[test]
    fn compaction_bounds_run_count() {
        let mut kv = MiniKv::new(4);
        for k in 0..400u64 {
            kv.put(k, k);
        }
        assert!(kv.run_count() <= 5, "runs: {}", kv.run_count());
    }

    #[test]
    fn get_works_through_a_shared_reference() {
        let mut kv = MiniKv::new(100);
        kv.put(1, 10);
        let shared: &MiniKv = &kv;
        let mut c = cache();
        assert_eq!(shared.get(1, &mut c, 0), Some(10));
        assert_eq!(shared.get(2, &mut c, 0), None);
        assert_eq!(shared.reads(), 2);
        assert_eq!(shared.writes(), 1);
    }

    #[test]
    fn minikv_is_sync_for_shared_readers() {
        // The RW-lock read path hands `&MiniKv` to several threads at
        // once; the store must stay `Sync` (relaxed-atomic counters).
        fn assert_sync<T: Sync>() {}
        assert_sync::<MiniKv>();
    }

    #[test]
    fn split_read_path_matches_get() {
        let mut kv = MiniKv::new(4);
        let mut c = cache();
        // 17 inserts with limit 4: freezes after keys 3/7/11/15, so
        // key 16 is guaranteed memtable-resident afterwards.
        for k in 0..17u64 {
            kv.put(k, k + 100);
        }
        for k in 0..17u64 {
            let via_split = kv.get_memtable(k).or_else(|| kv.get_runs(k, &mut c, 0));
            assert_eq!(via_split, Some(k + 100), "key {k}");
        }
        // Memtable-resident keys never touch the cache via the split
        // path; frozen keys do.
        let memtable_key = 16u64;
        let before = c.stats().hits + c.stats().misses;
        assert_eq!(
            kv.get_memtable(memtable_key),
            Some(memtable_key + 100),
            "key {memtable_key} must be memtable-resident"
        );
        let after = c.stats().hits + c.stats().misses;
        assert_eq!(before, after, "memtable hit must skip the cache");
        // One read counted per split-path lookup (17 + the probe).
        assert_eq!(kv.reads(), 18);
    }

    #[test]
    fn scan_merges_memtable_and_runs_with_shadowing() {
        let mut kv = MiniKv::new(4);
        // Two generations of the same keys: the newer values must win.
        for k in 0..12u64 {
            kv.put(k, k);
        }
        for k in 0..6u64 {
            kv.put(k, k + 1_000);
        }
        assert!(kv.run_count() >= 1, "freezes expected");
        let all = kv.scan_from(0, 100);
        assert_eq!(all.len(), 12);
        for (i, &(k, v)) in all.iter().enumerate() {
            assert_eq!(k, i as u64, "ascending dense keys");
            let expect = if k < 6 { k + 1_000 } else { k };
            assert_eq!(v, expect, "key {k}");
        }
    }

    #[test]
    fn scan_respects_start_and_limit() {
        let mut kv = MiniKv::new(4);
        for k in 0..20u64 {
            kv.put(k, k * 2);
        }
        let window = kv.scan_from(7, 5);
        assert_eq!(window, vec![(7, 14), (8, 16), (9, 18), (10, 20), (11, 22)]);
        assert!(kv.scan_from(100, 5).is_empty());
        assert!(kv.scan_from(0, 0).is_empty());
        // Scans count as reads.
        assert!(kv.reads() >= 3);
    }

    #[test]
    fn reads_touch_block_cache() {
        let mut kv = MiniKv::new(4);
        let mut c = cache();
        for k in 0..16u64 {
            kv.put(k, k);
        }
        let before = c.stats().hits + c.stats().misses;
        kv.get(0, &mut c, 0);
        let after = c.stats().hits + c.stats().misses;
        assert!(after > before, "run reads must hit the block cache");
    }
}
