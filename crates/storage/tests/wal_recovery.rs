//! Recovery edge cases for the per-shard write-ahead log, end to end
//! through `ShardedKv::open`: empty logs, torn tails, mid-file
//! checksum corruption, replay idempotence, and checkpoint
//! compaction. Everything here works on real files in a temp
//! directory — the same path a crashed `kv_server` takes at reboot.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use malthus_storage::wal::RECORD_HEADER_BYTES;
use malthus_storage::{ShardedKv, WalOptions};

const MEMTABLE: usize = 1_024;
const CACHE: usize = 256;

/// A fresh per-test directory (pid + counter, no wall-clock entropy).
fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "malthus-walrec-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn shard0_log(dir: &std::path::Path) -> PathBuf {
    dir.join("shard-0.wal")
}

#[test]
fn empty_log_opens_clean() {
    let dir = temp_dir("empty");
    // First open creates the files; no writes happen.
    {
        let (kv, report) = ShardedKv::open(&dir, 2, MEMTABLE, CACHE).unwrap();
        assert!(report.clean());
        assert_eq!(report.records(), 0);
        assert_eq!(kv.get(1), None);
    }
    // Reopening the untouched logs is just as clean.
    let (kv, report) = ShardedKv::open(&dir, 2, MEMTABLE, CACHE).unwrap();
    assert!(report.clean());
    assert_eq!(report.pairs(), 0);
    assert_eq!(kv.get(1), None);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_tail_recovers_the_valid_prefix_and_truncates() {
    let dir = temp_dir("torn");
    {
        let (kv, _) = ShardedKv::open(&dir, 1, MEMTABLE, CACHE).unwrap();
        for k in 0..10u64 {
            kv.put(k, k * 3).unwrap();
        }
    }
    let log = shard0_log(&dir);
    let whole = std::fs::metadata(&log).unwrap().len();
    // Simulate a crash mid-append: half a record header's worth of
    // garbage at the tail.
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new().append(true).open(&log).unwrap();
        f.write_all(&[0xAB; 5]).unwrap();
    }
    let (kv, report) = ShardedKv::open(&dir, 1, MEMTABLE, CACHE).unwrap();
    assert_eq!(report.torn_tails(), 1);
    assert_eq!(report.bad_records(), 0);
    assert_eq!(report.pairs(), 10);
    for k in 0..10u64 {
        assert_eq!(kv.get(k), Some(k * 3), "key {k}");
    }
    // The torn suffix is gone from disk: the next open is clean.
    assert_eq!(std::fs::metadata(&log).unwrap().len(), whole);
    drop(kv);
    let (_, report) = ShardedKv::open(&dir, 1, MEMTABLE, CACHE).unwrap();
    assert!(report.clean(), "truncation must make the reopen clean");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_checksum_mid_file_stops_replay_with_a_warning_count() {
    let dir = temp_dir("corrupt");
    {
        let (kv, _) = ShardedKv::open(&dir, 1, MEMTABLE, CACHE).unwrap();
        for k in 0..6u64 {
            kv.put(k, k + 100).unwrap(); // one record per put
        }
    }
    // Each singleton-put record is header (8) + count (4) + one pair
    // (16) bytes; flip a payload byte of the third record.
    let log = shard0_log(&dir);
    let mut bytes = std::fs::read(&log).unwrap();
    let record = RECORD_HEADER_BYTES + 4 + 16;
    bytes[2 * record + RECORD_HEADER_BYTES + 6] ^= 0xFF;
    std::fs::write(&log, &bytes).unwrap();

    let (kv, report) = ShardedKv::open(&dir, 1, MEMTABLE, CACHE).unwrap();
    // Replay stopped at the first rejected record...
    assert_eq!(report.bad_records(), 1, "the corruption must be counted");
    assert_eq!(report.pairs(), 2);
    assert_eq!(kv.get(0), Some(100));
    assert_eq!(kv.get(1), Some(101));
    // ...so nothing at or past the corruption survives, even though
    // records 3..6 were internally intact.
    for k in 2..6u64 {
        assert_eq!(kv.get(k), None, "key {k} is past the corruption");
    }
    // The rejected suffix was truncated away: reopening is clean and
    // idempotent.
    drop(kv);
    let (kv, report) = ShardedKv::open(&dir, 1, MEMTABLE, CACHE).unwrap();
    assert!(report.clean());
    assert_eq!(report.pairs(), 2);
    assert_eq!(kv.get(1), Some(101));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replay_is_idempotent_across_repeated_opens() {
    let dir = temp_dir("idem");
    {
        let (kv, _) = ShardedKv::open(&dir, 4, MEMTABLE, CACHE).unwrap();
        let pairs: Vec<(u64, u64)> = (0..300u64).map(|k| (k * 7, k)).collect();
        kv.mset(&pairs).unwrap();
        kv.put(7, 999).unwrap(); // overwrite: later record wins
    }
    // Open N times without writing: every open must see the identical
    // store and leave the logs byte-identical.
    let logs: Vec<PathBuf> = (0..4).map(|i| dir.join(format!("shard-{i}.wal"))).collect();
    let sizes: Vec<u64> = logs
        .iter()
        .map(|p| std::fs::metadata(p).unwrap().len())
        .collect();
    for round in 0..3 {
        let (kv, report) = ShardedKv::open(&dir, 4, MEMTABLE, CACHE).unwrap();
        assert!(report.clean(), "round {round}");
        assert_eq!(kv.get(7), Some(999), "round {round}");
        for k in 2..300u64 {
            assert_eq!(kv.get(k * 7), Some(k), "round {round} key {}", k * 7);
        }
        drop(kv);
        let now: Vec<u64> = logs
            .iter()
            .map(|p| std::fs::metadata(p).unwrap().len())
            .collect();
        assert_eq!(now, sizes, "read-only opens must not grow the logs");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_compacts_overwrite_heavy_logs_on_open() {
    let dir = temp_dir("ckpt");
    let opts = || WalOptions {
        checkpoint_bytes: 256, // tiny threshold: force compaction
        ..WalOptions::default()
    };
    {
        let (kv, _) = ShardedKv::open_with(&dir, 1, MEMTABLE, CACHE, opts()).unwrap();
        // 50 overwrites of the same few keys: the log holds 50
        // records but only 5 live pairs.
        for round in 0..10u64 {
            for k in 0..5u64 {
                kv.put(k, round * 10 + k).unwrap();
            }
        }
    }
    let log = shard0_log(&dir);
    let before = std::fs::metadata(&log).unwrap().len();
    let (kv, report) = ShardedKv::open_with(&dir, 1, MEMTABLE, CACHE, opts()).unwrap();
    assert_eq!(report.checkpointed(), 1);
    assert_eq!(report.pairs(), 50, "replay sees the pre-compaction log");
    let after = std::fs::metadata(&log).unwrap().len();
    assert!(
        after < before,
        "compaction must shrink the log ({before} -> {after})"
    );
    // Only live pairs survive, with the last overwrite winning.
    for k in 0..5u64 {
        assert_eq!(kv.get(k), Some(90 + k), "key {k}");
    }
    drop(kv);
    // The checkpointed log replays to the same state.
    let (kv, report) = ShardedKv::open_with(&dir, 1, MEMTABLE, CACHE, opts()).unwrap();
    assert_eq!(report.pairs(), 5, "one checkpoint record of live pairs");
    for k in 0..5u64 {
        assert_eq!(kv.get(k), Some(90 + k), "key {k} after checkpoint replay");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn short_write_on_append_then_reopen_preserves_the_valid_prefix() {
    use malthus_storage::wal::FaultPlan;
    let dir = temp_dir("shortwrite");
    {
        // Shard 0's second append is torn halfway (the ENOSPC /
        // crash-mid-write shape): the first group must survive, the
        // torn one must not resurrect.
        let opts = WalOptions {
            faults: vec![(
                0,
                FaultPlan {
                    short_append_at: Some(1),
                    ..FaultPlan::default()
                },
            )],
            ..WalOptions::default()
        };
        let (kv, _) = ShardedKv::open_with(&dir, 1, MEMTABLE, CACHE, opts).unwrap();
        kv.put(1, 10).unwrap();
        assert!(kv.put(2, 20).is_err(), "torn append refuses the write");
        assert_eq!(kv.get(2), None, "refused write is not applied");
        assert!(kv.shard_readonly(0));
    }
    // Reopen: replay stops at the torn record, truncates it away,
    // and new appends extend the valid prefix.
    let (kv, report) = ShardedKv::open(&dir, 1, MEMTABLE, CACHE).unwrap();
    assert!(report.per_shard[0].torn_tail, "half a record on disk");
    assert_eq!(report.pairs(), 1);
    assert_eq!(kv.get(1), Some(10));
    assert_eq!(kv.get(2), None);
    kv.put(3, 30).unwrap();
    drop(kv);
    let (kv, report) = ShardedKv::open(&dir, 1, MEMTABLE, CACHE).unwrap();
    assert!(report.clean(), "truncation left a well-formed log");
    assert_eq!(kv.get(1), Some(10));
    assert_eq!(kv.get(3), Some(30));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn healing_after_a_short_write_amputates_the_torn_tail_in_place() {
    use malthus_storage::wal::FaultPlan;
    let dir = temp_dir("heal-shortwrite");
    {
        let opts = WalOptions {
            faults: vec![(
                0,
                FaultPlan {
                    short_append_at: Some(1),
                    ..FaultPlan::default()
                },
            )],
            ..WalOptions::default()
        };
        let (kv, _) = ShardedKv::open_with(&dir, 1, MEMTABLE, CACHE, opts).unwrap();
        kv.put(1, 10).unwrap();
        assert!(kv.put(2, 20).is_err(), "torn append refuses the write");
        assert!(kv.shard_readonly(0));
        // Heal without restarting: the probe must cut off the torn
        // half-record, or the next commit would land after garbage
        // and be unreadable on replay.
        assert!(kv.try_heal_shard(0));
        assert!(!kv.shard_readonly(0));
        kv.put(3, 30).unwrap();
    }
    let (kv, report) = ShardedKv::open(&dir, 1, MEMTABLE, CACHE).unwrap();
    assert!(report.clean(), "amputation left a well-formed log");
    assert_eq!(kv.get(1), Some(10), "committed prefix preserved");
    assert_eq!(kv.get(2), None, "torn write must not resurrect");
    assert_eq!(kv.get(3), Some(30), "post-heal acked write survives replay");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn failed_append_then_reopen_loses_nothing() {
    use malthus_storage::wal::FaultPlan;
    let dir = temp_dir("enospc");
    {
        // ENOSPC-style: the second append fails outright, nothing of
        // the record reaches the file.
        let opts = WalOptions {
            faults: vec![(
                0,
                FaultPlan {
                    fail_append_at: Some(1),
                    ..FaultPlan::default()
                },
            )],
            ..WalOptions::default()
        };
        let (kv, _) = ShardedKv::open_with(&dir, 1, MEMTABLE, CACHE, opts).unwrap();
        kv.put(1, 10).unwrap();
        assert!(kv.put(2, 20).is_err());
    }
    let (kv, report) = ShardedKv::open(&dir, 1, MEMTABLE, CACHE).unwrap();
    assert!(
        report.clean(),
        "nothing torn: the failed append wrote 0 bytes"
    );
    assert_eq!(report.pairs(), 1);
    assert_eq!(kv.get(1), Some(10));
    assert_eq!(kv.get(2), None);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shard_count_is_pinned_by_the_manifest() {
    let dir = temp_dir("manifest");
    {
        let (kv, _) = ShardedKv::open(&dir, 2, MEMTABLE, CACHE).unwrap();
        kv.put(42, 1).unwrap();
    }
    let err = ShardedKv::open(&dir, 4, MEMTABLE, CACHE).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    // The refused open must not have damaged anything.
    let (kv, report) = ShardedKv::open(&dir, 2, MEMTABLE, CACHE).unwrap();
    assert!(report.clean());
    assert_eq!(kv.get(42), Some(1));
    let _ = std::fs::remove_dir_all(&dir);
}
