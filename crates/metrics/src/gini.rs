//! Long-term fairness indices over per-thread work distributions.

/// Gini coefficient of a work distribution (§6).
///
/// 0 means every thread completed identical work (ideally fair, as a
/// FIFO lock produces); values approaching 1 mean a few threads did
/// nearly all the work. Computed with the standard sorted formula
/// `G = (2·Σ i·xᵢ)/(n·Σ xᵢ) − (n+1)/n` over ascending `xᵢ`, `i` from 1.
///
/// Returns 0 for empty or all-zero distributions.
pub fn gini_coefficient(work: &[u64]) -> f64 {
    if work.is_empty() {
        return 0.0;
    }
    let total: u128 = work.iter().map(|&w| w as u128).sum();
    if total == 0 {
        return 0.0;
    }
    let mut sorted: Vec<u64> = work.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as f64;
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x as f64)
        .sum();
    (2.0 * weighted) / (n * total as f64) - (n + 1.0) / n
}

/// Relative standard deviation (coefficient of variation) of the work
/// distribution: population standard deviation divided by the mean.
///
/// Returns 0 for empty or all-zero distributions.
pub fn relative_stddev(work: &[u64]) -> f64 {
    if work.is_empty() {
        return 0.0;
    }
    let n = work.len() as f64;
    let mean = work.iter().map(|&w| w as f64).sum::<f64>() / n;
    if mean == 0.0 {
        return 0.0;
    }
    let var = work
        .iter()
        .map(|&w| {
            let d = w as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / n;
    var.sqrt() / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gini_of_equal_work_is_zero() {
        assert!(gini_coefficient(&[5, 5, 5, 5]).abs() < 1e-12);
    }

    #[test]
    fn gini_of_monopoly_approaches_one() {
        // One thread does everything among n = 10: G = (n-1)/n = 0.9.
        let mut w = vec![0u64; 9];
        w.push(1000);
        let g = gini_coefficient(&w);
        assert!((g - 0.9).abs() < 1e-12, "g = {g}");
    }

    #[test]
    fn gini_empty_and_zero() {
        assert_eq!(gini_coefficient(&[]), 0.0);
        assert_eq!(gini_coefficient(&[0, 0, 0]), 0.0);
    }

    #[test]
    fn gini_is_scale_invariant() {
        let a = gini_coefficient(&[1, 2, 3, 4]);
        let b = gini_coefficient(&[10, 20, 30, 40]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn gini_known_value() {
        // [1, 3]: G = (2*(1*1 + 2*3))/(2*4) - 3/2 = 14/8 - 1.5 = 0.25.
        let g = gini_coefficient(&[1, 3]);
        assert!((g - 0.25).abs() < 1e-12, "g = {g}");
    }

    #[test]
    fn rstddev_equal_is_zero() {
        assert!(relative_stddev(&[7, 7, 7]).abs() < 1e-12);
    }

    #[test]
    fn rstddev_known_value() {
        // [2, 4]: mean 3, pop stddev 1, cv = 1/3.
        let r = relative_stddev(&[2, 4]);
        assert!((r - 1.0 / 3.0).abs() < 1e-12, "r = {r}");
    }

    #[test]
    fn rstddev_empty_and_zero() {
        assert_eq!(relative_stddev(&[]), 0.0);
        assert_eq!(relative_stddev(&[0, 0]), 0.0);
    }
}
