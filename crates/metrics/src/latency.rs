//! Lock-free log-scaled latency histogram (service-level metrics).
//!
//! The paper reports lock-level fairness; a *service* built on
//! Malthusian admission (the `malthus-pool` work crew, the KV front
//! end) additionally needs request-latency quantiles — restriction
//! trades tail latency of the passivated minority for throughput of
//! the active set, and p50/p99 is where that trade shows up.
//!
//! [`LatencyHistogram`] is an HDR-style histogram: power-of-two major
//! buckets with 16 linear sub-buckets each, so any recorded duration
//! lands in a bucket whose floor is within ~6% of the true value.
//! Recording is a single relaxed `fetch_add` on an atomic bucket, so
//! worker threads and load-generator connections can share one
//! histogram without a lock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Sub-bucket resolution: 16 linear steps per power of two (~6%
/// worst-case quantization error on bucket floors).
const SUB_BITS: u32 = 4;
const SUB: u64 = 1 << SUB_BITS;
/// Values below `SUB` get exact unit buckets; above, `(msb - SUB_BITS)`
/// majors of `SUB` sub-buckets each cover the rest of the `u64` range.
const BUCKETS: usize = (SUB + (64 - SUB_BITS as u64) * SUB) as usize;

/// A concurrent histogram of durations with ~6% value resolution.
///
/// # Examples
///
/// ```
/// use malthus_metrics::LatencyHistogram;
/// use std::time::Duration;
///
/// let h = LatencyHistogram::new();
/// for ms in 1..=100 {
///     h.record(Duration::from_millis(ms));
/// }
/// assert_eq!(h.count(), 100);
/// let p50 = h.quantile(0.50).as_millis();
/// assert!((45..=55).contains(&p50), "p50 = {p50} ms");
/// ```
pub struct LatencyHistogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
}

/// Maps a nanosecond value to its bucket index.
fn bucket_index(ns: u64) -> usize {
    if ns < SUB {
        return ns as usize;
    }
    let msb = 63 - ns.leading_zeros() as u64; // >= SUB_BITS
    let sub = (ns >> (msb - SUB_BITS as u64)) & (SUB - 1);
    (SUB + (msb - SUB_BITS as u64) * SUB + sub) as usize
}

/// The smallest nanosecond value mapping to `index` (bucket floor).
fn bucket_floor(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB {
        return index;
    }
    let major = (index - SUB) / SUB + SUB_BITS as u64;
    let sub = (index - SUB) % SUB;
    (1 << major) | (sub << (major - SUB_BITS as u64))
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        // `AtomicU64` is not `Copy`; build the boxed array from a
        // zeroed Vec instead of a stack array literal.
        let v: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets = v
            .into_boxed_slice()
            .try_into()
            .unwrap_or_else(|_| unreachable!("vec has BUCKETS elements"));
        LatencyHistogram {
            buckets,
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record(&self, d: Duration) {
        self.record_ns(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Records one observation given in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) of recorded values, resolved
    /// to its bucket floor (within ~6% below the true value).
    ///
    /// Returns [`Duration::ZERO`] for an empty histogram. Concurrent
    /// recording makes the answer a racy snapshot, same contract as
    /// the lock statistics counters.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `[0.0, 1.0]`.
    pub fn quantile(&self, q: f64) -> Duration {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let total = self.count();
        if total == 0 {
            return Duration::ZERO;
        }
        // Rank of the target observation, 1-based, clamped to total.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Duration::from_nanos(bucket_floor(i));
            }
        }
        // Counts raced upward mid-scan; the tail bucket is the best
        // answer available.
        Duration::from_nanos(bucket_floor(BUCKETS - 1))
    }

    /// Convenience: `(p50, p99)` in one call.
    pub fn p50_p99(&self) -> (Duration, Duration) {
        (self.quantile(0.50), self.quantile(0.99))
    }

    /// Folds `other`'s observations into `self`, bucket by bucket.
    ///
    /// This is what makes per-partition histograms (per shard, per
    /// op type, per connection) composable into service-wide numbers:
    /// buckets are exact counters, so merging loses nothing — unlike
    /// merging quantiles, which is not meaningful. `other` is
    /// unchanged. Concurrent recording into either histogram during
    /// the merge makes the result a racy snapshot (same contract as
    /// [`LatencyHistogram::quantile`]).
    pub fn merge(&self, other: &LatencyHistogram) {
        let mut total = 0u64;
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
                total += n;
            }
        }
        // Derive the count from the buckets actually copied, not from
        // other.count: a racing record could otherwise leave count
        // ahead of the bucket sum forever.
        self.count.fetch_add(total, Ordering::Relaxed);
    }

    /// Copies the current bucket counts into an immutable
    /// [`HistogramSnapshot`].
    ///
    /// The total is derived from the copied buckets (not the `count`
    /// field), so a snapshot is always internally consistent even when
    /// recording races with the copy.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = vec![0u64; BUCKETS].into_boxed_slice();
        let mut total = 0u64;
        for (dst, src) in counts.iter_mut().zip(self.buckets.iter()) {
            let n = src.load(Ordering::Relaxed);
            *dst = n;
            total += n;
        }
        HistogramSnapshot { counts, total }
    }

    /// Bucket-wise difference `later - earlier` of two snapshots —
    /// the observations recorded during the interval between them.
    ///
    /// Equivalent to [`HistogramSnapshot::delta`]; provided on the
    /// histogram type so interval-rate consumers (`kvtop`) find it
    /// next to [`LatencyHistogram::snapshot`].
    pub fn snapshot_delta(
        later: &HistogramSnapshot,
        earlier: &HistogramSnapshot,
    ) -> HistogramSnapshot {
        later.delta(earlier)
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// An immutable point-in-time copy of a [`LatencyHistogram`].
///
/// Snapshots make two things possible that the live histogram cannot
/// offer: a *consistent* read (quantile scans over the live atomics
/// race with recorders) and *interval* statistics — two snapshots
/// taken a poll apart, diffed with [`HistogramSnapshot::delta`], give
/// the distribution of just that interval instead of the process
/// lifetime.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Box<[u64]>,
    total: u64,
}

impl HistogramSnapshot {
    /// An all-zero snapshot (what [`LatencyHistogram::snapshot`] of an
    /// empty histogram returns).
    pub fn empty() -> Self {
        HistogramSnapshot {
            counts: vec![0u64; BUCKETS].into_boxed_slice(),
            total: 0,
        }
    }

    /// Number of observations in the snapshot.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Bucket-wise difference `self - earlier`.
    ///
    /// Buckets where `earlier` exceeds `self` (the source histogram
    /// was replaced or wrapped between the two snapshots) saturate to
    /// zero rather than underflowing, so a stale baseline degrades to
    /// an undercount instead of garbage quantiles.
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut counts = vec![0u64; BUCKETS].into_boxed_slice();
        let mut total = 0u64;
        for (i, dst) in counts.iter_mut().enumerate() {
            let n = self.counts[i].saturating_sub(earlier.counts[i]);
            *dst = n;
            total += n;
        }
        HistogramSnapshot { counts, total }
    }

    /// The `q`-quantile of the snapshot, resolved to its bucket floor
    /// (same contract as [`LatencyHistogram::quantile`]).
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `[0.0, 1.0]`.
    pub fn quantile(&self, q: f64) -> Duration {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.total == 0 {
            return Duration::ZERO;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Duration::from_nanos(bucket_floor(i));
            }
        }
        unreachable!("total is the exact bucket sum")
    }

    /// Convenience: `(p50, p99)` in one call.
    pub fn p50_p99(&self) -> (Duration, Duration) {
        (self.quantile(0.50), self.quantile(0.99))
    }

    /// Iterates the non-empty buckets as `(upper_bound_ns, count)`
    /// pairs, in increasing bound order.
    ///
    /// The bound is the *exclusive* upper edge of the bucket (the next
    /// bucket's floor), which is what a Prometheus `le` label wants to
    /// within one bucket quantum. The final bucket reports
    /// `u64::MAX`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                let bound = if i + 1 < BUCKETS {
                    bucket_floor(i + 1)
                } else {
                    u64::MAX
                };
                (bound, n)
            })
    }

    /// Approximate sum of all observations in nanoseconds, computed
    /// from bucket floors (so it underestimates by at most ~6%).
    pub fn approx_sum_ns(&self) -> u64 {
        let mut sum = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            sum = sum.saturating_add(bucket_floor(i).saturating_mul(n));
        }
        sum
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count())
            .field("p50", &self.quantile(0.5))
            .field("p99", &self.quantile(0.99))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_round_trip_is_tight() {
        for ns in [0u64, 1, 15, 16, 17, 100, 1_000, 123_456, u64::MAX / 2] {
            let idx = bucket_index(ns);
            let floor = bucket_floor(idx);
            assert!(floor <= ns, "floor {floor} > value {ns}");
            // Floor within one sub-bucket (1/16 of the major) below.
            assert!(
                ns - floor <= (ns >> SUB_BITS),
                "value {ns} floor {floor} too coarse"
            );
            // Floors map back to their own bucket.
            assert_eq!(bucket_index(floor), idx);
        }
    }

    #[test]
    fn bucket_indices_are_monotonic_and_in_range() {
        let mut last = 0usize;
        for shift in 0..64 {
            let ns = 1u64 << shift;
            let idx = bucket_index(ns);
            assert!(idx >= last);
            assert!(idx < BUCKETS);
            last = idx;
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let h = LatencyHistogram::new();
        for us in 1..=10_000u64 {
            h.record_ns(us * 1_000);
        }
        let p50 = h.quantile(0.5).as_nanos() as f64;
        let p99 = h.quantile(0.99).as_nanos() as f64;
        assert!(
            (4.4e6..=5.1e6).contains(&p50),
            "p50 = {p50} (expected ~5 ms)"
        );
        assert!(
            (9.2e6..=10.0e6).contains(&p99),
            "p99 = {p99} (expected ~9.9 ms)"
        );
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), Duration::ZERO);
    }

    #[test]
    fn extremes_of_q() {
        let h = LatencyHistogram::new();
        h.record_ns(10);
        h.record_ns(1_000_000);
        assert_eq!(h.quantile(0.0).as_nanos(), 10);
        assert!(h.quantile(1.0).as_nanos() >= 900_000);
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn out_of_range_q_panics() {
        LatencyHistogram::new().quantile(1.5);
    }

    #[test]
    fn merge_is_exact_on_quiescent_histograms() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        for us in 1..=1_000u64 {
            a.record_ns(us * 1_000); // 1..=1000 µs ramp
        }
        for ms in 1..=1_000u64 {
            b.record_ns(ms * 1_000_000); // 1..=1000 ms ramp
        }
        let a_p50 = a.quantile(0.5);
        a.merge(&b);
        assert_eq!(a.count(), 2_000);
        // b is untouched.
        assert_eq!(b.count(), 1_000);
        // The merged median sits at the boundary between the two
        // ramps (p50 ≈ the top of the fast ramp).
        let merged_p50 = a.quantile(0.5).as_nanos();
        assert!(merged_p50 >= a_p50.as_nanos(), "median must move up");
        assert!(
            (900_000..=1_100_000).contains(&merged_p50),
            "merged p50 = {merged_p50} ns (expected ~1 ms boundary)"
        );
        // The merged p99 comes from the slow ramp.
        assert!(a.quantile(0.99).as_millis() >= 900);
    }

    #[test]
    fn merge_of_empty_is_identity() {
        let a = LatencyHistogram::new();
        a.record_ns(500);
        let before = a.quantile(1.0);
        a.merge(&LatencyHistogram::new());
        assert_eq!(a.count(), 1);
        assert_eq!(a.quantile(1.0), before);
        // Merging into an empty histogram copies everything.
        let c = LatencyHistogram::new();
        c.merge(&a);
        assert_eq!(c.count(), 1);
        assert_eq!(c.quantile(1.0), before);
    }

    #[test]
    fn merge_aggregates_many_partitions() {
        // The service shape: one histogram per shard, merged into the
        // service-wide number.
        let shards: Vec<LatencyHistogram> = (0..4).map(|_| LatencyHistogram::new()).collect();
        for (i, h) in shards.iter().enumerate() {
            for n in 0..100u64 {
                h.record_ns((i as u64 + 1) * 10_000 + n);
            }
        }
        let total = LatencyHistogram::new();
        for h in &shards {
            total.merge(h);
        }
        assert_eq!(total.count(), 400);
        assert!(total.quantile(0.0).as_nanos() >= 9_000);
        // Max recorded value is 40_099 ns; allow the ~6% bucket-floor
        // quantization.
        assert!(total.quantile(1.0).as_nanos() >= 38_000);
    }

    #[test]
    fn snapshot_matches_live_quantiles() {
        let h = LatencyHistogram::new();
        for us in 1..=1_000u64 {
            h.record_ns(us * 1_000);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 1_000);
        assert_eq!(snap.quantile(0.5), h.quantile(0.5));
        assert_eq!(snap.p50_p99(), h.p50_p99());
    }

    #[test]
    fn snapshot_delta_isolates_the_interval() {
        let h = LatencyHistogram::new();
        for _ in 0..100 {
            h.record_ns(1_000); // fast lifetime prefix
        }
        let before = h.snapshot();
        for _ in 0..10 {
            h.record_ns(1_000_000); // slow interval
        }
        let after = h.snapshot();
        let interval = LatencyHistogram::snapshot_delta(&after, &before);
        assert_eq!(interval.count(), 10);
        // The interval median is the slow value, even though the
        // lifetime median is still the fast one.
        assert!(interval.quantile(0.5).as_nanos() >= 900_000);
        assert!(after.quantile(0.5).as_nanos() < 2_000);
    }

    #[test]
    fn snapshot_delta_of_empty_interval_is_empty() {
        let h = LatencyHistogram::new();
        h.record_ns(42);
        let a = h.snapshot();
        let b = h.snapshot();
        let interval = b.delta(&a);
        assert_eq!(interval.count(), 0);
        assert_eq!(interval.quantile(0.99), Duration::ZERO);
        assert_eq!(interval, HistogramSnapshot::empty());
    }

    #[test]
    fn snapshot_delta_saturates_on_wraparound() {
        // A later snapshot from a *replaced* histogram (fewer counts
        // than the baseline) must not underflow: the delta saturates
        // to zero per bucket.
        let old = LatencyHistogram::new();
        for _ in 0..50 {
            old.record_ns(500);
        }
        let baseline = old.snapshot();
        let replaced = LatencyHistogram::new();
        replaced.record_ns(500);
        replaced.record_ns(9_999);
        let interval = replaced.snapshot().delta(&baseline);
        // The 500 ns bucket saturates (1 - 50 -> 0); the fresh 9_999 ns
        // observation survives.
        assert_eq!(interval.count(), 1);
        assert!(interval.quantile(1.0).as_nanos() >= 9_000);
    }

    #[test]
    fn snapshot_buckets_and_sum_are_consistent() {
        let h = LatencyHistogram::new();
        h.record_ns(10);
        h.record_ns(10);
        h.record_ns(1_000_000);
        let snap = h.snapshot();
        let buckets: Vec<(u64, u64)> = snap.nonzero_buckets().collect();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].1, 2);
        assert_eq!(buckets[1].1, 1);
        // Bounds increase and exceed the recorded values' floors.
        assert!(buckets[0].0 > 10 && buckets[1].0 > buckets[0].0);
        let sum = snap.approx_sum_ns();
        assert!((900_000..=1_000_100).contains(&sum), "sum = {sum}");
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record_ns(t * 1_000 + i);
                    }
                })
            })
            .collect();
        for x in handles {
            x.join().unwrap();
        }
        assert_eq!(h.count(), 40_000);
    }
}
