//! One-stop fairness summary matching the paper's Figure 4 rows.

use crate::gini::{gini_coefficient, relative_stddev};
use crate::log::{AdmissionLog, DEFAULT_LWSS_WINDOW};

/// All fairness figures for one measurement interval.
///
/// # Examples
///
/// ```
/// use malthus_metrics::{AdmissionLog, FairnessSummary};
///
/// let log = AdmissionLog::from_history(vec![0, 1, 0, 1, 0, 1]);
/// let s = FairnessSummary::from_log(&log);
/// assert_eq!(s.admissions, 6);
/// assert_eq!(s.mttr, Some(2.0));
/// assert!(s.gini < 1e-9); // both threads got equal work
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FairnessSummary {
    /// Total admissions in the interval.
    pub admissions: usize,
    /// Distinct participating threads.
    pub threads: usize,
    /// Average lock working-set size (1000-admission windows).
    pub average_lwss: f64,
    /// Median time to reacquire, in admissions.
    pub mttr: Option<f64>,
    /// Gini coefficient of per-thread work.
    pub gini: f64,
    /// Relative standard deviation of per-thread work.
    pub rstddev: f64,
}

impl FairnessSummary {
    /// Computes every metric from an admission log.
    pub fn from_log(log: &AdmissionLog) -> Self {
        Self::from_log_with_window(log, DEFAULT_LWSS_WINDOW)
    }

    /// As [`FairnessSummary::from_log`] with an explicit LWSS window.
    pub fn from_log_with_window(log: &AdmissionLog, window: usize) -> Self {
        let counts = log.per_thread_counts();
        let work: Vec<u64> = counts.values().copied().collect();
        FairnessSummary {
            admissions: log.len(),
            threads: counts.len(),
            average_lwss: log.average_lwss(window),
            mttr: log.median_time_to_reacquire(),
            gini: gini_coefficient(&work),
            rstddev: relative_stddev(&work),
        }
    }
}

impl std::fmt::Display for FairnessSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "admissions={} threads={} avgLWSS={:.1} MTTR={} Gini={:.3} RSTDDEV={:.3}",
            self.admissions,
            self.threads,
            self.average_lwss,
            self.mttr
                .map(|m| format!("{m:.0}"))
                .unwrap_or_else(|| "-".into()),
            self.gini,
            self.rstddev,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_round_robin_is_ideally_fair() {
        // 32 threads round-robin, like MCS in the paper's Figure 4:
        // LWSS = 32, MTTR = 32, Gini ~ 0, RSTDDEV ~ 0.
        let n = 32u32;
        let history: Vec<u32> = (0..32_000).map(|i| i % n).collect();
        let s = FairnessSummary::from_log(&AdmissionLog::from_history(history));
        assert_eq!(s.threads, 32);
        assert!((s.average_lwss - 32.0).abs() < 1e-9);
        assert_eq!(s.mttr, Some(32.0));
        assert!(s.gini < 1e-9);
        assert!(s.rstddev < 1e-9);
    }

    #[test]
    fn cr_like_history_has_small_lwss_but_nonzero_gini() {
        // 32 threads exist, but a 5-thread ACS does nearly all the
        // circulating, like MCSCR in Figure 4.
        let mut history = Vec::new();
        for round in 0..1000u32 {
            for t in 0..5u32 {
                history.push(t);
            }
            // Rare fairness admission of a cold thread.
            if round % 100 == 0 {
                history.push(5 + (round / 100) % 27);
            }
        }
        let s = FairnessSummary::from_log(&AdmissionLog::from_history(history));
        assert!(
            s.average_lwss < 16.0,
            "LWSS should be small: {}",
            s.average_lwss
        );
        assert_eq!(s.mttr, Some(5.0));
        assert!(s.gini > 0.5, "unequal work must show in Gini: {}", s.gini);
    }

    #[test]
    fn display_formats_reasonably() {
        let s = FairnessSummary::from_log(&AdmissionLog::from_history(vec![0, 0, 1]));
        let text = format!("{s}");
        assert!(text.contains("admissions=3"));
        assert!(text.contains("threads=2"));
    }

    #[test]
    fn empty_log_summary() {
        let s = FairnessSummary::from_log(&AdmissionLog::from_history(vec![]));
        assert_eq!(s.admissions, 0);
        assert_eq!(s.threads, 0);
        assert_eq!(s.mttr, None);
    }
}
