//! Fairness and admission-order metrics from *Malthusian Locks*.
//!
//! The paper quantifies the throughput/fairness trade-off with four
//! numbers (§1, §6):
//!
//! * **Average LWSS** — partition the admission history into disjoint
//!   abutting windows of `W` acquisitions (the paper uses `W = 1000`),
//!   compute the lock working-set size (number of distinct threads) of
//!   each, and average. Short-term fairness in units of threads.
//! * **MTTR** — median time to reacquire: for each admission, the
//!   number of admissions since the same thread last acquired the
//!   lock; the median is taken over the whole history. Analogous to
//!   reuse distance in memory management.
//! * **Gini coefficient** — income-disparity index over the per-thread
//!   completed work; 0 is ideally fair, approaching 1 maximally unfair.
//! * **RSTDDEV** — relative standard deviation (coefficient of
//!   variation) of per-thread completed work.
//!
//! [`AdmissionLog`] wraps a recorded history and computes all of them.
//!
//! For services built *on top of* Malthusian admission (the
//! `malthus-pool` work crew and its KV front end), the crate also
//! provides [`LatencyHistogram`], a lock-free log-scaled histogram for
//! request-latency quantiles (p50/p99).
//!
//! # Examples
//!
//! ```
//! use malthus_metrics::AdmissionLog;
//!
//! // A, B, C, A, B, C, D, A, E — the example history from §1.
//! let log = AdmissionLog::from_history(vec![0, 1, 2, 0, 1, 2, 3, 0, 4]);
//! assert_eq!(log.lwss(0..6), 3); // LWSS of the first six admissions
//! ```

#![warn(missing_docs)]

mod gini;
mod latency;
mod log;
mod summary;
mod table;

pub use gini::{gini_coefficient, relative_stddev};
pub use latency::{HistogramSnapshot, LatencyHistogram};
pub use log::{AdmissionLog, DEFAULT_LWSS_WINDOW};
pub use summary::FairnessSummary;
pub use table::{format_table, Align, Column};
