//! Admission histories and the window-based short-term metrics.

use std::collections::{HashMap, HashSet};
use std::ops::Range;

/// The paper's LWSS window size: 1000 acquisitions, chosen to be well
/// above the maximum number of participating threads (§1).
pub const DEFAULT_LWSS_WINDOW: usize = 1000;

/// A recorded lock admission history (thread ids in admission order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionLog {
    history: Vec<u32>,
}

impl AdmissionLog {
    /// Wraps a history (thread identity per admission, in order).
    pub fn from_history(history: Vec<u32>) -> Self {
        AdmissionLog { history }
    }

    /// The raw history.
    pub fn history(&self) -> &[u32] {
        &self.history
    }

    /// Total number of admissions.
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// Whether the history is empty.
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }

    /// Number of distinct threads in the whole history.
    pub fn distinct_threads(&self) -> usize {
        self.history.iter().collect::<HashSet<_>>().len()
    }

    /// Lock working-set size over an admission-index range (§1): the
    /// number of distinct threads admitted in that interval.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the history length.
    pub fn lwss(&self, range: Range<usize>) -> usize {
        self.history[range].iter().collect::<HashSet<_>>().len()
    }

    /// Average LWSS over disjoint abutting windows of `window` size.
    ///
    /// A trailing partial window is included if it is at least half of
    /// `window` (so very short tails do not bias the mean downward);
    /// if the entire history is shorter than `window`, the single
    /// partial window is used.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn average_lwss(&self, window: usize) -> f64 {
        assert!(window > 0, "window must be positive");
        if self.history.is_empty() {
            return 0.0;
        }
        let mut sizes = Vec::new();
        let mut start = 0;
        while start < self.history.len() {
            let end = (start + window).min(self.history.len());
            let is_full = end - start == window;
            let is_first = start == 0;
            let is_big_enough = (end - start) * 2 >= window;
            if is_full || is_first || is_big_enough {
                sizes.push(self.lwss(start..end) as f64);
            }
            start += window;
        }
        sizes.iter().sum::<f64>() / sizes.len() as f64
    }

    /// Average LWSS with the paper's default 1000-admission window.
    pub fn average_lwss_default(&self) -> f64 {
        self.average_lwss(DEFAULT_LWSS_WINDOW)
    }

    /// Per-admission time-to-reacquire values (§1): for each admission
    /// by a thread that has acquired before, the number of admissions
    /// since its previous acquisition. First-time admissions produce
    /// no value.
    pub fn times_to_reacquire(&self) -> Vec<u64> {
        let mut last_seen: HashMap<u32, usize> = HashMap::new();
        let mut ttrs = Vec::new();
        for (i, &t) in self.history.iter().enumerate() {
            if let Some(&prev) = last_seen.get(&t) {
                ttrs.push((i - prev) as u64);
            }
            last_seen.insert(t, i);
        }
        ttrs
    }

    /// Median time to reacquire (MTTR) over the whole history, or
    /// `None` if no thread ever reacquired.
    pub fn median_time_to_reacquire(&self) -> Option<f64> {
        let mut ttrs = self.times_to_reacquire();
        if ttrs.is_empty() {
            return None;
        }
        ttrs.sort_unstable();
        let n = ttrs.len();
        Some(if n % 2 == 1 {
            ttrs[n / 2] as f64
        } else {
            (ttrs[n / 2 - 1] + ttrs[n / 2]) as f64 / 2.0
        })
    }

    /// Completed admissions per thread (the "work distribution" used
    /// for the long-term fairness indices).
    pub fn per_thread_counts(&self) -> HashMap<u32, u64> {
        let mut counts = HashMap::new();
        for &t in &self.history {
            *counts.entry(t).or_insert(0) += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example from §1 of the paper: history A B C A B C D
    /// A E has LWSS 3 over admissions 0–5.
    #[test]
    fn paper_example_lwss() {
        let log = AdmissionLog::from_history(vec![0, 1, 2, 0, 1, 2, 3, 0, 4]);
        assert_eq!(log.lwss(0..6), 3);
        assert_eq!(log.lwss(0..9), 5);
        assert_eq!(log.distinct_threads(), 5);
    }

    #[test]
    fn empty_log() {
        let log = AdmissionLog::from_history(vec![]);
        assert!(log.is_empty());
        assert_eq!(log.average_lwss(10), 0.0);
        assert_eq!(log.median_time_to_reacquire(), None);
    }

    #[test]
    fn average_lwss_full_windows() {
        // Windows [0,0,1,1] and [2,2,3,3]: LWSS 2 each.
        let log = AdmissionLog::from_history(vec![0, 0, 1, 1, 2, 2, 3, 3]);
        assert_eq!(log.average_lwss(4), 2.0);
    }

    #[test]
    fn average_lwss_short_history_uses_partial() {
        let log = AdmissionLog::from_history(vec![7, 7, 7]);
        assert_eq!(log.average_lwss(1000), 1.0);
    }

    #[test]
    fn average_lwss_ignores_tiny_tail() {
        // 8 admissions with window 8 plus a 1-admission tail; the tail
        // (< half a window) must not drag the average down.
        let mut h = vec![0, 1, 2, 3, 4, 5, 6, 7];
        h.push(0);
        let log = AdmissionLog::from_history(h);
        assert_eq!(log.average_lwss(8), 8.0);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        AdmissionLog::from_history(vec![1]).average_lwss(0);
    }

    #[test]
    fn ttr_round_robin() {
        // Round-robin over 3 threads: every reacquisition distance 3.
        let log = AdmissionLog::from_history(vec![0, 1, 2, 0, 1, 2, 0, 1, 2]);
        let ttrs = log.times_to_reacquire();
        assert_eq!(ttrs, vec![3, 3, 3, 3, 3, 3]);
        assert_eq!(log.median_time_to_reacquire(), Some(3.0));
    }

    #[test]
    fn ttr_greedy_thread() {
        // One thread monopolizes: distance 1 every time.
        let log = AdmissionLog::from_history(vec![9, 9, 9, 9]);
        assert_eq!(log.median_time_to_reacquire(), Some(1.0));
    }

    #[test]
    fn ttr_even_count_takes_midpoint() {
        // Thread 0 admitted at 0, 1, 3: TTRs [1, 2] -> median 1.5.
        let log = AdmissionLog::from_history(vec![0, 0, 1, 0]);
        assert_eq!(log.times_to_reacquire(), vec![1, 2]);
        assert_eq!(log.median_time_to_reacquire(), Some(1.5));
    }

    #[test]
    fn per_thread_counts_sums_to_len() {
        let log = AdmissionLog::from_history(vec![0, 1, 1, 2, 2, 2]);
        let counts = log.per_thread_counts();
        assert_eq!(counts[&0], 1);
        assert_eq!(counts[&1], 2);
        assert_eq!(counts[&2], 3);
        assert_eq!(counts.values().sum::<u64>() as usize, log.len());
    }

    #[test]
    fn no_reacquire_yields_none() {
        let log = AdmissionLog::from_history(vec![0, 1, 2, 3]);
        assert_eq!(log.median_time_to_reacquire(), None);
    }
}
