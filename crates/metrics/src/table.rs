//! Plain-text table rendering for benchmark output.
//!
//! The figure/table harnesses print series the way the paper's tables
//! read; this module holds the small shared formatter.

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A table column: header plus alignment.
#[derive(Debug, Clone)]
pub struct Column {
    /// Header text.
    pub header: String,
    /// Cell alignment.
    pub align: Align,
}

impl Column {
    /// Left-aligned column.
    pub fn left(header: impl Into<String>) -> Self {
        Column {
            header: header.into(),
            align: Align::Left,
        }
    }

    /// Right-aligned column.
    pub fn right(header: impl Into<String>) -> Self {
        Column {
            header: header.into(),
            align: Align::Right,
        }
    }
}

/// Renders rows as an aligned plain-text table with a header rule.
///
/// # Panics
///
/// Panics if any row's width differs from the column count.
///
/// # Examples
///
/// ```
/// use malthus_metrics::{format_table, Column};
///
/// let t = format_table(
///     &[Column::left("lock"), Column::right("ops/s")],
///     &[vec!["MCS-S".into(), "700000".into()]],
/// );
/// assert!(t.contains("MCS-S"));
/// ```
pub fn format_table(columns: &[Column], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(
            row.len(),
            columns.len(),
            "row width must match column count"
        );
    }
    let mut widths: Vec<usize> = columns.iter().map(|c| c.header.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let render = |cells: Vec<&str>, out: &mut String| {
        let mut first = true;
        for ((cell, col), w) in cells.iter().zip(columns).zip(&widths) {
            if !first {
                out.push_str("  ");
            }
            first = false;
            match col.align {
                Align::Left => out.push_str(&format!("{cell:<w$}")),
                Align::Right => out.push_str(&format!("{cell:>w$}")),
            }
        }
        out.push('\n');
    };
    render(
        columns.iter().map(|c| c.header.as_str()).collect(),
        &mut out,
    );
    let rule_len = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
    out.push_str(&"-".repeat(rule_len));
    out.push('\n');
    for row in rows {
        render(row.iter().map(|s| s.as_str()).collect(), &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns() {
        let t = format_table(
            &[Column::left("name"), Column::right("n")],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "100".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal width.
        assert!(lines[0].len() > "name".len() + 2);
        assert!(lines[3].starts_with("longer"));
        assert!(lines[2].ends_with("  1") || lines[2].ends_with("1"));
    }

    #[test]
    #[should_panic(expected = "row width must match column count")]
    fn mismatched_row_panics() {
        format_table(&[Column::left("a")], &[vec!["x".into(), "y".into()]]);
    }

    #[test]
    fn empty_rows_renders_header_only() {
        let t = format_table(&[Column::left("h")], &[]);
        assert!(t.contains('h'));
        assert_eq!(t.lines().count(), 2);
    }
}
