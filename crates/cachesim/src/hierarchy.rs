//! A per-core L1/L2 plus shared-LLC hierarchy with cycle costs.
//!
//! [`Hierarchy::access`] walks the levels in order and returns both
//! the level that satisfied the access and its cycle cost, which the
//! machine simulator charges against the accessing thread. Latencies
//! default to T5-plausible values; only their *ordering* matters for
//! reproducing the paper's curve shapes.

use crate::cache::{Cache, CacheConfig};
use crate::tlb::{Tlb, TlbConfig};

/// Which level satisfied an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Core-private L1 data cache.
    L1,
    /// Core-private unified L2.
    L2,
    /// Socket-shared last-level cache.
    Llc,
    /// Memory (LLC miss).
    Dram,
}

/// Hierarchy geometry and latency model.
#[derive(Debug, Clone, Copy)]
pub struct HierarchyConfig {
    /// Number of cores (each gets a private L1/L2/DTLB).
    pub cores: usize,
    /// L1 geometry.
    pub l1: CacheConfig,
    /// L2 geometry.
    pub l2: CacheConfig,
    /// Shared LLC geometry.
    pub llc: CacheConfig,
    /// DTLB geometry.
    pub tlb: TlbConfig,
    /// L1 hit latency (cycles).
    pub l1_cycles: u64,
    /// L2 hit latency (cycles).
    pub l2_cycles: u64,
    /// LLC hit latency (cycles).
    pub llc_cycles: u64,
    /// DRAM access latency (cycles).
    pub dram_cycles: u64,
    /// Extra cycles charged for a DTLB miss (table walk).
    pub tlb_miss_cycles: u64,
}

impl HierarchyConfig {
    /// The paper's 16-core T5 socket with plausible latencies.
    pub fn t5(cores: usize) -> Self {
        HierarchyConfig {
            cores,
            l1: CacheConfig::t5_l1d(),
            l2: CacheConfig::t5_l2(),
            llc: CacheConfig::t5_l3(),
            tlb: TlbConfig::t5_dtlb(),
            l1_cycles: 3,
            l2_cycles: 12,
            llc_cycles: 40,
            dram_cycles: 320,
            tlb_miss_cycles: 180,
        }
    }
}

/// Per-level hit counts plus total cycles charged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// Accesses satisfied by L1.
    pub l1_hits: u64,
    /// Accesses satisfied by L2.
    pub l2_hits: u64,
    /// Accesses satisfied by the LLC.
    pub llc_hits: u64,
    /// Accesses that went to memory.
    pub dram_accesses: u64,
    /// DTLB misses.
    pub tlb_misses: u64,
    /// Total cycles charged across all accesses.
    pub cycles: u64,
}

/// The full per-socket hierarchy.
#[derive(Debug)]
pub struct Hierarchy {
    config: HierarchyConfig,
    l1: Vec<Cache>,
    l2: Vec<Cache>,
    llc: Cache,
    tlb: Vec<Tlb>,
    stats: HierarchyStats,
}

impl Hierarchy {
    /// Creates an empty hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if `config.cores` is zero.
    pub fn new(config: HierarchyConfig) -> Self {
        assert!(config.cores > 0, "need at least one core");
        Hierarchy {
            l1: (0..config.cores).map(|_| Cache::new(config.l1)).collect(),
            l2: (0..config.cores).map(|_| Cache::new(config.l2)).collect(),
            llc: Cache::new(config.llc),
            tlb: (0..config.cores).map(|_| Tlb::new(config.tlb)).collect(),
            config,
            stats: HierarchyStats::default(),
        }
    }

    /// Performs a data access by `cpu` (a logical CPU id) running on
    /// `core`; returns the satisfying level and the cycles charged.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access(&mut self, core: usize, cpu: u32, addr: u64) -> (Level, u64) {
        let mut cycles = 0;
        if !self.tlb[core].access(addr) {
            self.stats.tlb_misses += 1;
            cycles += self.config.tlb_miss_cycles;
        }
        let level = if self.l1[core].access(addr, cpu).is_hit() {
            cycles += self.config.l1_cycles;
            self.stats.l1_hits += 1;
            Level::L1
        } else if self.l2[core].access(addr, cpu).is_hit() {
            cycles += self.config.l2_cycles;
            self.stats.l2_hits += 1;
            Level::L2
        } else if self.llc.access(addr, cpu).is_hit() {
            cycles += self.config.llc_cycles;
            self.stats.llc_hits += 1;
            Level::Llc
        } else {
            cycles += self.config.dram_cycles;
            self.stats.dram_accesses += 1;
            Level::Dram
        };
        self.stats.cycles += cycles;
        (level, cycles)
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> HierarchyStats {
        self.stats
    }

    /// LLC-level statistics (self/extrinsic classification).
    pub fn llc_stats(&self) -> crate::cache::CacheStats {
        self.llc.stats()
    }

    /// Per-core DTLB statistics.
    pub fn tlb_stats(&self, core: usize) -> crate::tlb::TlbStats {
        self.tlb[core].stats()
    }

    /// The configuration in use.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Clears all contents and counters.
    pub fn clear(&mut self) {
        for c in &mut self.l1 {
            c.clear();
        }
        for c in &mut self.l2 {
            c.clear();
        }
        self.llc.clear();
        for t in &mut self.tlb {
            t.clear();
        }
        self.stats = HierarchyStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_goes_to_dram_then_l1() {
        let mut h = Hierarchy::new(HierarchyConfig::t5(2));
        let (lvl, cyc) = h.access(0, 0, 0x4000);
        assert_eq!(lvl, Level::Dram);
        assert!(cyc >= 320);
        let (lvl2, cyc2) = h.access(0, 0, 0x4000);
        assert_eq!(lvl2, Level::L1);
        assert_eq!(cyc2, 3);
    }

    #[test]
    fn other_core_hits_shared_llc_not_private_l1() {
        let mut h = Hierarchy::new(HierarchyConfig::t5(2));
        h.access(0, 0, 0x8000);
        let (lvl, _) = h.access(1, 8, 0x8000);
        assert_eq!(lvl, Level::Llc, "second core must find it in the LLC");
    }

    #[test]
    fn l2_catches_l1_overflow() {
        let mut h = Hierarchy::new(HierarchyConfig::t5(1));
        // Touch 32 KB (two passes): exceeds 16 KB L1, fits 128 KB L2.
        for i in 0..512u64 {
            h.access(0, 0, i * 64);
        }
        let before = h.stats().l2_hits;
        for i in 0..512u64 {
            h.access(0, 0, i * 64);
        }
        assert!(
            h.stats().l2_hits > before,
            "L1-evicted lines must be found in L2: {:?}",
            h.stats()
        );
        assert_eq!(h.stats().dram_accesses, 512, "no extra memory traffic");
    }

    #[test]
    fn tlb_miss_charges_walk_cycles() {
        let mut h = Hierarchy::new(HierarchyConfig::t5(1));
        let (_, cyc) = h.access(0, 0, 0);
        assert_eq!(cyc, 180 + 320); // TLB walk + DRAM
        let (_, cyc2) = h.access(0, 0, 8); // same line, same page
        assert_eq!(cyc2, 3);
    }

    #[test]
    fn stats_accumulate_cycles() {
        let mut h = Hierarchy::new(HierarchyConfig::t5(1));
        h.access(0, 0, 0);
        h.access(0, 0, 0);
        assert_eq!(h.stats().cycles, 180 + 320 + 3);
    }

    #[test]
    fn clear_resets_all() {
        let mut h = Hierarchy::new(HierarchyConfig::t5(1));
        h.access(0, 0, 0);
        h.clear();
        assert_eq!(h.stats(), HierarchyStats::default());
        let (lvl, _) = h.access(0, 0, 0);
        assert_eq!(lvl, Level::Dram);
    }
}
