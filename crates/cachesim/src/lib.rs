//! Functional cache-hierarchy and DTLB simulation with installer tags.
//!
//! §6.1 of *Malthusian Locks* describes "a faithful functional software
//! emulation" of the cache hierarchy, with each line augmented by "a
//! field that identified which CPU had installed the line", used to
//! discriminate *intrinsic self-misses* (a CPU displacing lines it
//! installed itself) from *extrinsic misses* (displacement by other
//! CPUs sharing the cache — the destructive interference CR removes).
//! No commercial CPU exposes such a counter, so the paper built one in
//! software; this crate is that emulation.
//!
//! The default T5 configuration constants model the paper's SPARC T5
//! socket: 16 KB L1D and 128 KB unified L2 per core, an 8 MB 16-way
//! shared L3, and a 128-entry fully-associative per-core DTLB over
//! 8 KB pages.
//!
//! # Examples
//!
//! ```
//! use malthus_cachesim::{Cache, CacheConfig};
//!
//! let mut llc = Cache::new(CacheConfig::t5_l3());
//! llc.access(0x1000, 0); // CPU 0 installs the line: cold miss
//! assert_eq!(llc.stats().cold_misses, 1);
//! assert!(llc.access(0x1000, 1).is_hit()); // shared hit
//! ```

#![warn(missing_docs)]

mod cache;
mod hierarchy;
mod tlb;

pub use cache::{AccessOutcome, Cache, CacheConfig, CacheStats, MissKind};
pub use hierarchy::{Hierarchy, HierarchyConfig, HierarchyStats, Level};
pub use tlb::{Tlb, TlbConfig, TlbStats};
