//! A fully-associative, LRU data TLB model.
//!
//! The T5 has a 128-entry fully-associative per-core DTLB shared by
//! the core's logical CPUs (§6); the RingWalker experiment (Figure 5)
//! collapses exactly when the combined page span of the threads on a
//! core exceeds those 128 entries.

/// TLB geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of entries (fully associative).
    pub entries: usize,
    /// Page size in bytes (power of two).
    pub page_bytes: u64,
}

impl TlbConfig {
    /// T5 per-core DTLB: 128 entries over 8 KB pages.
    pub fn t5_dtlb() -> Self {
        TlbConfig {
            entries: 128,
            page_bytes: 8 * 1024,
        }
    }
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Translations found resident.
    pub hits: u64,
    /// Translations that required a fill.
    pub misses: u64,
}

impl TlbStats {
    /// Miss ratio in `[0, 1]`; 0 for no accesses.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// A fully-associative LRU TLB.
#[derive(Debug)]
pub struct Tlb {
    config: TlbConfig,
    /// page number -> last-use tick.
    entries: std::collections::HashMap<u64, u64>,
    clock: u64,
    stats: TlbStats,
    page_shift: u32,
}

impl Tlb {
    /// Creates an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate geometry.
    pub fn new(config: TlbConfig) -> Self {
        assert!(config.entries > 0, "TLB needs at least one entry");
        assert!(
            config.page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        Tlb {
            config,
            entries: std::collections::HashMap::new(),
            clock: 0,
            stats: TlbStats::default(),
            page_shift: config.page_bytes.trailing_zeros(),
        }
    }

    /// Translates the address, filling on a miss. Returns `true` on a
    /// hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let page = addr >> self.page_shift;
        if let Some(t) = self.entries.get_mut(&page) {
            *t = self.clock;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        if self.entries.len() == self.config.entries {
            // Evict the LRU page.
            let lru = *self
                .entries
                .iter()
                .min_by_key(|(_, &t)| t)
                .map(|(p, _)| p)
                .expect("non-empty");
            self.entries.remove(&lru);
        }
        self.entries.insert(page, self.clock);
        false
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Number of currently resident translations.
    pub fn resident(&self) -> usize {
        self.entries.len()
    }

    /// Invalidates all translations and counters.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.stats = TlbStats::default();
        self.clock = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Tlb {
        Tlb::new(TlbConfig {
            entries: 4,
            page_bytes: 8192,
        })
    }

    #[test]
    fn first_touch_misses_then_hits() {
        let mut t = tiny();
        assert!(!t.access(0));
        assert!(t.access(100)); // same page
        assert!(!t.access(8192));
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 2);
    }

    #[test]
    fn span_within_entries_all_hits_after_warmup() {
        let mut t = tiny();
        for pass in 0..3 {
            for p in 0..4u64 {
                let hit = t.access(p * 8192);
                if pass > 0 {
                    assert!(hit);
                }
            }
        }
        assert_eq!(t.stats().misses, 4);
    }

    #[test]
    fn span_exceeding_entries_thrashes_cyclically() {
        let mut t = tiny();
        // 5 pages over 4 entries, cyclic: pure LRU thrash, no hits.
        for _ in 0..3 {
            for p in 0..5u64 {
                t.access(p * 8192);
            }
        }
        assert_eq!(t.stats().hits, 0);
    }

    #[test]
    fn lru_keeps_recent_translation() {
        let mut t = tiny();
        for p in 0..4u64 {
            t.access(p * 8192);
        }
        t.access(0); // refresh page 0
        t.access(4 * 8192); // evicts LRU = page 1
        assert!(t.access(0), "refreshed page must survive");
        assert!(!t.access(8192), "LRU page must have been evicted");
    }

    #[test]
    fn resident_bounded_by_capacity() {
        let mut t = tiny();
        for p in 0..100u64 {
            t.access(p * 8192);
        }
        assert_eq!(t.resident(), 4);
    }

    #[test]
    fn clear_resets() {
        let mut t = tiny();
        t.access(0);
        t.clear();
        assert_eq!(t.resident(), 0);
        assert_eq!(t.stats(), TlbStats::default());
    }

    #[test]
    fn t5_defaults() {
        let c = TlbConfig::t5_dtlb();
        assert_eq!(c.entries, 128);
        assert_eq!(c.page_bytes, 8192);
    }
}
