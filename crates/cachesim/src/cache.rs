//! A set-associative cache with LRU replacement and installer tags.

/// Configuration of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
}

impl CacheConfig {
    /// T5 per-core L1 data cache: 16 KB, 4-way, 64 B lines.
    pub fn t5_l1d() -> Self {
        CacheConfig {
            size_bytes: 16 * 1024,
            ways: 4,
            line_bytes: 64,
        }
    }

    /// T5 per-core unified L2: 128 KB, 8-way, 64 B lines.
    pub fn t5_l2() -> Self {
        CacheConfig {
            size_bytes: 128 * 1024,
            ways: 8,
            line_bytes: 64,
        }
    }

    /// T5 shared L3 (the socket LLC): 8 MB, 16-way, 64 B lines.
    pub fn t5_l3() -> Self {
        CacheConfig {
            size_bytes: 8 * 1024 * 1024,
            ways: 16,
            line_bytes: 64,
        }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sizes, non-power-of-
    /// two line size, or capacity not divisible by `ways × line`).
    pub fn sets(&self) -> u64 {
        assert!(self.line_bytes.is_power_of_two(), "line size must be 2^k");
        assert!(self.ways > 0 && self.size_bytes > 0, "degenerate geometry");
        let per_way = self.ways as u64 * self.line_bytes;
        assert!(
            self.size_bytes.is_multiple_of(per_way),
            "capacity must divide into ways x lines"
        );
        self.size_bytes / per_way
    }
}

/// Why a miss occurred, per the paper's self/extrinsic taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissKind {
    /// The line was never resident before.
    Cold,
    /// The line was last evicted by a line the *same* CPU installed
    /// (intrinsic self-displacement).
    SelfEvicted,
    /// The line was last evicted by a line installed by a *different*
    /// CPU (destructive interference).
    Extrinsic,
}

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was resident.
    Hit,
    /// The line was not resident.
    Miss(MissKind),
}

impl AccessOutcome {
    /// Returns `true` on a hit.
    pub fn is_hit(&self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }
}

/// Aggregate counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Resident accesses.
    pub hits: u64,
    /// First-touch misses.
    pub cold_misses: u64,
    /// Misses caused by the accessor's own earlier installs.
    pub self_misses: u64,
    /// Misses caused by other CPUs' installs (interference).
    pub extrinsic_misses: u64,
}

impl CacheStats {
    /// All misses combined.
    pub fn total_misses(&self) -> u64 {
        self.cold_misses + self.self_misses + self.extrinsic_misses
    }

    /// Miss ratio in `[0, 1]`; 0 for no accesses.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.total_misses();
        if total == 0 {
            0.0
        } else {
            self.total_misses() as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    installer: u32,
    last_used: u64,
    valid: bool,
}

/// A set-associative, LRU, installer-tagged cache model.
#[derive(Debug)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Way>>,
    /// line address -> CPU that installed the line which evicted it.
    evicted_by: std::collections::HashMap<u64, u32>,
    clock: u64,
    stats: CacheStats,
    line_shift: u32,
    set_mask: u64,
}

impl Cache {
    /// Creates an empty cache.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        Cache {
            config,
            sets: vec![
                vec![
                    Way {
                        tag: 0,
                        installer: 0,
                        last_used: 0,
                        valid: false,
                    };
                    config.ways as usize
                ];
                sets as usize
            ],
            evicted_by: std::collections::HashMap::new(),
            clock: 0,
            stats: CacheStats::default(),
            line_shift: config.line_bytes.trailing_zeros(),
            set_mask: sets - 1,
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accesses the byte at `addr` on behalf of `cpu`, installing the
    /// line on a miss. Returns the outcome with miss classification.
    pub fn access(&mut self, addr: u64, cpu: u32) -> AccessOutcome {
        self.clock += 1;
        let line = addr >> self.line_shift;
        let set_idx = if self.set_mask == 0 {
            0
        } else if (self.set_mask + 1).is_power_of_two() {
            (line & self.set_mask) as usize
        } else {
            (line % (self.set_mask + 1)) as usize
        };
        let clock = self.clock;
        let set = &mut self.sets[set_idx];

        // Hit path.
        if let Some(way) = set.iter_mut().find(|w| w.valid && w.tag == line) {
            way.last_used = clock;
            self.stats.hits += 1;
            return AccessOutcome::Hit;
        }

        // Miss: classify, then install over the LRU way.
        let kind = match self.evicted_by.remove(&line) {
            None => MissKind::Cold,
            Some(evictor) if evictor == cpu => MissKind::SelfEvicted,
            Some(_) => MissKind::Extrinsic,
        };
        match kind {
            MissKind::Cold => self.stats.cold_misses += 1,
            MissKind::SelfEvicted => self.stats.self_misses += 1,
            MissKind::Extrinsic => self.stats.extrinsic_misses += 1,
        }

        let victim = set
            .iter_mut()
            .min_by_key(|w| if w.valid { w.last_used } else { 0 })
            .expect("ways > 0");
        if victim.valid {
            // Record who displaced the victim: the installer of the
            // *incoming* line (i.e. the accessing CPU).
            self.evicted_by.insert(victim.tag, cpu);
        }
        victim.tag = line;
        victim.installer = cpu;
        victim.last_used = clock;
        victim.valid = true;
        AccessOutcome::Miss(kind)
    }

    /// Returns `true` if `addr`'s line is resident (no state change).
    pub fn probe(&self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set_idx = (line & self.set_mask) as usize;
        self.sets[set_idx].iter().any(|w| w.valid && w.tag == line)
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets counters (contents stay resident).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Invalidates all contents and counters.
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            for way in set {
                way.valid = false;
            }
        }
        self.evicted_by.clear();
        self.stats = CacheStats::default();
        self.clock = 0;
    }
}

#[cfg(test)]
// `0 * 64` is kept as deliberate line-index arithmetic in the tests.
#[allow(clippy::erasing_op)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 64-byte lines = 256 bytes.
        Cache::new(CacheConfig {
            size_bytes: 256,
            ways: 2,
            line_bytes: 64,
        })
    }

    #[test]
    fn geometry_sets() {
        assert_eq!(CacheConfig::t5_l3().sets(), 8192);
        assert_eq!(CacheConfig::t5_l1d().sets(), 64);
        assert_eq!(tiny().config().sets(), 2);
    }

    #[test]
    fn first_touch_is_cold_then_hit() {
        let mut c = tiny();
        assert_eq!(c.access(0, 0), AccessOutcome::Miss(MissKind::Cold));
        assert_eq!(c.access(63, 0), AccessOutcome::Hit); // same line
        assert_eq!(c.access(64, 0), AccessOutcome::Miss(MissKind::Cold));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().cold_misses, 2);
    }

    #[test]
    fn self_eviction_classified() {
        let mut c = tiny();
        // Set 0 holds lines 0 and 2 (2 ways). Line 4 (same set) evicts
        // LRU = line 0; all installs by CPU 0 -> re-touching line 0 is
        // a self miss.
        c.access(0 * 64, 0);
        c.access(2 * 64, 0);
        c.access(4 * 64, 0);
        assert_eq!(
            c.access(0 * 64, 0),
            AccessOutcome::Miss(MissKind::SelfEvicted)
        );
        assert_eq!(c.stats().self_misses, 1);
    }

    #[test]
    fn extrinsic_eviction_classified() {
        let mut c = tiny();
        c.access(0 * 64, 0); // CPU 0 installs line 0
        c.access(2 * 64, 0);
        c.access(4 * 64, 1); // CPU 1's install evicts line 0
        assert_eq!(
            c.access(0 * 64, 0),
            AccessOutcome::Miss(MissKind::Extrinsic)
        );
        assert_eq!(c.stats().extrinsic_misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        c.access(0 * 64, 0); // set 0, way A
        c.access(2 * 64, 0); // set 0, way B
        c.access(0 * 64, 0); // touch A -> B is LRU
        c.access(4 * 64, 0); // evicts B (line 2)
        assert!(c.probe(0 * 64), "recently used line must survive");
        assert!(!c.probe(2 * 64), "LRU line must be evicted");
    }

    #[test]
    fn different_sets_do_not_interfere() {
        let mut c = tiny();
        // Odd lines map to set 1; evictions in set 0 leave them alone.
        c.access(64, 0);
        c.access(0 * 64, 0);
        c.access(2 * 64, 0);
        c.access(4 * 64, 0);
        assert!(c.probe(64));
    }

    #[test]
    fn working_set_within_capacity_converges_to_hits() {
        let mut c = Cache::new(CacheConfig::t5_l1d());
        // 8 KB working set in a 16 KB cache: after the first pass,
        // everything hits.
        for pass in 0..3 {
            for i in 0..128u64 {
                let out = c.access(i * 64, 0);
                if pass > 0 {
                    assert!(out.is_hit(), "pass {pass} line {i}");
                }
            }
        }
        assert_eq!(c.stats().total_misses(), 128);
    }

    #[test]
    fn working_set_exceeding_capacity_thrashes() {
        let mut c = tiny(); // 256 B = 4 lines
                            // 8-line cyclic working set with LRU: every access misses.
        for _ in 0..4 {
            for i in 0..8u64 {
                c.access(i * 64, 0);
            }
        }
        assert_eq!(c.stats().hits, 0);
    }

    #[test]
    fn clear_resets_everything() {
        let mut c = tiny();
        c.access(0, 0);
        c.clear();
        assert_eq!(c.stats(), CacheStats::default());
        assert!(!c.probe(0));
    }

    #[test]
    fn miss_ratio_arithmetic() {
        let s = CacheStats {
            hits: 3,
            cold_misses: 1,
            self_misses: 0,
            extrinsic_misses: 0,
        };
        assert!((s.miss_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }
}
