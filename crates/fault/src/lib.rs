//! Deterministic, seed-replayable fault injection for every I/O
//! boundary of the KV server.
//!
//! *Malthusian Locks* is a paper about graceful degradation under
//! adversity; this crate supplies the adversity. A [`FaultPlan`] is a
//! tiny comma-separated spec (`seed=42,storage.fsync=1x3,net.reset=0.01`)
//! naming **sites** — fixed injection points compiled into the storage
//! WAL, the reactor's syscall shims, and the shard execution path —
//! each armed with a firing probability, an optional fault **budget**
//! (`xN`: at most `N` injections, then the site disarms — a fault
//! *window* that closes, so self-healing can be observed), and, for
//! stall sites, a duration.
//!
//! # Determinism
//!
//! Every site draws from its own xorshift64 stream seeded from the
//! plan's master seed (`seed=N`, else derived from the clock and
//! printed at arm time), so a single-threaded caller replays the exact
//! fault sequence given the same seed. Under concurrency the per-site
//! draw order depends on thread interleaving — the per-site streams
//! keep runs *statistically* identical, and the `kv_chaos` harness
//! layers its own strictly deterministic round schedule on top.
//!
//! # Overhead
//!
//! A process that never calls [`install`] pays one relaxed atomic load
//! per [`fire`] — the `OnceLock` lookup — and nothing else, so the
//! hooks stay compiled into production binaries.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// A fixed injection point compiled into one of the server's I/O
/// boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    /// Fail a WAL fsync (`storage.fsync`) — poisons the shard
    /// read-only until the healer's probe succeeds.
    StorageFsync,
    /// Short-write a WAL append then error (`storage.short_write`) —
    /// the torn-record shape a crash mid-`write` leaves behind.
    StorageShortWrite,
    /// Fail a WAL append outright, ENOSPC-style (`storage.enospc`):
    /// nothing of the record reaches the file.
    StorageEnospc,
    /// Force an `epoll_wait` to report an `EINTR`-style spurious
    /// wakeup (`net.eintr`).
    NetEintr,
    /// Force a connection read/write to report `EAGAIN`
    /// (`net.eagain`) — the worker must re-arm and retry.
    NetEagain,
    /// Inject a connection reset on a ready connection (`net.reset`).
    NetReset,
    /// Stall a shard's write group for the clause's duration while the
    /// exclusive lock is held (`shard.stall`) — the lock-holder
    /// preemption/stall shape the Malthusian policy reprovisions
    /// around.
    ShardStall,
}

/// All sites, index-aligned with the armed state's point table.
pub const SITES: [Site; 7] = [
    Site::StorageFsync,
    Site::StorageShortWrite,
    Site::StorageEnospc,
    Site::NetEintr,
    Site::NetEagain,
    Site::NetReset,
    Site::ShardStall,
];

/// Stall duration applied when a `shard.stall` clause names none.
pub const DEFAULT_STALL_MS: u64 = 20;

impl Site {
    /// The spec-grammar name of this site (`storage.fsync`, …).
    pub fn name(self) -> &'static str {
        match self {
            Site::StorageFsync => "storage.fsync",
            Site::StorageShortWrite => "storage.short_write",
            Site::StorageEnospc => "storage.enospc",
            Site::NetEintr => "net.eintr",
            Site::NetEagain => "net.eagain",
            Site::NetReset => "net.reset",
            Site::ShardStall => "shard.stall",
        }
    }

    fn parse(name: &str) -> Option<Site> {
        SITES.iter().copied().find(|s| s.name() == name)
    }

    fn index(self) -> usize {
        SITES
            .iter()
            .position(|&s| s == self)
            .expect("site in table")
    }
}

/// One armed site of a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Clause {
    /// Which injection point this clause arms.
    pub site: Site,
    /// Firing probability per opportunity, in `[0, 1]`.
    pub rate: f64,
    /// At most this many injections, then the site disarms (a fault
    /// window that closes). `None` = unlimited.
    pub budget: Option<u64>,
    /// Stall duration for [`Site::ShardStall`]; ignored elsewhere.
    pub stall_ms: u64,
}

/// A parsed fault-plan spec: a master seed plus armed sites.
///
/// # Grammar
///
/// Comma-separated clauses:
///
/// ```text
/// plan   := clause ("," clause)*
/// clause := "seed=" u64
///         | site "=" rate ["x" budget] [":" stall_ms]
/// site   := "storage.fsync" | "storage.short_write" | "storage.enospc"
///         | "net.eintr" | "net.eagain" | "net.reset" | "shard.stall"
/// rate   := f64 in [0, 1]
/// ```
///
/// `storage.fsync=1x3` fails the first three fsync opportunities with
/// certainty, then the site disarms; `net.reset=0.01` resets 1% of
/// ready connections forever; `shard.stall=0.05:40` stalls 5% of write
/// groups for 40 ms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Master seed; `None` lets [`install`] derive one from the clock
    /// (and return it so the run stays replayable).
    pub seed: Option<u64>,
    /// Armed sites.
    pub clauses: Vec<Clause>,
}

impl FaultPlan {
    /// Parses a plan spec (see the type-level grammar). Whitespace
    /// around clauses is tolerated; empty clauses are skipped, so a
    /// trailing comma is fine.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault clause {part:?} has no '='"))?;
            if key == "seed" {
                let seed = value
                    .parse::<u64>()
                    .map_err(|e| format!("bad seed {value:?}: {e}"))?;
                plan.seed = Some(seed);
                continue;
            }
            let site = Site::parse(key).ok_or_else(|| {
                let known: Vec<&str> = SITES.iter().map(|s| s.name()).collect();
                format!("unknown fault site {key:?} (known: {})", known.join(", "))
            })?;
            let (value, stall_ms) = match value.split_once(':') {
                Some((v, ms)) => (
                    v,
                    ms.parse::<u64>()
                        .map_err(|e| format!("bad stall ms {ms:?}: {e}"))?,
                ),
                None => (value, DEFAULT_STALL_MS),
            };
            let (rate_s, budget) = match value.split_once('x') {
                Some((r, b)) => (
                    r,
                    Some(
                        b.parse::<u64>()
                            .map_err(|e| format!("bad budget {b:?}: {e}"))?,
                    ),
                ),
                None => (value, None),
            };
            let rate = rate_s
                .parse::<f64>()
                .map_err(|e| format!("bad rate {rate_s:?}: {e}"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("rate {rate} for {key} outside [0, 1]"));
            }
            plan.clauses.push(Clause {
                site,
                rate,
                budget,
                stall_ms,
            });
        }
        Ok(plan)
    }

    /// Renders the plan back into the spec grammar with the resolved
    /// `seed` substituted — paste it into `--fault-plan` to replay.
    pub fn render(&self, seed: u64) -> String {
        let mut out = format!("seed={seed}");
        for c in &self.clauses {
            out.push(',');
            out.push_str(c.site.name());
            out.push('=');
            out.push_str(&format!("{}", c.rate));
            if let Some(b) = c.budget {
                out.push_str(&format!("x{b}"));
            }
            if c.site == Site::ShardStall && c.stall_ms != DEFAULT_STALL_MS {
                out.push_str(&format!(":{}", c.stall_ms));
            }
        }
        out
    }
}

/// One site's armed state. Rate is pre-scaled to a 32-bit threshold
/// so the hot path compares integers; the budget counts *injections*
/// (not opportunities) down to disarm.
struct Point {
    threshold: u64,
    budget: AtomicU64,
    stall_ms: u64,
    rng: AtomicU64,
    checked: AtomicU64,
    injected: AtomicU64,
}

impl Point {
    fn disarmed() -> Self {
        Point {
            threshold: 0,
            budget: AtomicU64::new(0),
            stall_ms: DEFAULT_STALL_MS,
            rng: AtomicU64::new(1),
            checked: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The armed form of a [`FaultPlan`]: per-site xorshift streams and
/// counters. Usable standalone (unit tests) or as the process-global
/// singleton behind [`install`]/[`fire`].
pub struct FaultState {
    points: [Point; SITES.len()],
    seed: u64,
}

impl FaultState {
    /// Arms `plan` with `seed` as the master seed.
    pub fn new(plan: &FaultPlan, seed: u64) -> Self {
        let mut points: [Point; SITES.len()] = std::array::from_fn(|_| Point::disarmed());
        for c in &plan.clauses {
            let i = c.site.index();
            // Scale [0,1] to a 33-bit threshold: 1.0 covers every
            // 32-bit draw.
            points[i].threshold = (c.rate * f64::from(u32::MAX) + c.rate).round() as u64;
            points[i].budget = AtomicU64::new(c.budget.unwrap_or(u64::MAX));
            points[i].stall_ms = c.stall_ms;
            let mut s = splitmix64(seed ^ splitmix64(i as u64 + 1));
            if s == 0 {
                s = 0x9E37_79B9_7F4A_7C15;
            }
            points[i].rng = AtomicU64::new(s);
        }
        FaultState { points, seed }
    }

    /// The master seed this state was armed with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// One injection opportunity at `site`: draws from the site's
    /// stream and reports whether the caller must inject the fault.
    /// Never fires once the site's budget is spent.
    ///
    /// The stream update is a racy load/store — under concurrency two
    /// opportunities may share a draw, which perturbs nothing but the
    /// exact interleaving (already nondeterministic across threads).
    pub fn fire(&self, site: Site) -> bool {
        let p = &self.points[site.index()];
        if p.threshold == 0 {
            return false;
        }
        p.checked.fetch_add(1, Ordering::Relaxed);
        let mut s = p.rng.load(Ordering::Relaxed);
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        p.rng.store(s, Ordering::Relaxed);
        if (s & u64::from(u32::MAX)) >= p.threshold {
            return false;
        }
        let mut b = p.budget.load(Ordering::Relaxed);
        loop {
            if b == 0 {
                return false;
            }
            if b == u64::MAX {
                break; // unlimited: no decrement
            }
            match p
                .budget
                .compare_exchange_weak(b, b - 1, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(cur) => b = cur,
            }
        }
        p.injected.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// [`FaultState::fire`] for a stall site: `Some(ms)` when the
    /// caller must sleep.
    pub fn stall_ms(&self, site: Site) -> Option<u64> {
        if self.fire(site) {
            Some(self.points[site.index()].stall_ms)
        } else {
            None
        }
    }

    /// Faults injected at `site` so far.
    pub fn injected(&self, site: Site) -> u64 {
        self.points[site.index()].injected.load(Ordering::Relaxed)
    }

    /// Opportunities checked at `site` so far (fired or not).
    pub fn checked(&self, site: Site) -> u64 {
        self.points[site.index()].checked.load(Ordering::Relaxed)
    }

    /// Whether any of `sites` is armed (has a nonzero rate).
    pub fn any_armed(&self, sites: &[Site]) -> bool {
        sites.iter().any(|s| self.points[s.index()].threshold != 0)
    }
}

static ARMED: OnceLock<FaultState> = OnceLock::new();

/// Arms `plan` process-wide and returns the resolved master seed —
/// print it, because with `plan.seed == None` it is derived from the
/// clock and the run is only replayable if someone wrote it down.
/// Idempotent: a second call keeps the first plan and returns its
/// seed.
pub fn install(plan: &FaultPlan) -> u64 {
    let seed = plan.seed.unwrap_or_else(entropy_seed);
    ARMED.get_or_init(|| FaultState::new(plan, seed)).seed()
}

fn entropy_seed() -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let mixed = splitmix64(nanos ^ u64::from(std::process::id()));
    if mixed == 0 {
        1
    } else {
        mixed
    }
}

/// The process-global armed state, if [`install`] has run.
pub fn armed() -> Option<&'static FaultState> {
    ARMED.get()
}

/// One injection opportunity at `site` against the global plan; false
/// when no plan is armed (one atomic load).
pub fn fire(site: Site) -> bool {
    ARMED.get().is_some_and(|s| s.fire(site))
}

/// Global [`FaultState::stall_ms`]; `None` when no plan is armed.
pub fn stall_ms(site: Site) -> Option<u64> {
    ARMED.get().and_then(|s| s.stall_ms(site))
}

/// Whether the global plan arms any storage-layer site — the sharded
/// store checks this once at open to decide whether to wrap its WAL
/// file layers in the injecting adapter.
pub fn storage_armed() -> bool {
    ARMED.get().is_some_and(|s| {
        s.any_armed(&[
            Site::StorageFsync,
            Site::StorageShortWrite,
            Site::StorageEnospc,
        ])
    })
}

/// `(site name, faults injected)` for every site of the global plan
/// (empty when unarmed) — the `kv_faults_injected_total` feed.
pub fn injected_counts() -> Vec<(&'static str, u64)> {
    match ARMED.get() {
        Some(s) => SITES.iter().map(|&k| (k.name(), s.injected(k))).collect(),
        None => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_the_grammar() {
        let plan =
            FaultPlan::parse("seed=42, storage.fsync=1x3, net.reset=0.25, shard.stall=0.5:40,")
                .unwrap();
        assert_eq!(plan.seed, Some(42));
        assert_eq!(plan.clauses.len(), 3);
        assert_eq!(
            plan.clauses[0],
            Clause {
                site: Site::StorageFsync,
                rate: 1.0,
                budget: Some(3),
                stall_ms: DEFAULT_STALL_MS,
            }
        );
        assert_eq!(plan.clauses[1].rate, 0.25);
        assert_eq!(plan.clauses[1].budget, None);
        assert_eq!(plan.clauses[2].stall_ms, 40);
        assert_eq!(
            plan.render(42),
            "seed=42,storage.fsync=1x3,net.reset=0.25,shard.stall=0.5:40"
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("storage.fsync").is_err(), "no '='");
        assert!(FaultPlan::parse("bogus.site=1").is_err(), "unknown site");
        assert!(FaultPlan::parse("net.reset=1.5").is_err(), "rate > 1");
        assert!(FaultPlan::parse("net.reset=-0.1").is_err(), "rate < 0");
        assert!(FaultPlan::parse("seed=abc").is_err(), "bad seed");
        assert!(FaultPlan::parse("storage.fsync=1xq").is_err(), "bad budget");
        assert!(FaultPlan::parse("shard.stall=1:q").is_err(), "bad stall");
    }

    #[test]
    fn same_seed_replays_the_same_schedule() {
        let plan = FaultPlan::parse("net.reset=0.3").unwrap();
        let draw = |seed: u64| -> Vec<bool> {
            let st = FaultState::new(&plan, seed);
            (0..256).map(|_| st.fire(Site::NetReset)).collect()
        };
        assert_eq!(draw(7), draw(7), "identical schedule for one seed");
        assert_ne!(draw(7), draw(8), "different seed, different schedule");
        let fired = draw(7).iter().filter(|&&f| f).count();
        assert!(
            (32..=160).contains(&fired),
            "rate 0.3 over 256 draws fired {fired} times"
        );
    }

    #[test]
    fn budget_closes_the_fault_window() {
        let plan = FaultPlan::parse("storage.fsync=1x3").unwrap();
        let st = FaultState::new(&plan, 1);
        let fired: Vec<bool> = (0..10).map(|_| st.fire(Site::StorageFsync)).collect();
        assert_eq!(
            fired,
            vec![true, true, true, false, false, false, false, false, false, false],
            "rate 1 fires exactly budget times then disarms"
        );
        assert_eq!(st.injected(Site::StorageFsync), 3);
        assert_eq!(st.checked(Site::StorageFsync), 10);
    }

    #[test]
    fn unarmed_sites_never_fire_and_cost_nothing() {
        let plan = FaultPlan::parse("storage.fsync=1").unwrap();
        let st = FaultState::new(&plan, 1);
        assert!(!st.fire(Site::NetReset));
        assert_eq!(st.checked(Site::NetReset), 0, "disarmed check not counted");
        assert!(st.any_armed(&[Site::StorageFsync]));
        assert!(!st.any_armed(&[Site::NetReset, Site::NetEintr]));
    }

    #[test]
    fn stall_site_reports_its_duration() {
        let plan = FaultPlan::parse("shard.stall=1:7").unwrap();
        let st = FaultState::new(&plan, 1);
        assert_eq!(st.stall_ms(Site::ShardStall), Some(7));
        let none = FaultState::new(&FaultPlan::default(), 1);
        assert_eq!(none.stall_ms(Site::ShardStall), None);
    }

    #[test]
    fn global_install_is_idempotent_and_feeds_counters() {
        // The one test that touches the process-global singleton (the
        // other tests use standalone `FaultState`s so order cannot
        // matter). Arm a site no other global path exercises in this
        // test binary.
        let plan = FaultPlan::parse("seed=9,net.eagain=1x2").unwrap();
        assert_eq!(install(&plan), 9);
        assert_eq!(install(&plan), 9, "second install keeps the first");
        assert!(fire(Site::NetEagain));
        assert!(fire(Site::NetEagain));
        assert!(!fire(Site::NetEagain), "budget spent");
        assert!(!storage_armed());
        let counts = injected_counts();
        let eagain = counts.iter().find(|(n, _)| *n == "net.eagain").unwrap();
        assert_eq!(eagain.1, 2);
    }
}
