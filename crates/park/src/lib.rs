//! Park/unpark infrastructure and waiting policies for Malthusian locks.
//!
//! This crate is the waiting substrate described in §5.1 of *Malthusian
//! Locks* (Dice, EuroSys 2017). It provides:
//!
//! * [`Parker`]/[`Unparker`] — a permit-based voluntary context-switch
//!   facility with the semantics the paper requires: an `unpark` may
//!   precede the corresponding `park` (the permit is consumed and `park`
//!   returns immediately), and `park` is allowed to return spuriously,
//!   so callers must re-check their wait condition.
//! * [`WaitCell`] — the per-waiter flag used by queue locks: a thread
//!   enqueues a cell, then waits on it with a [`WaitPolicy`] (polite
//!   local spinning, spin-then-park, or immediate parking) while the
//!   lock's unlock path signals it.
//! * [`Backoff`] — fixed and randomized-exponential backoff for global
//!   spinning (TAS-style locks).
//! * [`XorShift64`] — the Marsaglia xorshift PRNG the paper uses for
//!   Bernoulli fairness trials (§4).
//! * [`stats`] — global counters for voluntary context switches and
//!   kernel-equivalent unpark notifications, reported in the paper's
//!   Figure 4.
//!
//! # Examples
//!
//! ```
//! use malthus_park::{WaitCell, WaitPolicy};
//! use std::sync::Arc;
//!
//! // A cell is created by the thread that will wait on it.
//! let cell = Arc::new(WaitCell::new());
//! let signaller = Arc::clone(&cell);
//! let helper = std::thread::spawn(move || {
//!     signaller.signal();
//! });
//! cell.wait(WaitPolicy::spin_then_park());
//! helper.join().unwrap();
//! ```

#![warn(missing_docs)]

mod backoff;
mod parker;
mod rng;
mod spin;
pub mod stats;
mod waitcell;

pub use backoff::Backoff;
pub use parker::{ParkResult, Parker, Unparker};
pub use rng::XorShift64;
pub use spin::{cpu_relax, polite_spin, SpinThenYield, SpinWait, SPIN_YIELD_BUDGET};
pub use waitcell::{WaitCell, WaitOutcome, WaitPolicy, DEFAULT_SPIN_CYCLES};
