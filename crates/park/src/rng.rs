//! Marsaglia xorshift pseudo-random number generator.
//!
//! The paper (§4) uses a thread-local Marsaglia xorshift generator to
//! drive the Bernoulli fairness trials in the MCSCR unlock path; the
//! generator must be cheap enough to sit on the unlock fast path. This
//! is the 64-bit three-shift variant from Marsaglia, *Xorshift RNGs*
//! (JSS 2003).

use std::cell::Cell;

/// A 64-bit xorshift generator (shifts 13, 7, 17).
///
/// Not cryptographically secure; period `2^64 - 1`. The zero state is
/// forbidden and is mapped to a fixed non-zero seed.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: Cell<u64>,
}

impl XorShift64 {
    /// Creates a generator from `seed` (zero is remapped).
    ///
    /// The seed is pre-scrambled with a SplitMix64 step: raw xorshift
    /// state mixes slowly, so small literal seeds (1, 7, 42, ...)
    /// would otherwise produce small first outputs and bias early
    /// Bernoulli trials.
    pub fn new(seed: u64) -> Self {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        if z == 0 {
            z = 0x9E37_79B9_7F4A_7C15;
        }
        XorShift64 {
            state: Cell::new(z),
        }
    }

    /// Creates a generator seeded from the current thread and time.
    pub fn from_entropy() -> Self {
        let addr = &() as *const () as u64;
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5DEE_CE66);
        Self::new(addr.rotate_left(32) ^ t ^ 0xA076_1D64_78BD_642F)
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&self) -> u64 {
        let mut x = self.state.get();
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state.set(x);
        x
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift mapping (Lemire); bias is negligible for the
        // bounds used in fairness trials (<= a few thousand).
        let x = self.next_u64();
        ((x as u128 * bound as u128) >> 64) as u64
    }

    /// Performs a Bernoulli trial that succeeds with probability
    /// `1/denominator`.
    ///
    /// This is the paper's fairness trigger: with `denominator = 1000`,
    /// roughly one unlock in a thousand promotes the eldest passive
    /// thread (§4).
    ///
    /// # Panics
    ///
    /// Panics if `denominator` is zero.
    pub fn one_in(&self, denominator: u64) -> bool {
        self.next_below(denominator) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_remapped() {
        let r = XorShift64::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn sequence_is_deterministic_for_seed() {
        let a = XorShift64::new(42);
        let b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let r = XorShift64::new(7);
        for _ in 0..10_000 {
            assert!(r.next_below(17) < 17);
        }
    }

    #[test]
    fn one_in_frequency_is_plausible() {
        let r = XorShift64::new(1234);
        let trials = 2_000_000u64;
        let mut hits = 0u64;
        for _ in 0..trials {
            if r.one_in(1000) {
                hits += 1;
            }
        }
        // Expected 2000; allow generous slop (5 sigma ~ 225).
        assert!((1500..2500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn one_in_one_always_true() {
        let r = XorShift64::new(5);
        for _ in 0..100 {
            assert!(r.one_in(1));
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        XorShift64::new(1).next_below(0);
    }

    #[test]
    fn values_look_uniform_across_buckets() {
        let r = XorShift64::new(99);
        let mut buckets = [0u32; 16];
        for _ in 0..160_000 {
            buckets[(r.next_u64() >> 60) as usize] += 1;
        }
        for &b in &buckets {
            assert!((8000..12000).contains(&b), "bucket count {b}");
        }
    }
}
