//! Global counters for waiting-policy behaviour.
//!
//! The paper's Figure 4 reports *voluntary context switches* per run;
//! these counters let the live benchmark harness report the same row.
//! All counters are monotonically increasing relaxed atomics; use
//! [`snapshot`] before and after a measurement interval and subtract.

use std::sync::atomic::{AtomicU64, Ordering};

/// A counter alone on its cache line (and prefetch pair): these six
/// statics are bumped from unrelated threads' wait/wake paths, and
/// unpadded adjacent statics would turn independent counters into one
/// ping-ponging line.
#[repr(align(128))]
struct PaddedCounter(AtomicU64);

impl PaddedCounter {
    const fn new() -> Self {
        PaddedCounter(AtomicU64::new(0))
    }

    #[inline]
    fn bump(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

static VOLUNTARY_PARKS: PaddedCounter = PaddedCounter::new();
static PARK_FAST_PATHS: PaddedCounter = PaddedCounter::new();
static UNPARK_NOTIFIES: PaddedCounter = PaddedCounter::new();
static UNPARK_FAST_PATHS: PaddedCounter = PaddedCounter::new();
static SPIN_SUCCESSES: PaddedCounter = PaddedCounter::new();
static SPIN_FAILURES: PaddedCounter = PaddedCounter::new();

/// A point-in-time copy of all waiting counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// `park` calls that actually blocked in the "kernel" (condvar).
    pub voluntary_parks: u64,
    /// `park` calls satisfied by a pending permit without blocking.
    pub park_fast_paths: u64,
    /// `unpark` calls that had to notify a blocked thread.
    pub unpark_notifies: u64,
    /// `unpark` calls that merely recorded a permit.
    pub unpark_fast_paths: u64,
    /// Spin-then-park waits satisfied during the spin phase.
    pub spin_successes: u64,
    /// Spin-then-park waits that exhausted the spin budget and parked.
    pub spin_failures: u64,
}

impl Snapshot {
    /// Component-wise difference `self - earlier`, saturating at zero.
    pub fn since(&self, earlier: &Snapshot) -> Snapshot {
        Snapshot {
            voluntary_parks: self.voluntary_parks.saturating_sub(earlier.voluntary_parks),
            park_fast_paths: self.park_fast_paths.saturating_sub(earlier.park_fast_paths),
            unpark_notifies: self.unpark_notifies.saturating_sub(earlier.unpark_notifies),
            unpark_fast_paths: self
                .unpark_fast_paths
                .saturating_sub(earlier.unpark_fast_paths),
            spin_successes: self.spin_successes.saturating_sub(earlier.spin_successes),
            spin_failures: self.spin_failures.saturating_sub(earlier.spin_failures),
        }
    }

    /// Total voluntary context switches (blocked parks).
    pub fn voluntary_context_switches(&self) -> u64 {
        self.voluntary_parks
    }
}

/// Returns a copy of the current counter values.
pub fn snapshot() -> Snapshot {
    Snapshot {
        voluntary_parks: VOLUNTARY_PARKS.get(),
        park_fast_paths: PARK_FAST_PATHS.get(),
        unpark_notifies: UNPARK_NOTIFIES.get(),
        unpark_fast_paths: UNPARK_FAST_PATHS.get(),
        spin_successes: SPIN_SUCCESSES.get(),
        spin_failures: SPIN_FAILURES.get(),
    }
}

pub(crate) fn record_voluntary_park() {
    VOLUNTARY_PARKS.bump();
}

pub(crate) fn record_park_fast_path() {
    PARK_FAST_PATHS.bump();
}

pub(crate) fn record_unpark_notify() {
    UNPARK_NOTIFIES.bump();
}

pub(crate) fn record_unpark_fast_path() {
    UNPARK_FAST_PATHS.bump();
}

pub(crate) fn record_spin_success() {
    SPIN_SUCCESSES.bump();
}

pub(crate) fn record_spin_failure() {
    SPIN_FAILURES.bump();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_since_subtracts() {
        let a = Snapshot {
            voluntary_parks: 10,
            park_fast_paths: 5,
            unpark_notifies: 3,
            unpark_fast_paths: 2,
            spin_successes: 1,
            spin_failures: 9,
        };
        let b = Snapshot {
            voluntary_parks: 4,
            park_fast_paths: 5,
            unpark_notifies: 1,
            unpark_fast_paths: 0,
            spin_successes: 0,
            spin_failures: 9,
        };
        let d = a.since(&b);
        assert_eq!(d.voluntary_parks, 6);
        assert_eq!(d.park_fast_paths, 0);
        assert_eq!(d.unpark_notifies, 2);
        assert_eq!(d.unpark_fast_paths, 2);
        assert_eq!(d.spin_successes, 1);
        assert_eq!(d.spin_failures, 0);
        assert_eq!(d.voluntary_context_switches(), 6);
    }

    #[test]
    fn counters_increase_monotonically() {
        let before = snapshot();
        record_voluntary_park();
        record_spin_success();
        let after = snapshot();
        assert!(after.voluntary_parks > before.voluntary_parks);
        assert!(after.spin_successes > before.spin_successes);
    }
}
