//! Randomized-exponential backoff for global spinning.
//!
//! TAS-style locks where every waiter polls a single location need
//! randomized backoff to damp coherence storms and thundering herds
//! (paper, appendix A.1). Queue locks with local spinning do not.

use crate::rng::XorShift64;
use crate::spin::polite_spin;

/// Randomized truncated-exponential backoff.
///
/// Each failed acquisition attempt doubles the backoff ceiling up to
/// `max`; the actual pause is drawn uniformly from `[1, ceiling]`,
/// decorrelating waiters.
#[derive(Debug)]
pub struct Backoff {
    ceiling: u32,
    min: u32,
    max: u32,
    rng: XorShift64,
}

impl Backoff {
    /// Creates a backoff helper with the given bounds (in pause
    /// iterations).
    ///
    /// # Panics
    ///
    /// Panics if `min` is zero or `min > max`.
    pub fn new(min: u32, max: u32, seed: u64) -> Self {
        assert!(min > 0, "minimum backoff must be positive");
        assert!(min <= max, "minimum backoff must not exceed maximum");
        Backoff {
            ceiling: min,
            min,
            max,
            rng: XorShift64::new(seed),
        }
    }

    /// Creates a backoff helper with defaults suitable for a contended
    /// TAS outer lock (paper's LOITER arrival phase).
    pub fn for_tas(seed: u64) -> Self {
        Self::new(16, 4096, seed)
    }

    /// Pauses for a randomized interval and escalates the ceiling;
    /// returns the number of pause iterations executed.
    pub fn pause(&mut self) -> u32 {
        let span = self.rng.next_below(self.ceiling as u64) as u32 + 1;
        polite_spin(span);
        self.ceiling = (self.ceiling.saturating_mul(2)).min(self.max);
        span
    }

    /// Resets the ceiling after a successful acquisition.
    pub fn reset(&mut self) {
        self.ceiling = self.min;
    }

    /// Current ceiling in pause iterations (for tests/diagnostics).
    pub fn ceiling(&self) -> u32 {
        self.ceiling
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceiling_doubles_and_saturates() {
        let mut b = Backoff::new(4, 16, 1);
        assert_eq!(b.ceiling(), 4);
        b.pause();
        assert_eq!(b.ceiling(), 8);
        b.pause();
        assert_eq!(b.ceiling(), 16);
        b.pause();
        assert_eq!(b.ceiling(), 16);
    }

    #[test]
    fn pause_span_within_ceiling() {
        let mut b = Backoff::new(8, 64, 77);
        for _ in 0..50 {
            let before = b.ceiling();
            let span = b.pause();
            assert!(span >= 1 && span <= before, "span {span} ceiling {before}");
        }
    }

    #[test]
    fn reset_restores_minimum() {
        let mut b = Backoff::new(2, 1024, 3);
        for _ in 0..6 {
            b.pause();
        }
        assert!(b.ceiling() > 2);
        b.reset();
        assert_eq!(b.ceiling(), 2);
    }

    #[test]
    #[should_panic(expected = "minimum backoff must be positive")]
    fn zero_min_panics() {
        Backoff::new(0, 8, 1);
    }

    #[test]
    #[should_panic(expected = "minimum backoff must not exceed maximum")]
    fn inverted_bounds_panic() {
        Backoff::new(16, 8, 1);
    }
}
