//! Permit-based parker: the user-space face of `lwp_park`/futex waiting.
//!
//! The paper (§5.1 "Parking") describes the facility as a
//! restricted-range semaphore holding only the values 0 (neutral) and 1
//! (unpark pending). [`Parker::park`] consumes a pending permit without
//! blocking; otherwise it blocks until [`Unparker::unpark`] deposits
//! one. Redundant unparks collapse into a single permit.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::stats;

/// No permit available and no thread blocked.
const EMPTY: usize = 0;
/// A thread is blocked in [`Parker::park`].
const PARKED: usize = 1;
/// A permit is pending; the next `park` returns immediately.
const NOTIFIED: usize = 2;

struct Inner {
    state: AtomicUsize,
    lock: Mutex<()>,
    cvar: Condvar,
}

/// Why a call to [`Parker::park_timeout`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParkResult {
    /// A permit was consumed (an unpark happened before or during the wait).
    Unparked,
    /// The timeout elapsed without a permit being deposited.
    TimedOut,
}

/// The waiting side of the permit facility; one per waiting thread.
///
/// A `Parker` is cheap to create and is typically stored in a
/// thread-local or on the waiting thread's stack. Use
/// [`Parker::unparker`] to obtain a handle that other threads use to
/// wake this one.
pub struct Parker {
    inner: Arc<Inner>,
}

/// The waking side of the permit facility; clonable and shareable.
#[derive(Clone)]
pub struct Unparker {
    inner: Arc<Inner>,
}

impl Default for Parker {
    fn default() -> Self {
        Self::new()
    }
}

impl Parker {
    /// Creates a parker with no pending permit.
    pub fn new() -> Self {
        Parker {
            inner: Arc::new(Inner {
                state: AtomicUsize::new(EMPTY),
                lock: Mutex::new(()),
                cvar: Condvar::new(),
            }),
        }
    }

    /// Returns a handle other threads can use to wake this parker.
    pub fn unparker(&self) -> Unparker {
        Unparker {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Blocks the calling thread until a permit is available, then
    /// consumes it.
    ///
    /// If a permit is already pending the call returns immediately
    /// without a voluntary context switch. Callers must tolerate
    /// spurious returns and re-check their wait condition; the paper's
    /// litmus test is that a no-op implementation of park/unpark must
    /// still be correct (§5.1).
    pub fn park(&self) {
        // Fast path: consume a pending permit without blocking.
        if self
            .inner
            .state
            .compare_exchange(NOTIFIED, EMPTY, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            stats::record_park_fast_path();
            return;
        }

        let mut guard = self.inner.lock.lock().expect("parker mutex poisoned");
        // Publish that we are about to block. If an unpark raced in
        // between the fast path and taking the mutex, consume it.
        match self
            .inner
            .state
            .compare_exchange(EMPTY, PARKED, Ordering::SeqCst, Ordering::SeqCst)
        {
            Ok(_) => {}
            Err(actual) => {
                debug_assert_eq!(actual, NOTIFIED);
                self.inner.state.store(EMPTY, Ordering::SeqCst);
                stats::record_park_fast_path();
                return;
            }
        }
        stats::record_voluntary_park();
        loop {
            guard = self
                .inner
                .cvar
                .wait(guard)
                .expect("parker condvar poisoned");
            if self
                .inner
                .state
                .compare_exchange(NOTIFIED, EMPTY, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return;
            }
            // Spurious condvar wakeup: keep waiting. (We remain PARKED.)
        }
    }

    /// Blocks for at most `timeout`, consuming a permit if one arrives.
    ///
    /// Timed parking underpins the LOITER standby-thread fence-elision
    /// optimization (paper, appendix A.1 footnote): the standby thread
    /// periodically polls rather than relying on a fence in the unlock
    /// fast path.
    pub fn park_timeout(&self, timeout: Duration) -> ParkResult {
        if self
            .inner
            .state
            .compare_exchange(NOTIFIED, EMPTY, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            stats::record_park_fast_path();
            return ParkResult::Unparked;
        }

        let mut guard = self.inner.lock.lock().expect("parker mutex poisoned");
        match self
            .inner
            .state
            .compare_exchange(EMPTY, PARKED, Ordering::SeqCst, Ordering::SeqCst)
        {
            Ok(_) => {}
            Err(_) => {
                self.inner.state.store(EMPTY, Ordering::SeqCst);
                stats::record_park_fast_path();
                return ParkResult::Unparked;
            }
        }
        stats::record_voluntary_park();
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let now = std::time::Instant::now();
            if now >= deadline {
                // Withdraw our parked claim; an unpark may have raced.
                return match self.inner.state.swap(EMPTY, Ordering::SeqCst) {
                    NOTIFIED => ParkResult::Unparked,
                    _ => ParkResult::TimedOut,
                };
            }
            let (g, _res) = self
                .inner
                .cvar
                .wait_timeout(guard, deadline - now)
                .expect("parker condvar poisoned");
            guard = g;
            if self
                .inner
                .state
                .compare_exchange(NOTIFIED, EMPTY, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return ParkResult::Unparked;
            }
        }
    }

    /// Returns `true` if a permit is currently pending.
    pub fn permit_pending(&self) -> bool {
        self.inner.state.load(Ordering::Acquire) == NOTIFIED
    }
}

impl Unparker {
    /// Deposits a permit, waking the parker's thread if it is blocked.
    ///
    /// Multiple unparks collapse into a single permit (restricted-range
    /// semaphore semantics). Unparking a thread that is not blocked is
    /// cheap: it records the permit and returns without touching the
    /// condition variable, mirroring the optimized fast paths the paper
    /// describes for redundant unpark operations.
    pub fn unpark(&self) {
        match self.inner.state.swap(NOTIFIED, Ordering::SeqCst) {
            EMPTY | NOTIFIED => {
                stats::record_unpark_fast_path();
            }
            parked => {
                debug_assert_eq!(parked, PARKED);
                // Take and drop the mutex so the notify cannot be lost
                // between the waiter's state check and its cvar wait.
                drop(self.inner.lock.lock().expect("parker mutex poisoned"));
                self.inner.cvar.notify_one();
                stats::record_unpark_notify();
            }
        }
    }
}

impl std::fmt::Debug for Parker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Parker")
            .field("state", &self.inner.state.load(Ordering::Relaxed))
            .finish()
    }
}

impl std::fmt::Debug for Unparker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Unparker").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::time::Instant;

    #[test]
    fn permit_before_park_returns_immediately() {
        let p = Parker::new();
        p.unparker().unpark();
        let start = Instant::now();
        p.park();
        assert!(start.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn redundant_unparks_collapse_to_one_permit() {
        let p = Parker::new();
        let u = p.unparker();
        u.unpark();
        u.unpark();
        u.unpark();
        p.park(); // consumes the single permit
        assert_eq!(
            p.park_timeout(Duration::from_millis(10)),
            ParkResult::TimedOut
        );
    }

    #[test]
    fn park_blocks_until_unpark() {
        let p = Parker::new();
        let u = p.unparker();
        let released = Arc::new(AtomicBool::new(false));
        let released2 = Arc::clone(&released);
        let h = std::thread::spawn(move || {
            p.park();
            released2.store(true, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(50));
        assert!(!released.load(Ordering::SeqCst));
        u.unpark();
        h.join().unwrap();
        assert!(released.load(Ordering::SeqCst));
    }

    #[test]
    fn park_timeout_times_out_without_permit() {
        let p = Parker::new();
        let start = Instant::now();
        assert_eq!(
            p.park_timeout(Duration::from_millis(20)),
            ParkResult::TimedOut
        );
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn park_timeout_consumes_concurrent_unpark() {
        let p = Parker::new();
        let u = p.unparker();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            u.unpark();
        });
        assert_eq!(
            p.park_timeout(Duration::from_secs(10)),
            ParkResult::Unparked
        );
        h.join().unwrap();
    }

    #[test]
    fn permit_pending_reflects_state() {
        let p = Parker::new();
        assert!(!p.permit_pending());
        p.unparker().unpark();
        assert!(p.permit_pending());
        p.park();
        assert!(!p.permit_pending());
    }

    #[test]
    fn ping_pong_many_rounds() {
        let a = Parker::new();
        let ua = a.unparker();
        let b = Parker::new();
        let ub = b.unparker();
        let h = std::thread::spawn(move || {
            for _ in 0..1000 {
                a.park();
                ub.unpark();
            }
        });
        for _ in 0..1000 {
            ua.unpark();
            b.park();
        }
        h.join().unwrap();
    }
}
