//! Polite busy-wait primitives.
//!
//! The paper's `-S` lock variants spin with a "polite" instruction
//! (`RD CCR,G0` on SPARC, `PAUSE` on x86) that cedes pipeline resources
//! to sibling strands (§5.1). On stable Rust the portable equivalent is
//! [`std::hint::spin_loop`], which lowers to `PAUSE`/`YIELD` where
//! available.

/// Executes one polite spin iteration (the `PAUSE` idiom).
#[inline(always)]
pub fn cpu_relax() {
    std::hint::spin_loop();
}

/// Spins politely for approximately `iterations` loop steps.
#[inline]
pub fn polite_spin(iterations: u32) {
    for _ in 0..iterations {
        cpu_relax();
    }
}

/// Polite pauses executed by an unbounded waiter before it starts
/// interleaving voluntary yields.
///
/// Pure `PAUSE` spinning assumes the signalling thread runs on another
/// CPU. On an oversubscribed host (more runnable threads than CPUs —
/// the extreme case being a single-CPU CI container) the signaller may
/// be *descheduled*, and a waiter that never yields burns its entire
/// scheduling quantum before the signaller can make progress, turning
/// every handoff into a multi-millisecond stall. After this budget the
/// waiter cedes its timeslice each iteration instead, which is free
/// when the system is undersubscribed (the budget is rarely exhausted)
/// and essential when it is not.
pub const SPIN_YIELD_BUDGET: u32 = 256;

/// An unbounded-wait helper: polite pauses up to
/// [`SPIN_YIELD_BUDGET`], voluntary `yield_now` afterwards.
///
/// Use this for spin loops with no upper bound (waiting for a lock
/// handoff or a queue link); use [`SpinWait`] for short bounded waits
/// where the awaited store is known to be imminent.
#[derive(Debug, Default)]
pub struct SpinThenYield {
    spins: u32,
}

impl SpinThenYield {
    /// Creates a fresh helper with a full pause budget.
    pub const fn new() -> Self {
        SpinThenYield { spins: 0 }
    }

    /// Waits one step: a polite pause while the budget lasts, a
    /// voluntary yield once it is exhausted.
    #[inline]
    pub fn pause(&mut self) {
        if self.spins < SPIN_YIELD_BUDGET {
            self.spins += 1;
            cpu_relax();
        } else {
            std::thread::yield_now();
        }
    }
}

/// An adaptive local-spin helper with an escalating pause count.
///
/// Intended for *local* spinning on a flag the current thread owns
/// (MCS-style); a simple fixed/short backoff suffices there, per §5.1
/// ("a simple fixed back-off usually suffices for local spinning").
#[derive(Debug, Default)]
pub struct SpinWait {
    step: u32,
}

impl SpinWait {
    /// Maximum exponent for the pause burst (2^6 = 64 pauses).
    const MAX_STEP: u32 = 6;

    /// Creates a fresh spin helper.
    pub fn new() -> Self {
        SpinWait { step: 0 }
    }

    /// Spins one escalating burst; returns the number of pause
    /// iterations executed.
    pub fn spin(&mut self) -> u32 {
        let pauses = 1u32 << self.step;
        polite_spin(pauses);
        if self.step < Self::MAX_STEP {
            self.step += 1;
        }
        pauses
    }

    /// Resets the escalation back to a single pause.
    pub fn reset(&mut self) {
        self.step = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spinwait_escalates_then_saturates() {
        let mut s = SpinWait::new();
        let mut seen = Vec::new();
        for _ in 0..10 {
            seen.push(s.spin());
        }
        assert_eq!(&seen[..7], &[1, 2, 4, 8, 16, 32, 64]);
        assert_eq!(seen[7], 64);
        assert_eq!(seen[9], 64);
    }

    #[test]
    fn spinwait_reset_restarts() {
        let mut s = SpinWait::new();
        s.spin();
        s.spin();
        s.reset();
        assert_eq!(s.spin(), 1);
    }

    #[test]
    fn polite_spin_zero_is_noop() {
        polite_spin(0);
    }

    #[test]
    fn spin_then_yield_survives_many_iterations() {
        // Exhausts the pause budget and crosses into yielding without
        // blocking or panicking.
        let mut s = SpinThenYield::new();
        for _ in 0..(SPIN_YIELD_BUDGET + 16) {
            s.pause();
        }
    }
}
