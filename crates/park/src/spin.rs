//! Polite busy-wait primitives.
//!
//! The paper's `-S` lock variants spin with a "polite" instruction
//! (`RD CCR,G0` on SPARC, `PAUSE` on x86) that cedes pipeline resources
//! to sibling strands (§5.1). On stable Rust the portable equivalent is
//! [`std::hint::spin_loop`], which lowers to `PAUSE`/`YIELD` where
//! available.

/// Executes one polite spin iteration (the `PAUSE` idiom).
#[inline(always)]
pub fn cpu_relax() {
    std::hint::spin_loop();
}

/// Spins politely for approximately `iterations` loop steps.
#[inline]
pub fn polite_spin(iterations: u32) {
    for _ in 0..iterations {
        cpu_relax();
    }
}

/// An adaptive local-spin helper with an escalating pause count.
///
/// Intended for *local* spinning on a flag the current thread owns
/// (MCS-style); a simple fixed/short backoff suffices there, per §5.1
/// ("a simple fixed back-off usually suffices for local spinning").
#[derive(Debug, Default)]
pub struct SpinWait {
    step: u32,
}

impl SpinWait {
    /// Maximum exponent for the pause burst (2^6 = 64 pauses).
    const MAX_STEP: u32 = 6;

    /// Creates a fresh spin helper.
    pub fn new() -> Self {
        SpinWait { step: 0 }
    }

    /// Spins one escalating burst; returns the number of pause
    /// iterations executed.
    pub fn spin(&mut self) -> u32 {
        let pauses = 1u32 << self.step;
        polite_spin(pauses);
        if self.step < Self::MAX_STEP {
            self.step += 1;
        }
        pauses
    }

    /// Resets the escalation back to a single pause.
    pub fn reset(&mut self) {
        self.step = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spinwait_escalates_then_saturates() {
        let mut s = SpinWait::new();
        let mut seen = Vec::new();
        for _ in 0..10 {
            seen.push(s.spin());
        }
        assert_eq!(&seen[..7], &[1, 2, 4, 8, 16, 32, 64]);
        assert_eq!(seen[7], 64);
        assert_eq!(seen[9], 64);
    }

    #[test]
    fn spinwait_reset_restarts() {
        let mut s = SpinWait::new();
        s.spin();
        s.spin();
        s.reset();
        assert_eq!(s.spin(), 1);
    }

    #[test]
    fn polite_spin_zero_is_noop() {
        polite_spin(0);
    }
}
