//! Per-waiter wait cells and waiting policies.
//!
//! Queue locks (MCS, MCSCR, LIFO-CR, LOITER's inner lock) have each
//! waiter busy-wait on a *local* flag that the unlock path eventually
//! sets. [`WaitCell`] packages that flag together with the waiting
//! thread's [`Unparker`](crate::Unparker) so that a single cell
//! supports all three waiting policies from the paper's §5.1:
//! unbounded polite spinning, spin-then-park, and immediate parking.
//!
//! # Ownership protocol
//!
//! A cell is created by the thread that will wait on it, *before* the
//! cell is published (enqueued); the creator's unpark handle is
//! captured at construction. Exactly one other thread may call
//! [`WaitCell::signal`] exactly once. The signaller clones the unpark
//! handle *before* publishing the signalled state, so it never touches
//! the cell after the waiter has been released — the cell may live on
//! the waiter's stack.

use std::sync::atomic::{AtomicU32, Ordering};

use crate::parker::{Parker, Unparker};
use crate::spin::{cpu_relax, SpinThenYield};
use crate::stats;

thread_local! {
    static THREAD_PARKER: Parker = Parker::new();
}

/// Returns an unpark handle for the calling thread's thread-local
/// parker.
pub(crate) fn current_unparker() -> Unparker {
    THREAD_PARKER.with(|p| p.unparker())
}

/// Parks the calling thread on its thread-local parker.
fn park_current() {
    THREAD_PARKER.with(|p| p.park());
}

/// The waiter has not been released and is spinning.
const WAITING: u32 = 0;
/// The waiter has been released.
const SIGNALED: u32 = 1;
/// The waiter has exhausted its spin budget and parked.
const PARKED: u32 = 2;

/// The default spin budget for spin-then-park waiting.
///
/// The paper sets the maximum spin duration to roughly one
/// context-switch round trip, empirically ~20 000 cycles on its T5
/// system (§5.1). We use the same figure in loop iterations; each
/// iteration executes one polite pause.
pub const DEFAULT_SPIN_CYCLES: u32 = 20_000;

/// How a thread waits for its cell to be signalled (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitPolicy {
    /// Unbounded polite spinning (the paper's `-S` lock variants).
    Spin,
    /// Spin for a bounded budget, then park (the `-STP` variants).
    SpinThenPark {
        /// Spin budget in polite-pause iterations.
        spin_iterations: u32,
    },
    /// Park immediately without spinning.
    Park,
}

impl WaitPolicy {
    /// Unbounded polite spinning.
    pub const fn spin() -> Self {
        WaitPolicy::Spin
    }

    /// Spin-then-park with the paper's default ~20 k-cycle budget.
    pub const fn spin_then_park() -> Self {
        WaitPolicy::SpinThenPark {
            spin_iterations: DEFAULT_SPIN_CYCLES,
        }
    }

    /// Spin-then-park with an explicit budget.
    pub const fn spin_then_park_with(spin_iterations: u32) -> Self {
        WaitPolicy::SpinThenPark { spin_iterations }
    }

    /// Immediate parking.
    pub const fn park() -> Self {
        WaitPolicy::Park
    }
}

/// How a completed wait was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitOutcome {
    /// The signal arrived during the spin phase.
    Spun,
    /// The waiter parked at least once before being released.
    Parked,
}

/// A single-use wait flag bound to the creating thread.
///
/// See the module documentation for the ownership protocol.
pub struct WaitCell {
    state: AtomicU32,
    unparker: Unparker,
    #[cfg(debug_assertions)]
    owner: std::thread::ThreadId,
}

impl Default for WaitCell {
    fn default() -> Self {
        Self::new()
    }
}

impl WaitCell {
    /// Creates a cell owned by the calling thread.
    pub fn new() -> Self {
        WaitCell {
            state: AtomicU32::new(WAITING),
            unparker: current_unparker(),
            #[cfg(debug_assertions)]
            owner: std::thread::current().id(),
        }
    }

    /// Returns `true` if the cell has been signalled.
    pub fn is_signaled(&self) -> bool {
        self.state.load(Ordering::Acquire) == SIGNALED
    }

    /// Returns `true` if the owner has parked on this cell.
    ///
    /// The unlock paths use this to prefer handing ownership to a
    /// *spinning* successor, which is far cheaper to release than a
    /// fully parked one (§5.1).
    pub fn is_parked(&self) -> bool {
        self.state.load(Ordering::Acquire) == PARKED
    }

    /// Releases the waiting thread.
    ///
    /// Must be called at most once per cell. The unpark handle is
    /// cloned before the release is published, so this method never
    /// dereferences the cell after the waiter may have resumed; the
    /// cell may therefore live on the waiter's stack.
    pub fn signal(&self) {
        // Clone while the waiter is still guaranteed captive: `wait`
        // cannot return before observing SIGNALED, which we have not
        // yet published.
        let unparker = self.unparker.clone();
        if self.state.swap(SIGNALED, Ordering::AcqRel) == PARKED {
            unparker.unpark();
        }
        // `self` must not be touched past this point.
    }

    /// Waits until [`WaitCell::signal`] is called, per `policy`.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if called from a thread other than the
    /// one that created the cell.
    pub fn wait(&self, policy: WaitPolicy) -> WaitOutcome {
        #[cfg(debug_assertions)]
        {
            assert_eq!(
                self.owner,
                std::thread::current().id(),
                "WaitCell::wait must be called by the creating thread"
            );
        }
        match policy {
            WaitPolicy::Spin => {
                // "Unbounded polite spinning" still yields once the
                // pause budget is spent so an oversubscribed host (or
                // single-CPU CI) can schedule the signaller.
                let mut spin = SpinThenYield::new();
                while self.state.load(Ordering::Acquire) != SIGNALED {
                    spin.pause();
                }
                WaitOutcome::Spun
            }
            WaitPolicy::SpinThenPark { spin_iterations } => {
                // The paper calibrates the spin budget to roughly one
                // context-switch round trip (§5.1). We pause politely
                // for the budget (capped at SPIN_YIELD_BUDGET — beyond
                // that a pause loop far exceeds a switch round trip),
                // then yield a few times: a yield that actually
                // switches has already paid the cost parking would
                // amortize, and on an oversubscribed host it is the
                // only way the signaller can run at all. Only then
                // park.
                const YIELD_ATTEMPTS: u32 = 8;
                let pauses = spin_iterations.min(crate::spin::SPIN_YIELD_BUDGET);
                for _ in 0..pauses {
                    if self.state.load(Ordering::Acquire) == SIGNALED {
                        stats::record_spin_success();
                        return WaitOutcome::Spun;
                    }
                    cpu_relax();
                }
                let yields = (spin_iterations - pauses).min(YIELD_ATTEMPTS);
                for _ in 0..yields {
                    if self.state.load(Ordering::Acquire) == SIGNALED {
                        stats::record_spin_success();
                        return WaitOutcome::Spun;
                    }
                    std::thread::yield_now();
                }
                if self.state.load(Ordering::Acquire) == SIGNALED {
                    stats::record_spin_success();
                    return WaitOutcome::Spun;
                }
                stats::record_spin_failure();
                self.park_slow()
            }
            WaitPolicy::Park => self.park_slow(),
        }
    }

    /// Rearms a signalled cell for reuse by its owning thread.
    ///
    /// Queue locks cache nodes (and their embedded cells) in
    /// thread-local free lists to avoid an allocation per acquisition;
    /// this rearms a consumed cell.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if called from a thread other than the
    /// owner, or if the cell has not been signalled (a waiter could
    /// still be captive).
    pub fn reset(&self) {
        #[cfg(debug_assertions)]
        {
            assert_eq!(
                self.owner,
                std::thread::current().id(),
                "WaitCell::reset must be called by the creating thread"
            );
            assert_ne!(
                self.state.load(Ordering::Acquire),
                PARKED,
                "WaitCell::reset while a waiter is parked"
            );
        }
        self.state.store(WAITING, Ordering::Release);
    }

    /// Parks until signalled, tolerating stale permits on the
    /// thread-local parker by re-checking the cell state after every
    /// park return.
    fn park_slow(&self) -> WaitOutcome {
        if self
            .state
            .compare_exchange(WAITING, PARKED, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            // Signalled during the transition; no park needed.
            return WaitOutcome::Spun;
        }
        loop {
            if self.state.load(Ordering::Acquire) == SIGNALED {
                return WaitOutcome::Parked;
            }
            park_current();
        }
    }
}

impl std::fmt::Debug for WaitCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self.state.load(Ordering::Relaxed) {
            WAITING => "waiting",
            SIGNALED => "signaled",
            PARKED => "parked",
            _ => "corrupt",
        };
        f.debug_struct("WaitCell").field("state", &s).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn signal_before_wait_spin() {
        let c = WaitCell::new();
        c.signal();
        assert_eq!(c.wait(WaitPolicy::spin()), WaitOutcome::Spun);
    }

    #[test]
    fn signal_before_wait_park_policy() {
        let c = WaitCell::new();
        c.signal();
        // Even with Park policy, an already-signalled cell returns
        // without blocking (the CAS to PARKED fails).
        assert_eq!(c.wait(WaitPolicy::park()), WaitOutcome::Spun);
    }

    #[test]
    fn cross_thread_spin_release() {
        let c = Arc::new(WaitCell::new());
        let c2 = Arc::clone(&c);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            c2.signal();
        });
        assert_eq!(c.wait(WaitPolicy::spin()), WaitOutcome::Spun);
        h.join().unwrap();
    }

    #[test]
    fn cross_thread_park_release() {
        let c = Arc::new(WaitCell::new());
        let c2 = Arc::clone(&c);
        let h = std::thread::spawn(move || {
            // Give the waiter time to actually park.
            std::thread::sleep(Duration::from_millis(50));
            c2.signal();
        });
        assert_eq!(c.wait(WaitPolicy::park()), WaitOutcome::Parked);
        h.join().unwrap();
    }

    #[test]
    fn spin_then_park_fast_signal_spins() {
        let c = Arc::new(WaitCell::new());
        let c2 = Arc::clone(&c);
        let h = std::thread::spawn(move || {
            c2.signal();
        });
        h.join().unwrap();
        assert_eq!(c.wait(WaitPolicy::spin_then_park()), WaitOutcome::Spun);
    }

    #[test]
    fn spin_then_park_slow_signal_parks() {
        let c = Arc::new(WaitCell::new());
        let c2 = Arc::clone(&c);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(80));
            c2.signal();
        });
        let outcome = c.wait(WaitPolicy::spin_then_park_with(100));
        assert_eq!(outcome, WaitOutcome::Parked);
        h.join().unwrap();
    }

    #[test]
    fn is_parked_visible_to_signaller() {
        let c = Arc::new(WaitCell::new());
        let c2 = Arc::clone(&c);
        let h = std::thread::spawn(move || {
            while !c2.is_parked() {
                std::thread::yield_now();
            }
            c2.signal();
        });
        assert_eq!(c.wait(WaitPolicy::park()), WaitOutcome::Parked);
        assert!(c.is_signaled());
        h.join().unwrap();
    }

    #[test]
    fn many_sequential_episodes_on_one_thread() {
        // Exercises thread-local parker reuse across cells, including
        // tolerance of any stale permits.
        for i in 0..200 {
            let c = Arc::new(WaitCell::new());
            let c2 = Arc::clone(&c);
            let h = std::thread::spawn(move || c2.signal());
            let policy = if i % 2 == 0 {
                WaitPolicy::spin_then_park_with(50)
            } else {
                WaitPolicy::park()
            };
            c.wait(policy);
            h.join().unwrap();
        }
    }
}
