//! Edge-case coverage for the permit-based [`Parker`].
//!
//! §5.1 specifies park/unpark as a restricted-range (0/1) semaphore:
//! an unpark may *precede* its park (the permit is banked and the
//! park returns without blocking), redundant unparks collapse into a
//! single permit, and a timed park that expires must leave no stale
//! permit behind. These are exactly the properties the work-crew
//! standby threads and the lock wait paths lean on, so they get
//! dedicated integration tests here.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use malthus_park::{ParkResult, Parker};

/// Generous bound for "returned immediately" on a loaded CI host.
const PROMPT: Duration = Duration::from_millis(100);

#[test]
fn unpark_before_park_consumes_the_permit_without_blocking() {
    let p = Parker::new();
    p.unparker().unpark();
    assert!(p.permit_pending());
    let start = Instant::now();
    p.park();
    assert!(start.elapsed() < PROMPT, "park must not block on a permit");
    // The permit is consumed: a timed park now expires empty-handed.
    assert!(!p.permit_pending());
    assert_eq!(
        p.park_timeout(Duration::from_millis(10)),
        ParkResult::TimedOut
    );
}

#[test]
fn redundant_unparks_collapse_to_one_permit() {
    let p = Parker::new();
    let u = p.unparker();
    for _ in 0..10 {
        u.unpark();
    }
    let start = Instant::now();
    p.park(); // consumes the single banked permit
    assert!(start.elapsed() < PROMPT);
    // No second permit exists despite ten unparks.
    assert_eq!(
        p.park_timeout(Duration::from_millis(10)),
        ParkResult::TimedOut
    );
    assert!(!p.permit_pending());
}

#[test]
fn park_timeout_expires_with_no_pending_permit() {
    let p = Parker::new();
    let start = Instant::now();
    assert_eq!(
        p.park_timeout(Duration::from_millis(25)),
        ParkResult::TimedOut
    );
    assert!(start.elapsed() >= Duration::from_millis(20));
    // A timeout must fully withdraw the parked claim: no permit
    // pending, and the *next* unpark/park pair works normally.
    assert!(!p.permit_pending());
    p.unparker().unpark();
    let start = Instant::now();
    p.park();
    assert!(start.elapsed() < PROMPT);
}

#[test]
fn unpark_racing_a_timeout_is_either_consumed_or_banked_never_lost() {
    // Deliberately race unpark against the timeout deadline many
    // times; whatever the interleaving, the permit must either wake
    // this round (Unparked) or remain banked for the next park.
    let p = Arc::new(Parker::new());
    let u = p.unparker();
    for round in 0..200u64 {
        let u = u.clone();
        let h = std::thread::spawn(move || {
            // Straddle the 1 ms deadline from both sides.
            if round % 2 == 0 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(Duration::from_micros(500 + (round % 7) * 250));
            }
            u.unpark();
        });
        let res = p.park_timeout(Duration::from_millis(1));
        h.join().unwrap();
        if res == ParkResult::TimedOut {
            // The racing unpark landed after withdrawal: its permit
            // must still be banked.
            let start = Instant::now();
            p.park();
            assert!(
                start.elapsed() < PROMPT,
                "round {round}: permit lost after timeout"
            );
        }
        assert!(!p.permit_pending(), "round {round}: stale permit");
    }
}

#[test]
fn one_permit_wakes_exactly_one_park() {
    // park → unpark → park: the second park must block until the
    // second unpark, proving the first park consumed the permit.
    let p = Arc::new(Parker::new());
    let u = p.unparker();
    let stage = Arc::new(AtomicU64::new(0));
    let h = {
        let p = Arc::clone(&p);
        let stage = Arc::clone(&stage);
        std::thread::spawn(move || {
            p.park();
            stage.store(1, Ordering::SeqCst);
            p.park();
            stage.store(2, Ordering::SeqCst);
        })
    };
    u.unpark();
    let deadline = Instant::now() + Duration::from_secs(5);
    while stage.load(Ordering::SeqCst) < 1 && Instant::now() < deadline {
        std::thread::yield_now();
    }
    assert_eq!(stage.load(Ordering::SeqCst), 1);
    // Give the second park time to block; it must not have run.
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(stage.load(Ordering::SeqCst), 1, "one permit woke two parks");
    u.unpark();
    h.join().unwrap();
    assert_eq!(stage.load(Ordering::SeqCst), 2);
}

#[test]
fn timed_park_consumes_pre_banked_permit_immediately() {
    let p = Parker::new();
    p.unparker().unpark();
    let start = Instant::now();
    assert_eq!(
        p.park_timeout(Duration::from_secs(10)),
        ParkResult::Unparked
    );
    assert!(start.elapsed() < PROMPT);
    assert!(!p.permit_pending());
}
