//! RAII data-protecting wrapper over any [`RawRwLock`].

use std::cell::UnsafeCell;
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};

use crate::raw::RawRwLock;
use crate::rwcr::RwCrLock;

/// A reader-writer lock protecting a `T`, generic over the algorithm.
///
/// The analogue of [`malthus::Mutex`] for shared/exclusive access:
/// pick a raw algorithm (normally [`RwCrLock`]) and use it like
/// `std::sync::RwLock` minus poisoning.
///
/// # Examples
///
/// ```
/// use malthus_rwlock::RwCrMutex;
///
/// let table = RwCrMutex::default_cr(vec![1u64, 2, 3]);
/// assert_eq!(table.read().iter().sum::<u64>(), 6);
/// table.write().push(4);
/// assert_eq!(table.read().len(), 4);
/// ```
pub struct RwMutex<T: ?Sized, R: RawRwLock> {
    raw: R,
    data: UnsafeCell<T>,
}

/// [`RwMutex`] over the Malthusian [`RwCrLock`].
pub type RwCrMutex<T> = RwMutex<T, RwCrLock>;

impl<T> RwMutex<T, RwCrLock> {
    /// RW-CR with spin-then-park waiting, the recommended
    /// configuration (`RW-CR-STP`).
    pub fn default_cr(value: T) -> Self {
        RwMutex::with_raw(RwCrLock::stp(), value)
    }
}

// SAFETY: the raw lock serializes exclusive access to `data` and
// read guards only expose `&T`; sending the mutex moves the data.
unsafe impl<T: ?Sized + Send, R: RawRwLock> Send for RwMutex<T, R> {}
// SAFETY: read guards hand out `&T` to several threads at once, so
// sharing the mutex requires `T: Send + Sync`.
unsafe impl<T: ?Sized + Send + Sync, R: RawRwLock> Sync for RwMutex<T, R> {}

impl<T, R: RawRwLock + Default> RwMutex<T, R> {
    /// Creates an RW mutex with a default-constructed raw lock.
    pub fn new(value: T) -> Self {
        RwMutex {
            raw: R::default(),
            data: UnsafeCell::new(value),
        }
    }
}

impl<T, R: RawRwLock> RwMutex<T, R> {
    /// Creates an RW mutex from an explicitly configured raw lock.
    pub fn with_raw(raw: R, value: T) -> Self {
        RwMutex {
            raw,
            data: UnsafeCell::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized, R: RawRwLock> RwMutex<T, R> {
    /// Acquires shared access, blocking per the algorithm's policy.
    #[inline]
    pub fn read(&self) -> RwReadGuard<'_, T, R> {
        self.raw.read_lock();
        RwReadGuard {
            mutex: self,
            _not_send: PhantomData,
        }
    }

    /// Attempts to acquire shared access without blocking.
    #[inline]
    pub fn try_read(&self) -> Option<RwReadGuard<'_, T, R>> {
        if self.raw.try_read_lock() {
            Some(RwReadGuard {
                mutex: self,
                _not_send: PhantomData,
            })
        } else {
            None
        }
    }

    /// Acquires exclusive access, blocking per the algorithm's policy.
    #[inline]
    pub fn write(&self) -> RwWriteGuard<'_, T, R> {
        self.raw.write_lock();
        RwWriteGuard {
            mutex: self,
            _not_send: PhantomData,
        }
    }

    /// Attempts to acquire exclusive access without blocking.
    #[inline]
    pub fn try_write(&self) -> Option<RwWriteGuard<'_, T, R>> {
        if self.raw.try_write_lock() {
            Some(RwWriteGuard {
                mutex: self,
                _not_send: PhantomData,
            })
        } else {
            None
        }
    }

    /// Returns a mutable reference without locking (requires `&mut`).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }

    /// The underlying raw lock (for statistics accessors).
    pub fn raw(&self) -> &R {
        &self.raw
    }
}

impl<T: Default, R: RawRwLock + Default> Default for RwMutex<T, R> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug, R: RawRwLock> fmt::Debug for RwMutex<T, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwMutex").field("data", &&*g).finish(),
            None => f
                .debug_struct("RwMutex")
                .field("data", &"<write-locked>")
                .finish(),
        }
    }
}

/// Shared-access RAII guard; releases the read slot on drop.
///
/// Deliberately `!Send`: the waiting machinery records per-thread
/// state, so a guard must be released by the acquiring thread.
pub struct RwReadGuard<'a, T: ?Sized, R: RawRwLock> {
    mutex: &'a RwMutex<T, R>,
    _not_send: PhantomData<*const ()>,
}

// SAFETY: sharing a read guard only shares `&T`.
unsafe impl<T: ?Sized + Sync, R: RawRwLock> Sync for RwReadGuard<'_, T, R> {}

impl<T: ?Sized, R: RawRwLock> Deref for RwReadGuard<'_, T, R> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        // SAFETY: the guard proves a read slot is held; writers are
        // excluded while any read guard lives.
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T: ?Sized, R: RawRwLock> Drop for RwReadGuard<'_, T, R> {
    #[inline]
    fn drop(&mut self) {
        // SAFETY: created by a successful shared acquisition on this
        // thread; dropped exactly once.
        unsafe { self.mutex.raw.read_unlock() };
    }
}

impl<T: ?Sized + fmt::Debug, R: RawRwLock> fmt::Debug for RwReadGuard<'_, T, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Exclusive-access RAII guard; releases the write lock on drop.
pub struct RwWriteGuard<'a, T: ?Sized, R: RawRwLock> {
    mutex: &'a RwMutex<T, R>,
    _not_send: PhantomData<*const ()>,
}

// SAFETY: sharing a write guard only shares `&T` (mutation needs
// `&mut` on the guard itself).
unsafe impl<T: ?Sized + Sync, R: RawRwLock> Sync for RwWriteGuard<'_, T, R> {}

impl<T: ?Sized, R: RawRwLock> Deref for RwWriteGuard<'_, T, R> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        // SAFETY: the guard proves exclusive access.
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T: ?Sized, R: RawRwLock> DerefMut for RwWriteGuard<'_, T, R> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the guard proves exclusive access.
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<T: ?Sized, R: RawRwLock> Drop for RwWriteGuard<'_, T, R> {
    #[inline]
    fn drop(&mut self) {
        // SAFETY: created by a successful exclusive acquisition on
        // this thread; dropped exactly once.
        unsafe { self.mutex.raw.write_unlock() };
    }
}

impl<T: ?Sized + fmt::Debug, R: RawRwLock> fmt::Debug for RwWriteGuard<'_, T, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn guards_protect_data() {
        let m: RwCrMutex<Vec<i32>> = RwCrMutex::default_cr(vec![1]);
        m.write().push(2);
        assert_eq!(&*m.read(), &[1, 2]);
        assert_eq!(m.read().len(), 2);
    }

    #[test]
    fn try_variants_respect_exclusion() {
        let m: RwCrMutex<u32> = RwCrMutex::default_cr(7);
        let r = m.read();
        assert!(m.try_read().is_some());
        assert!(m.try_write().is_none());
        drop(r);
        let w = m.try_write().expect("uncontended");
        assert!(m.try_read().is_none());
        assert!(m.try_write().is_none());
        drop(w);
        assert!(m.try_read().is_some());
    }

    #[test]
    fn into_inner_and_get_mut() {
        let mut m: RwCrMutex<i32> = RwCrMutex::default_cr(3);
        *m.get_mut() += 1;
        *m.write() += 1;
        assert_eq!(m.into_inner(), 5);
    }

    #[test]
    fn concurrent_readers_see_writer_updates() {
        let m: Arc<RwCrMutex<u64>> = Arc::new(RwCrMutex::default_cr(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    *m.write() += 1;
                    let v = *m.read();
                    assert!(v >= 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.read(), 2_000);
    }

    #[test]
    fn debug_formats() {
        let m: RwCrMutex<i32> = RwCrMutex::default_cr(9);
        assert!(format!("{m:?}").contains('9'));
        let g = m.write();
        assert!(format!("{m:?}").contains("write-locked"));
        drop(g);
    }
}
