//! The raw reader-writer interface, mirroring `malthus::RawLock`.

/// A raw reader-writer lock.
///
/// Implementations provide shared/exclusive exclusion only; data
/// protection is layered on top by [`RwMutex`](crate::RwMutex). The
/// trait is `unsafe` because the guard types rely on the
/// implementation actually providing the advertised exclusion.
///
/// # Safety
///
/// An implementor must guarantee that while any thread holds the
/// write side, no other thread holds either side, and that read-side
/// holders only ever coexist with other read-side holders.
pub unsafe trait RawRwLock: Send + Sync {
    /// Acquires the lock for shared (read) access, blocking per the
    /// lock's waiting policy.
    fn read_lock(&self);

    /// Attempts to acquire shared access without waiting.
    fn try_read_lock(&self) -> bool;

    /// Releases one shared acquisition.
    ///
    /// # Safety
    ///
    /// Must be called exactly once per shared acquisition, by the
    /// thread that acquired it, while it is held.
    unsafe fn read_unlock(&self);

    /// Acquires the lock for exclusive (write) access.
    fn write_lock(&self);

    /// Attempts to acquire exclusive access without waiting.
    fn try_write_lock(&self) -> bool;

    /// Releases the exclusive acquisition.
    ///
    /// # Safety
    ///
    /// Must be called exactly once per exclusive acquisition, by the
    /// thread that acquired it, while it is held.
    unsafe fn write_unlock(&self);

    /// A short human-readable algorithm name (used by benchmark
    /// output).
    fn name(&self) -> &'static str;
}
