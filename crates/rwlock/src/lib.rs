//! Malthusian reader-writer locks: concurrency restriction for the
//! shared/exclusive case.
//!
//! *Malthusian Locks* (Dice, EuroSys 2017) partitions the threads
//! circulating over a contended mutex into a small active set and a
//! quiesced passive set (§4), and observes that the idea "can be
//! applied to any contended resource" (§7). This crate grows the
//! reproduction's lock family with **RW-CR**, a reader-writer lock
//! built from the same parts:
//!
//! * the **writer side** *is* an [`McsCrLock`](malthus::McsCrLock) —
//!   writer culling, reprovisioning and eldest-writer fairness come
//!   from §4 unchanged;
//! * the **reader side** is a padded shared counter whose surplus is
//!   culled onto a Parker-backed passive list during write episodes,
//!   reprovisioned in bounded batches
//!   ([`malthus::policy::rw_reader_batch`]) with slots granted
//!   *before* wakeup (so granted readers cannot lose admission races),
//!   an admission cascade that drains the list under readers-only
//!   traffic, and the paper's episodic
//!   [`FairnessTrigger`](malthus::policy::FairnessTrigger) granting
//!   the eldest passive reader.
//!
//! [`RwCrLock`] is the raw algorithm ([`RawRwLock`]); [`RwMutex`] /
//! [`RwCrMutex`] add the `std::sync::RwLock`-shaped RAII surface.
//!
//! # Quick start
//!
//! ```
//! use malthus_rwlock::RwCrMutex;
//! use std::sync::Arc;
//!
//! let table = Arc::new(RwCrMutex::default_cr(vec![0u64; 64]));
//! let readers: Vec<_> = (0..4)
//!     .map(|_| {
//!         let table = Arc::clone(&table);
//!         std::thread::spawn(move || {
//!             // Readers share the lock; writers still pay admission.
//!             (0..1_000).map(|_| table.read()[0]).sum::<u64>()
//!         })
//!     })
//!     .collect();
//! table.write()[0] = 7;
//! for r in readers {
//!     r.join().unwrap();
//! }
//! assert_eq!(table.read()[0], 7);
//! ```

#![warn(missing_docs)]

mod raw;
mod rwcr;
mod rwmutex;

pub use raw::RawRwLock;
pub use rwcr::{RwCrLock, RwStats};
pub use rwmutex::{RwCrMutex, RwMutex, RwReadGuard, RwWriteGuard};
