//! RW-CR: a Malthusian (concurrency-restricting) reader-writer lock.
//!
//! The paper applies concurrency restriction to mutual-exclusion locks
//! (§4) and notes that the active/passive partitioning "can be applied
//! to any contended resource" (§7). This module applies it to the two
//! sides of a reader-writer lock:
//!
//! * **Writers** queue through a full [`McsCrLock`]: MCS arrival order,
//!   surplus writers culled onto the MCSCR passive list, episodic
//!   eldest-writer fairness grants — the writer side inherits every
//!   property of §4 unchanged.
//! * **Readers** share a padded atomic reader count (one `fetch_add`
//!   per uncontended acquisition). While a write episode is in
//!   progress, arriving readers are *culled* onto a passive list
//!   (LIFO-granted, Parker-backed via [`WaitCell`]) instead of
//!   spinning on the contended word. When the write phase closes, only
//!   a bounded batch ([`policy::rw_reader_batch`]) of passive readers
//!   is woken; each reader admitted out of the passive list then pulls
//!   one more passive reader in as it starts running (an admission
//!   *cascade*), so the active reader set ramps instead of stampeding,
//!   yet the list fully drains whenever readers-only traffic persists
//!   (work conservation). An episodic [`FairnessTrigger`] grants the
//!   *eldest* passive reader instead of the warmest, bounding
//!   long-term reader unfairness exactly like the mutex's 1/1000
//!   promotion.
//!
//! Normal wakeups are **advisory**: the woken reader re-contends on
//! the fast path once it is actually running, so a writer's drain
//! never waits on a reader that was woken but not yet scheduled (on
//! an oversubscribed host that coupling would throttle every write
//! episode to context-switch latency). The episodic fairness grant is
//! the exception: it hands the eldest passive reader its read slot
//! *before* the wakeup, so under a saturating writer stream — where
//! an advisory wakeup would always lose the admission race and
//! re-passivate — the eldest reader is still admitted with certainty,
//! the same bounded-unfairness contract MCSCR gives its passive tail.
//! Writers are never starved at all: setting the writer bit blocks
//! new reader admissions, and existing read slots drain in bounded
//! time.
//!
//! # Ordering protocol
//!
//! All RMWs on the packed `sync` word are `AcqRel`, so the release
//! sequence through it orders every critical section against every
//! later acquisition. The passive list is guarded by a tiny leaf TAS
//! gate; the no-lost-wakeup argument is: a reader parks only after
//! re-checking the writer bit *under the gate*, and every writer
//! clears the bit *before* taking the gate to drain, so a parked
//! reader's cell is always visible to the drain that follows the bit
//! clear it raced with.

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};

use malthus::policy::{self, FairnessTrigger, DEFAULT_FAIRNESS_PERIOD};
use malthus::{CachePadded, CrStats, LockCounter, McsCrLock, RawLock, TasLock};
use malthus_park::{SpinThenYield, WaitCell, WaitPolicy, XorShift64};

use crate::raw::RawRwLock;

/// Writer-active flag in the packed `sync` word; the low 63 bits are
/// the active reader count (including slots granted to still-waking
/// fairness promotions).
const WRITER_BIT: u64 = 1 << 63;

/// Outcome of one reader passivation attempt.
enum CullOutcome {
    /// The write phase was observed closed under the gate; no park
    /// happened — retry the fast path.
    PhaseOpen,
    /// Parked, then woken advisorily: re-contend on the fast path.
    WokenAdvisory,
    /// Parked, then granted a read slot by the fairness path:
    /// admitted outright.
    SlotGranted,
}

/// Polite pauses a reader invests in waiting out a short write section
/// before paying the passivation cost.
const READ_RETRY_SPINS: u32 = 96;

/// Polite pauses a writer invests in the reader drain before
/// publishing its drain cell (and, under an `-STP`/`-P` policy,
/// parking).
const DRAIN_SPINS: u32 = 128;

#[inline]
fn reader_count(sync: u64) -> u64 {
    sync & !WRITER_BIT
}

/// Monotonic counters describing CR activity on one RW-CR lock.
///
/// Same raciness contract as
/// [`McsCrLock::cr_stats`](malthus::McsCrLock::cr_stats): tear-free
/// but possibly lagging in-flight releases; cross-counter invariants
/// (`reader_culls == reader_reprovisions + reader_fairness_grants`)
/// balance only once the lock is quiescent. A reader that is woken
/// advisorily and re-passivates against a new write episode counts a
/// fresh cull (and, later, a fresh grant), so the invariant holds
/// per passivation episode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RwStats {
    /// Reader passivation episodes (parked on the passive list because
    /// a write episode was in progress).
    pub reader_culls: u64,
    /// Passive readers woken by the normal (warmest-first) advisory
    /// discipline.
    pub reader_reprovisions: u64,
    /// Passive readers granted eldest-first — with their read slot
    /// pre-assigned — by the fairness trigger.
    pub reader_fairness_grants: u64,
    /// Write acquisitions.
    pub write_episodes: u64,
    /// Write acquisitions that outlasted the spin budget waiting for
    /// the reader drain and published a drain cell.
    pub writer_drain_waits: u64,
}

/// One passivated reader: both fields point into the waiter's stack
/// frame, which stays live until the cell is signalled (the waiter is
/// captive in `WaitCell::wait`).
#[derive(Clone, Copy)]
struct PassiveReader {
    cell: *const WaitCell,
    /// Set (before the signal) when the granter pre-assigned the
    /// waiter its read slot — the fairness path. Advisory wakeups
    /// leave it false and the waiter re-contends.
    slot_granted: *const AtomicBool,
}

/// Reader-side state: the passive list and its statistics, guarded by
/// the `gate` leaf lock (never held across any blocking operation).
struct ReaderSide {
    /// Tiny leaf TAS protecting `list` and `fairness`.
    gate: TasLock,
    /// Mirror of `list.len()` for lock-free peeks (maintained under
    /// the gate; readers treat it as a hint).
    len: AtomicUsize,
    /// Passive readers: front = eldest, back = most recently culled.
    /// An entry is popped exactly once and signalled exactly once.
    list: UnsafeCell<VecDeque<PassiveReader>>,
    /// Eldest-first Bernoulli trial state.
    fairness: UnsafeCell<FairnessTrigger>,
    culls: LockCounter,
    reprovisions: LockCounter,
    fairness_grants: LockCounter,
}

/// Writer-side scratch: serialized by the writer `McsCrLock`.
struct WriterSide {
    /// The cell a pending writer waits on for the reader drain; null
    /// outside a drain wait. Swapped (taken) by the last exiting
    /// reader.
    drain: AtomicPtr<WaitCell>,
    write_episodes: LockCounter,
    drain_waits: LockCounter,
}

/// The Malthusian reader-writer lock (`RW-CR`).
///
/// # Examples
///
/// ```
/// use malthus_rwlock::{RawRwLock, RwCrLock};
///
/// let rw = RwCrLock::stp();
/// rw.read_lock();
/// rw.read_lock(); // readers share
/// unsafe {
///     rw.read_unlock();
///     rw.read_unlock();
/// }
/// rw.write_lock();
/// assert!(!rw.try_read_lock()); // writers exclude
/// unsafe { rw.write_unlock() };
/// ```
pub struct RwCrLock {
    /// Writer admission: the full MCSCR machinery (internally padded).
    writer: McsCrLock,
    /// The one reader-hammered word: writer bit + active reader count.
    sync: CachePadded<AtomicU64>,
    /// Passive-reader list + reader stats, on their own line.
    rside: CachePadded<ReaderSide>,
    /// Writer-only scratch (drain cell, writer stats), kept off both
    /// hot lines.
    wside: CachePadded<WriterSide>,
    policy: WaitPolicy,
    /// Reader-reprovisioning batch bound (≈ host CPUs by default).
    acs_limit: usize,
}

// SAFETY: `sync`, `len` and `drain` are atomics; `list`/`fairness`
// are guarded by the `gate` TAS; the writer-side counters are
// serialized by the writer McsCrLock. Cell pointers in the list stay
// live until signalled (their owners are captive in `WaitCell::wait`).
unsafe impl Send for RwCrLock {}
// SAFETY: see above.
unsafe impl Sync for RwCrLock {}

impl Default for RwCrLock {
    fn default() -> Self {
        Self::stp()
    }
}

impl RwCrLock {
    /// Creates an RW-CR lock with explicit waiting policy, fairness
    /// period, PRNG seed, and reader admission-batch limit.
    pub fn with_params(
        policy: WaitPolicy,
        fairness_period: u64,
        seed: u64,
        acs_limit: usize,
    ) -> Self {
        RwCrLock {
            writer: McsCrLock::with_params(policy, fairness_period, seed ^ 0x9E37_79B9),
            sync: CachePadded::new(AtomicU64::new(0)),
            rside: CachePadded::new(ReaderSide {
                gate: TasLock::new(),
                len: AtomicUsize::new(0),
                list: UnsafeCell::new(VecDeque::new()),
                fairness: UnsafeCell::new(FairnessTrigger::new(fairness_period, seed)),
                culls: LockCounter::new(),
                reprovisions: LockCounter::new(),
                fairness_grants: LockCounter::new(),
            }),
            wside: CachePadded::new(WriterSide {
                drain: AtomicPtr::new(ptr::null_mut()),
                write_episodes: LockCounter::new(),
                drain_waits: LockCounter::new(),
            }),
            policy,
            acs_limit: acs_limit.max(1),
        }
    }

    /// Creates an RW-CR lock with the given waiting policy, the
    /// paper's 1/1000 fairness period, and an admission batch of the
    /// host CPU count.
    pub fn new(policy: WaitPolicy) -> Self {
        Self::with_params(
            policy,
            DEFAULT_FAIRNESS_PERIOD,
            XorShift64::from_entropy().next_u64(),
            std::thread::available_parallelism().map_or(1, |n| n.get()),
        )
    }

    /// `RW-CR-S`: unbounded polite spinning.
    pub fn spin() -> Self {
        Self::new(WaitPolicy::spin())
    }

    /// `RW-CR-STP`: spin-then-park (the recommended configuration).
    pub fn stp() -> Self {
        Self::new(WaitPolicy::spin_then_park())
    }

    /// Number of readers currently passivated (racy hint).
    pub fn passive_readers(&self) -> usize {
        self.rside.len.load(Ordering::Relaxed)
    }

    /// Number of active read slots (racy; includes granted-but-still-
    /// waking passive readers and transient optimistic arrivals).
    pub fn active_readers(&self) -> u64 {
        reader_count(self.sync.load(Ordering::Relaxed))
    }

    /// Whether a write episode is in progress (racy).
    pub fn is_write_active(&self) -> bool {
        self.sync.load(Ordering::Relaxed) & WRITER_BIT != 0
    }

    /// Snapshot of RW-CR activity counters (racy; see [`RwStats`]).
    pub fn stats(&self) -> RwStats {
        RwStats {
            reader_culls: self.rside.culls.get(),
            reader_reprovisions: self.rside.reprovisions.get(),
            reader_fairness_grants: self.rside.fairness_grants.get(),
            write_episodes: self.wside.write_episodes.get(),
            writer_drain_waits: self.wside.drain_waits.get(),
        }
    }

    /// CR statistics of the writer-side MCSCR queue (writer culls,
    /// reprovisions, fairness grants among *writers*).
    pub fn writer_stats(&self) -> CrStats {
        self.writer.cr_stats()
    }

    /// The flight-recorder identity of this lock instance: its
    /// address, stable for the lock's lifetime.
    fn id(&self) -> u64 {
        self as *const Self as usize as u64
    }

    /// Releases one read slot; if this was the last reader of a
    /// closing read phase, hands the drain cell its signal.
    fn exit_read(&self) {
        let prev = self.sync.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(reader_count(prev) >= 1, "read_unlock without a slot");
        if prev & WRITER_BIT != 0 && reader_count(prev) == 1 {
            // Last slot out with a writer pending: take and signal the
            // drain cell if the writer has published it. (If it has
            // not, its post-publication re-check reclaims the cell.)
            //
            // The fence pairs with the one in `wait_for_drain`
            // (Dekker-style): our decrement and the writer's cell
            // publication are stores on different words, each followed
            // by a load of the other word — without SeqCst fences
            // between them, both sides could read the stale value
            // (store-buffering), the writer parking on a cell nobody
            // saw while we swap a still-null pointer: a lost wakeup.
            // The fences order one side's pair in front of the other,
            // so either we observe the cell or the writer observes the
            // drained count.
            std::sync::atomic::fence(Ordering::SeqCst);
            let cell = self.wside.drain.swap(ptr::null_mut(), Ordering::AcqRel);
            if !cell.is_null() {
                // SAFETY: the publishing writer is captive until the
                // cell is signalled or reclaimed, and we won the swap.
                unsafe { (*cell).signal() };
            }
        }
    }

    /// Tries to take one read slot on behalf of the eldest passive
    /// reader (the fairness path), failing (without a trace) if a
    /// writer holds or has claimed the lock. The check and the
    /// increment are one CAS so a grant can never interleave with a
    /// writer's drain check.
    fn try_grant_slot(&self) -> bool {
        let mut cur = self.sync.load(Ordering::Relaxed);
        loop {
            if cur & WRITER_BIT != 0 {
                return false;
            }
            match self
                .sync
                .compare_exchange_weak(cur, cur + 1, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => return true,
                Err(observed) => cur = observed,
            }
        }
    }

    /// Wakes up to `max` passive readers; returns the number woken.
    ///
    /// Normal wakeups pop the warmest waiter and are advisory (the
    /// waiter re-contends once scheduled). When the fairness trigger
    /// fires, the *eldest* waiter is woken with its read slot
    /// pre-assigned, so it cannot lose the admission race however
    /// saturated the writer stream is.
    ///
    /// # Safety
    ///
    /// Caller must hold the reader gate. If `writer_held`, the caller
    /// must hold the writer lock with the writer bit already cleared
    /// (a fairness slot may then use a plain `fetch_add`: no
    /// concurrent writer can claim the lock); otherwise the slot is
    /// CAS-granted and degrades to an advisory wakeup if a writer
    /// claims the lock first.
    unsafe fn grant_locked(&self, max: usize, writer_held: bool) -> usize {
        // SAFETY: gate held per the contract.
        let list = unsafe { &mut *self.rside.list.get() };
        let fairness = unsafe { &mut *self.rside.fairness.get() };
        let mut woken = 0;
        while woken < max && !list.is_empty() {
            let (waiter, with_slot) = if fairness.fire() {
                let waiter = list.pop_front().expect("non-empty");
                let slot = if writer_held {
                    self.sync.fetch_add(1, Ordering::AcqRel);
                    true
                } else {
                    self.try_grant_slot()
                };
                (waiter, slot)
            } else {
                (list.pop_back().expect("non-empty"), false)
            };
            if with_slot {
                self.rside.fairness_grants.bump();
                malthus_obs::record(malthus_obs::EventKind::LockFairnessGrant, self.id(), 0);
            } else {
                self.rside.reprovisions.bump();
                malthus_obs::record(malthus_obs::EventKind::LockReprovision, self.id(), 0);
            }
            // SAFETY: the waiter is captive until signalled; each
            // entry is popped (hence signalled) exactly once, and the
            // slot flag is published before the signal.
            unsafe {
                if with_slot {
                    (*waiter.slot_granted).store(true, Ordering::Release);
                }
                (*waiter.cell).signal();
            }
            woken += 1;
        }
        self.rside.len.store(list.len(), Ordering::Relaxed);
        woken
    }

    /// Opens a read phase after a write episode: grants a bounded
    /// batch of passive readers their slots.
    ///
    /// Caller must hold the writer lock with the writer bit already
    /// cleared. The gate is always taken — an emptiness peek could
    /// miss a reader that passivated against the just-closed phase.
    fn open_read_phase(&self) {
        self.rside.gate.lock();
        // SAFETY: gate held for the list read and for `grant_locked`.
        unsafe {
            let len = (*self.rside.list.get()).len();
            let batch = policy::rw_reader_batch(len, self.acs_limit);
            if batch > 0 {
                self.grant_locked(batch, true);
            }
            self.rside.gate.unlock();
        }
    }

    /// One admission-cascade step: a running reader pulls the next
    /// passive reader in, if any and if no writer has claimed the
    /// lock. `must` forces the gate (granted readers carry the chain,
    /// so their step cannot be dropped); the opportunistic variant
    /// backs off if the gate is busy (whoever holds it continues the
    /// drain or is a passivator whose writer will).
    fn cascade(&self, must: bool) {
        if self.rside.len.load(Ordering::Relaxed) == 0 {
            return;
        }
        if must {
            self.rside.gate.lock();
        } else if !self.rside.gate.try_lock() {
            return;
        }
        // SAFETY: gate held; we do not hold the writer lock.
        unsafe {
            self.grant_locked(1, false);
            self.rside.gate.unlock();
        }
    }

    /// Culls the calling reader onto the passive list and waits for a
    /// wakeup (advisory) or a fairness grant (slot pre-assigned).
    fn passivate_reader(&self) -> CullOutcome {
        self.rside.gate.lock();
        if self.sync.load(Ordering::Acquire) & WRITER_BIT == 0 {
            // Phase closed while we took the gate: a park here could
            // never be woken (the drain for that phase already ran).
            // SAFETY: gate held by us.
            unsafe { self.rside.gate.unlock() };
            return CullOutcome::PhaseOpen;
        }
        let cell = WaitCell::new();
        let slot_granted = AtomicBool::new(false);
        // SAFETY: gate held; both pointees outlive the list entry
        // because we do not leave this frame before the cell is
        // signalled.
        unsafe {
            let list = &mut *self.rside.list.get();
            list.push_back(PassiveReader {
                cell: &cell,
                slot_granted: &slot_granted,
            });
            self.rside.len.store(list.len(), Ordering::Relaxed);
            self.rside.culls.bump();
            malthus_obs::record(malthus_obs::EventKind::LockCull, self.id(), 0);
            self.rside.gate.unlock();
        }
        // Span tracing: the park below *is* passive-list residency —
        // the Malthusian long-tail wait — so it feeds the cull_wait
        // accumulator, distinct from ordinary admission (lock_wait).
        let t0 = if malthus_obs::span::enabled() {
            malthus_obs::span::now_ns()
        } else {
            0
        };
        cell.wait(self.policy);
        if t0 != 0 {
            malthus_obs::span::add_cull_wait(malthus_obs::span::now_ns().saturating_sub(t0));
        }
        if slot_granted.load(Ordering::Acquire) {
            // The granter already took our slot; carry the cascade so
            // the list keeps draining while readers flow.
            self.cascade(true);
            CullOutcome::SlotGranted
        } else {
            CullOutcome::WokenAdvisory
        }
    }

    /// Waits (spin, then the policy's park path) for the active
    /// readers to drain after the writer bit is set.
    ///
    /// Span tracing counts the whole drain as lock admission: the
    /// writer already owns the serialization lock but cannot enter
    /// its critical section yet, so from the request's point of view
    /// this is still waiting-to-acquire.
    fn wait_for_drain(&self) {
        if !malthus_obs::span::enabled() {
            return self.wait_for_drain_inner();
        }
        let t0 = malthus_obs::span::now_ns();
        self.wait_for_drain_inner();
        malthus_obs::span::add_lock_wait(malthus_obs::span::now_ns().saturating_sub(t0));
    }

    fn wait_for_drain_inner(&self) {
        let mut spin = SpinThenYield::new();
        for _ in 0..DRAIN_SPINS {
            if reader_count(self.sync.load(Ordering::Acquire)) == 0 {
                return;
            }
            spin.pause();
        }
        self.wside.drain_waits.bump();
        let cell = WaitCell::new();
        self.wside
            .drain
            .store(&cell as *const WaitCell as *mut WaitCell, Ordering::Release);
        // Pairs with the fence in `exit_read`; see the comment there.
        // Without it, this re-check load could be satisfied before the
        // publication store above drains (store-buffering), letting the
        // last reader's swap miss the cell while we miss its decrement
        // — both sides would then wait forever.
        std::sync::atomic::fence(Ordering::SeqCst);
        if reader_count(self.sync.load(Ordering::Acquire)) == 0 {
            // The drain may have completed before the cell was
            // published; reclaim it. Losing the swap means a reader
            // took the cell and its signal is in flight.
            if !self
                .wside
                .drain
                .swap(ptr::null_mut(), Ordering::AcqRel)
                .is_null()
            {
                return;
            }
        }
        cell.wait(self.policy);
    }
}

impl Drop for RwCrLock {
    fn drop(&mut self) {
        debug_assert_eq!(
            *self.sync.get_mut(),
            0,
            "RwCrLock dropped while held or contended"
        );
        debug_assert!(
            self.wside.drain.get_mut().is_null(),
            "RwCrLock dropped with a pending writer drain"
        );
        debug_assert!(
            // SAFETY: exclusive access in Drop.
            unsafe { (*self.rside.list.get()).is_empty() },
            "RwCrLock dropped with passivated readers"
        );
    }
}

// SAFETY: writers serialize through the inner McsCrLock and enter
// their critical section only after setting the writer bit and
// observing a zero reader count; the bit blocks new reader slots
// (the fast path backs out, fairness grants CAS against the bit), so
// writer exclusivity holds. Read slots only coexist with other read
// slots. Liveness: every passivated reader's cell is visible to the
// drain that follows the bit clear it raced with (checked under the
// gate), every drain wakes at least one passive reader, and a woken
// reader either admits (carrying the cascade) or re-passivates
// against a writer whose own release drains again.
unsafe impl RawRwLock for RwCrLock {
    fn read_lock(&self) {
        // Set once this thread has been through the passive list: its
        // eventual admission must then carry the drain chain (a
        // dropped chain step could strand the readers behind it).
        let mut was_passive = false;
        loop {
            let prev = self.sync.fetch_add(1, Ordering::AcqRel);
            if prev & WRITER_BIT == 0 {
                // Admitted. Pull the next passive reader in if a drain
                // is still ramping.
                self.cascade(was_passive);
                return;
            }
            // A write episode is in progress: back out (this decrement
            // may be the one that releases the writer's drain).
            self.exit_read();
            // Wait out a short write section before paying for
            // passivation. Span tracing bills the retry spin as lock
            // admission (the passive park, if it comes to that, is
            // billed separately as cull_wait inside the passivation).
            let t0 = if malthus_obs::span::enabled() {
                malthus_obs::span::now_ns()
            } else {
                0
            };
            let mut spin = SpinThenYield::new();
            for _ in 0..READ_RETRY_SPINS {
                if self.sync.load(Ordering::Acquire) & WRITER_BIT == 0 {
                    break;
                }
                spin.pause();
            }
            if t0 != 0 {
                malthus_obs::span::add_lock_wait(malthus_obs::span::now_ns().saturating_sub(t0));
            }
            if self.sync.load(Ordering::Acquire) & WRITER_BIT != 0 {
                match self.passivate_reader() {
                    CullOutcome::SlotGranted => return,
                    CullOutcome::WokenAdvisory => was_passive = true,
                    CullOutcome::PhaseOpen => {}
                }
            }
            // Retry the fast path.
        }
    }

    fn try_read_lock(&self) -> bool {
        let prev = self.sync.fetch_add(1, Ordering::AcqRel);
        if prev & WRITER_BIT == 0 {
            self.cascade(false);
            return true;
        }
        self.exit_read();
        false
    }

    unsafe fn read_unlock(&self) {
        self.exit_read();
    }

    fn write_lock(&self) {
        self.writer.lock();
        self.wside.write_episodes.bump();
        let prev = self.sync.fetch_or(WRITER_BIT, Ordering::AcqRel);
        debug_assert_eq!(prev & WRITER_BIT, 0, "double writer bit");
        if reader_count(prev) > 0 {
            self.wait_for_drain();
        }
    }

    fn try_write_lock(&self) -> bool {
        if !self.writer.try_lock() {
            return false;
        }
        let prev = self.sync.fetch_or(WRITER_BIT, Ordering::AcqRel);
        if reader_count(prev) == 0 {
            self.wside.write_episodes.bump();
            return true;
        }
        // Active readers: back out. Readers may have passivated
        // against the transient bit, so run the normal phase-open
        // drain after clearing it.
        self.sync.fetch_and(!WRITER_BIT, Ordering::AcqRel);
        self.open_read_phase();
        // SAFETY: acquired by the `try_lock` above.
        unsafe { self.writer.unlock() };
        false
    }

    unsafe fn write_unlock(&self) {
        let prev = self.sync.fetch_and(!WRITER_BIT, Ordering::AcqRel);
        debug_assert!(prev & WRITER_BIT != 0, "write_unlock without writer bit");
        // (`reader_count(prev)` may be non-zero: optimistic reader
        // arrivals increment transiently before backing out.)
        self.open_read_phase();
        // SAFETY: held per this method's contract; unlocking last
        // keeps the bit + drain protocol single-writer throughout.
        unsafe { self.writer.unlock() };
    }

    fn name(&self) -> &'static str {
        match self.policy {
            WaitPolicy::Spin => "RW-CR-S",
            WaitPolicy::SpinThenPark { .. } => "RW-CR-STP",
            WaitPolicy::Park => "RW-CR-P",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::{Arc, Barrier};
    use std::time::Duration;

    #[test]
    fn uncontended_read_and_write_round_trip() {
        let rw = RwCrLock::stp();
        for _ in 0..1_000 {
            rw.read_lock();
            // SAFETY: held.
            unsafe { rw.read_unlock() };
            rw.write_lock();
            // SAFETY: held.
            unsafe { rw.write_unlock() };
        }
        let s = rw.stats();
        assert_eq!(s.reader_culls, 0);
        assert_eq!(s.reader_reprovisions, 0);
        assert_eq!(s.write_episodes, 1_000);
    }

    #[test]
    fn two_readers_hold_simultaneously() {
        let rw = Arc::new(RwCrLock::spin());
        let inside = Arc::new(Barrier::new(2));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let rw = Arc::clone(&rw);
            let inside = Arc::clone(&inside);
            handles.push(std::thread::spawn(move || {
                rw.read_lock();
                // Both threads must reach this point while holding the
                // read side; an exclusive lock would deadlock here.
                inside.wait();
                // SAFETY: held.
                unsafe { rw.read_unlock() };
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn writer_excludes_readers_and_writers() {
        let rw = RwCrLock::stp();
        rw.write_lock();
        assert!(!rw.try_read_lock());
        assert!(!rw.try_write_lock());
        // SAFETY: held.
        unsafe { rw.write_unlock() };
        assert!(rw.try_read_lock());
        assert!(!rw.try_write_lock());
        // SAFETY: held.
        unsafe { rw.read_unlock() };
        assert!(rw.try_write_lock());
        // SAFETY: held.
        unsafe { rw.write_unlock() };
    }

    fn hammer_writes(rw: Arc<RwCrLock>, writers: usize, readers: usize, iters: usize) -> u64 {
        let counter = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..writers {
            let rw = Arc::clone(&rw);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..iters {
                    rw.write_lock();
                    // Non-atomic increment: torn updates would show up
                    // as a wrong final count if exclusion ever broke.
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                    // SAFETY: held.
                    unsafe { rw.write_unlock() };
                }
            }));
        }
        for _ in 0..readers {
            let rw = Arc::clone(&rw);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..iters {
                    rw.read_lock();
                    std::hint::black_box(counter.load(Ordering::Relaxed));
                    // SAFETY: held.
                    unsafe { rw.read_unlock() };
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        counter.load(Ordering::SeqCst)
    }

    #[test]
    fn mixed_hammer_spin() {
        let rw = Arc::new(RwCrLock::spin());
        assert_eq!(hammer_writes(Arc::clone(&rw), 4, 4, 1_000), 4_000);
        assert_eq!(rw.passive_readers(), 0);
    }

    #[test]
    fn mixed_hammer_stp() {
        let rw = Arc::new(RwCrLock::stp());
        assert_eq!(hammer_writes(Arc::clone(&rw), 4, 4, 1_000), 4_000);
        assert_eq!(rw.passive_readers(), 0);
    }

    #[test]
    fn grant_accounting_balances_after_quiescence() {
        // A long write section forces arriving readers to passivate.
        let rw = Arc::new(RwCrLock::with_params(
            WaitPolicy::spin_then_park_with(200),
            1_000,
            42,
            2,
        ));
        rw.write_lock();
        let mut handles = Vec::new();
        for _ in 0..6 {
            let rw = Arc::clone(&rw);
            handles.push(std::thread::spawn(move || {
                rw.read_lock();
                // SAFETY: held.
                unsafe { rw.read_unlock() };
            }));
        }
        std::thread::sleep(Duration::from_millis(100));
        // SAFETY: held since before the spawns.
        unsafe { rw.write_unlock() };
        for h in handles {
            h.join().unwrap();
        }
        let s = rw.stats();
        assert!(s.reader_culls >= 1, "readers must be culled: {s:?}");
        assert_eq!(
            s.reader_culls,
            s.reader_reprovisions + s.reader_fairness_grants,
            "every culled reader must be granted exactly once: {s:?}"
        );
        assert_eq!(rw.passive_readers(), 0);
        assert_eq!(rw.active_readers(), 0);
    }

    #[test]
    fn fairness_trigger_grants_eldest() {
        // Period 1: every grant pops the eldest passive reader.
        let rw = Arc::new(RwCrLock::with_params(WaitPolicy::spin(), 1, 9, 4));
        rw.write_lock();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rw = Arc::clone(&rw);
            handles.push(std::thread::spawn(move || {
                rw.read_lock();
                // SAFETY: held.
                unsafe { rw.read_unlock() };
            }));
        }
        std::thread::sleep(Duration::from_millis(100));
        // SAFETY: held.
        unsafe { rw.write_unlock() };
        for h in handles {
            h.join().unwrap();
        }
        let s = rw.stats();
        assert!(s.reader_culls >= 1, "{s:?}");
        assert_eq!(s.reader_reprovisions, 0, "{s:?}");
        assert_eq!(s.reader_fairness_grants, s.reader_culls, "{s:?}");
    }

    #[test]
    fn names_follow_policy() {
        assert_eq!(RwCrLock::spin().name(), "RW-CR-S");
        assert_eq!(RwCrLock::stp().name(), "RW-CR-STP");
        assert_eq!(RwCrLock::new(WaitPolicy::park()).name(), "RW-CR-P");
    }
}
