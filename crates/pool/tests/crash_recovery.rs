//! The durability contract, end to end: boot a real `kv_server`
//! process on a temp data directory, drive it with a pipelined write
//! window, SIGKILL it with requests still in flight, then reopen the
//! data directory in-process and verify **every acknowledged write**
//! is readable. An ack means the group commit's fsync completed, so
//! not even `kill -9` may lose it; unacked in-flight writes may or
//! may not survive (both outcomes are correct).

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

use malthus_pool::KvClient;
use malthus_storage::ShardedKv;

const SHARDS: usize = 2;
/// In-flight window per the pipelined protocol.
const DEPTH: usize = 32;
/// Acked writes before the kill.
const TARGET_ACKED: usize = 500;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("malthus-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Boots the real server binary on an ephemeral port over `dir`,
/// returning the child and the bound address parsed from its stdout.
fn spawn_server(dir: &std::path::Path) -> (Child, std::net::SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_kv_server"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--shards",
            &SHARDS.to_string(),
            "--data-dir",
            dir.to_str().expect("utf-8 temp path"),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn kv_server");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("server printed its address")
        .expect("read server stdout");
    let addr = banner
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
        .parse()
        .expect("parse bound address");
    (child, addr)
}

/// The value every key is written with (recomputable at verify time).
fn value_of(key: u64) -> u64 {
    key.wrapping_mul(31) + 7
}

#[test]
fn acked_writes_survive_sigkill() {
    let dir = temp_dir("sigkill");
    let (mut child, addr) = spawn_server(&dir);
    let mut client = KvClient::connect_with_backoff(addr, 50).expect("connect to fresh server");

    // A pipelined window of writes: mostly PUTs, every 8th a 4-pair
    // MSET, so both write verbs' acks are covered. Tags are the
    // sequence numbers; `outstanding` maps each in-flight tag to the
    // keys that request wrote.
    let mut outstanding: std::collections::VecDeque<(u64, Vec<u64>)> =
        std::collections::VecDeque::with_capacity(DEPTH);
    let mut acked: Vec<u64> = Vec::with_capacity(TARGET_ACKED + 8);
    let mut seq = 0u64;
    let mut next_key = 0u64;
    let mut req = String::new();
    while acked.len() < TARGET_ACKED {
        while outstanding.len() < DEPTH {
            use std::fmt::Write as _;
            req.clear();
            let mut keys = Vec::new();
            if seq % 8 == 7 {
                req.push_str("MSET");
                for _ in 0..4 {
                    let k = next_key;
                    next_key += 1;
                    let _ = write!(req, " {k} {}", value_of(k));
                    keys.push(k);
                }
            } else {
                let k = next_key;
                next_key += 1;
                let _ = write!(req, "PUT {k} {}", value_of(k));
                keys.push(k);
            }
            client.send_tagged(seq, &req).expect("send in-window");
            outstanding.push_back((seq, keys));
            seq += 1;
        }
        let (exp, keys) = outstanding.pop_front().expect("window just filled");
        let (tag, resp) = client.recv_tagged().expect("response before the kill");
        assert_eq!(tag, exp, "pipeline tag mismatch");
        // PUT acks "OK", MSET acks "OK <count>".
        assert!(
            resp == "OK" || resp.starts_with("OK "),
            "write in a healthy run must ack, got {resp:?}"
        );
        acked.extend(keys);
    }

    // kill -9 with a full window still in flight: no shutdown path,
    // no Drop handlers — the process is simply gone.
    assert!(
        !outstanding.is_empty(),
        "the kill must race in-flight writes"
    );
    child.kill().expect("SIGKILL the server");
    child.wait().expect("reap the server");

    // Reboot the store the way a restarted server would and check the
    // contract: every acked key must be there, bit-exact. (A torn
    // tail from the in-flight window is legal and tolerated.)
    let (kv, report) = ShardedKv::open(&dir, SHARDS, 4_096, 256).expect("reopen after crash");
    assert_eq!(
        report.bad_records(),
        0,
        "a crash must never corrupt records"
    );
    assert!(
        report.pairs() >= acked.len() as u64,
        "replay recovered {} pairs but {} were acked",
        report.pairs(),
        acked.len()
    );
    for &k in &acked {
        assert_eq!(
            kv.get(k),
            Some(value_of(k)),
            "acked key {k} lost by the crash"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn clean_restart_serves_previous_writes_over_the_wire() {
    let dir = temp_dir("restart");
    // First server generation: write, then SHUTDOWN cleanly.
    {
        let (mut child, addr) = spawn_server(&dir);
        let mut client = KvClient::connect_with_backoff(addr, 50).expect("connect gen 1");
        for k in 0..50u64 {
            let resp = client
                .roundtrip(&format!("PUT {k} {}", value_of(k)))
                .expect("gen-1 put");
            assert_eq!(resp, "OK");
        }
        assert_eq!(client.roundtrip("SHUTDOWN").expect("shutdown"), "OK");
        child.wait().expect("gen-1 exit");
    }
    // Second generation over the same directory: the replayed store
    // serves generation 1's writes over the wire.
    let (mut child, addr) = spawn_server(&dir);
    let mut client = KvClient::connect_with_backoff(addr, 50).expect("connect gen 2");
    for k in 0..50u64 {
        let resp = client.roundtrip(&format!("GET {k}")).expect("gen-2 get");
        assert_eq!(resp, format!("VAL {}", value_of(k)), "key {k}");
    }
    assert_eq!(client.roundtrip("SHUTDOWN").expect("shutdown"), "OK");
    child.wait().expect("gen-2 exit");
    let _ = std::fs::remove_dir_all(&dir);
}
