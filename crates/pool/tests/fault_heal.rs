//! Fault-window robustness, end to end over TCP: boot the real
//! `kv_server` binary with an armed fault plan, watch a shard get
//! poisoned read-only by an injected fsync failure, and hold the
//! server to the healing contract — the background healer must flip
//! the shard writable again, the refusals must be counted, and no
//! acked write may be lost across the whole episode. Plus the
//! graceful-shutdown contract: `SIGTERM` with a pipelined window in
//! flight answers every request, exits 0, and stamps the
//! clean-shutdown marker the next boot reports.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use malthus_pool::KvClient;
use malthus_storage::{ShardedKv, CLEAN_SHUTDOWN_MARKER};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("malthus-fault-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Boots the real server binary on an ephemeral port over `dir` with
/// the given extra args, returning the child and the bound address.
fn spawn_server(dir: &std::path::Path, extra: &[&str]) -> (Child, std::net::SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_kv_server"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--shards",
            "1",
            "--data-dir",
            dir.to_str().expect("utf-8 temp path"),
        ])
        .args(extra)
        // The test runner's environment must not add faults beyond
        // the ones this test arms explicitly.
        .env_remove("MALTHUS_FAULT_PLAN")
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn kv_server");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("server printed its address")
        .expect("read server stdout");
    let addr = banner
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
        .parse()
        .expect("parse bound address");
    (child, addr)
}

/// Pulls one `name=value` field out of a `STATS` response line.
fn stats_field(stats: &str, name: &str) -> u64 {
    stats
        .split_whitespace()
        .find_map(|f| f.strip_prefix(&format!("{name}=")))
        .unwrap_or_else(|| panic!("STATS lacks {name}=: {stats}"))
        .parse()
        .unwrap_or_else(|_| panic!("STATS {name} not a number: {stats}"))
}

/// The tentpole contract over the wire: an injected fsync failure
/// poisons the shard (`ERR shard readonly`), the healer's probes burn
/// through the fault window (`storage.fsync=1x2`: the poisoning sync
/// plus one failing probe), the shard comes back writable, the
/// episode is visible in `STATS`, and after a graceful shutdown a
/// restart serves exactly the acked writes.
#[test]
fn fsync_fault_poisons_then_heals_and_the_shard_accepts_writes_again() {
    let dir = temp_dir("heal");
    let (mut child, addr) = spawn_server(&dir, &["--fault-plan", "seed=7,storage.fsync=1x2"]);
    let mut client = KvClient::connect_with_backoff(addr, 50).expect("connect");

    // The first durable write trips the injected fsync failure: the
    // write is refused (not acked, not applied) and the shard goes
    // read-only.
    let resp = client.roundtrip("PUT 1 10").expect("first put round trip");
    assert_eq!(resp, "ERR shard readonly", "injected fsync must refuse");
    // Reads keep working while the shard is poisoned.
    assert_eq!(client.roundtrip("GET 1").expect("get"), "NIL");

    // The healer probes with capped backoff (50 ms doubling): the
    // first probe fails (second injection of the x2 window), the
    // second succeeds. Well under this deadline.
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut healed = false;
    while Instant::now() < deadline {
        match client.roundtrip("PUT 2 20").expect("probe put") {
            "OK" => {
                healed = true;
                break;
            }
            "ERR shard readonly" => std::thread::sleep(Duration::from_millis(100)),
            other => panic!("probe PUT answered {other:?}"),
        }
    }
    assert!(healed, "shard did not heal within 20 s");

    // The episode is visible end to end: refusals counted, at least
    // one failed attempt before the successful heal.
    let stats = client.roundtrip("STATS").expect("stats").to_string();
    assert!(stats_field(&stats, "readonly_rejects") >= 1, "{stats}");
    assert_eq!(stats_field(&stats, "heals"), 1, "{stats}");
    assert!(stats_field(&stats, "heal_attempts") >= 2, "{stats}");
    assert_eq!(stats_field(&stats, "readonly_shards"), 0, "{stats}");

    // Healed means durable: SHUTDOWN, restart, and the acked write is
    // there while the refused one is not.
    assert_eq!(client.roundtrip("SHUTDOWN").expect("shutdown"), "OK");
    assert!(child.wait().expect("reap").success());
    let (mut child, addr) = spawn_server(&dir, &[]);
    let mut client = KvClient::connect_with_backoff(addr, 50).expect("reconnect");
    assert_eq!(client.roundtrip("GET 2").expect("get 2"), "VAL 20");
    assert_eq!(
        client.roundtrip("GET 1").expect("get 1"),
        "NIL",
        "the refused write must not resurrect"
    );
    assert_eq!(client.roundtrip("SHUTDOWN").expect("shutdown"), "OK");
    assert!(child.wait().expect("reap").success());
    let _ = std::fs::remove_dir_all(&dir);
}

/// `SIGTERM` mid-window: every request of a depth-16 pipelined burst
/// already accepted by the server is answered before the connection
/// closes, the process exits 0, the clean-shutdown marker lands in
/// `MANIFEST`, and the next open reports (and consumes) it.
#[test]
fn sigterm_drains_the_inflight_window_and_stamps_the_clean_marker() {
    const DEPTH: u64 = 16;
    let dir = temp_dir("sigterm");
    let (mut child, addr) = spawn_server(&dir, &[]);
    let mut client = KvClient::connect_with_backoff(addr, 50).expect("connect");

    // Fire the whole window without reading a single response, give
    // the bytes time to reach the server, then SIGTERM it.
    for seq in 0..DEPTH {
        client
            .send_tagged(seq, &format!("PUT {seq} {}", seq * 3 + 1))
            .expect("send in-window");
    }
    std::thread::sleep(Duration::from_millis(300));
    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("run kill -TERM");
    assert!(term.success(), "kill -TERM failed");

    // Graceful drain: all DEPTH responses arrive, in order, all OK.
    for seq in 0..DEPTH {
        let (tag, resp) = client.recv_tagged().expect("drained response");
        assert_eq!(tag, seq, "responses must stay in request order");
        assert_eq!(resp, "OK", "request {seq} must be answered, not dropped");
    }
    let status = child.wait().expect("reap after SIGTERM");
    assert!(status.success(), "SIGTERM exit must be clean, got {status}");

    // The marker is on disk...
    let manifest = std::fs::read_to_string(dir.join("MANIFEST")).expect("read MANIFEST");
    assert!(
        manifest.lines().any(|l| l.trim() == CLEAN_SHUTDOWN_MARKER),
        "MANIFEST lacks the clean-shutdown marker:\n{manifest}"
    );
    // ...the next open reports it, consumes it, and serves the acked
    // window.
    let (kv, report) = ShardedKv::open(&dir, 1, 4_096, 256).expect("reopen");
    assert!(report.clean_marker, "open must report the clean shutdown");
    assert!(report.clean(), "a drained shutdown leaves no torn tail");
    for seq in 0..DEPTH {
        assert_eq!(kv.get(seq), Some(seq * 3 + 1), "key {seq}");
    }
    drop(kv);
    let (_, report) = ShardedKv::open(&dir, 1, 4_096, 256).expect("second reopen");
    assert!(
        !report.clean_marker,
        "the marker is one-shot: consumed by the first open"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
