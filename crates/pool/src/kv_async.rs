//! The reactor front-end for the KV service: the same wire protocol,
//! spans, WAL group commit and SLOWLOG as [`crate::kv::serve`], but
//! driven by `malthus-net`'s readiness reactor instead of a thread
//! per connection.
//!
//! The threaded front-end restricts *execution* (the crew) while
//! spending one blocked reader thread per connection; this front-end
//! removes the per-connection thread entirely. A fixed pool of
//! reactor workers shares one epoll instance, and the right to call
//! `epoll_wait` is itself Malthusian-admitted — surplus pollers cull
//! to a LIFO passive stack and are reprovisioned on stall, so the
//! poll crew exhibits the same active/passive partitioning as the
//! locks and the work crew. A ready connection **is** a batch: every
//! complete request line buffered on it is drained, parsed and
//! executed through [`KvService::apply_batch_span`] — identical
//! batching, span and durability semantics to the threaded path, so
//! clients cannot tell the front-ends apart on the wire.
//!
//! What changes is the cost model. Per-connection state shrinks from
//! a thread (stack, scheduler presence) to a buffer pair inside the
//! reactor's slab, so idle connections cost memory, not threads —
//! `kv_server --async` holds 1024 idle connections on two reactor
//! threads. Idle reaping moves from per-socket read timeouts to the
//! reactor's coarse timer wheel, surfacing through the same
//! `STATS idle_disconnects=` counter.

use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use malthus_metrics::LatencyHistogram;
use malthus_net::{Action, CloseReason, Handler, Reactor, ReactorConfig, StatsProbe};
use malthus_obs::span::{self, Stage};
use malthus_obs::SpanContext;

use crate::kv::{AdmissionSnapshot, AdmissionStats, KvService, Parsed, Request, ServerControl};

/// Knobs for [`serve_async`] — the reactor-side analogue of
/// [`crate::kv::ServeOptions`].
#[derive(Debug, Clone, Copy)]
pub struct AsyncServeOptions {
    /// Total reactor worker threads (active + passive).
    pub workers: usize,
    /// Target active circulating set of `epoll_wait` callers; surplus
    /// workers cull to the passive stack.
    pub acs_target: usize,
    /// Idle-connection timeout, enforced by the reactor's timer wheel
    /// (`None` never reaps — byte-compatible with the threaded
    /// default).
    pub read_timeout: Option<Duration>,
}

impl AsyncServeOptions {
    /// `workers` reactor threads with the Malthusian default ACS
    /// (min(workers, cpus)) and no idle reaping.
    pub fn malthusian(workers: usize) -> Self {
        let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
        AsyncServeOptions {
            workers: workers.max(1),
            acs_target: workers.max(1).min(cpus),
            read_timeout: None,
        }
    }
}

/// [`AdmissionStats`] over the reactor's counters, so the `STATS`
/// verb renders poll-admission numbers in the same fields the
/// threaded server fills from the crew: `completed` counts ready
/// batches (the reactor's admission unit), culls/reprovisions/
/// promotions count poll-crew membership churn.
///
/// The probe cell starts empty — the handler must exist before the
/// reactor that will answer its stats does — and `STATS` renders
/// zeros until [`serve_async`] fills it right after reactor start.
struct ReactorAdmission(Arc<OnceLock<StatsProbe>>);

impl AdmissionStats for ReactorAdmission {
    fn admission_snapshot(&self) -> AdmissionSnapshot {
        let Some(probe) = self.0.get() else {
            return AdmissionSnapshot::default();
        };
        let s = probe.get();
        AdmissionSnapshot {
            completed: s.ready_batches,
            culls: s.culls,
            reprovisions: s.reprovisions,
            promotions: s.fairness_promotions,
        }
    }
}

/// Per-connection protocol state: the buffer pair plus span
/// bookkeeping. This — not a thread — is the whole per-connection
/// footprint of the async front-end.
pub struct KvConn {
    /// Per-connection batch-size histogram, folded into the
    /// service-wide distribution on close (same lifecycle as the
    /// threaded reader's).
    conn_hist: Arc<LatencyHistogram>,
    /// Parsed-request scratch, reused across batches.
    batch: Vec<Parsed>,
    /// Response-render scratch, reused across batches.
    out: String,
    /// Spans of batches whose responses are still (partly) in the
    /// reactor's write buffer, oldest first. Flush time lands on the
    /// oldest; a completed flush finishes them all — responses leave
    /// in order, so a drained write buffer means every pending batch
    /// is fully on the wire.
    pending: Vec<SpanContext>,
}

/// The [`Handler`] gluing the reactor to [`KvService`]. Cheap to
/// clone (two `Arc`s); the reactor owns one clone per start.
#[derive(Clone)]
pub struct KvHandler {
    service: Arc<KvService>,
    probe: Arc<OnceLock<StatsProbe>>,
}

impl KvHandler {
    /// A handler over `service` whose `STATS` admission numbers come
    /// from the (not-yet-started) reactor via the shared probe cell.
    pub fn new(service: Arc<KvService>, probe: Arc<OnceLock<StatsProbe>>) -> Self {
        KvHandler { service, probe }
    }
}

impl Handler for KvHandler {
    type Conn = KvConn;

    fn on_open(&self, _stream: &TcpStream) -> KvConn {
        malthus_obs::record(malthus_obs::EventKind::ConnOpen, 0, 0);
        KvConn {
            conn_hist: self.service.pipeline_stats().register_connection(),
            batch: Vec::new(),
            out: String::new(),
            pending: Vec::new(),
        }
    }

    fn on_data(
        &self,
        conn: &mut KvConn,
        read_buf: &mut Vec<u8>,
        write_buf: &mut Vec<u8>,
    ) -> Action {
        // A readiness wakeup drains every *complete* line buffered on
        // the connection into one batch — the reactor's analogue of
        // the threaded reader's drain-per-wakeup loop. Bytes after
        // the last newline stay buffered for the next wakeup.
        let Some(last_nl) = read_buf.iter().rposition(|&b| b == b'\n') else {
            return Action::Continue;
        };
        // Span tracing: born at readiness, so Read covers UTF-8
        // validation + parse — never the wait for traffic.
        let mut span = if span::enabled() {
            SpanContext::start(0, 0) // identity assigned once sized
        } else {
            SpanContext::detached()
        };
        let read_t0 = if span.is_active() { span::now_ns() } else { 0 };
        let Ok(text) = std::str::from_utf8(&read_buf[..=last_nl]) else {
            // The threaded front-end's `read_line` fails the read on
            // invalid UTF-8 and closes; match it.
            read_buf.drain(..=last_nl);
            return Action::Close;
        };
        // Quit/Shutdown split the drain exactly like the threaded
        // loop: requests before the control verb execute, lines after
        // it die with the connection.
        let mut control_verb: Option<(Option<u64>, Request)> = None;
        for line in text.lines() {
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            let p = Parsed::from_line(trimmed);
            match p.body {
                Ok(Request::Quit) => {
                    control_verb = Some((p.tag, Request::Quit));
                    break;
                }
                Ok(Request::Shutdown) => {
                    control_verb = Some((p.tag, Request::Shutdown));
                    break;
                }
                _ => conn.batch.push(p),
            }
        }
        read_buf.drain(..=last_nl);
        if !conn.batch.is_empty() {
            let n = conn.batch.len() as u64;
            self.service.pipeline_stats().note_batch(n);
            conn.conn_hist.record_ns(n);
            span.set_identity(self.service.next_batch_id(), n as u32);
            if read_t0 != 0 {
                span.add(Stage::Read, span::now_ns().saturating_sub(read_t0));
            }
            // No queue stage: the ready batch executes right here on
            // the reactor worker that won poll admission — admission
            // happened at `epoll_wait`, not at a task queue.
            conn.out.clear();
            let drain_start = Instant::now();
            let admission = ReactorAdmission(Arc::clone(&self.probe));
            self.service
                .apply_batch_span(&conn.batch, &admission, &mut conn.out, &mut span);
            self.service
                .pipeline_stats()
                .note_drain_ns(drain_start.elapsed().as_nanos() as u64);
            write_buf.extend_from_slice(conn.out.as_bytes());
            conn.batch.clear();
            if span.is_active() {
                // Flush happens later, nonblocking, possibly in
                // pieces; `on_flushed` settles the span.
                conn.pending.push(span);
            }
        }
        match control_verb {
            Some((tag, Request::Shutdown)) => {
                // `OK` must still reach the client: the reactor
                // flushes the write buffer before honouring the
                // shutdown.
                crate::kv::write_tag_line(write_buf, tag, "OK");
                Action::ShutdownServer
            }
            Some(_) => Action::Close, // QUIT: close without a response
            None => Action::Continue,
        }
    }

    fn on_flushed(&self, conn: &mut KvConn, ns: u64, complete: bool) {
        if let Some(oldest) = conn.pending.first_mut() {
            oldest.add(Stage::Flush, ns);
        }
        if complete {
            for mut span in conn.pending.drain(..) {
                self.service.finish_span(&mut span);
            }
        }
    }

    fn on_close(&self, conn: &mut KvConn, reason: CloseReason) {
        if reason == CloseReason::IdleTimeout {
            self.service.note_idle_disconnect();
            malthus_obs::record(malthus_obs::EventKind::ConnIdleReap, 0, 0);
        }
        // Batches whose responses never fully left still count: their
        // spans settle with whatever flush time accrued.
        for mut span in conn.pending.drain(..) {
            self.service.finish_span(&mut span);
        }
        self.service
            .pipeline_stats()
            .retire_connection(Arc::clone(&conn.conn_hist));
    }
}

/// Serves `listener` through the reactor until [`ServerControl::stop`]
/// is called or a client sends `SHUTDOWN` — the async counterpart of
/// [`crate::kv::serve`]. Registers the reactor's gauges and counters
/// in the service's unified registry (as `serve` does the crew's), so
/// `METRICS` and `kvtop` see whichever front-end is live.
pub fn serve_async(
    listener: TcpListener,
    control: &ServerControl,
    service: Arc<KvService>,
    opts: AsyncServeOptions,
) -> std::io::Result<()> {
    // The handler must exist before the reactor, but STATS needs the
    // reactor's counters: the probe cell breaks the cycle, filled the
    // moment the reactor exists. Until then STATS renders zeros.
    let probe = Arc::new(OnceLock::new());
    let handler = KvHandler::new(Arc::clone(&service), Arc::clone(&probe));
    let cfg = ReactorConfig::malthusian(opts.workers)
        .with_acs_target(opts.acs_target)
        .with_read_timeout(opts.read_timeout)
        .with_stop_flag(Arc::clone(&control.stop));
    let reactor = Reactor::start(listener, handler, cfg)?;
    let _ = probe.set(reactor.stats_probe());
    reactor.register_metrics(service.registry());
    // Blocks until SHUTDOWN / control.stop() / stop-flag store; the
    // reactor closes remaining connections on its way out.
    reactor.wait();
    // A SHUTDOWN verb stopped the reactor directly: reflect it in the
    // control flag so `stop()`-side observers agree the server is
    // down (the threaded path gets this for free via control.stop()).
    control.stop.store(true, Ordering::SeqCst);
    Ok(())
}
