//! Concurrency restriction one layer up: a Malthusian work crew.
//!
//! §7 of *Malthusian Locks* (Dice, EuroSys 2017) observes that the
//! active/passive partitioning that cures lock-level scalability
//! collapse "can be applied to any contended resource". This crate
//! applies it at the task-scheduler level:
//!
//! * [`WorkCrew`] — a bounded-queue executor whose worker threads are
//!   partitioned into an active circulating set and a LIFO passive
//!   stack, with backlog-driven reprovisioning and episodic
//!   eldest-first fairness promotion. The admission decisions are the
//!   *same functions* the locks use
//!   ([`malthus::policy::crew_has_surplus`],
//!   [`malthus::policy::crew_should_reprovision`],
//!   [`malthus::policy::FairnessTrigger`]), so pool and locks share
//!   one policy module.
//! * [`kv`] — a line-protocol TCP key-value service ([`KvService`])
//!   dispatching request execution onto the crew against a
//!   [`ShardedKv`](malthus_storage::ShardedKv): N shards, each
//!   §6.5's two contended locks (`--shards 1` is the paper-faithful
//!   single pair), with batched `MGET`/`MSET` and aggregated
//!   `SCAN`/`STATS` cross-shard verbs. Binaries: `kv_server`
//!   (`--shards`), `kv_load` (`--pipeline-depth`, per-op-type
//!   latencies).
//!
//! The `bench_pool` binary (in `malthus-bench`) compares unrestricted
//! and Malthusian crews at rising oversubscription and writes
//! `BENCH_pool.json`.
//!
//! # Examples
//!
//! ```
//! use malthus_pool::{PoolConfig, WorkCrew};
//! use std::sync::atomic::{AtomicU64, Ordering};
//! use std::sync::Arc;
//!
//! // 8 workers, but only ~num_cpus circulate at once.
//! let crew = WorkCrew::new(PoolConfig::malthusian(8, 128));
//! let done = Arc::new(AtomicU64::new(0));
//! for _ in 0..1_000 {
//!     let done = Arc::clone(&done);
//!     crew.submit(move || {
//!         done.fetch_add(1, Ordering::Relaxed);
//!     })
//!     .unwrap();
//! }
//! let stats = crew.shutdown();
//! assert_eq!(stats.completed, 1_000);
//! ```

#![warn(missing_docs)]

mod crew;
pub mod kv;
pub mod kv_async;

pub use crew::{PoolConfig, PoolStats, SubmitError, Task, WorkCrew, DEFAULT_STALL_THRESHOLD};
pub use kv::{KvClient, KvService, Parsed, PipelineStats, Request, ServeOptions, ServerControl};
pub use kv_async::{serve_async, AsyncServeOptions, KvHandler};
