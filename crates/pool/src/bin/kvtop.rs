//! `kvtop` — a refreshing terminal dashboard over the `METRICS` and
//! `SLOWLOG` verbs.
//!
//! Polls a running `kv_server` for its unified Prometheus-text-style
//! exposition (parsed with the shared [`malthus_obs::exposition`]
//! parser) and renders interval **rates** (ops/s, fsyncs/s, batches/s
//! — diffed between polls) next to the admission picture (exclusive
//! episodes per write, crew active/passive, hot-shard write share),
//! interval latency quantiles (batch size, batch drain, fsync —
//! computed from histogram-bucket deltas), a per-stage **latency
//! waterfall** (where the interval's batches spent their time:
//! read → queue → lock_wait → cull_wait → exec → wal_fsync → flush),
//! and the newest `SLOWLOG` entries with their stage breakdowns. One
//! row per shard shows how evenly traffic spreads and which shards
//! have gone read-only.
//!
//! A server restart between polls (detected by `kv_uptime_seconds`
//! moving backwards) is flagged `[server restarted]` in the frame
//! header; all interval math clamps the negative counter deltas a
//! restart produces, so the frame degrades to zeros instead of
//! rendering garbage rates.
//!
//! Flags (environment fallbacks in parentheses):
//!
//! * `--addr <host:port>` (`MALTHUS_KV_ADDR`) — server address,
//!   default `127.0.0.1:7878`.
//! * `--interval-ms <n>` (`MALTHUS_KVTOP_INTERVAL_MS`) — poll
//!   interval, default 1000.
//! * `--frames <n>` — stop after `n` frames (default 0 = run until
//!   the server goes away or ^C).
//! * `--once` — render exactly one frame (two polls one interval
//!   apart so rates are real) without clearing the screen; for
//!   scripts and CI smoke tests.
//! * `--slowlog <n>` — slowlog entries to display (default 5; 0
//!   hides the panel and skips the `SLOWLOG` poll).

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use malthus_obs::exposition::{interval_quantiles, Exposition};
use malthus_obs::span::{Stage, STAGE_COUNT};
use malthus_pool::kv::{KvClient, DEFAULT_ADDR};

/// One poll: the parsed exposition plus the raw slowlog document.
struct Sample {
    at: Instant,
    exp: Exposition,
    slowlog: String,
}

/// One `SLOWLOG` entry re-parsed from the wire breakdown line.
struct SlowRow {
    batch: u64,
    ops: u64,
    total_ns: u64,
    stage_ns: [u64; STAGE_COUNT],
}

/// Parses the `SLOWLOG` document: a `SLOWLOG entries=… inserted=…
/// threshold_us=…` header, one `BATCH …` line per entry (newest
/// first), `# EOF`. Unknown or malformed lines are skipped.
fn parse_slowlog(doc: &str) -> (Vec<SlowRow>, u64, u64) {
    let mut rows = Vec::new();
    let mut inserted = 0;
    let mut threshold_us = 0;
    for line in doc.lines() {
        let line = line.trim();
        if line == "# EOF" {
            break;
        }
        if let Some(header) = line.strip_prefix("SLOWLOG ") {
            for field in header.split_whitespace() {
                if let Some(v) = field.strip_prefix("inserted=") {
                    inserted = v.parse().unwrap_or(0);
                } else if let Some(v) = field.strip_prefix("threshold_us=") {
                    threshold_us = v.parse().unwrap_or(0);
                }
            }
            continue;
        }
        if !line.starts_with("BATCH ") {
            continue;
        }
        // `BATCH <id> OPS <n> TOTAL_NS <t> READ_NS <r> …` — keyword
        // value pairs in a fixed order; parse them positionally but
        // keyed, so an extra field added later cannot shift the rest.
        let mut fields = std::collections::BTreeMap::new();
        let mut toks = line.split_whitespace();
        while let (Some(k), Some(v)) = (toks.next(), toks.next()) {
            if let Ok(v) = v.parse::<u64>() {
                fields.insert(k, v);
            }
        }
        let get = |k: &str| fields.get(k).copied().unwrap_or(0);
        let mut stage_ns = [0u64; STAGE_COUNT];
        for (i, key) in [
            "READ_NS",
            "QUEUE_NS",
            "LOCK_WAIT_NS",
            "CULL_WAIT_NS",
            "EXEC_NS",
            "WAL_FSYNC_NS",
            "FLUSH_NS",
        ]
        .iter()
        .enumerate()
        {
            stage_ns[i] = get(key);
        }
        rows.push(SlowRow {
            batch: get("BATCH"),
            ops: get("OPS"),
            total_ns: get("TOTAL_NS"),
            stage_ns,
        });
    }
    (rows, inserted, threshold_us)
}

/// Renders nanoseconds human-readably (the fsync/drain histograms) —
/// bucket bounds, so one significant step is plenty.
fn fmt_ns(ns: f64) -> String {
    if !ns.is_finite() {
        "inf".to_string()
    } else if ns >= 1e9 {
        format!("{:.1}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.1}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

fn fmt_quantiles_ns(q: Option<(f64, f64)>) -> String {
    match q {
        Some((p50, p99)) => format!("{}/{}", fmt_ns(p50), fmt_ns(p99)),
        None => "-/-".to_string(),
    }
}

/// Per-second rate of a cumulative (possibly labelled) counter over
/// the poll interval. Negative deltas (counter reset after a server
/// restart) clamp to zero.
fn rate(later: &Sample, earlier: &Sample, name: &str, labels: &[(&str, &str)]) -> f64 {
    let secs = later.at.duration_since(earlier.at).as_secs_f64();
    if secs <= 0.0 {
        return 0.0;
    }
    let l = later.exp.value(name, labels).unwrap_or(0.0);
    let e = earlier.exp.value(name, labels).unwrap_or(0.0);
    (l - e).max(0.0) / secs
}

fn shard_label(i: &str) -> [(&str, &str); 1] {
    [("shard", i)]
}

/// The per-stage waterfall: one row per pipeline stage with the
/// interval's p50/p99 and a bar proportional to p99 (log-ish visual:
/// linear against the slowest stage of this frame).
fn render_waterfall(f: &mut String, later: &Sample, earlier: &Sample) {
    use std::fmt::Write as _;
    let quantiles: Vec<(Stage, Option<(f64, f64)>)> = Stage::ALL
        .iter()
        .map(|&s| {
            (
                s,
                interval_quantiles(
                    &later.exp,
                    &earlier.exp,
                    "kv_stage_ns",
                    &[("stage", s.as_str())],
                ),
            )
        })
        .collect();
    let max_p99 = quantiles
        .iter()
        .filter_map(|(_, q)| q.map(|(_, p99)| p99))
        .filter(|v| v.is_finite())
        .fold(0.0f64, f64::max);
    let _ = writeln!(f, "stage waterfall (interval p50/p99)");
    for (stage, q) in &quantiles {
        const BAR: usize = 24;
        let bar = match q {
            Some((_, p99)) if max_p99 > 0.0 => {
                let frac = if p99.is_finite() { p99 / max_p99 } else { 1.0 };
                let n = ((frac * BAR as f64).round() as usize).clamp(1, BAR);
                "#".repeat(n)
            }
            _ => String::new(),
        };
        let _ = writeln!(
            f,
            "  {:>9} {:>17}  {bar}",
            stage.as_str(),
            fmt_quantiles_ns(*q),
        );
    }
}

/// The newest slowlog entries, with each batch's dominant stage named
/// so a glance answers "slow *where*".
fn render_slowlog(f: &mut String, later: &Sample, show: usize) {
    use std::fmt::Write as _;
    let (rows, inserted, threshold_us) = parse_slowlog(&later.slowlog);
    let _ = writeln!(
        f,
        "slowlog (threshold {threshold_us}us, {inserted} captured, newest first)"
    );
    if rows.is_empty() {
        let _ = writeln!(f, "  (empty)");
        return;
    }
    let _ = writeln!(
        f,
        "  {:>8} {:>5} {:>9} {:>9} {:>9} {:>9} {:>9}  worst stage",
        "batch", "ops", "total", "read", "lockwait", "exec", "fsync"
    );
    for row in rows.iter().take(show) {
        let (worst_idx, worst_ns) = row
            .stage_ns
            .iter()
            .enumerate()
            .max_by_key(|&(_, &ns)| ns)
            .map(|(i, &ns)| (i, ns))
            .unwrap_or((0, 0));
        let _ = writeln!(
            f,
            "  {:>8} {:>5} {:>9} {:>9} {:>9} {:>9} {:>9}  {} ({})",
            row.batch,
            row.ops,
            fmt_ns(row.total_ns as f64),
            fmt_ns(row.stage_ns[Stage::Read as usize] as f64),
            fmt_ns(row.stage_ns[Stage::LockWait as usize] as f64),
            fmt_ns(row.stage_ns[Stage::Exec as usize] as f64),
            fmt_ns(row.stage_ns[Stage::WalFsync as usize] as f64),
            Stage::ALL[worst_idx].as_str(),
            fmt_ns(worst_ns as f64),
        );
    }
}

/// One rendered frame. Built as a string so the caller can write it
/// in one syscall and shrug off a closed stdout (`kvtop | head`).
fn render(
    later: &Sample,
    earlier: &Sample,
    addr: &SocketAddr,
    frame: u64,
    slowlog: usize,
) -> String {
    use std::fmt::Write as _;
    let mut f = String::new();
    let shards = later.exp.label_values("kv_shard_reads_total", "shard");
    let sum_rate = |name: &str| -> f64 {
        shards
            .iter()
            .map(|i| rate(later, earlier, name, &shard_label(i)))
            .sum()
    };
    let sum_db_rate = |name: &str| -> f64 {
        shards
            .iter()
            .map(|i| rate(later, earlier, name, &[("lock", "db"), ("shard", i)]))
            .sum()
    };
    let reads_s = sum_rate("kv_shard_reads_total");
    let writes_s = sum_rate("kv_shard_writes_total");
    let fsyncs_s = sum_rate("kv_shard_wal_syncs_total");
    let wepis_s = sum_db_rate("lock_write_episodes_total");
    let excl_per_write = if writes_s > 0.0 {
        wepis_s / writes_s
    } else {
        0.0
    };
    let readonly: f64 = shards
        .iter()
        .map(|i| {
            later
                .exp
                .value("kv_shard_readonly", &shard_label(i))
                .unwrap_or(0.0)
        })
        .sum();
    // Uptime moving backwards means the process we polled last time
    // is not the process we polled this time.
    let restarted = later.exp.get("kv_uptime_seconds") < earlier.exp.get("kv_uptime_seconds");

    let _ = writeln!(
        f,
        "kvtop — {addr} — frame {frame} — interval {:.1}s — up {:.0}s{}",
        later.at.duration_since(earlier.at).as_secs_f64(),
        later.exp.get("kv_uptime_seconds"),
        if restarted {
            "  [server restarted]"
        } else {
            ""
        },
    );
    let _ = writeln!(
        f,
        "ops/s {:>10.0}   reads/s {:>10.0}   writes/s {:>9.0}   batches/s {:>8.0}",
        reads_s + writes_s,
        reads_s,
        writes_s,
        rate(later, earlier, "kv_pipeline_batches_total", &[]),
    );
    let _ = writeln!(
        f,
        "excl episodes/write {:>6.3}   fsyncs/s {:>8.0}   fsync p50/p99 {}",
        excl_per_write,
        fsyncs_s,
        fmt_quantiles_ns(interval_quantiles(
            &later.exp,
            &earlier.exp,
            "kv_wal_fsync_ns",
            &[]
        )),
    );
    let batch_q = interval_quantiles(&later.exp, &earlier.exp, "kv_pipeline_batch_size", &[])
        .map_or("-/-".to_string(), |(p50, p99)| format!("{p50:.0}/{p99:.0}"));
    let _ = writeln!(
        f,
        "batch size p50/p99 {batch_q}   max batch {:.0}   drain p50/p99 {}",
        later.exp.get("kv_pipeline_max_batch"),
        fmt_quantiles_ns(interval_quantiles(
            &later.exp,
            &earlier.exp,
            "kv_batch_drain_ns",
            &[]
        )),
    );
    let _ = writeln!(
        f,
        "crew active {:.0}  passive {:.0}  backlog {:.0}   hot-shard write share {:.2}   \
         readonly shards {readonly:.0}   idle disconnects {:.0}",
        later.exp.get("crew_active_workers"),
        later.exp.get("crew_passive_workers"),
        later.exp.get("crew_backlog"),
        later.exp.get("kv_hottest_shard_write_share"),
        later.exp.get("kv_idle_disconnects_total"),
    );
    // Reactor panel: present only when the server runs the async
    // front-end (its registration is what creates these series).
    if later.exp.value("kv_conns_open", &[]).is_some() {
        let ready_q = interval_quantiles(&later.exp, &earlier.exp, "kv_reactor_ready_batch", &[])
            .map_or("-/-".to_string(), |(p50, p99)| format!("{p50:.0}/{p99:.0}"));
        let _ = writeln!(
            f,
            "reactor conns {:.0}  pollers active {:.0}  passive {:.0}   epoll_waits/s {:.0}   \
             ready batch p50/p99 {ready_q}   partial flushes {:.0}",
            later.exp.get("kv_conns_open"),
            later
                .exp
                .value("kv_reactor_workers", &[("state", "active")])
                .unwrap_or(0.0),
            later
                .exp
                .value("kv_reactor_workers", &[("state", "passive")])
                .unwrap_or(0.0),
            rate(later, earlier, "kv_epoll_waits_total", &[]),
            later.exp.get("kv_reactor_partial_flushes_total"),
        );
    }
    render_waterfall(&mut f, later, earlier);
    if slowlog > 0 {
        render_slowlog(&mut f, later, slowlog);
    }
    let _ = writeln!(
        f,
        "{:>5} {:>10} {:>10} {:>9} {:>9} {:>10} {:>8} {:>6}",
        "shard", "reads/s", "writes/s", "wepis/s", "fsyncs/s", "keys", "rejects", "heals"
    );
    for i in &shards {
        let ro = later
            .exp
            .value("kv_shard_readonly", &shard_label(i))
            .unwrap_or(0.0)
            > 0.0;
        let _ = writeln!(
            f,
            "{i:>5} {:>10.0} {:>10.0} {:>9.0} {:>9.0} {:>10.0} {:>8.0} {:>6.0}{}",
            rate(later, earlier, "kv_shard_reads_total", &shard_label(i)),
            rate(later, earlier, "kv_shard_writes_total", &shard_label(i)),
            rate(
                later,
                earlier,
                "lock_write_episodes_total",
                &[("lock", "db"), ("shard", i)]
            ),
            rate(later, earlier, "kv_shard_wal_syncs_total", &shard_label(i)),
            later
                .exp
                .value("kv_shard_keys", &shard_label(i))
                .unwrap_or(0.0),
            // Cumulative, not rates: a write refused or a shard
            // revived is a rare event whose *count* is the story.
            later
                .exp
                .value("kv_readonly_rejects_total", &shard_label(i))
                .unwrap_or(0.0),
            later
                .exp
                .value("kv_shard_heals_total", &shard_label(i))
                .unwrap_or(0.0),
            if ro { "  READONLY" } else { "" },
        );
    }
    f
}

fn usage() -> ! {
    eprintln!(
        "usage: kvtop [--addr <host:port>] [--interval-ms <n>] [--frames <n>] [--once] \
         [--slowlog <n>]"
    );
    std::process::exit(2);
}

fn main() {
    let mut addr = std::env::var("MALTHUS_KV_ADDR").unwrap_or_else(|_| DEFAULT_ADDR.to_string());
    let mut interval_ms: u64 = std::env::var("MALTHUS_KVTOP_INTERVAL_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000);
    let mut frames: u64 = 0;
    let mut once = false;
    let mut slowlog: usize = 5;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(a) => addr = a,
                None => usage(),
            },
            "--interval-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => interval_ms = n,
                _ => usage(),
            },
            "--frames" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => frames = n,
                None => usage(),
            },
            "--once" => once = true,
            "--slowlog" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => slowlog = n,
                None => usage(),
            },
            _ => usage(),
        }
    }
    if once {
        frames = 1;
        // One real frame needs two polls; a short gap keeps `--once`
        // script-friendly while still measuring actual rates.
        interval_ms = interval_ms.min(250);
    }
    let addr: SocketAddr = addr.parse().expect("--addr must be host:port");
    let mut client = KvClient::connect_with_backoff(addr, 10)
        .unwrap_or_else(|e| panic!("could not connect to {addr}: {e}"));

    let poll = |client: &mut KvClient| -> Sample {
        let doc = client
            .fetch_document("METRICS")
            .unwrap_or_else(|e| panic!("METRICS poll failed: {e}"));
        let slowdoc = if slowlog > 0 {
            client
                .fetch_document(&format!("SLOWLOG {slowlog}"))
                .unwrap_or_else(|e| panic!("SLOWLOG poll failed: {e}"))
        } else {
            String::new()
        };
        Sample {
            at: Instant::now(),
            exp: Exposition::parse(&doc),
            slowlog: slowdoc,
        }
    };

    let mut earlier = poll(&mut client);
    let mut frame = 0u64;
    loop {
        std::thread::sleep(Duration::from_millis(interval_ms));
        let later = poll(&mut client);
        frame += 1;
        let mut text = String::new();
        if !once {
            // Clear + home: a refreshing dashboard, not a scroll.
            text.push_str("\x1b[2J\x1b[H");
        }
        text.push_str(&render(&later, &earlier, &addr, frame, slowlog));
        // A closed stdout (`kvtop | head`) ends the dashboard
        // quietly instead of panicking mid-print.
        use std::io::Write as _;
        let out = std::io::stdout();
        if out.lock().write_all(text.as_bytes()).is_err() {
            break;
        }
        if frames > 0 && frame >= frames {
            break;
        }
        earlier = later;
    }
}
