//! `kvtop` — a refreshing terminal dashboard over the `METRICS` verb.
//!
//! Polls a running `kv_server` for its unified Prometheus-text-style
//! exposition and renders interval **rates** (ops/s, fsyncs/s,
//! batches/s — diffed between polls) next to the admission picture
//! (exclusive episodes per write, crew active/passive, hot-shard
//! write share) and interval latency quantiles (batch size, batch
//! drain, fsync — computed from histogram-bucket deltas). One row per
//! shard shows how evenly traffic spreads and which shards have gone
//! read-only.
//!
//! Flags (environment fallbacks in parentheses):
//!
//! * `--addr <host:port>` (`MALTHUS_KV_ADDR`) — server address,
//!   default `127.0.0.1:7878`.
//! * `--interval-ms <n>` (`MALTHUS_KVTOP_INTERVAL_MS`) — poll
//!   interval, default 1000.
//! * `--frames <n>` — stop after `n` frames (default 0 = run until
//!   the server goes away or ^C).
//! * `--once` — render exactly one frame (two polls one interval
//!   apart so rates are real) without clearing the screen; for
//!   scripts and CI smoke tests.

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use malthus_pool::kv::{KvClient, DEFAULT_ADDR};

/// One poll of the exposition: every series (name plus rendered label
/// block, exactly as exposed) mapped to its value.
struct Sample {
    at: Instant,
    series: BTreeMap<String, f64>,
}

impl Sample {
    /// Parses an exposition document: `# ...` comment lines skipped,
    /// every other line `name{labels} value` or `name value`.
    fn parse(doc: &str, at: Instant) -> Sample {
        let mut series = BTreeMap::new();
        for line in doc.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            // The value is the text after the last space; the series
            // key (name + label block) is everything before it. Label
            // values never contain raw spaces in this exposition
            // (shard indexes and lock names only).
            let Some(split) = line.rfind(' ') else {
                continue;
            };
            let (key, val) = line.split_at(split);
            let val = val.trim();
            let parsed = match val {
                "+Inf" => f64::INFINITY,
                "-Inf" => f64::NEG_INFINITY,
                v => match v.parse() {
                    Ok(f) => f,
                    Err(_) => continue,
                },
            };
            series.insert(key.trim_end().to_string(), parsed);
        }
        Sample { at, series }
    }

    fn get(&self, key: &str) -> f64 {
        self.series.get(key).copied().unwrap_or(0.0)
    }

    /// Cumulative histogram buckets of a label-free histogram:
    /// `(le, count)` pairs sorted by bound.
    fn buckets(&self, name: &str) -> Vec<(f64, f64)> {
        let prefix = format!("{name}_bucket{{le=\"");
        let mut out: Vec<(f64, f64)> = self
            .series
            .iter()
            .filter_map(|(k, &v)| {
                let le = k.strip_prefix(&prefix)?.strip_suffix("\"}")?;
                let le = match le {
                    "+Inf" => f64::INFINITY,
                    le => le.parse().ok()?,
                };
                Some((le, v))
            })
            .collect();
        out.sort_by(|a, b| a.0.total_cmp(&b.0));
        out
    }

    /// Shard indexes present in the exposition, from the per-shard
    /// read counter family.
    fn shards(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .series
            .keys()
            .filter_map(|k| {
                k.strip_prefix("kv_shard_reads_total{shard=\"")?
                    .strip_suffix("\"}")?
                    .parse()
                    .ok()
            })
            .collect();
        out.sort_unstable();
        out
    }
}

/// `(p50, p99)` over the **interval**: the earlier sample's
/// cumulative buckets are subtracted from the later's, so the
/// quantiles describe what happened between the two polls. Returns
/// `None` when the interval recorded nothing.
fn interval_quantiles(later: &Sample, earlier: &Sample, name: &str) -> Option<(f64, f64)> {
    let lb = later.buckets(name);
    let eb = earlier.buckets(name);
    if lb.is_empty() {
        return None;
    }
    let delta: Vec<(f64, f64)> = lb
        .iter()
        .map(|&(le, c)| {
            let prev = eb
                .iter()
                .find(|&&(ele, _)| ele == le)
                .map_or(0.0, |&(_, ec)| ec);
            (le, (c - prev).max(0.0))
        })
        .collect();
    // Cumulative counts: the total is the +Inf bucket (the last).
    let total = delta.last().map_or(0.0, |&(_, c)| c);
    if total <= 0.0 {
        return None;
    }
    let q = |q: f64| -> f64 {
        let rank = (total * q).ceil().max(1.0);
        for &(le, c) in &delta {
            if c >= rank {
                return le;
            }
        }
        f64::INFINITY
    };
    Some((q(0.50), q(0.99)))
}

/// Renders nanoseconds human-readably (the fsync/drain histograms) —
/// bucket bounds, so one significant step is plenty.
fn fmt_ns(ns: f64) -> String {
    if !ns.is_finite() {
        "inf".to_string()
    } else if ns >= 1e9 {
        format!("{:.1}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.1}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

fn fmt_quantiles_ns(q: Option<(f64, f64)>) -> String {
    match q {
        Some((p50, p99)) => format!("{}/{}", fmt_ns(p50), fmt_ns(p99)),
        None => "-/-".to_string(),
    }
}

/// Per-second rate of a cumulative counter over the poll interval.
fn rate(later: &Sample, earlier: &Sample, key: &str) -> f64 {
    let secs = later.at.duration_since(earlier.at).as_secs_f64();
    if secs <= 0.0 {
        return 0.0;
    }
    (later.get(key) - earlier.get(key)).max(0.0) / secs
}

/// One rendered frame. Built as a string so the caller can write it
/// in one syscall and shrug off a closed stdout (`kvtop | head`).
fn render(later: &Sample, earlier: &Sample, addr: &SocketAddr, frame: u64) -> String {
    use std::fmt::Write as _;
    let mut f = String::new();
    let reads_s: f64 = later
        .shards()
        .iter()
        .map(|i| {
            rate(
                later,
                earlier,
                &format!("kv_shard_reads_total{{shard=\"{i}\"}}"),
            )
        })
        .sum();
    let writes_s: f64 = later
        .shards()
        .iter()
        .map(|i| {
            rate(
                later,
                earlier,
                &format!("kv_shard_writes_total{{shard=\"{i}\"}}"),
            )
        })
        .sum();
    let fsyncs_s: f64 = later
        .shards()
        .iter()
        .map(|i| {
            rate(
                later,
                earlier,
                &format!("kv_shard_wal_syncs_total{{shard=\"{i}\"}}"),
            )
        })
        .sum();
    let wepis_s: f64 = later
        .shards()
        .iter()
        .map(|i| {
            rate(
                later,
                earlier,
                &format!("lock_write_episodes_total{{lock=\"db\",shard=\"{i}\"}}"),
            )
        })
        .sum();
    let excl_per_write = if writes_s > 0.0 {
        wepis_s / writes_s
    } else {
        0.0
    };
    let readonly: f64 = later
        .shards()
        .iter()
        .map(|i| later.get(&format!("kv_shard_readonly{{shard=\"{i}\"}}")))
        .sum();

    let _ = writeln!(
        f,
        "kvtop — {addr} — frame {frame} — interval {:.1}s",
        later.at.duration_since(earlier.at).as_secs_f64()
    );
    let _ = writeln!(
        f,
        "ops/s {:>10.0}   reads/s {:>10.0}   writes/s {:>9.0}   batches/s {:>8.0}",
        reads_s + writes_s,
        reads_s,
        writes_s,
        rate(later, earlier, "kv_pipeline_batches_total"),
    );
    let _ = writeln!(
        f,
        "excl episodes/write {:>6.3}   fsyncs/s {:>8.0}   fsync p50/p99 {}",
        excl_per_write,
        fsyncs_s,
        fmt_quantiles_ns(interval_quantiles(later, earlier, "kv_wal_fsync_ns")),
    );
    let batch_q = interval_quantiles(later, earlier, "kv_pipeline_batch_size")
        .map_or("-/-".to_string(), |(p50, p99)| format!("{p50:.0}/{p99:.0}"));
    let _ = writeln!(
        f,
        "batch size p50/p99 {batch_q}   max batch {:.0}   drain p50/p99 {}",
        later.get("kv_pipeline_max_batch"),
        fmt_quantiles_ns(interval_quantiles(later, earlier, "kv_batch_drain_ns")),
    );
    let _ = writeln!(
        f,
        "crew active {:.0}  passive {:.0}  backlog {:.0}   hot-shard write share {:.2}   \
         readonly shards {readonly:.0}   idle disconnects {:.0}",
        later.get("crew_active_workers"),
        later.get("crew_passive_workers"),
        later.get("crew_backlog"),
        later.get("kv_hottest_shard_write_share"),
        later.get("kv_idle_disconnects_total"),
    );
    let _ = writeln!(
        f,
        "{:>5} {:>10} {:>10} {:>9} {:>9} {:>10}",
        "shard", "reads/s", "writes/s", "wepis/s", "fsyncs/s", "keys"
    );
    for i in later.shards() {
        let ro = later.get(&format!("kv_shard_readonly{{shard=\"{i}\"}}")) > 0.0;
        let _ = writeln!(
            f,
            "{i:>5} {:>10.0} {:>10.0} {:>9.0} {:>9.0} {:>10.0}{}",
            rate(
                later,
                earlier,
                &format!("kv_shard_reads_total{{shard=\"{i}\"}}")
            ),
            rate(
                later,
                earlier,
                &format!("kv_shard_writes_total{{shard=\"{i}\"}}")
            ),
            rate(
                later,
                earlier,
                &format!("lock_write_episodes_total{{lock=\"db\",shard=\"{i}\"}}")
            ),
            rate(
                later,
                earlier,
                &format!("kv_shard_wal_syncs_total{{shard=\"{i}\"}}")
            ),
            later.get(&format!("kv_shard_keys{{shard=\"{i}\"}}")),
            if ro { "  READONLY" } else { "" },
        );
    }
    f
}

fn usage() -> ! {
    eprintln!("usage: kvtop [--addr <host:port>] [--interval-ms <n>] [--frames <n>] [--once]");
    std::process::exit(2);
}

fn main() {
    let mut addr = std::env::var("MALTHUS_KV_ADDR").unwrap_or_else(|_| DEFAULT_ADDR.to_string());
    let mut interval_ms: u64 = std::env::var("MALTHUS_KVTOP_INTERVAL_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000);
    let mut frames: u64 = 0;
    let mut once = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(a) => addr = a,
                None => usage(),
            },
            "--interval-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => interval_ms = n,
                _ => usage(),
            },
            "--frames" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => frames = n,
                None => usage(),
            },
            "--once" => once = true,
            _ => usage(),
        }
    }
    if once {
        frames = 1;
        // One real frame needs two polls; a short gap keeps `--once`
        // script-friendly while still measuring actual rates.
        interval_ms = interval_ms.min(250);
    }
    let addr: SocketAddr = addr.parse().expect("--addr must be host:port");
    let mut client = KvClient::connect_with_backoff(addr, 10)
        .unwrap_or_else(|e| panic!("could not connect to {addr}: {e}"));

    let poll = |client: &mut KvClient| -> Sample {
        let doc = client
            .fetch_document("METRICS")
            .unwrap_or_else(|e| panic!("METRICS poll failed: {e}"));
        Sample::parse(&doc, Instant::now())
    };

    let mut earlier = poll(&mut client);
    let mut frame = 0u64;
    loop {
        std::thread::sleep(Duration::from_millis(interval_ms));
        let later = poll(&mut client);
        frame += 1;
        let mut text = String::new();
        if !once {
            // Clear + home: a refreshing dashboard, not a scroll.
            text.push_str("\x1b[2J\x1b[H");
        }
        text.push_str(&render(&later, &earlier, &addr, frame));
        // A closed stdout (`kvtop | head`) ends the dashboard
        // quietly instead of panicking mid-print.
        use std::io::Write as _;
        let out = std::io::stdout();
        if out.lock().write_all(text.as_bytes()).is_err() {
            break;
        }
        if frames > 0 && frame >= frames {
            break;
        }
        earlier = later;
    }
}
