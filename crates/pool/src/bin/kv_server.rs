//! `kv_server` — the Malthusian KV service over TCP.
//!
//! Serves the line protocol of [`malthus_pool::kv`] with request
//! execution dispatched onto a concurrency-restricting [`WorkCrew`]
//! over a sharded store: `--shards N` gives each of N shards its own
//! Malthusian RW-CR DB lock and block-cache lock, so admission is
//! per shard. Runs until a client sends `SHUTDOWN` or the process
//! receives `SIGTERM`; either way the server stops accepting, drains
//! in-flight batches, final-fsyncs every healthy shard and stamps a
//! clean-shutdown marker in the data dir's `MANIFEST` (reported by
//! the recovery banner on the next boot). On a durable store a
//! background healer probes read-only (poisoned) shards with capped
//! jittered exponential backoff and flips them writable when their
//! WAL answers an fsync again.
//!
//! Flags (each falls back to the matching environment knob):
//!
//! * `--addr <host:port>` / `MALTHUS_KV_ADDR` — listen address
//!   (default `127.0.0.1:7878`).
//! * `--shards <n>` / `MALTHUS_KV_SHARDS` — shard count (default 1,
//!   the paper-faithful single hot lock pair).
//! * `--workers <n>` / `MALTHUS_KV_WORKERS` — crew size (default
//!   `4 × host CPUs`).
//! * `--queue <n>` / `MALTHUS_KV_QUEUE` — task-queue bound (default
//!   256).
//! * `--unrestricted` / `MALTHUS_KV_UNRESTRICTED=1` — disable
//!   concurrency restriction (for A/B runs).
//! * `--data-dir <path>` / `MALTHUS_KV_DATA_DIR` — durability root:
//!   per-shard group-committed WALs, replayed (and reported) at boot.
//!   Without it the store is memory-only.
//! * `--no-wal` / `MALTHUS_KV_NO_WAL=1` — ignore any data-dir
//!   setting and run memory-only (overrides `--data-dir` and
//!   `MALTHUS_KV_DATA_DIR`).
//! * `--read-timeout-secs <n>` / `MALTHUS_KV_READ_TIMEOUT_SECS` —
//!   per-connection idle read timeout (default off); timed-out
//!   connections are dropped and counted in `STATS
//!   idle_disconnects=`.
//! * `--trace-buf <n>` / `MALTHUS_KV_TRACE_BUF` — enable the flight
//!   recorder with an `n`-event ring per thread (default off: the
//!   disabled record path is one relaxed load). While enabled,
//!   `TRACE DUMP` returns the merged event stream, and the server
//!   prints it to stderr on clean shutdown.
//! * `--trace-sample <n>` / `MALTHUS_KV_TRACE_SAMPLE` — record one
//!   event in `n` (default 1 = every event); only meaningful with
//!   `--trace-buf`.
//! * `--slowlog-threshold-us <n>` /
//!   `MALTHUS_KV_SLOWLOG_THRESHOLD_US` — batches whose end-to-end
//!   latency meets the threshold land in the `SLOWLOG` ring with a
//!   per-stage breakdown (default 10000 µs; 0 disables capture).
//! * `--no-spans` / `MALTHUS_KV_NO_SPANS=1` — turn the per-batch
//!   stage clocks off (`kv_stage_ns` and `SLOWLOG` stop collecting;
//!   the remaining cost is one relaxed load per instrumentation
//!   point).
//! * `--fault-plan <spec>` / `MALTHUS_FAULT_PLAN` — arm the
//!   deterministic fault-injection layer (`malthus-fault`) for this
//!   process: e.g. `seed=7,storage.fsync=0.01x3,net.reset=0.001`.
//!   The effective seed is printed (`fault plan armed: seed=…`) so
//!   any run can be replayed exactly; injection counters are exposed
//!   as `kv_faults_injected_total{site=…}` via `METRICS`.
//! * `--async` / `MALTHUS_KV_ASYNC=1` — serve through the
//!   readiness-driven reactor front-end (`malthus-net`) instead of a
//!   thread per connection: `--workers` reactor threads share one
//!   epoll instance with `epoll_wait` admission Malthusian-restricted
//!   to the same ACS target, and ready batches execute in place on
//!   the polling worker. Byte-identical protocol; idle connections
//!   cost a buffer pair instead of a thread, and `--read-timeout-secs`
//!   reaps them via the reactor's timer wheel.
//!
//! With restriction on, the crew's ACS target is
//! `min(workers, cpus, shards)`: one hot lock pair deserves one
//! circulating thread (more would just queue at the lock — the §6.5
//! situation), and each extra shard adds an independent admission
//! point that can keep one more thread usefully busy, up to the core
//! count. This sizing is writer-centric: readers *share* each shard's
//! RW-CR lock, so on a multi-core host a read-heavy single-shard
//! workload would profit from an ACS above the shard count — size
//! `--shards` toward the core count there, or pass `--unrestricted`;
//! the measure-and-adapt ACS the ROADMAP plans is the real fix.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use malthus_pool::kv::{self, KvService, ServeOptions, DEFAULT_ADDR, DEFAULT_SHARDS};
use malthus_pool::kv::{DEFAULT_CACHE_BLOCKS, DEFAULT_MEMTABLE_LIMIT};
use malthus_pool::{serve_async, AsyncServeOptions, PoolConfig, WorkCrew};
use malthus_storage::{spawn_healer, HealerConfig};

/// Set (only) by the `SIGTERM` handler; a watcher thread turns it
/// into a normal [`ServerControl::stop`].
///
/// [`ServerControl::stop`]: malthus_pool::kv::ServerControl::stop
static TERM_REQUESTED: AtomicBool = AtomicBool::new(false);

const SIGTERM: i32 = 15;

extern "C" {
    /// libc `signal(2)` — the one-liner FFI that keeps this std-only.
    fn signal(signum: i32, handler: usize) -> usize;
}

/// Async-signal-safe by construction: a single atomic store.
extern "C" fn on_sigterm(_signum: i32) {
    TERM_REQUESTED.store(true, Ordering::SeqCst);
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

struct Options {
    addr: String,
    shards: usize,
    workers: usize,
    queue: usize,
    unrestricted: bool,
    data_dir: Option<String>,
    no_wal: bool,
    read_timeout_secs: usize,
    trace_buf: usize,
    trace_sample: usize,
    slowlog_threshold_us: u64,
    no_spans: bool,
    r#async: bool,
    fault_plan: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: kv_server [--addr <host:port>] [--shards <n>] [--workers <n>] \
         [--queue <n>] [--unrestricted] [--data-dir <path>] [--no-wal] \
         [--read-timeout-secs <n>] [--trace-buf <n>] [--trace-sample <n>] \
         [--slowlog-threshold-us <n>] [--no-spans] [--async] \
         [--fault-plan <spec>]"
    );
    std::process::exit(2);
}

fn parse_args(cpus: usize) -> Options {
    let mut opts = Options {
        addr: std::env::var("MALTHUS_KV_ADDR").unwrap_or_else(|_| DEFAULT_ADDR.to_string()),
        shards: env_usize("MALTHUS_KV_SHARDS", DEFAULT_SHARDS),
        workers: env_usize("MALTHUS_KV_WORKERS", 4 * cpus),
        queue: env_usize("MALTHUS_KV_QUEUE", 256),
        unrestricted: std::env::var("MALTHUS_KV_UNRESTRICTED").is_ok_and(|v| v == "1"),
        data_dir: std::env::var("MALTHUS_KV_DATA_DIR")
            .ok()
            .filter(|d| !d.is_empty()),
        no_wal: std::env::var("MALTHUS_KV_NO_WAL").is_ok_and(|v| v == "1"),
        // 0 (or absent) means "no idle timeout".
        read_timeout_secs: std::env::var("MALTHUS_KV_READ_TIMEOUT_SECS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0),
        // 0 (or absent) means "flight recorder off".
        trace_buf: std::env::var("MALTHUS_KV_TRACE_BUF")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0),
        trace_sample: env_usize("MALTHUS_KV_TRACE_SAMPLE", 1),
        // 0 means "slowlog capture off"; the default catches batches
        // at or above 10 ms end to end.
        slowlog_threshold_us: std::env::var("MALTHUS_KV_SLOWLOG_THRESHOLD_US")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(kv::DEFAULT_SLOWLOG_THRESHOLD_US),
        no_spans: std::env::var("MALTHUS_KV_NO_SPANS").is_ok_and(|v| v == "1"),
        r#async: std::env::var("MALTHUS_KV_ASYNC").is_ok_and(|v| v == "1"),
        fault_plan: std::env::var("MALTHUS_FAULT_PLAN")
            .ok()
            .filter(|p| !p.is_empty()),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut positive = |name: &str| -> usize {
            let Some(v) = args.next().and_then(|v| v.parse().ok()).filter(|&v| v > 0) else {
                eprintln!("kv_server: {name} needs a positive integer");
                usage();
            };
            v
        };
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(a) => opts.addr = a,
                None => usage(),
            },
            "--shards" => opts.shards = positive("--shards"),
            "--workers" => opts.workers = positive("--workers"),
            "--queue" => opts.queue = positive("--queue"),
            "--unrestricted" => opts.unrestricted = true,
            "--data-dir" => match args.next() {
                Some(d) => opts.data_dir = Some(d),
                None => usage(),
            },
            "--no-wal" => opts.no_wal = true,
            "--read-timeout-secs" => opts.read_timeout_secs = positive("--read-timeout-secs"),
            "--trace-buf" => opts.trace_buf = positive("--trace-buf"),
            "--trace-sample" => opts.trace_sample = positive("--trace-sample"),
            // 0 is meaningful here (capture off), so this one does
            // not use the positive-integer helper.
            "--slowlog-threshold-us" => match args.next().and_then(|v| v.parse().ok()) {
                Some(us) => opts.slowlog_threshold_us = us,
                None => {
                    eprintln!("kv_server: --slowlog-threshold-us needs an integer (0 disables)");
                    usage();
                }
            },
            "--no-spans" => opts.no_spans = true,
            "--async" => opts.r#async = true,
            "--fault-plan" => match args.next() {
                Some(p) => opts.fault_plan = Some(p),
                None => usage(),
            },
            _ => usage(),
        }
    }
    if opts.no_wal {
        opts.data_dir = None;
    }
    opts
}

fn main() {
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let opts = parse_args(cpus);

    // Arm fault injection before the store opens: the WAL layer
    // checks `storage_armed()` at open to decide whether to wrap its
    // file I/O in `ChaosWalIo`.
    if let Some(spec) = &opts.fault_plan {
        let plan = match malthus_fault::FaultPlan::parse(spec) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("kv_server: bad --fault-plan: {e}");
                usage();
            }
        };
        let seed = malthus_fault::install(&plan);
        // The replay line: paste this exact spec back into
        // `--fault-plan` to reproduce the schedule.
        eprintln!("# kv_server: fault plan armed: {}", plan.render(seed));
    }

    // One circulating thread per independent admission point (shard),
    // bounded by cores and worker count — the same sizing whether the
    // admitted resource is the crew's task queue or the reactor's
    // `epoll_wait`.
    let acs = if opts.unrestricted {
        opts.workers
    } else {
        opts.workers.min(cpus).min(opts.shards).max(1)
    };
    let cfg = if opts.unrestricted {
        PoolConfig::unrestricted(opts.workers, opts.queue)
    } else {
        PoolConfig::malthusian(opts.workers, opts.queue).with_acs_target(acs)
    };
    eprintln!(
        "# kv_server: {} front-end, {} shards, {} workers (ACS target {acs}), \
         queue bound {}, {cpus} host CPUs",
        if opts.r#async { "reactor" } else { "threaded" },
        opts.shards,
        opts.workers,
        opts.queue
    );

    if opts.trace_buf > 0 {
        malthus_obs::recorder::enable(opts.trace_buf, opts.trace_sample as u32);
        eprintln!(
            "# kv_server: flight recorder on: {} events/thread, 1-in-{} sampling",
            opts.trace_buf, opts.trace_sample
        );
    }

    if opts.no_spans {
        malthus_obs::span::set_enabled(false);
        eprintln!("# kv_server: span tracing off (--no-spans)");
    } else {
        eprintln!(
            "# kv_server: span tracing on, slowlog threshold {} µs{}",
            opts.slowlog_threshold_us,
            if opts.slowlog_threshold_us == 0 {
                " (capture off)"
            } else {
                ""
            }
        );
    }

    let service = match &opts.data_dir {
        Some(dir) => {
            let dir = std::path::Path::new(dir);
            let (service, report) = KvService::open(
                dir,
                opts.shards,
                DEFAULT_MEMTABLE_LIMIT,
                DEFAULT_CACHE_BLOCKS,
            )
            .expect("open data dir");
            // The recovery banner: what the WALs gave back, and
            // whether the previous incarnation got to say goodbye
            // (the marker is consumed by the open, so a crash before
            // the next stamp reports unclean).
            eprintln!(
                "# kv_server: recovered {} pairs in {} records from {} \
                 (torn_tails={} bad_records={} checkpointed={}), \
                 previous shutdown: {}",
                report.pairs(),
                report.records(),
                dir.display(),
                report.torn_tails(),
                report.bad_records(),
                report.checkpointed(),
                if report.clean_marker {
                    "clean"
                } else {
                    "unclean (crash, kill, or first boot)"
                },
            );
            if report.bad_records() > 0 {
                eprintln!(
                    "# kv_server: WARNING: {} corrupt WAL record(s) — data \
                     past the first bad record was discarded",
                    report.bad_records()
                );
            }
            Arc::new(service)
        }
        None => {
            eprintln!("# kv_server: memory-only (no --data-dir): writes do not survive restart");
            Arc::new(KvService::with_shards(
                opts.shards,
                DEFAULT_MEMTABLE_LIMIT,
                DEFAULT_CACHE_BLOCKS,
            ))
        }
    };

    service.set_slowlog_threshold_us(opts.slowlog_threshold_us);

    // With faults armed, every site's injection counter joins the
    // unified registry so `METRICS` (and kvtop) can watch the chaos.
    if let Some(state) = malthus_fault::armed() {
        for site in malthus_fault::SITES {
            service.registry().counter(
                "kv_faults_injected_total",
                "Faults injected at this site by the armed fault plan",
                &[("site", site.name())],
                move || state.injected(site),
            );
        }
    }

    let (listener, control) = kv::bind(&opts.addr).expect("bind listen address");
    println!("listening on {}", control.addr());

    // SIGTERM → the same graceful path as the SHUTDOWN verb. The
    // handler only flips an atomic; this watcher does the real work
    // (ServerControl::stop self-connects, which a signal handler must
    // not), so kill(1), systemd and the chaos harness all get a drain
    // + final-fsync + clean-marker exit, not an abort.
    // SAFETY: `on_sigterm` is async-signal-safe (one atomic store)
    // and has the exact `extern "C" fn(i32)` shape signal(2) expects.
    unsafe {
        signal(SIGTERM, on_sigterm as *const () as usize);
    }
    {
        let control = control.clone();
        std::thread::Builder::new()
            .name("kv-sigterm".into())
            .spawn(move || loop {
                if TERM_REQUESTED.load(Ordering::SeqCst) {
                    eprintln!("# kv_server: SIGTERM: draining connections and shutting down");
                    control.stop();
                    break;
                }
                std::thread::sleep(Duration::from_millis(25));
            })
            .expect("spawn kv-sigterm watcher");
    }

    // The healer only matters when a WAL can poison a shard; a
    // memory-only store never goes read-only.
    let healer_stop = Arc::new(AtomicBool::new(false));
    let healer = opts.data_dir.is_some().then(|| {
        spawn_healer(
            service.store_arc(),
            Arc::clone(&healer_stop),
            HealerConfig::default(),
        )
    });

    let read_timeout =
        (opts.read_timeout_secs > 0).then(|| Duration::from_secs(opts.read_timeout_secs as u64));
    if opts.r#async {
        let async_opts = AsyncServeOptions {
            workers: opts.workers,
            acs_target: acs,
            read_timeout,
        };
        serve_async(listener, &control, Arc::clone(&service), async_opts).expect("reactor failed");
    } else {
        let serve_opts = ServeOptions { read_timeout };
        let crew = Arc::new(WorkCrew::new(cfg));
        kv::serve_with(
            listener,
            &control,
            Arc::clone(&crew),
            Arc::clone(&service),
            serve_opts,
        )
        .expect("accept loop failed");

        let stats = crew.shutdown();
        eprintln!(
            "# kv_server: completed={} culls={} reprovisions={} promotions={}",
            stats.completed, stats.culls, stats.reprovisions, stats.fairness_promotions
        );
    }
    // Shutdown epilogue, in order: stop probing (the healer must not
    // race the final fsync), then final-fsync every healthy shard and
    // stamp the clean marker. Only after the stamp is the exit clean.
    if let Some(h) = healer {
        healer_stop.store(true, Ordering::SeqCst);
        let _ = h.join();
    }
    if opts.data_dir.is_some() {
        match service.shutdown_clean() {
            Ok(()) => eprintln!("# kv_server: clean shutdown: WALs synced, marker stamped"),
            Err(e) => eprintln!("# kv_server: clean-shutdown stamp failed: {e}"),
        }
    }
    // How much per-wakeup batching the pipelined connections achieved
    // (batch = the lock-admission, fsync and write-flush unit).
    let p = service.pipeline_stats();
    let (bp50, bp99) = p.batch_quantiles();
    eprintln!(
        "# kv_server: pipeline batches={} max_batch={} batch_p50={bp50} batch_p99={bp99} \
         idle_disconnects={}",
        p.batches(),
        p.max_batch(),
        service.idle_disconnects(),
    );
    // Per-shard exit report: how evenly the traffic spread and what
    // each shard's admission (and durability) machinery did.
    for (i, s) in service.store().stats().per_shard.iter().enumerate() {
        eprintln!(
            "# kv_server: shard {i}: reads={} writes={} keys={} runs={} \
             rculls={} wepisodes={} wal_syncs={} wal_errors={}{}",
            s.reads,
            s.writes,
            s.keys,
            s.runs,
            s.db_lock.reader_culls,
            s.db_lock.write_episodes,
            s.wal_syncs,
            s.wal_errors,
            if s.readonly { " READONLY" } else { "" },
        );
    }
    // With the flight recorder on, the final trace goes to stderr —
    // the post-mortem a crashed-and-restarted run can't give you.
    if opts.trace_buf > 0 {
        let trace = malthus_obs::recorder::dump();
        eprintln!("# kv_server: flight recorder dump ({} bytes):", trace.len());
        eprint!("{trace}");
    }
}
