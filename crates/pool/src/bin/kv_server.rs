//! `kv_server` — the Malthusian KV service over TCP.
//!
//! Serves the line protocol of [`malthus_pool::kv`] with request
//! execution dispatched onto a concurrency-restricting [`WorkCrew`].
//! Runs until a client sends `SHUTDOWN`.
//!
//! Environment knobs:
//!
//! * `MALTHUS_KV_ADDR` — listen address (default `127.0.0.1:7878`).
//! * `MALTHUS_KV_WORKERS` — crew size (default `4 × host CPUs`).
//! * `MALTHUS_KV_QUEUE` — task-queue bound (default 256).
//! * `MALTHUS_KV_UNRESTRICTED` — set to `1` to disable concurrency
//!   restriction (for A/B runs against the Malthusian default).

use std::sync::Arc;

use malthus_pool::kv::{self, KvService, DEFAULT_ADDR};
use malthus_pool::{PoolConfig, WorkCrew};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

fn main() {
    let addr = std::env::var("MALTHUS_KV_ADDR").unwrap_or_else(|_| DEFAULT_ADDR.to_string());
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers = env_usize("MALTHUS_KV_WORKERS", 4 * cpus);
    let queue = env_usize("MALTHUS_KV_QUEUE", 256);
    let unrestricted = std::env::var("MALTHUS_KV_UNRESTRICTED").is_ok_and(|v| v == "1");

    let cfg = if unrestricted {
        PoolConfig::unrestricted(workers, queue)
    } else {
        PoolConfig::malthusian(workers, queue)
    };
    eprintln!(
        "# kv_server: {workers} workers (ACS target {}), queue bound {queue}, {cpus} host CPUs",
        cfg.acs_target
    );

    let (listener, control) = kv::bind(&addr).expect("bind listen address");
    println!("listening on {}", control.addr());

    let crew = Arc::new(WorkCrew::new(cfg));
    let service = Arc::new(KvService::default());
    kv::serve(listener, &control, Arc::clone(&crew), service).expect("accept loop failed");

    let stats = crew.shutdown();
    eprintln!(
        "# kv_server: completed={} culls={} reprovisions={} promotions={}",
        stats.completed, stats.culls, stats.reprovisions, stats.fairness_promotions
    );
}
