//! `kv_load` — closed-loop load generator for `kv_server`.
//!
//! Opens `MALTHUS_KV_CONNS` connections, each running a closed loop
//! of mixed `GET`/`PUT` (and optionally `MGET`) requests over a
//! xorshift key stream for `MALTHUS_KV_SECONDS`, then reports
//! aggregate throughput plus **per-op-type** counts and p50/p99
//! latencies from separate
//! [`LatencyHistogram`](malthus_metrics::LatencyHistogram)s, merged
//! (via `LatencyHistogram::merge`) into the service-wide `all` line —
//! so both the per-path admission costs (GETs ride the RW-CR read
//! side; PUTs pay writer admission; MGETs batch per shard) and the
//! overall picture are visible end to end.
//!
//! Flags:
//!
//! * `--pipeline-depth <n>` — outstanding requests per connection.
//!   `1` (the default) is the classic untagged closed loop,
//!   byte-identical to the pre-pipelining protocol. Depths above 1
//!   run a **tagged window**: each connection keeps up to `n`
//!   `#<tag>`-prefixed requests in flight, matches every response's
//!   echoed tag against the oldest outstanding one (the server
//!   answers in request order), and refills the window as responses
//!   drain. Reported latency is request-send to response-receive, so
//!   at depth > 1 it includes time queued in the window — deeper
//!   pipelines trade per-request latency for throughput, which is
//!   exactly the trade worth measuring.
//! * `--conns <n>` — **total** connections to hold open. Without it,
//!   every connection drives load (the classic closed-loop shape).
//!   With it, only the `--active` subset runs the request loop; the
//!   rest connect and then sit idle for the whole interval — the
//!   many-mostly-idle-connections population the reactor front-end
//!   exists for. Every idle connection is round-tripped (`PING`)
//!   after the measurement to prove the server kept it alive, and
//!   the summary reports `open`/`active`.
//! * `--active <n>` — size of the driving subset under `--conns`
//!   (default `MALTHUS_KV_CONNS`, i.e. 4; clamped to `--conns`).
//! * `--fail-on-err` — exit nonzero if *any* request drew an `ERR`
//!   response or an I/O error. The summary still prints first, so CI
//!   smokes get both the numbers and a hard verdict.
//!
//! Environment knobs:
//!
//! * `MALTHUS_KV_ADDR` — server address (default `127.0.0.1:7878`).
//! * `MALTHUS_KV_CONNECT_TRIES` — connect attempts with capped
//!   exponential backoff between them (default 3; 10 ms doubling to
//!   a 40 ms cap), so the generator can be started alongside the
//!   server in scripts.
//! * `MALTHUS_KV_CONNS` — concurrent connections (default 4).
//! * `MALTHUS_KV_SECONDS` — measurement interval (default 2).
//! * `MALTHUS_KV_KEYS` — key-space size (default 10000).
//! * `MALTHUS_KV_PUT_PCT` — percentage of PUTs (default 20).
//! * `MALTHUS_KV_MGET_PCT` — percentage of MGETs (default 0); each
//!   MGET batches [`MGET_BATCH`] keys, exercising the cross-shard
//!   batched read path.
//! * `MALTHUS_KV_SHUTDOWN` — set to `1` to send `SHUTDOWN` when done.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use malthus_metrics::LatencyHistogram;
use malthus_park::XorShift64;
use malthus_pool::kv::DEFAULT_ADDR;
use malthus_pool::KvClient;

/// Keys per MGET request when `MALTHUS_KV_MGET_PCT` > 0.
const MGET_BATCH: usize = 8;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Upper bound on `--pipeline-depth`: far deeper than batching can
/// pay off, shallow enough that a typo'd depth cannot OOM the window
/// bookkeeping.
const MAX_PIPELINE_DEPTH: u64 = 1_024;

/// Parsed command-line flags: window depth plus the connection
/// population shape.
struct LoadArgs {
    depth: u64,
    /// Total connections to hold open (`--conns`); `None` keeps the
    /// classic all-active shape sized by `MALTHUS_KV_CONNS`.
    conns: Option<u64>,
    /// Driving subset under `--conns` (`--active`).
    active: Option<u64>,
    /// Exit nonzero when any request errored (`--fail-on-err`).
    fail_on_err: bool,
}

/// Parses the flags. Depth 1 is the classic untagged closed loop;
/// deeper runs the tagged window.
fn parse_load_args() -> LoadArgs {
    let mut parsed = LoadArgs {
        depth: env_u64("MALTHUS_KV_PIPELINE_DEPTH", 1),
        conns: None,
        active: None,
        fail_on_err: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> u64 {
            args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("kv_load: {name} needs an integer");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--pipeline-depth" => parsed.depth = value("--pipeline-depth"),
            "--conns" => parsed.conns = Some(value("--conns")),
            "--active" => parsed.active = Some(value("--active")),
            "--fail-on-err" => parsed.fail_on_err = true,
            other => {
                eprintln!("kv_load: unknown argument {other}");
                eprintln!(
                    "usage: kv_load [--pipeline-depth <n>] [--conns <n>] [--active <n>] \
                     [--fail-on-err]"
                );
                std::process::exit(2);
            }
        }
    }
    if parsed.depth == 0 || parsed.depth > MAX_PIPELINE_DEPTH {
        eprintln!(
            "kv_load: --pipeline-depth must be in 1..={MAX_PIPELINE_DEPTH}, got {}",
            parsed.depth
        );
        std::process::exit(2);
    }
    if parsed.conns == Some(0) {
        eprintln!("kv_load: --conns must be positive");
        std::process::exit(2);
    }
    parsed
}

/// Connects with capped exponential backoff
/// ([`KvClient::connect_with_backoff`]): `MALTHUS_KV_CONNECT_TRIES`
/// attempts (default 3, 10 ms doubling to a 40 ms cap between them),
/// so the generator can be started alongside the server in scripts —
/// CI sets the knob high to ride out slow server boots.
fn connect_with_retry(addr: SocketAddr) -> KvClient {
    let tries = env_u64("MALTHUS_KV_CONNECT_TRIES", 3) as u32;
    KvClient::connect_with_backoff(addr, tries)
        .unwrap_or_else(|e| panic!("could not connect to {addr} after {tries} tries: {e}"))
}

/// One op type's histogram + its label, so reporting stays uniform as
/// the mix grows.
struct OpTrack {
    label: &'static str,
    hist: Arc<LatencyHistogram>,
}

fn main() {
    let load_args = parse_load_args();
    let depth = load_args.depth as usize;
    let addr: SocketAddr = std::env::var("MALTHUS_KV_ADDR")
        .unwrap_or_else(|_| DEFAULT_ADDR.to_string())
        .parse()
        .expect("MALTHUS_KV_ADDR must be host:port");
    // The connection population: without --conns every connection is
    // active (the classic shape). With it, `open` total connections
    // are held, only `active` of them drive requests, and the
    // `open - active` remainder sit idle — the population a
    // readiness-driven server should carry for the cost of buffers.
    let active_default = env_u64("MALTHUS_KV_CONNS", 4) as usize;
    let (open, conns) = match load_args.conns {
        Some(total) => {
            let total = total as usize;
            let active = load_args.active.map_or(active_default, |a| a as usize);
            (total, active.min(total).max(1))
        }
        None => (active_default, active_default),
    };
    let idle_count = open - conns;
    let seconds = env_u64("MALTHUS_KV_SECONDS", 2);
    let keys = env_u64("MALTHUS_KV_KEYS", 10_000).max(1);
    let put_pct = env_u64("MALTHUS_KV_PUT_PCT", 20).min(100);
    let mget_pct = env_u64("MALTHUS_KV_MGET_PCT", 0).min(100 - put_pct);
    let send_shutdown = std::env::var("MALTHUS_KV_SHUTDOWN").is_ok_and(|v| v == "1");

    eprintln!(
        "# kv_load: {open} connections ({conns} active, {idle_count} idle) x {seconds} s \
         against {addr} (pipeline depth {depth}, {put_pct}% PUT, {mget_pct}% MGET)"
    );
    // The idle population connects first (no threads: the sockets
    // just sit in this Vec) so the active loop's traffic arrives at a
    // server already carrying the full connection count.
    let mut idle_pool: Vec<KvClient> = (0..idle_count).map(|_| connect_with_retry(addr)).collect();
    // Separate per-op-type histograms: the DB locks are Malthusian
    // RW locks, so each path has a different admission cost and
    // lumping them together would hide the read-side win. They merge
    // into the service-wide "all" line at report time.
    let get_hist = Arc::new(LatencyHistogram::new());
    let put_hist = Arc::new(LatencyHistogram::new());
    let mget_hist = Arc::new(LatencyHistogram::new());
    let stop = Arc::new(AtomicBool::new(false));
    let errors = Arc::new(AtomicU64::new(0));

    let started = Instant::now();
    let workers: Vec<_> = (0..conns)
        .map(|c| {
            let get_hist = Arc::clone(&get_hist);
            let put_hist = Arc::clone(&put_hist);
            let mget_hist = Arc::clone(&mget_hist);
            let stop = Arc::clone(&stop);
            let errors = Arc::clone(&errors);
            std::thread::spawn(move || {
                let mut client = connect_with_retry(addr);
                let rng = XorShift64::new(0xC0FFEE ^ (c as u64 + 1));
                let mut ops = 0u64;
                let mut req = String::new();
                // Histograms by op kind; `build` writes the next
                // request into the reused buffer (no per-op String
                // allocation in the hot loop) and returns its kind.
                let hists = [&get_hist, &put_hist, &mget_hist];
                let build = |req: &mut String| -> usize {
                    let key = rng.next_below(keys);
                    let dice = rng.next_below(100);
                    req.clear();
                    if dice < put_pct {
                        let _ = write!(req, "PUT {key} {}", key.wrapping_mul(31));
                        1
                    } else if dice < put_pct + mget_pct {
                        req.push_str("MGET");
                        for _ in 0..MGET_BATCH {
                            let _ = write!(req, " {}", rng.next_below(keys));
                        }
                        2
                    } else {
                        let _ = write!(req, "GET {key}");
                        0
                    }
                };
                if depth == 1 {
                    // The classic untagged closed loop — byte-identical
                    // to the pre-pipelining wire traffic.
                    while !stop.load(Ordering::Relaxed) {
                        let kind = build(&mut req);
                        let t0 = Instant::now();
                        match client.roundtrip(&req) {
                            Ok(resp) if resp.starts_with("ERR") => {
                                // Failed requests must not pollute the
                                // throughput/latency figures.
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                            Ok(_) => {
                                hists[kind].record(t0.elapsed());
                                ops += 1;
                            }
                            Err(_) => {
                                errors.fetch_add(1, Ordering::Relaxed);
                                return ops;
                            }
                        }
                    }
                    return ops;
                }
                // Tagged window: keep up to `depth` requests in
                // flight; the server answers in request order, so the
                // next response must echo the oldest outstanding tag.
                let mut outstanding: VecDeque<(u64, usize, Instant)> =
                    VecDeque::with_capacity(depth);
                let mut seq = 0u64;
                'window: while !stop.load(Ordering::Relaxed) {
                    while outstanding.len() < depth {
                        let kind = build(&mut req);
                        if client.send_tagged(seq, &req).is_err() {
                            errors.fetch_add(1, Ordering::Relaxed);
                            break 'window;
                        }
                        outstanding.push_back((seq, kind, Instant::now()));
                        seq += 1;
                    }
                    let (exp, kind, t0) = outstanding.pop_front().expect("window was just filled");
                    match client.recv_tagged() {
                        Ok((tag, resp)) => {
                            assert_eq!(tag, exp, "pipeline tag mismatch");
                            if resp.starts_with("ERR") {
                                errors.fetch_add(1, Ordering::Relaxed);
                            } else {
                                hists[kind].record(t0.elapsed());
                                ops += 1;
                            }
                        }
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                            return ops;
                        }
                    }
                }
                // Drain the window so every sent request is accounted.
                while let Some((exp, kind, t0)) = outstanding.pop_front() {
                    match client.recv_tagged() {
                        Ok((tag, resp)) => {
                            assert_eq!(tag, exp, "pipeline tag mismatch");
                            if resp.starts_with("ERR") {
                                errors.fetch_add(1, Ordering::Relaxed);
                            } else {
                                hists[kind].record(t0.elapsed());
                                ops += 1;
                            }
                        }
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                    }
                }
                ops
            })
        })
        .collect();

    std::thread::sleep(Duration::from_secs(seconds));
    stop.store(true, Ordering::Relaxed);
    let total: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
    let elapsed = started.elapsed().as_secs_f64();

    // Service-wide histogram = merge of the per-op-type ones.
    let all_hist = LatencyHistogram::new();
    let tracks = [
        OpTrack {
            label: "get",
            hist: Arc::clone(&get_hist),
        },
        OpTrack {
            label: "put",
            hist: Arc::clone(&put_hist),
        },
        OpTrack {
            label: "mget",
            hist: Arc::clone(&mget_hist),
        },
    ];
    for t in &tracks {
        all_hist.merge(&t.hist);
    }

    // The idle pool must have survived the whole interval: a server
    // that reaped or dropped them (without an idle timeout configured)
    // fails the run here.
    let mut idle_alive = 0usize;
    for c in idle_pool.iter_mut() {
        match c.roundtrip("PING") {
            Ok("PONG") => idle_alive += 1,
            Ok(other) => panic!("idle connection answered {other:?} to PING"),
            Err(e) => panic!("idle connection died during the run: {e}"),
        }
    }
    assert_eq!(idle_alive, idle_count, "idle connections lost");

    let us = |d: Duration| d.as_secs_f64() * 1e6;
    let mut line = format!(
        "open {open}  active {conns}  ops {total}  ops/s {:.0}",
        total as f64 / elapsed
    );
    for t in &tracks {
        let (p50, p99) = t.hist.p50_p99();
        line.push_str(&format!(
            "  {}s {}  {}_p50_us {:.1}  {}_p99_us {:.1}",
            t.label,
            t.hist.count(),
            t.label,
            us(p50),
            t.label,
            us(p99)
        ));
    }
    let (all_p50, all_p99) = all_hist.p50_p99();
    line.push_str(&format!(
        "  all_p50_us {:.1}  all_p99_us {:.1}  errors {}",
        us(all_p50),
        us(all_p99),
        errors.load(Ordering::Relaxed)
    ));
    println!("{line}");
    assert!(total > 0, "load generator completed no operations");
    assert_eq!(
        all_hist.count(),
        tracks.iter().map(|t| t.hist.count()).sum::<u64>(),
        "merged histogram must cover every recorded op"
    );

    if send_shutdown {
        let mut c = connect_with_retry(addr);
        let resp = c.roundtrip("SHUTDOWN").expect("SHUTDOWN round trip");
        eprintln!("# kv_load: shutdown -> {resp}");
    }

    let errored = errors.load(Ordering::Relaxed);
    if load_args.fail_on_err && errored > 0 {
        eprintln!("# kv_load: --fail-on-err: {errored} request(s) failed");
        std::process::exit(1);
    }
}
