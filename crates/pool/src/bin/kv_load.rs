//! `kv_load` — closed-loop load generator for `kv_server`.
//!
//! Opens `MALTHUS_KV_CONNS` connections, each running a closed loop
//! of mixed `GET`/`PUT` requests over a xorshift key stream for
//! `MALTHUS_KV_SECONDS`, then reports aggregate throughput and
//! p50/p99 request latency from **separate**
//! [`LatencyHistogram`](malthus_metrics::LatencyHistogram)s for `GET`
//! and `PUT`, so the shared-read DB lock's effect on the read path is
//! visible end to end (GETs ride the RW-CR read side; PUTs pay writer
//! admission).
//!
//! Environment knobs:
//!
//! * `MALTHUS_KV_ADDR` — server address (default `127.0.0.1:7878`).
//!   Connection attempts retry for a few seconds so the generator can
//!   be started alongside the server in scripts.
//! * `MALTHUS_KV_CONNS` — concurrent connections (default 4).
//! * `MALTHUS_KV_SECONDS` — measurement interval (default 2).
//! * `MALTHUS_KV_KEYS` — key-space size (default 10000).
//! * `MALTHUS_KV_PUT_PCT` — percentage of PUTs (default 20).
//! * `MALTHUS_KV_SHUTDOWN` — set to `1` to send `SHUTDOWN` when done.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use malthus_metrics::LatencyHistogram;
use malthus_park::XorShift64;
use malthus_pool::kv::DEFAULT_ADDR;
use malthus_pool::KvClient;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn connect_with_retry(addr: SocketAddr) -> KvClient {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match KvClient::connect(addr) {
            Ok(c) => return c,
            Err(e) if Instant::now() < deadline => {
                eprintln!("# kv_load: connect failed ({e}), retrying");
                std::thread::sleep(Duration::from_millis(200));
            }
            Err(e) => panic!("could not connect to {addr}: {e}"),
        }
    }
}

fn main() {
    let addr: SocketAddr = std::env::var("MALTHUS_KV_ADDR")
        .unwrap_or_else(|_| DEFAULT_ADDR.to_string())
        .parse()
        .expect("MALTHUS_KV_ADDR must be host:port");
    let conns = env_u64("MALTHUS_KV_CONNS", 4) as usize;
    let seconds = env_u64("MALTHUS_KV_SECONDS", 2);
    let keys = env_u64("MALTHUS_KV_KEYS", 10_000).max(1);
    let put_pct = env_u64("MALTHUS_KV_PUT_PCT", 20).min(100);
    let send_shutdown = std::env::var("MALTHUS_KV_SHUTDOWN").is_ok_and(|v| v == "1");

    eprintln!("# kv_load: {conns} connections x {seconds} s against {addr}");
    // Separate GET/PUT histograms: the DB lock is a Malthusian RwLock,
    // so the read and write paths have different admission costs and
    // lumping them together would hide the read-side win.
    let get_hist = Arc::new(LatencyHistogram::new());
    let put_hist = Arc::new(LatencyHistogram::new());
    let stop = Arc::new(AtomicBool::new(false));
    let errors = Arc::new(AtomicU64::new(0));

    let started = Instant::now();
    let workers: Vec<_> = (0..conns)
        .map(|c| {
            let get_hist = Arc::clone(&get_hist);
            let put_hist = Arc::clone(&put_hist);
            let stop = Arc::clone(&stop);
            let errors = Arc::clone(&errors);
            std::thread::spawn(move || {
                let mut client = connect_with_retry(addr);
                let rng = XorShift64::new(0xC0FFEE ^ (c as u64 + 1));
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let key = rng.next_below(keys);
                    let is_put = rng.next_below(100) < put_pct;
                    let req = if is_put {
                        format!("PUT {key} {}", key.wrapping_mul(31))
                    } else {
                        format!("GET {key}")
                    };
                    let t0 = Instant::now();
                    match client.roundtrip(&req) {
                        Ok(resp) if resp.starts_with("ERR") => {
                            // Failed requests must not pollute the
                            // throughput/latency figures.
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(_) => {
                            if is_put {
                                put_hist.record(t0.elapsed());
                            } else {
                                get_hist.record(t0.elapsed());
                            }
                            ops += 1;
                        }
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                            return ops;
                        }
                    }
                }
                ops
            })
        })
        .collect();

    std::thread::sleep(Duration::from_secs(seconds));
    stop.store(true, Ordering::Relaxed);
    let total: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
    let elapsed = started.elapsed().as_secs_f64();

    let us = |d: Duration| d.as_secs_f64() * 1e6;
    let (get_p50, get_p99) = get_hist.p50_p99();
    let (put_p50, put_p99) = put_hist.p50_p99();
    println!(
        "ops {total}  ops/s {:.0}  gets {}  get_p50_us {:.1}  get_p99_us {:.1}  \
         puts {}  put_p50_us {:.1}  put_p99_us {:.1}  errors {}",
        total as f64 / elapsed,
        get_hist.count(),
        us(get_p50),
        us(get_p99),
        put_hist.count(),
        us(put_p50),
        us(put_p99),
        errors.load(Ordering::Relaxed)
    );
    assert!(total > 0, "load generator completed no operations");

    if send_shutdown {
        let mut c = connect_with_retry(addr);
        let resp = c.roundtrip("SHUTDOWN").expect("SHUTDOWN round trip");
        eprintln!("# kv_load: shutdown -> {resp}");
    }
}
