//! The Malthusian work crew: a concurrency-restricting executor.
//!
//! A bounded task queue feeds `workers` OS threads, but only an
//! admission-controlled **active circulating set** (ACS) of them
//! dequeues at any moment; the rest are culled onto a LIFO **passive
//! stack** and parked on their [`Parker`]s. The partition moves:
//!
//! * **Culling** — whenever the active count exceeds the current ACS
//!   limit ([`policy::crew_has_surplus`]), the worker observing it
//!   pushes itself onto the passive stack and parks. The stack is
//!   LIFO, so short-term reprovisioning reuses the most recently
//!   passivated (cache-warm) worker, exactly like the lock's passive
//!   list (§4).
//! * **Reprovisioning** — passive workers are *standby threads* in
//!   the sense of the paper's LOITER appendix (A.1): they park with a
//!   timeout, and the top of the stack self-promotes when it observes
//!   queued work ([`policy::crew_should_reprovision`]) while dequeues
//!   have stalled for [`PoolConfig::stall_threshold`] — every active
//!   worker blocked inside a task or descheduled. That is the crew's
//!   work-conservation signal, mirroring the lock's empty-main-queue
//!   rule. A promotion raises a temporary `boost` on the ACS limit,
//!   which is shed one step each time a worker finds the queue empty
//!   — and, under sustained saturation where the queue never empties,
//!   decays one step per few stall windows without a new stall — so
//!   the ACS shrinks back once blocking stops. Backlog depth
//!   alone deliberately does not reprovision: under saturation the
//!   queue is *always* deep, and promoting on depth degenerates into
//!   cull/unpark thrash that converges on the unrestricted pool.
//! * **Long-term fairness** — an episodic
//!   [`FairnessTrigger`](malthus::policy::FairnessTrigger) (the same
//!   Bernoulli trial the locks use, §4) occasionally makes a worker
//!   that just finished a task swap places with the *eldest* passive
//!   worker (the bottom of the LIFO stack), bounding per-worker
//!   starvation without perturbing the ACS size.
//!
//! Tasks are never lost: culled workers are reprovisioned while
//! backlog exists, and [`WorkCrew::shutdown`] drains the queue before
//! any worker exits.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use malthus::policy::{self, FairnessTrigger};
use malthus_park::{Parker, Unparker};

/// Default dequeue-stall window before reprovisioning; long enough to
/// ride out a scheduler quantum on an oversubscribed host, short
/// enough that a task blocking on I/O promotes a replacement quickly.
pub const DEFAULT_STALL_THRESHOLD: Duration = Duration::from_millis(5);

/// A unit of work.
pub type Task = Box<dyn FnOnce() + Send + 'static>;

/// Why a submission was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at its bound (only from [`WorkCrew::try_submit`]).
    QueueFull,
    /// The crew is shutting down; no new work is accepted.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "task queue is full"),
            SubmitError::ShuttingDown => write!(f, "work crew is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Configuration for a [`WorkCrew`].
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Total worker threads (active + passive).
    pub workers: usize,
    /// Steady-state ACS limit. Workers beyond it passivate; `workers`
    /// disables restriction entirely.
    pub acs_target: usize,
    /// Task-queue bound; blocking [`WorkCrew::submit`] applies
    /// backpressure past it.
    pub queue_bound: usize,
    /// Minimum backlog depth for stall-driven reprovisioning from the
    /// passive stack (1 = any pending task counts as backed up).
    pub backlog_watermark: usize,
    /// How long dequeues must stall (with backlog at the watermark)
    /// before a passive worker is promoted.
    pub stall_threshold: Duration,
    /// Average period (in completed tasks) of the episodic
    /// eldest-passive promotion; `None` disables it.
    pub fairness_period: Option<u64>,
    /// Seed for the fairness trigger's Bernoulli trials.
    pub seed: u64,
}

impl PoolConfig {
    /// An unrestricted pool: every worker dequeues, no passive stack.
    /// The control for the Malthusian crew in benchmarks.
    pub fn unrestricted(workers: usize, queue_bound: usize) -> Self {
        PoolConfig {
            workers,
            acs_target: workers,
            queue_bound,
            backlog_watermark: 1,
            stall_threshold: DEFAULT_STALL_THRESHOLD,
            fairness_period: None,
            seed: 0x4D414C54,
        }
    }

    /// A Malthusian crew: ACS limited to the host's parallelism (or
    /// `workers`, whichever is smaller), stall-driven reprovisioning
    /// on any pending backlog, and the paper's default 1/1000
    /// fairness period.
    pub fn malthusian(workers: usize, queue_bound: usize) -> Self {
        let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
        PoolConfig {
            workers,
            acs_target: workers.min(cpus),
            queue_bound,
            backlog_watermark: 1,
            stall_threshold: DEFAULT_STALL_THRESHOLD,
            fairness_period: Some(policy::DEFAULT_FAIRNESS_PERIOD),
            seed: 0x4D414C54,
        }
    }

    /// Overrides the steady-state ACS limit.
    pub fn with_acs_target(mut self, acs_target: usize) -> Self {
        self.acs_target = acs_target;
        self
    }

    /// Overrides the fairness period (`None` disables promotion).
    pub fn with_fairness_period(mut self, period: Option<u64>) -> Self {
        self.fairness_period = period;
        self
    }

    /// Overrides the reprovision watermark.
    pub fn with_backlog_watermark(mut self, watermark: usize) -> Self {
        self.backlog_watermark = watermark;
        self
    }

    /// Overrides the dequeue-stall window.
    pub fn with_stall_threshold(mut self, stall: Duration) -> Self {
        self.stall_threshold = stall;
        self
    }

    fn validate(&self) {
        assert!(self.workers > 0, "crew needs at least one worker");
        assert!(self.acs_target > 0, "ACS target must be positive");
        assert!(
            self.acs_target <= self.workers,
            "ACS target cannot exceed the worker count"
        );
        assert!(self.queue_bound > 0, "queue bound must be positive");
        assert!(self.backlog_watermark > 0, "watermark must be positive");
        // A watermark the backlog can never reach (submit blocks at
        // the bound) would silently disable reprovisioning and strand
        // tasks behind a blocked worker.
        assert!(
            self.backlog_watermark <= self.queue_bound,
            "watermark beyond the queue bound can never trigger"
        );
    }
}

/// Counter snapshot of crew activity.
///
/// Live snapshots ([`WorkCrew::stats`]) are racy reads, same contract
/// as the lock `cr_stats`; totals are exact once the crew has been
/// shut down.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Tasks accepted by `submit`/`try_submit`.
    pub submitted: u64,
    /// Tasks executed to completion.
    pub completed: u64,
    /// Workers culled onto the passive stack (excluding fairness
    /// swaps).
    pub culls: u64,
    /// Passive workers promoted because the queue backed up.
    pub reprovisions: u64,
    /// Episodic promotions of the eldest passive worker.
    pub fairness_promotions: u64,
    /// Tasks that panicked (isolated; the worker survives).
    pub panicked: u64,
    /// Tasks completed per worker, indexed by worker id.
    pub per_worker_completed: Vec<u64>,
}

/// Where a worker currently stands in the admission state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    /// In the ACS: running a task or hunting for one.
    Active,
    /// In the ACS but parked because the queue was empty.
    Idle,
    /// Culled: parked on the passive stack.
    Passive,
}

struct State {
    queue: VecDeque<Task>,
    roles: Vec<Role>,
    /// Ids of `Idle` workers, most recently idled last.
    idle: Vec<usize>,
    /// Ids of `Passive` workers; eldest at index 0, newest last (LIFO
    /// top).
    passive: Vec<usize>,
    /// Workers in `Active` or `Idle` role.
    active: usize,
    /// Temporary ACS enlargement granted by reprovisioning; shed as
    /// the backlog drains.
    boost: usize,
    /// When a worker last dequeued a task; reprovisioning triggers on
    /// this going stale while backlog waits (service has stalled).
    last_dequeue: Instant,
    /// When `boost` last changed; paces boost decay so the ACS relaxes
    /// back to its target once stalls stop, even if the queue never
    /// goes empty (sustained saturation).
    last_boost_change: Instant,
    fairness: Option<FairnessTrigger>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Submitters blocked on a full queue.
    not_full: Condvar,
    unparkers: Vec<Unparker>,
    cfg: PoolConfig,
    submitted: AtomicU64,
    completed: AtomicU64,
    culls: AtomicU64,
    reprovisions: AtomicU64,
    fairness_promotions: AtomicU64,
    panicked: AtomicU64,
    per_worker: Vec<AtomicU64>,
}

impl Shared {
    fn acs_limit(&self, state: &State) -> usize {
        (self.cfg.acs_target + state.boost).min(self.cfg.workers)
    }

    /// Wakes an idle worker for a freshly queued task. Stalls are not
    /// checked here: the passive standby threads detect those
    /// themselves via timed parking.
    fn signal_work(&self, state: &mut State) {
        if let Some(w) = state.idle.pop() {
            state.roles[w] = Role::Active;
            self.unparkers[w].unpark();
        }
    }
}

/// The concurrency-restricting executor. See the [module docs](self)
/// for the admission state machine.
///
/// # Examples
///
/// ```
/// use malthus_pool::{PoolConfig, WorkCrew};
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use std::sync::Arc;
///
/// let crew = WorkCrew::new(PoolConfig::malthusian(4, 64));
/// let hits = Arc::new(AtomicU64::new(0));
/// for _ in 0..100 {
///     let hits = Arc::clone(&hits);
///     crew.submit(move || {
///         hits.fetch_add(1, Ordering::Relaxed);
///     })
///     .unwrap();
/// }
/// let stats = crew.shutdown();
/// assert_eq!(stats.completed, 100);
/// assert_eq!(hits.load(Ordering::Relaxed), 100);
/// ```
pub struct WorkCrew {
    shared: Arc<Shared>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl WorkCrew {
    /// Spawns the worker threads and returns the crew.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (zero workers, ACS
    /// target above the worker count, zero queue bound or watermark).
    pub fn new(cfg: PoolConfig) -> Self {
        cfg.validate();
        let parkers: Vec<Parker> = (0..cfg.workers).map(|_| Parker::new()).collect();
        let unparkers: Vec<Unparker> = parkers.iter().map(Parker::unparker).collect();
        let fairness = cfg
            .fairness_period
            .map(|p| FairnessTrigger::new(p, cfg.seed | 1));
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                roles: vec![Role::Active; cfg.workers],
                idle: Vec::new(),
                passive: Vec::new(),
                active: cfg.workers,
                boost: 0,
                last_dequeue: Instant::now(),
                last_boost_change: Instant::now(),
                fairness,
                shutdown: false,
            }),
            not_full: Condvar::new(),
            unparkers,
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            culls: AtomicU64::new(0),
            reprovisions: AtomicU64::new(0),
            fairness_promotions: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
            per_worker: (0..cfg.workers).map(|_| AtomicU64::new(0)).collect(),
            cfg,
        });
        let handles = parkers
            .into_iter()
            .enumerate()
            .map(|(id, parker)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("malthus-crew-{id}"))
                    .spawn(move || worker_loop(id, parker, &shared))
                    .expect("spawn crew worker")
            })
            .collect();
        WorkCrew {
            shared,
            handles: Mutex::new(handles),
        }
    }

    /// Submits a task, blocking while the queue is at its bound
    /// (backpressure).
    ///
    /// Span tracing note: the crew does not stamp tasks itself — a
    /// caller that wants submit→start latency attributed (the KV
    /// service's `queue` stage) captures `span::now_ns()` before this
    /// call and differences it at the top of the task closure, which
    /// covers both the backpressure block here and the backlog wait.
    pub fn submit(&self, task: impl FnOnce() + Send + 'static) -> Result<(), SubmitError> {
        self.submit_boxed(Box::new(task))
    }

    /// [`WorkCrew::submit`] for an already boxed task.
    pub fn submit_boxed(&self, task: Task) -> Result<(), SubmitError> {
        let shared = &*self.shared;
        let mut state = shared.state.lock().expect("crew mutex poisoned");
        while state.queue.len() >= shared.cfg.queue_bound && !state.shutdown {
            state = shared.not_full.wait(state).expect("crew condvar poisoned");
        }
        if state.shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        state.queue.push_back(task);
        shared.submitted.fetch_add(1, Ordering::Relaxed);
        malthus_obs::record(
            malthus_obs::EventKind::CrewAdmit,
            state.queue.len() as u64,
            0,
        );
        shared.signal_work(&mut state);
        Ok(())
    }

    /// Submits a task without blocking; fails with
    /// [`SubmitError::QueueFull`] at the bound.
    pub fn try_submit(&self, task: impl FnOnce() + Send + 'static) -> Result<(), SubmitError> {
        let shared = &*self.shared;
        let mut state = shared.state.lock().expect("crew mutex poisoned");
        if state.shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        if state.queue.len() >= shared.cfg.queue_bound {
            return Err(SubmitError::QueueFull);
        }
        state.queue.push_back(Box::new(task));
        shared.submitted.fetch_add(1, Ordering::Relaxed);
        malthus_obs::record(
            malthus_obs::EventKind::CrewAdmit,
            state.queue.len() as u64,
            0,
        );
        shared.signal_work(&mut state);
        Ok(())
    }

    /// Current queue depth (racy diagnostic).
    pub fn backlog(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("crew mutex poisoned")
            .queue
            .len()
    }

    /// Number of passivated workers right now (racy diagnostic).
    pub fn passive_len(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("crew mutex poisoned")
            .passive
            .len()
    }

    /// The configuration the crew was built with.
    pub fn config(&self) -> &PoolConfig {
        &self.shared.cfg
    }

    /// Racy live snapshot of the activity counters.
    pub fn stats(&self) -> PoolStats {
        let s = &*self.shared;
        PoolStats {
            submitted: s.submitted.load(Ordering::Relaxed),
            completed: s.completed.load(Ordering::Relaxed),
            culls: s.culls.load(Ordering::Relaxed),
            reprovisions: s.reprovisions.load(Ordering::Relaxed),
            fairness_promotions: s.fairness_promotions.load(Ordering::Relaxed),
            panicked: s.panicked.load(Ordering::Relaxed),
            per_worker_completed: s
                .per_worker
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// Registers the crew's counters and gauges with a metrics
    /// [`Registry`](malthus_obs::Registry).
    ///
    /// The closures capture the crew's shared state (not the
    /// [`WorkCrew`] handle), so the registry does not keep the crew's
    /// public handle alive and re-registration after a crew swap
    /// simply replaces the sources.
    pub fn register_metrics(&self, registry: &malthus_obs::Registry) {
        type SharedCounter = fn(&Shared) -> u64;
        let no_labels: &[(&str, &str)] = &[];
        let counters: [(&str, &str, SharedCounter); 6] = [
            ("crew_submitted_total", "Tasks accepted by the crew.", |s| {
                s.submitted.load(Ordering::Relaxed)
            }),
            (
                "crew_completed_total",
                "Tasks completed by the crew.",
                |s| s.completed.load(Ordering::Relaxed),
            ),
            (
                "crew_culls_total",
                "Workers passivated by admission control.",
                |s| s.culls.load(Ordering::Relaxed),
            ),
            (
                "crew_reprovisions_total",
                "Passive workers self-promoted on backlog stall.",
                |s| s.reprovisions.load(Ordering::Relaxed),
            ),
            (
                "crew_fairness_promotions_total",
                "Eldest passive workers promoted by the fairness trigger.",
                |s| s.fairness_promotions.load(Ordering::Relaxed),
            ),
            ("crew_panicked_total", "Tasks that panicked.", |s| {
                s.panicked.load(Ordering::Relaxed)
            }),
        ];
        for (name, help, f) in counters {
            let shared = Arc::clone(&self.shared);
            registry.counter(name, help, no_labels, move || f(&shared));
        }
        let shared = Arc::clone(&self.shared);
        registry.gauge(
            "crew_active_workers",
            "Workers currently in the active circulating set.",
            no_labels,
            move || {
                let state = shared.state.lock().expect("crew mutex poisoned");
                state.active as f64
            },
        );
        let shared = Arc::clone(&self.shared);
        registry.gauge(
            "crew_passive_workers",
            "Workers currently parked on the passive LIFO stack.",
            no_labels,
            move || {
                let state = shared.state.lock().expect("crew mutex poisoned");
                state.passive.len() as f64
            },
        );
        let shared = Arc::clone(&self.shared);
        registry.gauge(
            "crew_backlog",
            "Tasks queued and not yet dequeued.",
            no_labels,
            move || {
                let state = shared.state.lock().expect("crew mutex poisoned");
                state.queue.len() as f64
            },
        );
    }

    /// Stops accepting work, drains the queue, joins every worker, and
    /// returns the final (exact) statistics. Idempotent.
    pub fn shutdown(&self) -> PoolStats {
        {
            let mut state = self.shared.state.lock().expect("crew mutex poisoned");
            state.shutdown = true;
            // Emptying the membership lists releases idle and passive
            // workers from their park loops; active bookkeeping stops
            // mattering once culling is disabled by `shutdown`.
            let mut released: Vec<usize> = state.idle.drain(..).collect();
            released.append(&mut state.passive);
            state.active += released.len();
            for w in released {
                state.roles[w] = Role::Active;
            }
            drop(state);
            self.shared.not_full.notify_all();
            for u in &self.shared.unparkers {
                u.unpark();
            }
        }
        let handles = std::mem::take(&mut *self.handles.lock().expect("handle mutex poisoned"));
        let me = std::thread::current().id();
        for h in handles {
            // A task holding the last Arc<WorkCrew> drops the crew on
            // a worker thread; joining our own handle would deadlock,
            // so that one worker is left to exit on its own (it is
            // already past its task and headed for the shutdown
            // check).
            if h.thread().id() == me {
                continue;
            }
            h.join().expect("crew worker panicked");
        }
        self.stats()
    }
}

impl Drop for WorkCrew {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for WorkCrew {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkCrew")
            .field("workers", &self.shared.cfg.workers)
            .field("acs_target", &self.shared.cfg.acs_target)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Parks until some other thread removes `me` from the membership
/// list whose role is `waiting_as` (promotion, wake, or shutdown).
///
/// Returns the re-acquired state guard. Handles spurious parker
/// returns by re-checking the role under the lock.
fn park_until_released<'a>(
    me: usize,
    parker: &Parker,
    shared: &'a Shared,
    waiting_as: Role,
) -> std::sync::MutexGuard<'a, State> {
    loop {
        parker.park();
        let state = shared.state.lock().expect("crew mutex poisoned");
        if state.roles[me] != waiting_as {
            return state;
        }
        drop(state);
    }
}

/// Passive (culled) workers park as *standby threads*: a timed park,
/// with the top of the LIFO stack self-promoting when it observes
/// backlog whose dequeues have stalled a full window — every active
/// worker blocked in a task or descheduled. This keeps the crew work-
/// conserving with no external stall detector, the same trick as the
/// LOITER standby thread's periodic polling (paper, appendix A.1).
///
/// Returns the re-acquired state guard once `me` is active again
/// (self-promotion, fairness promotion, or shutdown release).
fn standby_park<'a>(
    me: usize,
    parker: &Parker,
    shared: &'a Shared,
) -> std::sync::MutexGuard<'a, State> {
    // Off-backlog polling is relaxed: an idle pool's standby threads
    // wake an order of magnitude less often.
    let mut interval = shared.cfg.stall_threshold * 8;
    loop {
        parker.park_timeout(interval);
        let mut state = shared.state.lock().expect("crew mutex poisoned");
        if state.roles[me] != Role::Passive {
            return state; // promoted or released
        }
        let stack_top = state.passive.last() == Some(&me);
        if stack_top
            && !state.shutdown
            && policy::crew_should_reprovision(
                state.queue.len(),
                shared.cfg.backlog_watermark,
                state.passive.len(),
            )
            && state.active < shared.cfg.workers
            && state.last_dequeue.elapsed() >= shared.cfg.stall_threshold
        {
            // Self-promote; resetting the stamp rate-limits the
            // cascade to one promotion per stall window.
            state.passive.pop();
            state.roles[me] = Role::Active;
            state.active += 1;
            state.boost += 1;
            state.last_dequeue = Instant::now();
            state.last_boost_change = Instant::now();
            shared.reprovisions.fetch_add(1, Ordering::Relaxed);
            malthus_obs::record(malthus_obs::EventKind::CrewPromote, me as u64, 0);
            return state;
        }
        // Poll fast while there is work we might have to rescue, slow
        // otherwise.
        interval = if state.queue.is_empty() {
            shared.cfg.stall_threshold * 8
        } else {
            shared.cfg.stall_threshold
        };
        drop(state);
    }
}

fn worker_loop(me: usize, parker: Parker, shared: &Shared) {
    let mut state = shared.state.lock().expect("crew mutex poisoned");
    loop {
        // 1. Admission check: am I surplus? (Disabled during shutdown
        //    so every worker helps drain the queue.)
        if !state.shutdown && policy::crew_has_surplus(state.active, shared.acs_limit(&state)) {
            state.roles[me] = Role::Passive;
            state.active -= 1;
            state.passive.push(me);
            shared.culls.fetch_add(1, Ordering::Relaxed);
            malthus_obs::record(malthus_obs::EventKind::CrewPark, me as u64, 0);
            drop(state);
            state = standby_park(me, &parker, shared);
            continue;
        }
        // 2. Take work.
        if let Some(task) = state.queue.pop_front() {
            state.last_dequeue = Instant::now();
            drop(state);
            shared.not_full.notify_one();
            // A panicking task is a bug in the submitted work, not in
            // the crew; isolate it so the worker (and its slot in the
            // admission machine) survives.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
            match outcome {
                Ok(()) => {
                    shared.completed.fetch_add(1, Ordering::Relaxed);
                    shared.per_worker[me].fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    shared.panicked.fetch_add(1, Ordering::Relaxed);
                }
            }
            state = shared.state.lock().expect("crew mutex poisoned");
            // Boost decay under sustained saturation: when no stall
            // has re-raised the boost for several windows, shed one
            // step even though the queue never empties — otherwise a
            // long-lived saturated crew with occasional blocking
            // tasks ratchets its ACS up to `workers` permanently and
            // restriction is lost.
            if state.boost > 0
                && !state.shutdown
                && state.last_boost_change.elapsed() >= shared.cfg.stall_threshold * 8
            {
                state.boost -= 1;
                state.last_boost_change = Instant::now();
            }
            // 3. Long-term fairness: episodically swap with the eldest
            //    passive worker (stack bottom), keeping the ACS size
            //    unchanged — the pool analogue of the lock ceding
            //    ownership to the tail of its passive list (§4).
            let fire = state.fairness.as_mut().is_some_and(FairnessTrigger::fire);
            if fire && !state.shutdown && !state.passive.is_empty() {
                let eldest = state.passive.remove(0);
                state.roles[eldest] = Role::Active;
                state.roles[me] = Role::Passive;
                state.passive.push(me);
                shared.fairness_promotions.fetch_add(1, Ordering::Relaxed);
                malthus_obs::record(malthus_obs::EventKind::CrewPromote, eldest as u64, 1);
                shared.unparkers[eldest].unpark();
                drop(state);
                state = standby_park(me, &parker, shared);
            }
            continue;
        }
        // 4. Queue empty.
        if state.shutdown {
            return;
        }
        // The backlog has drained: shed one step of reprovision boost
        // so the ACS relaxes back toward its steady-state target.
        if state.boost > 0 {
            state.boost -= 1;
            state.last_boost_change = Instant::now();
        }
        if policy::crew_has_surplus(state.active, shared.acs_limit(&state)) {
            continue; // culled at the top of the loop
        }
        state.roles[me] = Role::Idle;
        state.idle.push(me);
        drop(state);
        state = park_until_released(me, &parker, shared, Role::Idle);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    fn count_tasks(crew: &WorkCrew, n: u64) -> Arc<AtomicU64> {
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..n {
            let hits = Arc::clone(&hits);
            crew.submit(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        hits
    }

    #[test]
    fn unrestricted_pool_runs_everything() {
        let crew = WorkCrew::new(PoolConfig::unrestricted(4, 32));
        let hits = count_tasks(&crew, 500);
        let stats = crew.shutdown();
        assert_eq!(hits.load(Ordering::Relaxed), 500);
        assert_eq!(stats.completed, 500);
        assert_eq!(stats.submitted, 500);
        assert_eq!(stats.culls, 0, "unrestricted crews never cull");
        assert_eq!(stats.fairness_promotions, 0);
    }

    #[test]
    fn restricted_pool_culls_but_loses_no_tasks() {
        // 6 workers, ACS of 1: five workers must be culled, and a
        // CPU-bound stream must complete entirely on the restricted
        // set without losing work.
        let cfg = PoolConfig::malthusian(6, 8)
            .with_acs_target(1)
            .with_fairness_period(None);
        let crew = WorkCrew::new(cfg);
        let hits = count_tasks(&crew, 2_000);
        let stats = crew.shutdown();
        assert_eq!(hits.load(Ordering::Relaxed), 2_000, "no lost tasks");
        assert_eq!(stats.completed, 2_000);
        assert!(stats.culls >= 5, "culls = {}", stats.culls);
    }

    #[test]
    fn stalled_service_reprovisions_culled_workers() {
        // ACS of 1 whose only active worker wedges on a gate: the
        // pending backlog must promote a culled worker (work
        // conservation) so no task is stranded behind the blocker.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let cfg = PoolConfig::malthusian(3, 16)
            .with_acs_target(1)
            .with_fairness_period(None)
            .with_stall_threshold(Duration::from_millis(5));
        let crew = WorkCrew::new(cfg);
        // Give culling a moment so the gate lands on the lone active.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while crew.passive_len() < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let g = Arc::clone(&gate);
        crew.submit(move || {
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        })
        .unwrap();
        let hits = count_tasks(&crew, 200);
        // The 200 tasks sit behind the wedged worker until the stall
        // window promotes a passive one.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while hits.load(Ordering::Relaxed) < 200 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let drained = hits.load(Ordering::Relaxed);
        let mid_stats = crew.stats();
        // Open the gate before asserting anything: a failed assert
        // must not leave the wedged worker unjoinable.
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        let stats = crew.shutdown();
        assert_eq!(drained, 200, "tasks stranded: {mid_stats:?}");
        assert!(mid_stats.reprovisions >= 1, "{mid_stats:?}");
        assert_eq!(stats.completed, 201);
    }

    #[test]
    fn fairness_trigger_promotes_the_eldest_passive_worker() {
        // ACS of 1 with an aggressive fairness period: every worker
        // must eventually rotate through the ACS and complete tasks.
        let cfg = PoolConfig::malthusian(4, 16)
            .with_acs_target(1)
            .with_fairness_period(Some(4))
            .with_backlog_watermark(16); // never reprovision via backlog
        let crew = WorkCrew::new(cfg);
        let hits = count_tasks(&crew, 3_000);
        let stats = crew.shutdown();
        assert_eq!(hits.load(Ordering::Relaxed), 3_000);
        assert!(
            stats.fairness_promotions > 0,
            "promotions = {}",
            stats.fairness_promotions
        );
        for (w, &n) in stats.per_worker_completed.iter().enumerate() {
            assert!(
                n > 0,
                "worker {w} starved despite fairness: {:?}",
                stats.per_worker_completed
            );
        }
    }

    #[test]
    fn try_submit_reports_a_full_queue() {
        // One worker wedged on a gate keeps the queue from draining.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let crew = WorkCrew::new(
            PoolConfig::malthusian(1, 2)
                .with_acs_target(1)
                .with_fairness_period(None),
        );
        let g = Arc::clone(&gate);
        crew.submit(move || {
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        })
        .unwrap();
        // Fill the bound while the worker is wedged.
        let mut saw_full = false;
        for _ in 0..50 {
            match crew.try_submit(|| {}) {
                Ok(()) => {}
                Err(SubmitError::QueueFull) => {
                    saw_full = true;
                    break;
                }
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        assert!(saw_full, "bounded queue must eventually refuse work");
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        crew.shutdown();
    }

    #[test]
    fn submit_after_shutdown_is_refused() {
        let crew = WorkCrew::new(PoolConfig::unrestricted(2, 8));
        crew.shutdown();
        assert_eq!(crew.submit(|| {}), Err(SubmitError::ShuttingDown));
        assert_eq!(crew.try_submit(|| {}), Err(SubmitError::ShuttingDown));
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_safe() {
        let crew = WorkCrew::new(PoolConfig::malthusian(3, 8).with_acs_target(1));
        let hits = count_tasks(&crew, 50);
        let a = crew.shutdown();
        let b = crew.shutdown();
        assert_eq!(a, b);
        assert_eq!(hits.load(Ordering::Relaxed), 50);
        drop(crew); // Drop after explicit shutdown must not hang.
    }

    #[test]
    fn blocking_submit_applies_backpressure_without_loss() {
        let crew = Arc::new(WorkCrew::new(
            PoolConfig::malthusian(2, 4)
                .with_acs_target(1)
                .with_backlog_watermark(2),
        ));
        let hits = Arc::new(AtomicU64::new(0));
        let submitters: Vec<_> = (0..3)
            .map(|_| {
                let crew = Arc::clone(&crew);
                let hits = Arc::clone(&hits);
                std::thread::spawn(move || {
                    for _ in 0..300 {
                        let hits = Arc::clone(&hits);
                        crew.submit(move || {
                            hits.fetch_add(1, Ordering::Relaxed);
                            // A touch of work so the queue actually fills.
                            std::hint::black_box(std::time::Instant::now());
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for s in submitters {
            s.join().unwrap();
        }
        let stats = crew.shutdown();
        assert_eq!(stats.completed, 900);
        assert_eq!(hits.load(Ordering::Relaxed), 900);
    }

    #[test]
    fn passive_len_reflects_culling() {
        let crew = WorkCrew::new(
            PoolConfig::malthusian(4, 8)
                .with_acs_target(1)
                .with_fairness_period(None),
        );
        // With no work, three workers are surplus and must passivate.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while crew.passive_len() < 3 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(crew.passive_len(), 3);
        crew.shutdown();
    }

    #[test]
    fn panicking_tasks_are_isolated() {
        let crew = WorkCrew::new(PoolConfig::unrestricted(2, 8));
        crew.submit(|| panic!("request bug")).unwrap();
        let hits = count_tasks(&crew, 20);
        let stats = crew.shutdown();
        assert_eq!(hits.load(Ordering::Relaxed), 20, "workers must survive");
        assert_eq!(stats.panicked, 1);
        assert_eq!(stats.completed, 20);
    }

    #[test]
    #[should_panic(expected = "watermark beyond the queue bound")]
    fn unreachable_watermark_is_rejected() {
        WorkCrew::new(PoolConfig::malthusian(2, 8).with_backlog_watermark(9));
    }

    #[test]
    #[should_panic(expected = "ACS target cannot exceed")]
    fn invalid_config_panics() {
        WorkCrew::new(PoolConfig {
            workers: 2,
            acs_target: 3,
            queue_bound: 4,
            backlog_watermark: 2,
            stall_threshold: Duration::from_millis(5),
            fairness_period: None,
            seed: 1,
        });
    }
}
