//! A networked KV service that puts the work crew under real traffic.
//!
//! §6.5 of the paper evaluates CR inside leveldb, whose "central
//! database lock and internal LRUCache locks are highly contended".
//! This module serves that storage shape — now **sharded** — over
//! TCP: a [`ShardedKv`](malthus_storage::ShardedKv) of N shards, each
//! its own `MiniKv` behind a Malthusian **read-write** DB lock plus a
//! `SimpleLru` block cache behind an MCSCR mutex, with request
//! execution dispatched onto a [`WorkCrew`]. Admission control
//! operates at *both* layers: the crew restricts how many threads run
//! at all, and the N CR lock pairs restrict circulation per shard —
//! one hot shard culls its own surplus while the others keep serving.
//!
//! `GET`s take their shard's DB lock *shared*, so point lookups run
//! genuinely concurrently; memtable hits never touch the exclusive
//! block-cache lock at all. `PUT`s take their shard's DB lock
//! exclusive and pay writer admission on that shard only. The batched
//! and aggregate verbs (`MGET`/`MSET`/`SCAN`/`STATS`) visit shards
//! one at a time and never hold two shard locks at once — per-shard
//! atomic, cross-shard racy snapshot (see
//! [`malthus_storage::sharded`] for the full contract, which is also
//! the wire contract).
//!
//! The wire protocol is line-oriented text (one line per request, one
//! line per response):
//!
//! | Request | Response |
//! |---|---|
//! | `PUT <key> <value>` | `OK`, or `ERR shard readonly` |
//! | `GET <key>` | `VAL <value>` or `NIL` |
//! | `MGET <key>...` | `VALS <value-or-–>...` (`-` marks a miss) |
//! | `MSET <key> <value>...` | `OK <pairs-written>`, or `ERR shard readonly` |
//! | `SCAN <start> <limit>` | `RANGE <key>=<value>...` (maybe empty) |
//! | `PING` | `PONG` |
//! | `STATS` | `STATS reads=<n> writes=<n> ... shards=<n>` |
//! | `METRICS` | the full metrics exposition, then a `# EOF` line |
//! | `TRACE DUMP` | flight-recorder JSON lines, then a `# EOF` line |
//! | `SLOWLOG [n]` | slow-batch stage breakdowns, then a `# EOF` line |
//! | `SLOWLOG RESET` | `OK` (hides all current slowlog entries) |
//! | `SHUTDOWN` | `OK` then the server stops accepting |
//! | `QUIT` | connection closes |
//! | anything else | `ERR <reason>` |
//!
//! Keys and values are unsigned 64-bit integers.
//!
//! # Durability on the wire
//!
//! A service opened over a data directory ([`KvService::open`], or
//! `kv_server --data-dir`) group-commits each batch's per-shard write
//! group to that shard's WAL — one fsync per group, under the same
//! exclusive hold `execute_batch` already takes — **before** acking:
//! `OK` means the write survives `kill -9`. A shard whose fsync fails
//! is poisoned read-only; its writes answer `ERR shard readonly`
//! while GETs keep working and other shards keep serving. `STATS`
//! reports `wal_syncs=`/`wal_errors=`/`readonly_shards=` (and
//! `idle_disconnects=`, see [`ServeOptions::read_timeout`]).
//!
//! # Pipelining: tagged requests and batched under-lock execution
//!
//! Any request line may carry a **tag prefix** `#<tag> ` (tag a u64):
//! the response to a tagged request is `#<tag> <response>`, so a
//! client may keep a window of requests in flight and match replies.
//! Untagged lines behave byte-identically to the pre-pipelining
//! protocol, so depth-1 clients never notice. A malformed tag
//! (`#banana GET 1`, a bare `#`) earns an untagged `ERR` and the
//! connection stays open.
//!
//! **Responses always come back in request order** — tags are for the
//! client's bookkeeping, not for reordering. What pipelining changes
//! is the server's execution shape: each reader wakeup **drains every
//! complete request line already buffered** on the connection and
//! submits the whole batch as *one* crew task. The batch groups its
//! GET/PUT/MGET/MSET ops by shard (via
//! [`ShardRouter::group_indices`](malthus_storage::ShardRouter::group_indices))
//! and executes each shard's group under a **single** DB-lock
//! acquisition — shared if the group is read-only, exclusive if it
//! contains any write ([`ShardedKv::execute_batch`]) — then flushes
//! every response of the batch in **one** write. A connection at
//! pipeline depth `n` therefore pays ~one lock admission and one
//! syscall per batch instead of per request: the
//! few-threads-much-work-per-admission shape the paper argues
//! saturated locks want.
//!
//! The consistency contract refines per batch: a drained batch's
//! per-shard group executes **atomically per shard, in request
//! order** (per-key, a batch behaves exactly like sequential
//! requests), while cross-shard visibility remains the racy snapshot
//! of [`malthus_storage::sharded`]. `SCAN`/`PING`/`STATS` execute at
//! their position in the batch through the existing per-request
//! paths.
//!
//! Connection readers are plain threads (cheap, blocked on I/O); all
//! request *execution* flows through the crew, which is where
//! concurrency is restricted. A reader submits one batch at a time
//! and waits for its flush before draining the next, so batches from
//! one connection never interleave; the next burst accumulates in the
//! socket while the current batch executes, which is exactly what
//! makes the next drain bigger under load (group-commit dynamics).

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use malthus_metrics::LatencyHistogram;
use malthus_obs::span::{self, Stage, STAGE_COUNT};
use malthus_obs::{SlowEntry, SlowRing, SpanContext};
use malthus_storage::{BatchOp, BatchReply, RecoveryReport, ShardedKv, WriteError};

use crate::crew::WorkCrew;

/// The response line for a write refused by a read-only (WAL-poisoned)
/// shard.
pub const READONLY_ERR: &str = "ERR shard readonly";

/// Admission-control counters the `STATS` verb renders — the only
/// thing request execution ever asks its admission layer for.
///
/// Both front-ends implement the supplying trait: the threaded
/// server's [`WorkCrew`] (task admission) and the reactor front-end's
/// poll-admission pool, so [`KvService::apply_batch_span`] is
/// front-end-agnostic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionSnapshot {
    /// Admission units completed (crew tasks / reactor ready-batches).
    pub completed: u64,
    /// Workers culled onto the passive stack.
    pub culls: u64,
    /// Passive workers promoted on a stall.
    pub reprovisions: u64,
    /// Episodic eldest-fairness promotions.
    pub promotions: u64,
}

/// Source of the [`AdmissionSnapshot`] that `STATS` reports.
pub trait AdmissionStats {
    /// Racy counter snapshot (exact while quiescent).
    fn admission_snapshot(&self) -> AdmissionSnapshot;
}

impl AdmissionStats for WorkCrew {
    fn admission_snapshot(&self) -> AdmissionSnapshot {
        let s = self.stats();
        AdmissionSnapshot {
            completed: s.completed,
            culls: s.culls,
            reprovisions: s.reprovisions,
            promotions: s.fairness_promotions,
        }
    }
}

impl<T: AdmissionStats + ?Sized> AdmissionStats for &T {
    fn admission_snapshot(&self) -> AdmissionSnapshot {
        (**self).admission_snapshot()
    }
}

impl<T: AdmissionStats + ?Sized> AdmissionStats for Arc<T> {
    fn admission_snapshot(&self) -> AdmissionSnapshot {
        (**self).admission_snapshot()
    }
}

/// Default TCP address for the server and load-generator binaries.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7878";
/// Memtable entries before a shard's MiniKv freezes a run.
pub const DEFAULT_MEMTABLE_LIMIT: usize = 4_096;
/// Per-shard block-cache capacity in blocks.
pub const DEFAULT_CACHE_BLOCKS: usize = 8_192;
/// Default shard count: one, the paper-faithful §6.5 single hot lock
/// pair. `kv_server --shards N` raises it.
pub const DEFAULT_SHARDS: usize = 1;
/// Upper bound on keys per `MGET` / pairs per `MSET` line: bounds
/// the parsed batch (and so how long one batch monopolizes the crew
/// worker executing it). The raw line is still read unbounded before
/// parsing, like every other verb's.
pub const MAX_BATCH_KEYS: usize = 1_024;
/// Slowlog ring capacity: the newest this many slow batches are
/// retained for `SLOWLOG` to read back.
pub const SLOWLOG_CAPACITY: usize = 128;
/// Entries a bare `SLOWLOG` (no count) returns.
pub const DEFAULT_SLOWLOG_ENTRIES: usize = 16;
/// Default slowlog threshold in microseconds: batches slower than
/// this end-to-end land in the slowlog (`kv_server
/// --slowlog-threshold-us` overrides; 0 disables).
pub const DEFAULT_SLOWLOG_THRESHOLD_US: u64 = 10_000;

/// One parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// `PUT <key> <value>`
    Put(u64, u64),
    /// `GET <key>`
    Get(u64),
    /// `MGET <key>...` (at least one key)
    Mget(Vec<u64>),
    /// `MSET <key> <value>...` (at least one pair)
    Mset(Vec<(u64, u64)>),
    /// `SCAN <start> <limit>`
    Scan(u64, u64),
    /// `PING`
    Ping,
    /// `STATS`
    Stats,
    /// `METRICS` — the unified registry exposition, terminated by a
    /// `# EOF` line.
    Metrics,
    /// `TRACE DUMP` — the flight recorder's merged JSON lines,
    /// terminated by a `# EOF` line.
    TraceDump,
    /// `SLOWLOG [n]` — the newest `n` slow-batch stage breakdowns
    /// (default [`DEFAULT_SLOWLOG_ENTRIES`]), newest first,
    /// terminated by a `# EOF` line.
    Slowlog(usize),
    /// `SLOWLOG RESET` — hides every current slowlog entry.
    SlowlogReset,
    /// `SHUTDOWN`
    Shutdown,
    /// `QUIT`
    Quit,
}

impl Request {
    /// Parses one line of the wire protocol.
    pub fn parse(line: &str) -> Result<Request, String> {
        let mut parts = line.split_ascii_whitespace();
        let verb = parts.next().ok_or_else(|| "empty request".to_string())?;
        let mut int = |name: &str| -> Result<u64, String> {
            parts
                .next()
                .ok_or_else(|| format!("{verb} missing {name}"))?
                .parse::<u64>()
                .map_err(|_| format!("{verb} {name} must be a u64"))
        };
        let req = match verb {
            "PUT" => Request::Put(int("key")?, int("value")?),
            "GET" => Request::Get(int("key")?),
            "MGET" => {
                let keys = rest_u64s(verb, parts)?;
                if keys.is_empty() {
                    return Err("MGET needs at least one key".to_string());
                }
                if keys.len() > MAX_BATCH_KEYS {
                    return Err(format!("MGET capped at {MAX_BATCH_KEYS} keys"));
                }
                return Ok(Request::Mget(keys));
            }
            "MSET" => {
                let flat = rest_u64s(verb, parts)?;
                if flat.is_empty() || flat.len() % 2 != 0 {
                    return Err("MSET needs one or more <key> <value> pairs".to_string());
                }
                if flat.len() / 2 > MAX_BATCH_KEYS {
                    return Err(format!("MSET capped at {MAX_BATCH_KEYS} pairs"));
                }
                return Ok(Request::Mset(
                    flat.chunks_exact(2).map(|kv| (kv[0], kv[1])).collect(),
                ));
            }
            "SCAN" => Request::Scan(int("start")?, int("limit")?),
            "PING" => Request::Ping,
            "STATS" => Request::Stats,
            "METRICS" => Request::Metrics,
            "TRACE" => match parts.next() {
                Some("DUMP") => Request::TraceDump,
                Some(other) => return Err(format!("unknown TRACE subcommand {other}")),
                None => return Err("TRACE needs a subcommand (DUMP)".to_string()),
            },
            "SLOWLOG" => match parts.next() {
                None => Request::Slowlog(DEFAULT_SLOWLOG_ENTRIES),
                Some("RESET") => Request::SlowlogReset,
                Some(n) => Request::Slowlog(
                    n.parse::<usize>()
                        .map_err(|_| format!("SLOWLOG count must be an integer, got {n:?}"))?,
                ),
            },
            "SHUTDOWN" => Request::Shutdown,
            "QUIT" => Request::Quit,
            other => return Err(format!("unknown verb {other}")),
        };
        if parts.next().is_some() {
            return Err(format!("{verb} given too many arguments"));
        }
        Ok(req)
    }
}

/// Collects the remaining whitespace-separated tokens as u64s.
fn rest_u64s<'a>(verb: &str, parts: impl Iterator<Item = &'a str>) -> Result<Vec<u64>, String> {
    parts
        .map(|tok| {
            tok.parse::<u64>()
                .map_err(|_| format!("{verb} arguments must be u64s, got {tok:?}"))
        })
        .collect()
}

/// Splits an optional `#<tag>` pipeline prefix off a request line,
/// returning `(tag, rest-of-line)`.
///
/// Lines not starting with `#` are untagged — the pre-pipelining
/// grammar, passed through untouched. A line that starts with `#` but
/// whose tag is not a u64 is an error: the server answers it with an
/// *untagged* `ERR` (there is no trustworthy tag to echo) and keeps
/// the connection open.
pub fn split_tag(line: &str) -> Result<(Option<u64>, &str), String> {
    let Some(rest) = line.strip_prefix('#') else {
        return Ok((None, line));
    };
    let (tag_str, after) = match rest.split_once(char::is_whitespace) {
        Some((t, a)) => (t, a),
        None => (rest, ""),
    };
    let tag = tag_str
        .parse::<u64>()
        .map_err(|_| format!("malformed tag {tag_str:?} (tags are u64s)"))?;
    Ok((Some(tag), after.trim_start()))
}

/// Appends the `#<tag> ` reply prefix for a tagged request; untagged
/// requests get none (byte-identical legacy framing).
fn write_tag(out: &mut String, tag: Option<u64>) {
    if let Some(t) = tag {
        let _ = write!(out, "#{t} ");
    }
}

/// [`write_tag`] + body + newline straight into a byte buffer — the
/// reactor front-end renders control-verb replies into the reactor's
/// write buffer rather than a `String`.
pub(crate) fn write_tag_line(out: &mut Vec<u8>, tag: Option<u64>, body: &str) {
    if let Some(t) = tag {
        let mut prefix = String::new();
        let _ = write!(prefix, "#{t} ");
        out.extend_from_slice(prefix.as_bytes());
    }
    out.extend_from_slice(body.as_bytes());
    out.push(b'\n');
}

/// Service-wide pipeline observability: how much batching the drained
/// wakeups actually achieved, and what each batch cost to execute.
///
/// `batches`/`max_batch` are updated live, per batch. The batch-size
/// *distribution* is collected in a per-connection
/// [`LatencyHistogram`] (reused across that connection's batches,
/// recording batch sizes as integer "nanoseconds"). Live connections
/// hand out their histogram through
/// [`PipelineStats::register_connection`], so quantile queries merge
/// open connections at query time — a long-lived pipelined client is
/// visible in `STATS`/`METRICS` *while it runs*, not only after it
/// disconnects — and the histogram is folded into the service-wide
/// base on disconnect. All reads share the racy-snapshot contract of
/// every other counter here.
#[derive(Debug, Default)]
pub struct PipelineStats {
    batches: AtomicU64,
    max_batch: AtomicU64,
    /// Closed connections' batch sizes.
    hist: LatencyHistogram,
    /// Wall time spent executing drained batches under the crew.
    drain_ns: LatencyHistogram,
    /// Batch-size histograms of currently-open connections; dead
    /// weak references are pruned on registration and at query time.
    live: Mutex<Vec<std::sync::Weak<LatencyHistogram>>>,
}

impl PipelineStats {
    /// Records one drained batch of `n` requests (live counters).
    pub(crate) fn note_batch(&self, n: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.max_batch.fetch_max(n, Ordering::Relaxed);
    }

    /// Records the wall time one drained batch took to execute.
    pub(crate) fn note_drain_ns(&self, ns: u64) {
        self.drain_ns.record_ns(ns);
    }

    /// Creates a connection's batch-size histogram and registers it
    /// for query-time merging while the connection lives.
    pub fn register_connection(&self) -> Arc<LatencyHistogram> {
        let hist = Arc::new(LatencyHistogram::new());
        let mut live = self.live.lock().expect("pipeline live list poisoned");
        live.retain(|w| w.strong_count() > 0);
        live.push(Arc::downgrade(&hist));
        hist
    }

    /// Retires a closing connection: deregisters the live histogram
    /// *first*, then folds it into the service-wide base — in that
    /// order so a concurrent quantile query cannot count the
    /// connection twice.
    pub fn retire_connection(&self, conn_hist: Arc<LatencyHistogram>) {
        {
            let mut live = self.live.lock().expect("pipeline live list poisoned");
            live.retain(|w| {
                w.strong_count() > 0 && !std::ptr::eq(w.as_ptr(), Arc::as_ptr(&conn_hist))
            });
        }
        self.hist.merge(&conn_hist);
    }

    /// Total batches drained (one batch = one reader wakeup that
    /// found at least one executable request).
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// The largest batch any connection drained in one wakeup.
    pub fn max_batch(&self) -> u64 {
        self.max_batch.load(Ordering::Relaxed)
    }

    /// The merged batch-size distribution: closed connections plus
    /// every currently-open one.
    fn merged_hist(&self) -> LatencyHistogram {
        let merged = LatencyHistogram::new();
        merged.merge(&self.hist);
        let live = self.live.lock().expect("pipeline live list poisoned");
        for w in live.iter() {
            if let Some(h) = w.upgrade() {
                merged.merge(&h);
            }
        }
        merged
    }

    /// `(p50, p99)` of the batch-size distribution, in requests per
    /// batch, over closed **and live** connections.
    pub fn batch_quantiles(&self) -> (u64, u64) {
        let (p50, p99) = self.merged_hist().p50_p99();
        (p50.as_nanos() as u64, p99.as_nanos() as u64)
    }

    /// Snapshot of the merged batch-size distribution (closed + live
    /// connections), for registry exposition.
    pub fn batch_size_snapshot(&self) -> malthus_metrics::HistogramSnapshot {
        self.merged_hist().snapshot()
    }

    /// Snapshot of the batch-drain execution-latency distribution.
    pub fn drain_snapshot(&self) -> malthus_metrics::HistogramSnapshot {
        self.drain_ns.snapshot()
    }

    /// `(p50, p99)` of batch-drain execution latency, nanoseconds.
    pub fn drain_quantiles(&self) -> (u64, u64) {
        let (p50, p99) = self.drain_ns.p50_p99();
        (p50.as_nanos() as u64, p99.as_nanos() as u64)
    }

    /// Batches folded into the closed-connection distribution (lags
    /// [`PipelineStats::batches`] while connections are open; the
    /// quantiles above do *not* lag — they merge live connections).
    pub fn merged_batches(&self) -> u64 {
        self.hist.count()
    }
}

/// The shared storage state: N shards, each the two contended locks
/// of §6.5, behind fixed fibonacci-hash routing. Also owns the
/// unified [`Registry`](malthus_obs::Registry) every layer registers
/// into — the `METRICS` verb renders it in one exposition.
pub struct KvService {
    store: Arc<ShardedKv>,
    pipeline: Arc<PipelineStats>,
    idle_disconnects: Arc<AtomicU64>,
    registry: malthus_obs::Registry,
    /// Per-stage batch latency histograms, indexed by `Stage as
    /// usize` — the `kv_stage_ns{stage=…}` family.
    stage_hists: [Arc<LatencyHistogram>; STAGE_COUNT],
    /// Slow batches' full stage breakdowns (the `SLOWLOG` verb).
    slowlog: Arc<SlowRing>,
    /// End-to-end nanoseconds above which a batch lands in the
    /// slowlog; 0 disables.
    slowlog_threshold_ns: AtomicU64,
    /// Service-wide batch id sequence (span identity).
    batch_seq: AtomicU64,
}

impl KvService {
    /// Creates a **single-shard** service (the paper-faithful §6.5
    /// shape) with the given per-shard memtable limit and block-cache
    /// capacity.
    pub fn new(memtable_limit: usize, cache_blocks: usize) -> Self {
        Self::with_shards(DEFAULT_SHARDS, memtable_limit, cache_blocks)
    }

    /// Creates a service over `shards` shards; each shard gets its
    /// own memtable limit and block-cache capacity.
    pub fn with_shards(shards: usize, memtable_limit: usize, cache_blocks: usize) -> Self {
        Self::from_store(ShardedKv::new(shards, memtable_limit, cache_blocks))
    }

    /// Wraps an already-built store (memory-only, durable, or
    /// fault-injected via
    /// [`ShardedKv::open_with`](malthus_storage::ShardedKv::open_with)),
    /// registering the store's, pipeline's, and service's metrics
    /// into a fresh unified registry.
    pub fn from_store(store: ShardedKv) -> Self {
        let store = Arc::new(store);
        let pipeline = Arc::new(PipelineStats::default());
        let idle_disconnects = Arc::new(AtomicU64::new(0));
        let registry = malthus_obs::Registry::new();
        store.register_metrics(&registry);
        {
            let p = Arc::clone(&pipeline);
            registry.counter(
                "kv_pipeline_batches_total",
                "Drained pipeline batches executed",
                &[],
                move || p.batches(),
            );
            let p = Arc::clone(&pipeline);
            registry.gauge(
                "kv_pipeline_max_batch",
                "Largest batch any connection drained in one wakeup",
                &[],
                move || p.max_batch() as f64,
            );
            let p = Arc::clone(&pipeline);
            registry.histogram(
                "kv_pipeline_batch_size",
                "Requests per drained batch (closed plus live connections)",
                &[],
                move || p.batch_size_snapshot(),
            );
            let p = Arc::clone(&pipeline);
            registry.histogram(
                "kv_batch_drain_ns",
                "Wall nanoseconds executing one drained batch under the crew",
                &[],
                move || p.drain_snapshot(),
            );
            let idle = Arc::clone(&idle_disconnects);
            registry.counter(
                "kv_idle_disconnects_total",
                "Connections dropped by the per-connection read timeout",
                &[],
                move || idle.load(Ordering::Relaxed),
            );
        }
        let stage_hists: [Arc<LatencyHistogram>; STAGE_COUNT] =
            std::array::from_fn(|_| Arc::new(LatencyHistogram::new()));
        for stage in Stage::ALL {
            let h = Arc::clone(&stage_hists[stage as usize]);
            registry.histogram(
                "kv_stage_ns",
                "Per-batch latency attributed to one pipeline stage (span tracing)",
                &[("stage", stage.as_str())],
                move || h.snapshot(),
            );
        }
        let slowlog = Arc::new(SlowRing::new(SLOWLOG_CAPACITY));
        {
            let sl = Arc::clone(&slowlog);
            registry.counter(
                "kv_slowlog_inserted_total",
                "Batches that exceeded the slowlog threshold since start",
                &[],
                move || sl.inserted(),
            );
            // Dashboards (kvtop) watch this gauge *decrease* to detect
            // a server restart, i.e. that every cumulative counter
            // above just reset to zero.
            let started = Instant::now();
            registry.gauge(
                "kv_uptime_seconds",
                "Seconds since this service was created",
                &[],
                move || started.elapsed().as_secs_f64(),
            );
            registry.gauge(
                "kv_build_info",
                "Build identity: the value is always 1, the labels are the payload",
                &[("version", env!("CARGO_PKG_VERSION"))],
                || 1.0,
            );
        }
        KvService {
            store,
            pipeline,
            idle_disconnects,
            registry,
            stage_hists,
            slowlog,
            slowlog_threshold_ns: AtomicU64::new(DEFAULT_SLOWLOG_THRESHOLD_US * 1_000),
            batch_seq: AtomicU64::new(0),
        }
    }

    /// Opens a **durable** service over `dir` (per-shard WALs replayed
    /// on open; see [`ShardedKv::open`]), returning the service and
    /// what recovery found — the `kv_server` boot banner.
    pub fn open(
        dir: &Path,
        shards: usize,
        memtable_limit: usize,
        cache_blocks: usize,
    ) -> std::io::Result<(Self, RecoveryReport)> {
        let (store, report) = ShardedKv::open(dir, shards, memtable_limit, cache_blocks)?;
        Ok((Self::from_store(store), report))
    }

    /// Connections dropped by the server's per-connection read
    /// timeout ([`ServeOptions::read_timeout`]).
    pub fn idle_disconnects(&self) -> u64 {
        self.idle_disconnects.load(Ordering::Relaxed)
    }

    pub(crate) fn note_idle_disconnect(&self) {
        self.idle_disconnects.fetch_add(1, Ordering::Relaxed);
    }

    /// The backing sharded store (per-shard lock and stats access).
    pub fn store(&self) -> &ShardedKv {
        &self.store
    }

    /// A shared handle to the backing store — what background workers
    /// that outlive a borrow (the shard healer) hold.
    pub fn store_arc(&self) -> Arc<ShardedKv> {
        Arc::clone(&self.store)
    }

    /// Graceful-shutdown epilogue: final-fsync every healthy shard's
    /// WAL and stamp the clean-shutdown marker in the `MANIFEST` (see
    /// [`ShardedKv::shutdown_clean`]). Call after the serve loop has
    /// drained — a write committed *after* the marker would make the
    /// marker a lie. No-op for memory-only stores.
    pub fn shutdown_clean(&self) -> std::io::Result<()> {
        self.store.shutdown_clean()
    }

    /// Pipeline observability: drained-batch counters and the
    /// batch-size distribution (see [`PipelineStats`]).
    pub fn pipeline_stats(&self) -> &PipelineStats {
        &self.pipeline
    }

    /// The unified metrics registry behind the `METRICS` verb. Other
    /// layers (the crew, embedders) register into it; registration is
    /// replace-on-same-name-and-labels, so re-wiring is idempotent.
    pub fn registry(&self) -> &malthus_obs::Registry {
        &self.registry
    }

    /// Sets the slowlog threshold: batches slower than `us`
    /// microseconds end-to-end retain their stage breakdown for
    /// `SLOWLOG`. 0 disables the slowlog (stage histograms still
    /// collect).
    pub fn set_slowlog_threshold_us(&self, us: u64) {
        self.slowlog_threshold_ns
            .store(us.saturating_mul(1_000), Ordering::Relaxed);
    }

    /// The current slowlog threshold in microseconds (0 = disabled).
    pub fn slowlog_threshold_us(&self) -> u64 {
        self.slowlog_threshold_ns.load(Ordering::Relaxed) / 1_000
    }

    /// The slowlog ring behind the `SLOWLOG` verb.
    pub fn slowlog(&self) -> &SlowRing {
        &self.slowlog
    }

    /// Allocates the next service-wide batch id (1-based; `SLOWLOG`
    /// entries cite it).
    pub fn next_batch_id(&self) -> u64 {
        self.batch_seq
            .fetch_add(1, Ordering::Relaxed)
            .wrapping_add(1)
    }

    /// Closes a finished batch's span: stamps the end-to-end total,
    /// folds every stage duration into the `kv_stage_ns` histograms,
    /// and — when the total meets the slowlog threshold — retains the
    /// full breakdown in the slowlog ring. A detached span is a no-op.
    pub fn finish_span(&self, span: &mut SpanContext) {
        if !span.is_active() {
            return;
        }
        let total = span.finish();
        for stage in Stage::ALL {
            self.stage_hists[stage as usize].record_ns(span.get(stage));
        }
        let threshold = self.slowlog_threshold_ns.load(Ordering::Relaxed);
        if threshold > 0 && total >= threshold {
            self.slowlog.push(&SlowEntry::from_span(span));
        }
    }

    /// Inserts or updates a key (exclusive access to its shard only).
    /// On a durable store the pair is committed to its shard's WAL
    /// before this returns; `Err` means the shard is read-only.
    pub fn put(&self, key: u64, value: u64) -> Result<(), WriteError> {
        self.store.put(key, value)
    }

    /// Point lookup on the key's shard: shared DB lock through
    /// memtable and runs; the exclusive block-cache lock only on a
    /// memtable miss, nested in the fixed db → cache order.
    pub fn get(&self, key: u64) -> Option<u64> {
        self.store.get(key)
    }

    /// `(reads, writes)` served so far, summed across shards (racy
    /// snapshot; exact while quiescent).
    pub fn counters(&self) -> (u64, u64) {
        let stats = self.store.stats();
        (stats.reads(), stats.writes())
    }

    /// CR statistics of the shard DB read-write locks, summed across
    /// shards (reader culls/grants).
    pub fn db_lock_stats(&self) -> malthus_rwlock::RwStats {
        self.store.stats().db_lock_totals()
    }

    /// Executes a request and renders its response line. `Quit` and
    /// `Shutdown` render here too; connection/acceptor control flow is
    /// the caller's job.
    ///
    /// Convenience wrapper over [`KvService::apply_into`] for tests
    /// and one-off callers; the connection handler renders into a
    /// reused per-connection buffer instead.
    pub fn apply<A: AdmissionStats>(&self, req: Request, admission: &A) -> String {
        let mut out = String::new();
        self.apply_into(&req, admission, &mut out);
        out
    }

    /// Executes a request, appending its response line (without the
    /// trailing newline) to `out` — `write!` into a caller-reused
    /// buffer, no per-request response allocation.
    pub fn apply_into<A: AdmissionStats>(&self, req: &Request, admission: &A, out: &mut String) {
        match req {
            Request::Put(k, v) => match self.put(*k, *v) {
                Ok(()) => out.push_str("OK"),
                Err(_) => out.push_str(READONLY_ERR),
            },
            Request::Get(k) => match self.get(*k) {
                Some(v) => {
                    let _ = write!(out, "VAL {v}");
                }
                None => out.push_str("NIL"),
            },
            Request::Mget(keys) => {
                out.push_str("VALS");
                for v in self.store.mget(keys) {
                    match v {
                        Some(v) => {
                            let _ = write!(out, " {v}");
                        }
                        None => out.push_str(" -"),
                    }
                }
            }
            Request::Mset(pairs) => match self.store.mset(pairs) {
                Ok(n) => {
                    let _ = write!(out, "OK {n}");
                }
                Err(_) => out.push_str(READONLY_ERR),
            },
            Request::Scan(start, limit) => {
                let limit = usize::try_from(*limit).unwrap_or(usize::MAX);
                out.push_str("RANGE");
                for (k, v) in self.store.scan(*start, limit) {
                    let _ = write!(out, " {k}={v}");
                }
            }
            Request::Ping => out.push_str("PONG"),
            Request::Stats => {
                // One shard walk for the whole response: counters and
                // lock stats come from the same snapshot, and the
                // per-shard locks (including the exclusive cache
                // locks, which contend with the GET path) are taken
                // once, not twice.
                let store = self.store.stats();
                let (reads, writes) = (store.reads(), store.writes());
                let s = admission.admission_snapshot();
                let db = store.db_lock_totals();
                let (bp50, bp99) = self.pipeline.batch_quantiles();
                let _ = write!(
                    out,
                    "STATS reads={reads} writes={writes} completed={} culls={} \
                     reprovisions={} promotions={} rculls={} rgrants={} \
                     pbatches={} pbatchmax={} pbatch_p50={bp50} pbatch_p99={bp99} \
                     wal_syncs={} wal_errors={} readonly_shards={} \
                     idle_disconnects={} readonly_rejects={} heal_attempts={} \
                     heals={} shards={}",
                    s.completed,
                    s.culls,
                    s.reprovisions,
                    s.promotions,
                    db.reader_culls,
                    db.reader_reprovisions + db.reader_fairness_grants,
                    self.pipeline.batches(),
                    self.pipeline.max_batch(),
                    store.wal_syncs(),
                    store.wal_errors(),
                    store.readonly_shards(),
                    self.idle_disconnects(),
                    store.readonly_rejects(),
                    store.heal_attempts(),
                    store.heals(),
                    self.store.shard_count()
                );
            }
            Request::Metrics => {
                // Multi-line response: the full Prometheus-text-style
                // exposition, terminated by a bare `# EOF` line so a
                // line-oriented client knows where it ends.
                out.push_str(&self.registry.exposition());
                out.push_str("# EOF");
            }
            Request::TraceDump => {
                // Multi-line response: one JSON object per recorded
                // flight-recorder event, `# EOF`-terminated. Empty
                // (just the terminator) when tracing is disabled.
                out.push_str(&malthus_obs::recorder::dump());
                out.push_str("# EOF");
            }
            Request::Slowlog(n) => {
                // Multi-line response: a header, then one breakdown
                // line per retained slow batch (newest first),
                // `# EOF`-terminated.
                let entries = self.slowlog.recent(*n);
                let _ = writeln!(
                    out,
                    "SLOWLOG entries={} inserted={} threshold_us={}",
                    entries.len(),
                    self.slowlog.inserted(),
                    self.slowlog_threshold_us(),
                );
                for e in &entries {
                    let s = &e.stage_ns;
                    let _ = writeln!(
                        out,
                        "BATCH {} OPS {} TOTAL_NS {} READ_NS {} QUEUE_NS {} \
                         LOCK_WAIT_NS {} CULL_WAIT_NS {} EXEC_NS {} \
                         WAL_FSYNC_NS {} FLUSH_NS {}",
                        e.batch_id,
                        e.ops,
                        e.total_ns,
                        s[Stage::Read as usize],
                        s[Stage::Queue as usize],
                        s[Stage::LockWait as usize],
                        s[Stage::CullWait as usize],
                        s[Stage::Exec as usize],
                        s[Stage::WalFsync as usize],
                        s[Stage::Flush as usize],
                    );
                }
                out.push_str("# EOF");
            }
            Request::SlowlogReset => {
                self.slowlog.reset();
                out.push_str("OK");
            }
            Request::Shutdown | Request::Quit => out.push_str("OK"),
        }
    }

    /// Renders the response to one reply of a storage batch.
    fn render_batch_reply(out: &mut String, reply: &BatchReply) {
        match reply {
            BatchReply::Value(Some(v)) => {
                let _ = write!(out, "VAL {v}");
            }
            BatchReply::Value(None) => out.push_str("NIL"),
            BatchReply::Done => out.push_str("OK"),
            BatchReply::Values(vs) => {
                out.push_str("VALS");
                for v in vs {
                    match v {
                        Some(v) => {
                            let _ = write!(out, " {v}");
                        }
                        None => out.push_str(" -"),
                    }
                }
            }
            BatchReply::Wrote(n) => {
                let _ = write!(out, "OK {n}");
            }
            BatchReply::Readonly => out.push_str(READONLY_ERR),
        }
    }

    /// Executes one drained batch, appending every response line (in
    /// request order, newline-terminated, tags echoed) to `out`.
    ///
    /// Maximal contiguous runs of data ops (GET/PUT/MGET/MSET) are
    /// handed to [`ShardedKv::execute_batch`] — grouped by shard, one
    /// lock hold per shard group — so request order is preserved
    /// *exactly*: a `SCAN`, `PING` or `STATS` in the middle of a
    /// batch executes at its position between the runs around it.
    /// Parse errors render `ERR` at their position without touching
    /// the store. A run of one (every request at pipeline depth 1)
    /// skips the grouping machinery entirely and takes the direct
    /// single-op paths — the pre-pipelining hot path, allocation-free
    /// on GET/PUT.
    pub fn apply_batch<A: AdmissionStats>(
        &self,
        batch: &[Parsed],
        admission: &A,
        out: &mut String,
    ) {
        self.apply_batch_span(batch, admission, out, &mut SpanContext::detached());
    }

    /// [`KvService::apply_batch`] with span tracing. The batch's lock
    /// admission and cull-residency waits are drained from the crew
    /// worker's thread-local accumulators (reset on entry so stale
    /// waits from unrelated prior work cannot pollute this batch),
    /// its group-commit fsyncs flow in through
    /// [`ShardedKv::execute_batch_span`], and whatever execution time
    /// remains after subtracting those becomes the `exec` stage — so
    /// the stage sum tracks the batch's wall time by construction.
    pub fn apply_batch_span<A: AdmissionStats>(
        &self,
        batch: &[Parsed],
        admission: &A,
        out: &mut String,
        span: &mut SpanContext,
    ) {
        let t0 = if span.is_active() {
            span::take_waits(); // discard waits that are not ours
            span::now_ns()
        } else {
            0
        };
        let mut i = 0;
        while i < batch.len() {
            // Collect the maximal run of batchable data ops at i.
            let run_end = batch[i..]
                .iter()
                .position(|p| !p.is_batchable())
                .map_or(batch.len(), |off| i + off);
            if run_end > i + 1 {
                let ops: Vec<BatchOp<'_>> = batch[i..run_end]
                    .iter()
                    .map(|p| match &p.body {
                        Ok(Request::Get(k)) => BatchOp::Get(*k),
                        Ok(Request::Put(k, v)) => BatchOp::Put(*k, *v),
                        Ok(Request::Mget(keys)) => BatchOp::Mget(keys),
                        Ok(Request::Mset(pairs)) => BatchOp::Mset(pairs),
                        _ => unreachable!("run contains only data ops"),
                    })
                    .collect();
                let replies = self.store.execute_batch_span(&ops, span);
                for (p, reply) in batch[i..run_end].iter().zip(&replies) {
                    write_tag(out, p.tag);
                    Self::render_batch_reply(out, reply);
                    out.push('\n');
                }
                i = run_end;
                continue;
            }
            let p = &batch[i];
            write_tag(out, p.tag);
            match &p.body {
                Ok(req) => self.apply_into(req, admission, out),
                Err(e) => {
                    let _ = write!(out, "ERR {e}");
                }
            }
            out.push('\n');
            i += 1;
        }
        if t0 != 0 {
            let elapsed = span::now_ns().saturating_sub(t0);
            let (lock_wait, cull_wait) = span::take_waits();
            span.add(Stage::LockWait, lock_wait);
            span.add(Stage::CullWait, cull_wait);
            // Exec = everything else this batch did on the worker:
            // elapsed minus admission, cull residency and fsyncs. The
            // subtraction (rather than timing each op) keeps the hot
            // loop clock-free and makes the stages partition the
            // batch's execution window exactly.
            span.add(
                Stage::Exec,
                elapsed.saturating_sub(lock_wait + cull_wait + span.get(Stage::WalFsync)),
            );
        }
    }
}

/// One request of a drained batch: its echo tag (if tagged) and the
/// parse result — errors ride along so `ERR` renders at the request's
/// position in the response stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Parsed {
    /// The `#<tag>` to echo, if the request carried one.
    pub tag: Option<u64>,
    /// The parsed request, or the parse error to report.
    pub body: Result<Request, String>,
}

impl Parsed {
    /// Parses one raw line: tag prefix first, then the verb grammar.
    /// A malformed tag yields an untagged error body.
    pub fn from_line(line: &str) -> Parsed {
        match split_tag(line) {
            Ok((tag, rest)) => Parsed {
                tag,
                body: Request::parse(rest),
            },
            Err(e) => Parsed {
                tag: None,
                body: Err(e),
            },
        }
    }

    /// Whether this request can join a storage batch run (data ops
    /// with parse errors, control verbs and aggregates excluded).
    fn is_batchable(&self) -> bool {
        matches!(
            self.body,
            Ok(Request::Get(_) | Request::Put(..) | Request::Mget(_) | Request::Mset(_))
        )
    }
}

impl Default for KvService {
    fn default() -> Self {
        Self::new(DEFAULT_MEMTABLE_LIMIT, DEFAULT_CACHE_BLOCKS)
    }
}

impl std::fmt::Debug for KvService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvService").finish_non_exhaustive()
    }
}

/// Handle used to stop a running [`serve`] loop.
#[derive(Clone)]
pub struct ServerControl {
    pub(crate) stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ServerControl {
    /// The address the server is accepting on (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the accept loop to exit; the loop is unblocked with a
    /// self-connect and open connections are disconnected by
    /// [`serve`] on its way out.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the blocking `accept`.
        let _ = TcpStream::connect(self.addr);
    }
}

impl std::fmt::Debug for ServerControl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerControl")
            .field("addr", &self.addr)
            .finish()
    }
}

/// Per-server connection-handling knobs for [`serve_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeOptions {
    /// Per-connection read timeout. `None` (the default) never times
    /// out — byte-compatible with the pre-timeout server. With
    /// `Some(t)`, a connection idle (no request bytes) for `t` is
    /// disconnected and counted in `STATS idle_disconnects=`, so a
    /// dead client cannot pin its reader thread forever.
    pub read_timeout: Option<Duration>,
}

/// Binds `addr` and returns the listener plus its control handle.
pub fn bind(addr: &str) -> std::io::Result<(TcpListener, ServerControl)> {
    let listener = TcpListener::bind(addr)?;
    let control = ServerControl {
        stop: Arc::new(AtomicBool::new(false)),
        addr: listener.local_addr()?,
    };
    Ok((listener, control))
}

/// Runs the accept loop until [`ServerControl::stop`] is called or a
/// client sends `SHUTDOWN`; on stop, still-open connections are
/// disconnected (in-flight requests already on the crew complete, but
/// their responses may not be deliverable).
///
/// Each connection gets a reader thread that drains complete request
/// lines per wakeup and submits each drained batch to `crew` as one
/// task; responses are rendered and flushed (one write per batch)
/// from the crew worker. Clients may run closed-loop (one outstanding
/// request) or pipelined (a tagged window, as `kv_load
/// --pipeline-depth` does). Transient `accept` failures (`EMFILE`,
/// `ECONNABORTED`, …) are logged and survived, not propagated.
pub fn serve(
    listener: TcpListener,
    control: &ServerControl,
    crew: Arc<WorkCrew>,
    service: Arc<KvService>,
) -> std::io::Result<()> {
    serve_with(listener, control, crew, service, ServeOptions::default())
}

/// [`serve`] with explicit [`ServeOptions`] (per-connection read
/// timeout).
pub fn serve_with(
    listener: TcpListener,
    control: &ServerControl,
    crew: Arc<WorkCrew>,
    service: Arc<KvService>,
    opts: ServeOptions,
) -> std::io::Result<()> {
    // The crew serving this listener contributes its counters to the
    // service's unified registry (idempotent: replaces on re-serve).
    crew.register_metrics(service.registry());
    let mut conns: Vec<(std::thread::JoinHandle<()>, TcpStream)> = Vec::new();
    for stream in listener.incoming() {
        if control.stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(e) => {
                // One refused/aborted connection must not take down
                // the service; back off briefly in case the cause is
                // fd exhaustion.
                eprintln!("# kv: accept error (continuing): {e}");
                std::thread::sleep(std::time::Duration::from_millis(10));
                continue;
            }
        };
        // Reap finished connections so a long-running server's
        // bookkeeping stays proportional to *open* connections.
        conns.retain(|(h, _)| !h.is_finished());
        let Ok(peer) = stream.try_clone() else {
            continue; // no fd left for the shutdown handle: drop it
        };
        let crew = Arc::clone(&crew);
        let service = Arc::clone(&service);
        let control = control.clone();
        conns.push((
            std::thread::spawn(move || {
                handle_connection(stream, &crew, &service, &control, opts);
            }),
            peer,
        ));
    }
    // Graceful drain: close only the *read* half of every connection.
    // Readers blocked in `read_line` observe EOF once the kernel
    // delivers any bytes already queued, finish the batch they have in
    // flight, flush its responses over the still-open write half, and
    // exit — so a request the server accepted before stop is answered,
    // not dropped, and the joins below cannot wait on an idle client.
    for (_, peer) in &conns {
        let _ = peer.shutdown(std::net::Shutdown::Read);
    }
    for (c, _) in conns {
        let _ = c.join();
    }
    Ok(())
}

fn handle_connection(
    stream: TcpStream,
    crew: &Arc<WorkCrew>,
    service: &Arc<KvService>,
    control: &ServerControl,
    opts: ServeOptions,
) {
    // Few short responses per flush: Nagle + the peer's delayed ACK
    // would otherwise stall every reply by tens of milliseconds.
    let _ = stream.set_nodelay(true);
    if opts.read_timeout.is_some() {
        let _ = stream.set_read_timeout(opts.read_timeout);
    }
    let Ok(writer) = stream.try_clone().map(Arc::new) else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    // Reused across batches: the parsed-request vector and the
    // rendered-response buffer round-trip through the batch task's
    // completion channel, so the steady state allocates per *batch*
    // (one boxed task + one channel), never per request.
    let mut batch: Vec<Parsed> = Vec::new();
    let mut out = String::new();
    // Per-connection batch-size distribution, visible to quantile
    // queries while the connection lives and folded into the
    // service-wide histogram on disconnect (STATS pbatch_p50/p99).
    let conn_hist = service.pipeline_stats().register_connection();
    malthus_obs::record(malthus_obs::EventKind::ConnOpen, 0, 0);
    'conn: loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break, // disconnected
            // Only this *blocking* read can hit the idle timeout: the
            // drain loop below reads already-buffered bytes.
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                service.note_idle_disconnect();
                malthus_obs::record(malthus_obs::EventKind::ConnIdleReap, 0, 0);
                break;
            }
            Err(_) => break,
            Ok(_) => {}
        }
        // Span tracing: the batch's span is born here, right after the
        // blocking read delivered the first byte — so the Read stage
        // covers drain + parse, never the idle wait for traffic.
        let mut span = if span::enabled() {
            SpanContext::start(0, 0) // identity assigned at submit
        } else {
            SpanContext::detached()
        };
        let read_t0 = if span.is_active() { span::now_ns() } else { 0 };
        // Drain-per-wakeup: after the blocking read above, every
        // further *complete* line already sitting in the BufReader
        // joins this batch — a pipelined burst mostly arrives in one
        // `fill_buf`, so the whole window becomes one batch. Only
        // buffered lines are taken (never another blocking read), so
        // the batch is naturally bounded by the read-buffer capacity
        // and a slow client cannot stall a crew worker.
        let mut control_verb: Option<(Option<u64>, Request)> = None;
        loop {
            let trimmed = line.trim();
            if !trimmed.is_empty() {
                let p = Parsed::from_line(trimmed);
                match p.body {
                    Ok(Request::Quit) => {
                        control_verb = Some((p.tag, Request::Quit));
                        break;
                    }
                    Ok(Request::Shutdown) => {
                        control_verb = Some((p.tag, Request::Shutdown));
                        break;
                    }
                    _ => batch.push(p),
                }
            }
            if !reader.buffer().contains(&b'\n') {
                break;
            }
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
        if !batch.is_empty() {
            let n = batch.len() as u64;
            service.pipeline_stats().note_batch(n);
            conn_hist.record_ns(n);
            span.set_identity(service.next_batch_id(), n as u32);
            if read_t0 != 0 {
                span.add(Stage::Read, span::now_ns().saturating_sub(read_t0));
            }
            // One crew task per batch: the batch is the admission
            // unit. The channel returns the buffers for reuse and
            // doubles as the completion signal — the reader keeps a
            // single batch in flight so responses from one connection
            // never interleave; the wait overlaps the client's own
            // turnaround, and the next burst accumulates in the
            // socket meanwhile.
            let (tx, rx) = mpsc::channel();
            let service_task = Arc::clone(service);
            let crew_task = Arc::clone(crew);
            let writer_task = Arc::clone(&writer);
            let mut reqs = std::mem::take(&mut batch);
            let mut buf = std::mem::take(&mut out);
            let submit_ns = if span.is_active() { span::now_ns() } else { 0 };
            let submitted = crew.submit(move || {
                // Queue stage: submit → this task actually starting on
                // a crew worker (crew backlog + admission).
                if submit_ns != 0 {
                    span.add(Stage::Queue, span::now_ns().saturating_sub(submit_ns));
                }
                buf.clear();
                let drain_start = Instant::now();
                service_task.apply_batch_span(&reqs, &crew_task, &mut buf, &mut span);
                let drain_ns = drain_start.elapsed().as_nanos() as u64;
                service_task.pipeline_stats().note_drain_ns(drain_ns);
                // All of the batch's responses leave in one write.
                let flush_t0 = if span.is_active() { span::now_ns() } else { 0 };
                let _ = write_all(&writer_task, buf.as_bytes());
                if flush_t0 != 0 {
                    span.add(Stage::Flush, span::now_ns().saturating_sub(flush_t0));
                }
                service_task.finish_span(&mut span);
                reqs.clear();
                let _ = tx.send((reqs, buf));
            });
            if submitted.is_err() {
                let _ = write_all(&writer, b"ERR shutting down\n");
                break 'conn;
            }
            match rx.recv() {
                Ok((reqs_back, buf_back)) => {
                    batch = reqs_back;
                    out = buf_back;
                }
                // The batch task died without reporting (panicked
                // mid-request): the response stream is broken, close.
                Err(_) => break 'conn,
            }
        }
        match control_verb {
            Some((tag, Request::Shutdown)) => {
                out.clear();
                write_tag(&mut out, tag);
                out.push_str("OK\n");
                let _ = write_all(&writer, out.as_bytes());
                control.stop();
                break 'conn;
            }
            Some(_) => break 'conn, // QUIT: close without a response
            None => {}
        }
    }
    // The accept loop holds its own clone of this socket (its
    // shutdown handle), so merely dropping our halves would leave the
    // connection open and the peer blocked in read. `shutdown` acts
    // on the socket itself: the peer sees EOF immediately.
    let _ = reader.get_ref().shutdown(std::net::Shutdown::Both);
    service.pipeline_stats().retire_connection(conn_hist);
}

/// Writes `bytes` (one or more newline-terminated response lines) as
/// a single `write` so a batch's responses leave in one TCP segment
/// where they fit.
fn write_all(stream: &Arc<TcpStream>, bytes: &[u8]) -> std::io::Result<()> {
    let mut s: &TcpStream = stream;
    s.write_all(bytes)
}

/// A minimal client for tests and the load generator: closed-loop via
/// [`KvClient::roundtrip`], or pipelined via
/// [`KvClient::send_tagged`]/[`KvClient::recv_tagged`] with a window
/// of in-flight tags.
///
/// All receive methods return `&str` slices **borrowed from the
/// client's reused line buffer** — the response is valid until the
/// next call, and the read hot path allocates nothing.
#[derive(Debug)]
pub struct KvClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    line: String,
    out: String,
}

/// Default connect attempts for [`KvClient::connect_with_backoff`]:
/// 3 tries with 10 ms → 40 ms capped exponential backoff.
pub const CONNECT_TRIES: u32 = 3;
/// First retry delay of the backoff schedule.
pub const CONNECT_FIRST_DELAY: Duration = Duration::from_millis(10);
/// Retry delay cap of the backoff schedule.
pub const CONNECT_DELAY_CAP: Duration = Duration::from_millis(40);

impl KvClient {
    /// Connects to a running server.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(KvClient {
            reader: BufReader::new(stream),
            writer,
            line: String::new(),
            out: String::new(),
        })
    }

    /// [`KvClient::connect`] with up to `tries` attempts under capped
    /// exponential backoff (10 ms doubling to a 40 ms cap between
    /// attempts), killing the startup race where a load generator
    /// dials before the server's listener is up. `tries` is clamped
    /// to at least 1; the last attempt's error is returned. The
    /// default schedule ([`CONNECT_TRIES`]) gives up after ~70 ms —
    /// CI wrappers that race `cargo run` startup pass a larger
    /// `tries`.
    /// Each sleep is jittered ±25%: a thousand clients reconnecting
    /// to a restarted server would otherwise retry in lockstep and
    /// arrive as a synchronized stampede on every backoff step.
    pub fn connect_with_backoff(addr: SocketAddr, tries: u32) -> std::io::Result<Self> {
        let tries = tries.max(1);
        let mut delay = CONNECT_FIRST_DELAY;
        let mut last_err = None;
        // Seeded per call from the wall clock (nonzero by | 1), so
        // concurrent clients desynchronize from each other.
        let rng = malthus_park::XorShift64::new(
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map_or(1, |d| d.as_nanos() as u64)
                | 1,
        );
        for attempt in 0..tries {
            match Self::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) => last_err = Some(e),
            }
            if attempt + 1 < tries {
                let jitter_pct = 75 + rng.next_below(51); // 75..=125
                std::thread::sleep(delay.mul_f64(jitter_pct as f64 / 100.0));
                delay = (delay * 2).min(CONNECT_DELAY_CAP);
            }
        }
        Err(last_err.expect("at least one attempt"))
    }

    /// Sends one request line (terminator appended) as a single
    /// write, without waiting for the response.
    pub fn send_line(&mut self, request: &str) -> std::io::Result<()> {
        self.out.clear();
        self.out.push_str(request);
        self.out.push('\n');
        self.writer.write_all(self.out.as_bytes())
    }

    /// Sends one request under a `#<tag>` pipeline prefix without
    /// waiting; the matching response will echo the tag.
    pub fn send_tagged(&mut self, tag: u64, request: &str) -> std::io::Result<()> {
        self.out.clear();
        let _ = write!(self.out, "#{tag} {request}");
        self.out.push('\n');
        self.writer.write_all(self.out.as_bytes())
    }

    /// Receives one response line, borrowed from the reused buffer
    /// (valid until the next client call).
    pub fn recv_line(&mut self) -> std::io::Result<&str> {
        self.line.clear();
        let n = self.reader.read_line(&mut self.line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(self.line.trim_end())
    }

    /// Receives one **tagged** response line, returning `(tag,
    /// response)` with the response borrowed from the reused buffer.
    /// An untagged or tag-garbled line is an
    /// [`InvalidData`](std::io::ErrorKind::InvalidData) error —
    /// pipelined callers have lost framing at that point.
    pub fn recv_tagged(&mut self) -> std::io::Result<(u64, &str)> {
        self.line.clear();
        let n = self.reader.read_line(&mut self.line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        let trimmed = self.line.trim_end();
        match split_tag(trimmed) {
            Ok((Some(tag), rest)) => Ok((tag, rest)),
            Ok((None, _)) | Err(_) => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("expected a tagged response, got {trimmed:?}"),
            )),
        }
    }

    /// Sends one request line and returns the response line, borrowed
    /// from the reused buffer (valid until the next client call).
    pub fn roundtrip(&mut self, request: &str) -> std::io::Result<&str> {
        self.send_line(request)?;
        self.recv_line()
    }

    /// Sends one request whose response is a **multi-line document**
    /// terminated by a bare `# EOF` line (`METRICS`, `TRACE DUMP`),
    /// returning the body with the terminator stripped. Owned, not
    /// borrowed: documents outlive the reused line buffer.
    pub fn fetch_document(&mut self, request: &str) -> std::io::Result<String> {
        self.send_line(request)?;
        let mut doc = String::new();
        loop {
            self.line.clear();
            let n = self.reader.read_line(&mut self.line)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-document",
                ));
            }
            if self.line.trim_end() == "# EOF" {
                return Ok(doc);
            }
            doc.push_str(&self.line);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crew::PoolConfig;

    #[test]
    fn parse_round_trips_the_grammar() {
        assert_eq!(Request::parse("PUT 1 2"), Ok(Request::Put(1, 2)));
        assert_eq!(Request::parse("GET 7"), Ok(Request::Get(7)));
        assert_eq!(
            Request::parse("MGET 1 2 3"),
            Ok(Request::Mget(vec![1, 2, 3]))
        );
        assert_eq!(
            Request::parse("MSET 1 10 2 20"),
            Ok(Request::Mset(vec![(1, 10), (2, 20)]))
        );
        assert_eq!(Request::parse("SCAN 5 100"), Ok(Request::Scan(5, 100)));
        assert_eq!(Request::parse("PING"), Ok(Request::Ping));
        assert_eq!(Request::parse("STATS"), Ok(Request::Stats));
        assert_eq!(Request::parse("SHUTDOWN"), Ok(Request::Shutdown));
        assert_eq!(Request::parse("QUIT"), Ok(Request::Quit));
        assert_eq!(Request::parse("  GET   9  "), Ok(Request::Get(9)));
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(Request::parse("").is_err());
        assert!(Request::parse("PUT 1").is_err());
        assert!(Request::parse("PUT 1 2 3").is_err());
        assert!(Request::parse("GET banana").is_err());
        assert!(Request::parse("DEL 1").is_err());
        assert!(Request::parse("MGET").is_err());
        assert!(Request::parse("MGET 1 banana").is_err());
        assert!(Request::parse("MSET").is_err());
        assert!(Request::parse("MSET 1 2 3").is_err(), "odd pair list");
        assert!(Request::parse("SCAN 1").is_err());
        assert!(Request::parse("SCAN 1 2 3").is_err());
    }

    #[test]
    fn parse_caps_batch_sizes() {
        let huge: String = std::iter::once("MGET".to_string())
            .chain((0..=MAX_BATCH_KEYS as u64).map(|k| k.to_string()))
            .collect::<Vec<_>>()
            .join(" ");
        assert!(Request::parse(&huge).is_err());
        let ok: String = std::iter::once("MGET".to_string())
            .chain((0..MAX_BATCH_KEYS as u64).map(|k| k.to_string()))
            .collect::<Vec<_>>()
            .join(" ");
        assert!(Request::parse(&ok).is_ok());
    }

    #[test]
    fn split_tag_round_trips_the_framing() {
        assert_eq!(split_tag("GET 1"), Ok((None, "GET 1")));
        assert_eq!(split_tag("#0 GET 1"), Ok((Some(0), "GET 1")));
        assert_eq!(split_tag("#42 PUT 1 2"), Ok((Some(42), "PUT 1 2")));
        assert_eq!(
            split_tag(&format!("#{} PING", u64::MAX)),
            Ok((Some(u64::MAX), "PING"))
        );
        // Tag but no body: parse of "" fails later as "empty request".
        assert_eq!(split_tag("#7"), Ok((Some(7), "")));
        assert_eq!(split_tag("#7   GET   1"), Ok((Some(7), "GET   1")));
        assert!(split_tag("#").is_err());
        assert!(split_tag("#banana GET 1").is_err());
        assert!(split_tag("#-3 GET 1").is_err());
        assert!(split_tag("#1.5 GET 1").is_err());
    }

    #[test]
    fn parsed_carries_tags_and_errors_positionally() {
        let p = Parsed::from_line("#9 GET 4");
        assert_eq!(p.tag, Some(9));
        assert_eq!(p.body, Ok(Request::Get(4)));
        let p = Parsed::from_line("#9 BOGUS");
        assert_eq!(p.tag, Some(9), "tag echoes even on a bad verb");
        assert!(p.body.is_err());
        let p = Parsed::from_line("#oops GET 4");
        assert_eq!(p.tag, None, "malformed tag cannot be echoed");
        assert!(p.body.unwrap_err().contains("malformed tag"));
    }

    #[test]
    fn apply_batch_preserves_request_order_and_tags() {
        let svc = KvService::with_shards(4, 64, 256);
        let crew = WorkCrew::new(PoolConfig::unrestricted(1, 8));
        let batch: Vec<Parsed> = [
            "#1 PUT 10 100",
            "#2 GET 10",    // same-key read after write, same batch
            "GET 10",       // untagged mid-stream
            "#3 BOGUS",     // parse error renders at its position
            "#4 SCAN 10 2", // aggregate splits the data run
            "#5 MSET 11 110 12 120",
            "#6 MGET 10 11 99",
            "#7 PING",
        ]
        .iter()
        .map(|l| Parsed::from_line(l))
        .collect();
        let mut out = String::new();
        svc.apply_batch(&batch, &crew, &mut out);
        assert_eq!(
            out,
            "#1 OK\n\
             #2 VAL 100\n\
             VAL 100\n\
             #3 ERR unknown verb BOGUS\n\
             #4 RANGE 10=100\n\
             #5 OK 2\n\
             #6 VALS 100 110 -\n\
             #7 PONG\n"
        );
        crew.shutdown();
    }

    #[test]
    fn apply_batch_amortizes_write_admission_per_shard() {
        // 32 puts on one shard in one batch: exactly one exclusive
        // DB-lock acquisition — the admission amortization the whole
        // pipelined protocol exists for.
        let svc = KvService::with_shards(1, 1_024, 256);
        let crew = WorkCrew::new(PoolConfig::unrestricted(1, 8));
        let before = svc.store().stats().per_shard[0].db_lock.write_episodes;
        let lines: Vec<String> = (0..32u64).map(|k| format!("#{k} PUT {k} {k}")).collect();
        let batch: Vec<Parsed> = lines.iter().map(|l| Parsed::from_line(l)).collect();
        let mut out = String::new();
        svc.apply_batch(&batch, &crew, &mut out);
        let after = svc.store().stats().per_shard[0].db_lock.write_episodes;
        assert_eq!(after - before, 1, "one write episode for 32 puts");
        assert_eq!(out.lines().count(), 32);
        for (k, l) in out.lines().enumerate() {
            assert_eq!(l, format!("#{k} OK"));
        }
        crew.shutdown();
    }

    #[test]
    fn stats_reports_pipeline_fields_before_shards() {
        let svc = KvService::with_shards(2, 64, 256);
        let crew = WorkCrew::new(PoolConfig::unrestricted(1, 8));
        let stats = svc.apply(Request::Stats, &crew);
        assert!(
            stats.contains("pbatches=0 pbatchmax=0 pbatch_p50=0 pbatch_p99=0"),
            "{stats}"
        );
        assert!(
            stats.contains("wal_syncs=0 wal_errors=0 readonly_shards=0 idle_disconnects=0"),
            "{stats}"
        );
        assert!(stats.ends_with("shards=2"), "{stats}");
        crew.shutdown();
    }

    #[test]
    fn metrics_exposition_covers_every_layer() {
        let svc = KvService::with_shards(2, 64, 256);
        let crew = WorkCrew::new(PoolConfig::unrestricted(1, 8));
        crew.register_metrics(svc.registry());
        svc.put(1, 10).unwrap();
        svc.put(2, 20).unwrap();
        assert_eq!(svc.get(1), Some(10));
        let doc = svc.apply(Request::Metrics, &crew);
        // One unified exposition: shard counters, per-shard lock
        // counters, crew counters, WAL/latency histograms, and the
        // hot-shard gauge, `# EOF`-terminated.
        for needle in [
            "# HELP kv_shard_reads_total",
            "# TYPE kv_shard_reads_total counter",
            "kv_shard_reads_total{shard=\"0\"}",
            "kv_shard_writes_total{shard=\"1\"}",
            "lock_write_episodes_total{lock=\"db\",shard=\"0\"}",
            "crew_completed_total",
            "crew_active_workers",
            "kv_shard_wal_syncs_total{shard=\"0\"}",
            "# TYPE kv_wal_fsync_ns histogram",
            "kv_wal_fsync_ns_count",
            "# TYPE kv_pipeline_batch_size histogram",
            "kv_batch_drain_ns_count",
            "kv_hottest_shard_write_share",
            "kv_idle_disconnects_total 0",
            "# TYPE kv_stage_ns histogram",
            "kv_stage_ns_bucket{stage=\"lock_wait\",le=",
            "kv_stage_ns_count{stage=\"exec\"}",
            "kv_slowlog_inserted_total 0",
            "kv_uptime_seconds",
            "kv_build_info{version=\"",
        ] {
            assert!(doc.contains(needle), "missing {needle:?} in:\n{doc}");
        }
        assert!(doc.ends_with("# EOF"), "{doc}");
        crew.shutdown();
    }

    #[test]
    fn parse_slowlog_grammar() {
        assert_eq!(
            Request::parse("SLOWLOG"),
            Ok(Request::Slowlog(DEFAULT_SLOWLOG_ENTRIES))
        );
        assert_eq!(Request::parse("SLOWLOG 5"), Ok(Request::Slowlog(5)));
        assert_eq!(Request::parse("SLOWLOG RESET"), Ok(Request::SlowlogReset));
        assert!(Request::parse("SLOWLOG banana").is_err());
        assert!(Request::parse("SLOWLOG 5 6").is_err());
        assert!(Request::parse("SLOWLOG RESET 2").is_err());
    }

    #[test]
    fn span_stage_sum_tracks_batch_total_within_tolerance() {
        // Acceptance: the per-stage breakdown must account for the
        // batch's end-to-end time — the stages partition the
        // execution window, so their sum never exceeds the total and
        // trails it only by the few stamps outside any stage.
        let svc = KvService::with_shards(4, 4_096, 256);
        let crew = WorkCrew::new(PoolConfig::unrestricted(1, 8));
        span::set_enabled(true);
        let mset: String = std::iter::once("MSET".to_string())
            .chain((0..512u64).flat_map(|k| [k.to_string(), (k * 7).to_string()]))
            .collect::<Vec<_>>()
            .join(" ");
        let lines = [mset.as_str(), "MGET 1 2 3 4 5 6 7 8", "SCAN 0 64"];
        let batch: Vec<Parsed> = lines.iter().map(|l| Parsed::from_line(l)).collect();
        let mut span = SpanContext::start(1, batch.len() as u32);
        let mut out = String::new();
        svc.apply_batch_span(&batch, &crew, &mut out, &mut span);
        svc.finish_span(&mut span);
        let total = span.total_ns();
        let sum = span.stage_sum();
        assert!(total > 0, "finish must stamp a real total");
        assert!(span.get(Stage::Exec) > 0, "a 512-pair MSET takes time");
        assert!(sum <= total, "stages are disjoint sub-intervals: {span:?}");
        let slack = total / 10 + 50_000; // 10% + 50us floor for tiny batches
        assert!(
            total - sum <= slack,
            "unattributed {} of {total} ns exceeds {slack}: {span:?}",
            total - sum
        );
        crew.shutdown();
    }

    #[test]
    fn slowlog_verb_returns_breakdowns_and_reset_hides_them() {
        let svc = KvService::with_shards(1, 4_096, 256);
        let crew = WorkCrew::new(PoolConfig::unrestricted(1, 8));
        span::set_enabled(true);
        svc.set_slowlog_threshold_us(1); // ~everything qualifies
        assert_eq!(svc.slowlog_threshold_us(), 1);
        // A batch slow enough (hundreds of puts) to clear 1us.
        let lines: Vec<String> = (0..256u64).map(|k| format!("PUT {k} {k}")).collect();
        let batch: Vec<Parsed> = lines.iter().map(|l| Parsed::from_line(l)).collect();
        let mut span = SpanContext::start(7, batch.len() as u32);
        let mut out = String::new();
        svc.apply_batch_span(&batch, &crew, &mut out, &mut span);
        svc.finish_span(&mut span);
        let doc = svc.apply(Request::Slowlog(10), &crew);
        assert!(
            doc.starts_with("SLOWLOG entries=1 inserted=1 threshold_us=1\n"),
            "{doc}"
        );
        assert!(doc.contains("BATCH 7 OPS 256 TOTAL_NS "), "{doc}");
        for field in [
            "READ_NS",
            "QUEUE_NS",
            "LOCK_WAIT_NS",
            "CULL_WAIT_NS",
            "EXEC_NS",
            "WAL_FSYNC_NS",
            "FLUSH_NS",
        ] {
            assert!(doc.contains(field), "missing {field} in:\n{doc}");
        }
        assert!(doc.ends_with("# EOF"), "{doc}");
        // RESET hides the entries but keeps the inserted count.
        assert_eq!(svc.apply(Request::SlowlogReset, &crew), "OK");
        let doc = svc.apply(Request::Slowlog(10), &crew);
        assert!(doc.starts_with("SLOWLOG entries=0 inserted=1"), "{doc}");
        // Threshold 0 disables insertion entirely.
        svc.set_slowlog_threshold_us(0);
        let mut span = SpanContext::start(8, batch.len() as u32);
        let mut out = String::new();
        svc.apply_batch_span(&batch, &crew, &mut out, &mut span);
        svc.finish_span(&mut span);
        assert_eq!(
            svc.slowlog().inserted(),
            1,
            "disabled slowlog must not grow"
        );
        // The stage histograms collected regardless.
        assert_eq!(svc.apply(Request::SlowlogReset, &crew), "OK");
        crew.shutdown();
    }

    #[test]
    fn slowlog_over_tcp_records_pipelined_batches() {
        let (listener, control) = bind("127.0.0.1:0").unwrap();
        let addr = control.addr();
        let crew = Arc::new(WorkCrew::new(PoolConfig::unrestricted(2, 16)));
        let svc = Arc::new(KvService::with_shards(1, 4_096, 256));
        span::set_enabled(true);
        svc.set_slowlog_threshold_us(1); // everything is "slow"
        let server = {
            let crew = Arc::clone(&crew);
            let svc = Arc::clone(&svc);
            let control = control.clone();
            std::thread::spawn(move || serve(listener, &control, crew, svc).unwrap())
        };
        let mut c = KvClient::connect(addr).unwrap();
        // A pipelined window: the whole burst drains as one traced
        // batch (or a few, depending on TCP segmentation).
        for t in 0..64u64 {
            c.send_tagged(t, &format!("PUT {t} {t}")).unwrap();
        }
        for _ in 0..64 {
            let (_, resp) = c.recv_tagged().unwrap();
            assert_eq!(resp, "OK");
        }
        let doc = c.fetch_document("SLOWLOG 64").unwrap();
        let header = doc.lines().next().unwrap_or_default().to_string();
        assert!(header.starts_with("SLOWLOG entries="), "{doc}");
        assert!(!header.starts_with("SLOWLOG entries=0"), "{doc}");
        let entry = doc
            .lines()
            .find(|l| l.starts_with("BATCH "))
            .unwrap_or_else(|| panic!("no BATCH line in:\n{doc}"));
        assert!(entry.contains(" TOTAL_NS "), "{entry}");
        assert!(entry.contains(" EXEC_NS "), "{entry}");
        assert_eq!(c.roundtrip("SLOWLOG RESET").unwrap(), "OK");
        assert_eq!(c.roundtrip("SHUTDOWN").unwrap(), "OK");
        server.join().unwrap();
        crew.shutdown();
    }

    #[test]
    fn trace_dump_renders_recorded_events() {
        let svc = KvService::with_shards(1, 64, 256);
        let crew = WorkCrew::new(PoolConfig::unrestricted(1, 8));
        malthus_obs::recorder::enable(256, 1);
        malthus_obs::record(malthus_obs::EventKind::ConnOpen, 57_005, 48_879);
        let doc = svc.apply(Request::TraceDump, &crew);
        malthus_obs::recorder::disable();
        assert!(doc.ends_with("# EOF"), "{doc}");
        let marker = doc
            .lines()
            .find(|l| l.contains("\"event\":\"conn_open\"") && l.contains("\"a\":57005"))
            .unwrap_or_else(|| panic!("marker event missing in:\n{doc}"));
        assert!(marker.contains("\"b\":48879"), "{marker}");
        assert!(marker.starts_with('{') && marker.ends_with('}'), "{marker}");
        crew.shutdown();
    }

    #[test]
    fn pbatch_quantiles_see_live_connections() {
        let svc = KvService::with_shards(1, 64, 256);
        let crew = WorkCrew::new(PoolConfig::unrestricted(1, 8));
        let conn = svc.pipeline_stats().register_connection();
        for _ in 0..8 {
            conn.record_ns(16);
        }
        // The connection is still open, yet its batches are already
        // visible to the quantiles (the bug this fixes: they used to
        // appear only after disconnect).
        let (p50, p99) = svc.pipeline_stats().batch_quantiles();
        assert!(p50 > 0 && p99 > 0, "live batches invisible: ({p50}, {p99})");
        assert_eq!(svc.pipeline_stats().merged_batches(), 0, "not folded yet");
        assert_eq!(svc.pipeline_stats().batch_size_snapshot().count(), 8);
        let stats = svc.apply(Request::Stats, &crew);
        assert!(!stats.contains("pbatch_p50=0"), "{stats}");
        // Retiring folds the histogram into the base exactly once —
        // the merged view must not double-count.
        svc.pipeline_stats().retire_connection(conn);
        assert_eq!(svc.pipeline_stats().merged_batches(), 8);
        assert_eq!(svc.pipeline_stats().batch_size_snapshot().count(), 8);
        assert_eq!(svc.pipeline_stats().batch_quantiles(), (p50, p99));
        crew.shutdown();
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "malthus-kv-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn readonly_shard_renders_err_on_the_wire() {
        use malthus_storage::{FaultPlan, WalOptions};
        let dir = temp_dir("readonly");
        let opts = WalOptions {
            faults: vec![(
                0,
                FaultPlan {
                    fail_sync_at: Some(0),
                    ..FaultPlan::default()
                },
            )],
            ..WalOptions::default()
        };
        // Single shard so key 1 is guaranteed to land on the faulty
        // one; the multi-shard isolation story is covered at the
        // storage layer.
        let (store, _) = ShardedKv::open_with(&dir, 1, 64, 256, opts).unwrap();
        let svc = Arc::new(KvService::from_store(store));
        let crew = WorkCrew::new(PoolConfig::unrestricted(1, 8));
        assert_eq!(svc.apply(Request::Put(1, 2), &crew), READONLY_ERR);
        assert_eq!(svc.apply(Request::Get(1), &crew), "NIL", "reads survive");
        assert_eq!(svc.apply(Request::Mset(vec![(1, 2)]), &crew), READONLY_ERR);
        // The batch path renders the same refusal per write op.
        let batch: Vec<Parsed> = ["#1 PUT 5 50", "#2 GET 5"]
            .iter()
            .map(|l| Parsed::from_line(l))
            .collect();
        let mut out = String::new();
        svc.apply_batch(&batch, &crew, &mut out);
        assert_eq!(out, format!("#1 {READONLY_ERR}\n#2 NIL\n"));
        let stats = svc.apply(Request::Stats, &crew);
        assert!(stats.contains("wal_errors=1 readonly_shards=1"), "{stats}");
        crew.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durable_service_replays_on_open() {
        let dir = temp_dir("durable");
        {
            let (svc, report) = KvService::open(&dir, 2, 64, 256).unwrap();
            assert_eq!(report.pairs(), 0);
            svc.put(1, 10).unwrap();
            svc.put(2, 20).unwrap();
        }
        let (svc, report) = KvService::open(&dir, 2, 64, 256).unwrap();
        assert!(report.clean());
        assert_eq!(report.pairs(), 2);
        assert_eq!(svc.get(1), Some(10));
        assert_eq!(svc.get(2), Some(20));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn connect_with_backoff_retries_then_reports_the_last_error() {
        // A port nothing listens on: bind-then-drop reserves one.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let started = std::time::Instant::now();
        let err = KvClient::connect_with_backoff(addr, 3).unwrap_err();
        let elapsed = started.elapsed();
        assert_eq!(err.kind(), std::io::ErrorKind::ConnectionRefused);
        // Two sleeps: 10 ms + 20 ms (under the 40 ms cap), each
        // jittered down to 75% at worst — so at least 22.5 ms.
        assert!(elapsed >= Duration::from_millis(22), "{elapsed:?}");
        // And the racy-start case it exists for: a listener that
        // appears between attempts is reached.
        let (listener, control) = bind("127.0.0.1:0").unwrap();
        let addr = control.addr();
        drop(listener); // nothing accepting yet…
        let accepter = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(15));
            TcpListener::bind(addr).map(|l| l.accept().map(drop))
        });
        let late = KvClient::connect_with_backoff(addr, 50);
        let rebound = accepter.join().unwrap();
        if rebound.is_ok() {
            late.expect("connect must succeed once the listener is up");
        }
    }

    #[test]
    fn idle_read_timeout_disconnects_and_counts() {
        let (listener, control) = bind("127.0.0.1:0").unwrap();
        let addr = control.addr();
        let crew = Arc::new(WorkCrew::new(PoolConfig::unrestricted(1, 8)));
        let svc = Arc::new(KvService::new(64, 256));
        let opts = ServeOptions {
            read_timeout: Some(Duration::from_millis(50)),
        };
        let server = {
            let crew = Arc::clone(&crew);
            let svc = Arc::clone(&svc);
            let control = control.clone();
            std::thread::spawn(move || serve_with(listener, &control, crew, svc, opts).unwrap())
        };
        let mut c = KvClient::connect(addr).unwrap();
        assert_eq!(c.roundtrip("PING").unwrap(), "PONG");
        // Go idle past the timeout: the server must hang up on us.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            match c.roundtrip("PING") {
                Err(_) => break, // disconnected by the idle timeout
                Ok(_) => {
                    assert!(
                        std::time::Instant::now() < deadline,
                        "server never enforced the idle timeout"
                    );
                    std::thread::sleep(Duration::from_millis(120));
                }
            }
        }
        assert!(svc.idle_disconnects() >= 1);
        control.stop();
        server.join().unwrap();
        crew.shutdown();
    }

    #[test]
    fn service_put_get_through_both_locks() {
        let svc = KvService::new(8, 256);
        for k in 0..40u64 {
            svc.put(k, k * 3).unwrap();
        }
        // Small memtable forces frozen runs, so gets traverse the
        // block cache too.
        for k in 0..40u64 {
            assert_eq!(svc.get(k), Some(k * 3), "key {k}");
        }
        assert_eq!(svc.get(999), None);
        let (reads, writes) = svc.counters();
        assert_eq!(reads, 41);
        assert_eq!(writes, 40);
    }

    #[test]
    fn gets_run_concurrently_under_the_db_lock() {
        // Two readers must be able to hold the DB lock simultaneously:
        // one thread parks *inside* a read guard while another
        // completes a full `get` through the service API. With an
        // exclusive DB lock the `get` would block until the guard
        // dropped and the recv_timeout below would fire.
        let svc = Arc::new(KvService::new(64, 256));
        svc.put(10, 11).unwrap();

        let (tx, rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let holder = {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || {
                let guard = svc.store.db_lock(0).read(); // first reader in
                tx.send(guard.reads()).unwrap();
                // Hold the shared lock until the main thread's get has
                // finished.
                release_rx.recv().unwrap();
                drop(guard);
            })
        };
        rx.recv_timeout(std::time::Duration::from_secs(5))
            .expect("holder must acquire the read lock");

        let (got_tx, got_rx) = std::sync::mpsc::channel();
        let getter = {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || {
                got_tx.send(svc.get(10)).unwrap();
            })
        };
        let got = got_rx
            .recv_timeout(std::time::Duration::from_secs(5))
            .expect("get must complete while another reader holds the DB lock");
        assert_eq!(got, Some(11));

        // Writers are still excluded while the read guard lives.
        assert!(svc.store.db_lock(0).try_write().is_none());
        release_tx.send(()).unwrap();
        holder.join().unwrap();
        getter.join().unwrap();
        assert!(svc.store.db_lock(0).try_write().is_some());
    }

    #[test]
    fn apply_renders_the_wire_responses() {
        let svc = KvService::new(64, 256);
        let crew = WorkCrew::new(PoolConfig::unrestricted(1, 8));
        assert_eq!(svc.apply(Request::Put(5, 6), &crew), "OK");
        assert_eq!(svc.apply(Request::Get(5), &crew), "VAL 6");
        assert_eq!(svc.apply(Request::Get(6), &crew), "NIL");
        assert_eq!(svc.apply(Request::Ping, &crew), "PONG");
        let stats = svc.apply(Request::Stats, &crew);
        // Two GETs above: one hit, one miss.
        assert!(stats.starts_with("STATS reads=2 writes=1"), "{stats}");
        assert!(stats.ends_with("shards=1"), "{stats}");
        crew.shutdown();
    }

    #[test]
    fn apply_renders_the_batched_verbs_across_shards() {
        let svc = KvService::with_shards(4, 64, 256);
        let crew = WorkCrew::new(PoolConfig::unrestricted(1, 8));
        assert_eq!(
            svc.apply(Request::Mset(vec![(1, 10), (2, 20), (3, 30)]), &crew),
            "OK 3"
        );
        assert_eq!(
            svc.apply(Request::Mget(vec![2, 9, 1]), &crew),
            "VALS 20 - 10"
        );
        assert_eq!(svc.apply(Request::Scan(2, 10), &crew), "RANGE 2=20 3=30");
        assert_eq!(svc.apply(Request::Scan(100, 10), &crew), "RANGE");
        let stats = svc.apply(Request::Stats, &crew);
        assert!(stats.ends_with("shards=4"), "{stats}");
        crew.shutdown();
    }

    #[test]
    fn end_to_end_over_tcp() {
        let (listener, control) = bind("127.0.0.1:0").unwrap();
        let addr = control.addr();
        let crew = Arc::new(WorkCrew::new(
            PoolConfig::malthusian(3, 32).with_acs_target(1),
        ));
        // Two shards: the closed-loop traffic below crosses shard
        // boundaries over real TCP.
        let svc = Arc::new(KvService::with_shards(2, 64, 256));
        let server = {
            let crew = Arc::clone(&crew);
            let svc = Arc::clone(&svc);
            let control = control.clone();
            std::thread::spawn(move || serve(listener, &control, crew, svc).unwrap())
        };

        let mut c = KvClient::connect(addr).unwrap();
        assert_eq!(c.roundtrip("PING").unwrap(), "PONG");
        assert_eq!(c.roundtrip("PUT 10 11").unwrap(), "OK");
        assert_eq!(c.roundtrip("GET 10").unwrap(), "VAL 11");
        assert_eq!(c.roundtrip("GET 12").unwrap(), "NIL");
        assert_eq!(c.roundtrip("MSET 20 200 21 210").unwrap(), "OK 2");
        assert_eq!(c.roundtrip("MGET 20 12 21").unwrap(), "VALS 200 - 210");
        assert_eq!(c.roundtrip("SCAN 20 2").unwrap(), "RANGE 20=200 21=210");
        assert!(c.roundtrip("BOGUS").unwrap().starts_with("ERR"));
        assert!(c.roundtrip("MSET 1 2 3").unwrap().starts_with("ERR"));
        assert!(c.roundtrip("STATS").unwrap().starts_with("STATS "));

        // A second closed-loop client hammers the service through the
        // restricted crew.
        let mut c2 = KvClient::connect(addr).unwrap();
        for i in 0..200u64 {
            assert_eq!(c2.roundtrip(&format!("PUT {i} {}", i * 2)).unwrap(), "OK");
            assert_eq!(
                c2.roundtrip(&format!("GET {i}")).unwrap(),
                format!("VAL {}", i * 2)
            );
        }

        // SHUTDOWN with `c2` still connected: `serve` must disconnect
        // the idle connection itself rather than wait for the client
        // to hang up.
        assert_eq!(c.roundtrip("SHUTDOWN").unwrap(), "OK");
        server.join().unwrap();
        drop(c2);
        let stats = crew.shutdown();
        // PING + PUT + 2 GETs + STATS + 400 closed-loop ops, each its
        // own single-request batch (SHUTDOWN never reaches the crew;
        // the ERR lines ride batch tasks too).
        assert!(stats.completed >= 405, "completed = {}", stats.completed);
    }
}
