//! A networked KV service that puts the work crew under real traffic.
//!
//! §6.5 of the paper evaluates CR inside leveldb, whose "central
//! database lock and internal LRUCache locks are highly contended".
//! This module serves that storage shape — now **sharded** — over
//! TCP: a [`ShardedKv`](malthus_storage::ShardedKv) of N shards, each
//! its own `MiniKv` behind a Malthusian **read-write** DB lock plus a
//! `SimpleLru` block cache behind an MCSCR mutex, with request
//! execution dispatched onto a [`WorkCrew`]. Admission control
//! operates at *both* layers: the crew restricts how many threads run
//! at all, and the N CR lock pairs restrict circulation per shard —
//! one hot shard culls its own surplus while the others keep serving.
//!
//! `GET`s take their shard's DB lock *shared*, so point lookups run
//! genuinely concurrently; memtable hits never touch the exclusive
//! block-cache lock at all. `PUT`s take their shard's DB lock
//! exclusive and pay writer admission on that shard only. The batched
//! and aggregate verbs (`MGET`/`MSET`/`SCAN`/`STATS`) visit shards
//! one at a time and never hold two shard locks at once — per-shard
//! atomic, cross-shard racy snapshot (see
//! [`malthus_storage::sharded`] for the full contract, which is also
//! the wire contract).
//!
//! The wire protocol is line-oriented text (one request, one response):
//!
//! | Request | Response |
//! |---|---|
//! | `PUT <key> <value>` | `OK` |
//! | `GET <key>` | `VAL <value>` or `NIL` |
//! | `MGET <key>...` | `VALS <value-or-–>...` (`-` marks a miss) |
//! | `MSET <key> <value>...` | `OK <pairs-written>` |
//! | `SCAN <start> <limit>` | `RANGE <key>=<value>...` (maybe empty) |
//! | `PING` | `PONG` |
//! | `STATS` | `STATS reads=<n> writes=<n> ... shards=<n>` |
//! | `SHUTDOWN` | `OK` then the server stops accepting |
//! | `QUIT` | connection closes |
//! | anything else | `ERR <reason>` |
//!
//! Keys and values are unsigned 64-bit integers. Connection readers
//! are plain threads (cheap, blocked on I/O); all request *execution*
//! flows through the crew, which is where concurrency is restricted.

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use malthus_storage::ShardedKv;

use crate::crew::WorkCrew;

/// Default TCP address for the server and load-generator binaries.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7878";
/// Memtable entries before a shard's MiniKv freezes a run.
pub const DEFAULT_MEMTABLE_LIMIT: usize = 4_096;
/// Per-shard block-cache capacity in blocks.
pub const DEFAULT_CACHE_BLOCKS: usize = 8_192;
/// Default shard count: one, the paper-faithful §6.5 single hot lock
/// pair. `kv_server --shards N` raises it.
pub const DEFAULT_SHARDS: usize = 1;
/// Upper bound on keys per `MGET` / pairs per `MSET` line: bounds
/// the parsed batch (and so how long one batch monopolizes the crew
/// worker executing it). The raw line is still read unbounded before
/// parsing, like every other verb's.
pub const MAX_BATCH_KEYS: usize = 1_024;

/// One parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// `PUT <key> <value>`
    Put(u64, u64),
    /// `GET <key>`
    Get(u64),
    /// `MGET <key>...` (at least one key)
    Mget(Vec<u64>),
    /// `MSET <key> <value>...` (at least one pair)
    Mset(Vec<(u64, u64)>),
    /// `SCAN <start> <limit>`
    Scan(u64, u64),
    /// `PING`
    Ping,
    /// `STATS`
    Stats,
    /// `SHUTDOWN`
    Shutdown,
    /// `QUIT`
    Quit,
}

impl Request {
    /// Parses one line of the wire protocol.
    pub fn parse(line: &str) -> Result<Request, String> {
        let mut parts = line.split_ascii_whitespace();
        let verb = parts.next().ok_or_else(|| "empty request".to_string())?;
        let mut int = |name: &str| -> Result<u64, String> {
            parts
                .next()
                .ok_or_else(|| format!("{verb} missing {name}"))?
                .parse::<u64>()
                .map_err(|_| format!("{verb} {name} must be a u64"))
        };
        let req = match verb {
            "PUT" => Request::Put(int("key")?, int("value")?),
            "GET" => Request::Get(int("key")?),
            "MGET" => {
                let keys = rest_u64s(verb, parts)?;
                if keys.is_empty() {
                    return Err("MGET needs at least one key".to_string());
                }
                if keys.len() > MAX_BATCH_KEYS {
                    return Err(format!("MGET capped at {MAX_BATCH_KEYS} keys"));
                }
                return Ok(Request::Mget(keys));
            }
            "MSET" => {
                let flat = rest_u64s(verb, parts)?;
                if flat.is_empty() || flat.len() % 2 != 0 {
                    return Err("MSET needs one or more <key> <value> pairs".to_string());
                }
                if flat.len() / 2 > MAX_BATCH_KEYS {
                    return Err(format!("MSET capped at {MAX_BATCH_KEYS} pairs"));
                }
                return Ok(Request::Mset(
                    flat.chunks_exact(2).map(|kv| (kv[0], kv[1])).collect(),
                ));
            }
            "SCAN" => Request::Scan(int("start")?, int("limit")?),
            "PING" => Request::Ping,
            "STATS" => Request::Stats,
            "SHUTDOWN" => Request::Shutdown,
            "QUIT" => Request::Quit,
            other => return Err(format!("unknown verb {other}")),
        };
        if parts.next().is_some() {
            return Err(format!("{verb} given too many arguments"));
        }
        Ok(req)
    }
}

/// Collects the remaining whitespace-separated tokens as u64s.
fn rest_u64s<'a>(verb: &str, parts: impl Iterator<Item = &'a str>) -> Result<Vec<u64>, String> {
    parts
        .map(|tok| {
            tok.parse::<u64>()
                .map_err(|_| format!("{verb} arguments must be u64s, got {tok:?}"))
        })
        .collect()
}

/// The shared storage state: N shards, each the two contended locks
/// of §6.5, behind fixed fibonacci-hash routing.
pub struct KvService {
    store: ShardedKv,
}

impl KvService {
    /// Creates a **single-shard** service (the paper-faithful §6.5
    /// shape) with the given per-shard memtable limit and block-cache
    /// capacity.
    pub fn new(memtable_limit: usize, cache_blocks: usize) -> Self {
        Self::with_shards(DEFAULT_SHARDS, memtable_limit, cache_blocks)
    }

    /// Creates a service over `shards` shards; each shard gets its
    /// own memtable limit and block-cache capacity.
    pub fn with_shards(shards: usize, memtable_limit: usize, cache_blocks: usize) -> Self {
        KvService {
            store: ShardedKv::new(shards, memtable_limit, cache_blocks),
        }
    }

    /// The backing sharded store (per-shard lock and stats access).
    pub fn store(&self) -> &ShardedKv {
        &self.store
    }

    /// Inserts or updates a key (exclusive access to its shard only).
    pub fn put(&self, key: u64, value: u64) {
        self.store.put(key, value);
    }

    /// Point lookup on the key's shard: shared DB lock through
    /// memtable and runs; the exclusive block-cache lock only on a
    /// memtable miss, nested in the fixed db → cache order.
    pub fn get(&self, key: u64) -> Option<u64> {
        self.store.get(key)
    }

    /// `(reads, writes)` served so far, summed across shards (racy
    /// snapshot; exact while quiescent).
    pub fn counters(&self) -> (u64, u64) {
        let stats = self.store.stats();
        (stats.reads(), stats.writes())
    }

    /// CR statistics of the shard DB read-write locks, summed across
    /// shards (reader culls/grants).
    pub fn db_lock_stats(&self) -> malthus_rwlock::RwStats {
        self.store.stats().db_lock_totals()
    }

    /// Executes a request and renders its response line. `Quit` and
    /// `Shutdown` render here too; connection/acceptor control flow is
    /// the caller's job.
    pub fn apply(&self, req: Request, crew: &WorkCrew) -> String {
        match req {
            Request::Put(k, v) => {
                self.put(k, v);
                "OK".to_string()
            }
            Request::Get(k) => match self.get(k) {
                Some(v) => format!("VAL {v}"),
                None => "NIL".to_string(),
            },
            Request::Mget(keys) => {
                // write! into one buffer: batch responses render on a
                // crew worker (scarce ACS slots), so no per-value
                // temporary Strings.
                let mut out = String::from("VALS");
                for v in self.store.mget(&keys) {
                    match v {
                        Some(v) => {
                            let _ = write!(out, " {v}");
                        }
                        None => out.push_str(" -"),
                    }
                }
                out
            }
            Request::Mset(pairs) => {
                let n = self.store.mset(&pairs);
                format!("OK {n}")
            }
            Request::Scan(start, limit) => {
                let limit = usize::try_from(limit).unwrap_or(usize::MAX);
                let mut out = String::from("RANGE");
                for (k, v) in self.store.scan(start, limit) {
                    let _ = write!(out, " {k}={v}");
                }
                out
            }
            Request::Ping => "PONG".to_string(),
            Request::Stats => {
                // One shard walk for the whole response: counters and
                // lock stats come from the same snapshot, and the
                // per-shard locks (including the exclusive cache
                // locks, which contend with the GET path) are taken
                // once, not twice.
                let store = self.store.stats();
                let (reads, writes) = (store.reads(), store.writes());
                let s = crew.stats();
                let db = store.db_lock_totals();
                format!(
                    "STATS reads={reads} writes={writes} completed={} culls={} \
                     reprovisions={} promotions={} rculls={} rgrants={} shards={}",
                    s.completed,
                    s.culls,
                    s.reprovisions,
                    s.fairness_promotions,
                    db.reader_culls,
                    db.reader_reprovisions + db.reader_fairness_grants,
                    self.store.shard_count()
                )
            }
            Request::Shutdown | Request::Quit => "OK".to_string(),
        }
    }
}

impl Default for KvService {
    fn default() -> Self {
        Self::new(DEFAULT_MEMTABLE_LIMIT, DEFAULT_CACHE_BLOCKS)
    }
}

impl std::fmt::Debug for KvService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvService").finish_non_exhaustive()
    }
}

/// Handle used to stop a running [`serve`] loop.
#[derive(Clone)]
pub struct ServerControl {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ServerControl {
    /// The address the server is accepting on (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the accept loop to exit; the loop is unblocked with a
    /// self-connect and open connections are disconnected by
    /// [`serve`] on its way out.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the blocking `accept`.
        let _ = TcpStream::connect(self.addr);
    }
}

impl std::fmt::Debug for ServerControl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerControl")
            .field("addr", &self.addr)
            .finish()
    }
}

/// Binds `addr` and returns the listener plus its control handle.
pub fn bind(addr: &str) -> std::io::Result<(TcpListener, ServerControl)> {
    let listener = TcpListener::bind(addr)?;
    let control = ServerControl {
        stop: Arc::new(AtomicBool::new(false)),
        addr: listener.local_addr()?,
    };
    Ok((listener, control))
}

/// Runs the accept loop until [`ServerControl::stop`] is called or a
/// client sends `SHUTDOWN`; on stop, still-open connections are
/// disconnected (in-flight requests already on the crew complete, but
/// their responses may not be deliverable).
///
/// Each connection gets a reader thread that parses request lines and
/// submits their execution to `crew`; responses are written back from
/// the crew worker. Clients are expected to run closed-loop (one
/// outstanding request per connection), which is what the bundled
/// load generator does. Transient `accept` failures (`EMFILE`,
/// `ECONNABORTED`, …) are logged and survived, not propagated.
pub fn serve(
    listener: TcpListener,
    control: &ServerControl,
    crew: Arc<WorkCrew>,
    service: Arc<KvService>,
) -> std::io::Result<()> {
    let mut conns: Vec<(std::thread::JoinHandle<()>, TcpStream)> = Vec::new();
    for stream in listener.incoming() {
        if control.stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(e) => {
                // One refused/aborted connection must not take down
                // the service; back off briefly in case the cause is
                // fd exhaustion.
                eprintln!("# kv: accept error (continuing): {e}");
                std::thread::sleep(std::time::Duration::from_millis(10));
                continue;
            }
        };
        // Reap finished connections so a long-running server's
        // bookkeeping stays proportional to *open* connections.
        conns.retain(|(h, _)| !h.is_finished());
        let Ok(peer) = stream.try_clone() else {
            continue; // no fd left for the shutdown handle: drop it
        };
        let crew = Arc::clone(&crew);
        let service = Arc::clone(&service);
        let control = control.clone();
        conns.push((
            std::thread::spawn(move || {
                handle_connection(stream, &crew, &service, &control);
            }),
            peer,
        ));
    }
    // Readers blocked in `read_line` on idle connections would make
    // the joins below wait for their clients to hang up; close the
    // sockets so they observe EOF now.
    for (_, peer) in &conns {
        let _ = peer.shutdown(std::net::Shutdown::Both);
    }
    for (c, _) in conns {
        let _ = c.join();
    }
    Ok(())
}

fn handle_connection(
    stream: TcpStream,
    crew: &Arc<WorkCrew>,
    service: &Arc<KvService>,
    control: &ServerControl,
) {
    // One short response per request: Nagle + the peer's delayed ACK
    // would otherwise stall every reply by tens of milliseconds.
    let _ = stream.set_nodelay(true);
    let Ok(writer) = stream.try_clone().map(Arc::new) else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return, // disconnected
            Ok(_) => {}
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let req = match Request::parse(trimmed) {
            Ok(r) => r,
            Err(e) => {
                if write_line(&writer, &format!("ERR {e}")).is_err() {
                    return;
                }
                continue;
            }
        };
        match req {
            Request::Quit => {
                return;
            }
            Request::Shutdown => {
                let _ = write_line(&writer, "OK");
                control.stop();
                return;
            }
            _ => {
                let service = Arc::clone(service);
                let writer_for_task = Arc::clone(&writer);
                let crew_for_task = Arc::clone(crew);
                let submitted = crew.submit(move || {
                    let resp = service.apply(req, &crew_for_task);
                    let _ = write_line(&writer_for_task, &resp);
                });
                if submitted.is_err() {
                    let _ = write_line(&writer, "ERR shutting down");
                    return;
                }
            }
        }
    }
}

/// Writes `line` plus its terminator as a single `write` so the
/// response leaves in one TCP segment.
fn write_line(stream: &Arc<TcpStream>, line: &str) -> std::io::Result<()> {
    let mut msg = String::with_capacity(line.len() + 1);
    msg.push_str(line);
    msg.push('\n');
    let mut s: &TcpStream = stream;
    s.write_all(msg.as_bytes())
}

/// A minimal closed-loop client for tests and the load generator.
#[derive(Debug)]
pub struct KvClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    line: String,
    out: String,
}

impl KvClient {
    /// Connects to a running server.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(KvClient {
            reader: BufReader::new(stream),
            writer,
            line: String::new(),
            out: String::new(),
        })
    }

    /// Sends one request line and returns the response line.
    pub fn roundtrip(&mut self, request: &str) -> std::io::Result<String> {
        self.out.clear();
        self.out.push_str(request);
        self.out.push('\n');
        self.writer.write_all(self.out.as_bytes())?;
        self.line.clear();
        let n = self.reader.read_line(&mut self.line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(self.line.trim_end().to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crew::PoolConfig;

    #[test]
    fn parse_round_trips_the_grammar() {
        assert_eq!(Request::parse("PUT 1 2"), Ok(Request::Put(1, 2)));
        assert_eq!(Request::parse("GET 7"), Ok(Request::Get(7)));
        assert_eq!(
            Request::parse("MGET 1 2 3"),
            Ok(Request::Mget(vec![1, 2, 3]))
        );
        assert_eq!(
            Request::parse("MSET 1 10 2 20"),
            Ok(Request::Mset(vec![(1, 10), (2, 20)]))
        );
        assert_eq!(Request::parse("SCAN 5 100"), Ok(Request::Scan(5, 100)));
        assert_eq!(Request::parse("PING"), Ok(Request::Ping));
        assert_eq!(Request::parse("STATS"), Ok(Request::Stats));
        assert_eq!(Request::parse("SHUTDOWN"), Ok(Request::Shutdown));
        assert_eq!(Request::parse("QUIT"), Ok(Request::Quit));
        assert_eq!(Request::parse("  GET   9  "), Ok(Request::Get(9)));
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(Request::parse("").is_err());
        assert!(Request::parse("PUT 1").is_err());
        assert!(Request::parse("PUT 1 2 3").is_err());
        assert!(Request::parse("GET banana").is_err());
        assert!(Request::parse("DEL 1").is_err());
        assert!(Request::parse("MGET").is_err());
        assert!(Request::parse("MGET 1 banana").is_err());
        assert!(Request::parse("MSET").is_err());
        assert!(Request::parse("MSET 1 2 3").is_err(), "odd pair list");
        assert!(Request::parse("SCAN 1").is_err());
        assert!(Request::parse("SCAN 1 2 3").is_err());
    }

    #[test]
    fn parse_caps_batch_sizes() {
        let huge: String = std::iter::once("MGET".to_string())
            .chain((0..=MAX_BATCH_KEYS as u64).map(|k| k.to_string()))
            .collect::<Vec<_>>()
            .join(" ");
        assert!(Request::parse(&huge).is_err());
        let ok: String = std::iter::once("MGET".to_string())
            .chain((0..MAX_BATCH_KEYS as u64).map(|k| k.to_string()))
            .collect::<Vec<_>>()
            .join(" ");
        assert!(Request::parse(&ok).is_ok());
    }

    #[test]
    fn service_put_get_through_both_locks() {
        let svc = KvService::new(8, 256);
        for k in 0..40u64 {
            svc.put(k, k * 3);
        }
        // Small memtable forces frozen runs, so gets traverse the
        // block cache too.
        for k in 0..40u64 {
            assert_eq!(svc.get(k), Some(k * 3), "key {k}");
        }
        assert_eq!(svc.get(999), None);
        let (reads, writes) = svc.counters();
        assert_eq!(reads, 41);
        assert_eq!(writes, 40);
    }

    #[test]
    fn gets_run_concurrently_under_the_db_lock() {
        // Two readers must be able to hold the DB lock simultaneously:
        // one thread parks *inside* a read guard while another
        // completes a full `get` through the service API. With an
        // exclusive DB lock the `get` would block until the guard
        // dropped and the recv_timeout below would fire.
        let svc = Arc::new(KvService::new(64, 256));
        svc.put(10, 11);

        let (tx, rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let holder = {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || {
                let guard = svc.store.db_lock(0).read(); // first reader in
                tx.send(guard.reads()).unwrap();
                // Hold the shared lock until the main thread's get has
                // finished.
                release_rx.recv().unwrap();
                drop(guard);
            })
        };
        rx.recv_timeout(std::time::Duration::from_secs(5))
            .expect("holder must acquire the read lock");

        let (got_tx, got_rx) = std::sync::mpsc::channel();
        let getter = {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || {
                got_tx.send(svc.get(10)).unwrap();
            })
        };
        let got = got_rx
            .recv_timeout(std::time::Duration::from_secs(5))
            .expect("get must complete while another reader holds the DB lock");
        assert_eq!(got, Some(11));

        // Writers are still excluded while the read guard lives.
        assert!(svc.store.db_lock(0).try_write().is_none());
        release_tx.send(()).unwrap();
        holder.join().unwrap();
        getter.join().unwrap();
        assert!(svc.store.db_lock(0).try_write().is_some());
    }

    #[test]
    fn apply_renders_the_wire_responses() {
        let svc = KvService::new(64, 256);
        let crew = WorkCrew::new(PoolConfig::unrestricted(1, 8));
        assert_eq!(svc.apply(Request::Put(5, 6), &crew), "OK");
        assert_eq!(svc.apply(Request::Get(5), &crew), "VAL 6");
        assert_eq!(svc.apply(Request::Get(6), &crew), "NIL");
        assert_eq!(svc.apply(Request::Ping, &crew), "PONG");
        let stats = svc.apply(Request::Stats, &crew);
        // Two GETs above: one hit, one miss.
        assert!(stats.starts_with("STATS reads=2 writes=1"), "{stats}");
        assert!(stats.ends_with("shards=1"), "{stats}");
        crew.shutdown();
    }

    #[test]
    fn apply_renders_the_batched_verbs_across_shards() {
        let svc = KvService::with_shards(4, 64, 256);
        let crew = WorkCrew::new(PoolConfig::unrestricted(1, 8));
        assert_eq!(
            svc.apply(Request::Mset(vec![(1, 10), (2, 20), (3, 30)]), &crew),
            "OK 3"
        );
        assert_eq!(
            svc.apply(Request::Mget(vec![2, 9, 1]), &crew),
            "VALS 20 - 10"
        );
        assert_eq!(svc.apply(Request::Scan(2, 10), &crew), "RANGE 2=20 3=30");
        assert_eq!(svc.apply(Request::Scan(100, 10), &crew), "RANGE");
        let stats = svc.apply(Request::Stats, &crew);
        assert!(stats.ends_with("shards=4"), "{stats}");
        crew.shutdown();
    }

    #[test]
    fn end_to_end_over_tcp() {
        let (listener, control) = bind("127.0.0.1:0").unwrap();
        let addr = control.addr();
        let crew = Arc::new(WorkCrew::new(
            PoolConfig::malthusian(3, 32).with_acs_target(1),
        ));
        // Two shards: the closed-loop traffic below crosses shard
        // boundaries over real TCP.
        let svc = Arc::new(KvService::with_shards(2, 64, 256));
        let server = {
            let crew = Arc::clone(&crew);
            let svc = Arc::clone(&svc);
            let control = control.clone();
            std::thread::spawn(move || serve(listener, &control, crew, svc).unwrap())
        };

        let mut c = KvClient::connect(addr).unwrap();
        assert_eq!(c.roundtrip("PING").unwrap(), "PONG");
        assert_eq!(c.roundtrip("PUT 10 11").unwrap(), "OK");
        assert_eq!(c.roundtrip("GET 10").unwrap(), "VAL 11");
        assert_eq!(c.roundtrip("GET 12").unwrap(), "NIL");
        assert_eq!(c.roundtrip("MSET 20 200 21 210").unwrap(), "OK 2");
        assert_eq!(c.roundtrip("MGET 20 12 21").unwrap(), "VALS 200 - 210");
        assert_eq!(c.roundtrip("SCAN 20 2").unwrap(), "RANGE 20=200 21=210");
        assert!(c.roundtrip("BOGUS").unwrap().starts_with("ERR"));
        assert!(c.roundtrip("MSET 1 2 3").unwrap().starts_with("ERR"));
        assert!(c.roundtrip("STATS").unwrap().starts_with("STATS "));

        // A second closed-loop client hammers the service through the
        // restricted crew.
        let mut c2 = KvClient::connect(addr).unwrap();
        for i in 0..200u64 {
            assert_eq!(c2.roundtrip(&format!("PUT {i} {}", i * 2)).unwrap(), "OK");
            assert_eq!(
                c2.roundtrip(&format!("GET {i}")).unwrap(),
                format!("VAL {}", i * 2)
            );
        }

        // SHUTDOWN with `c2` still connected: `serve` must disconnect
        // the idle connection itself rather than wait for the client
        // to hang up.
        assert_eq!(c.roundtrip("SHUTDOWN").unwrap(), "OK");
        server.join().unwrap();
        drop(c2);
        let stats = crew.shutdown();
        // PING + PUT + 2 GETs + STATS + 400 closed-loop ops; BOGUS and
        // SHUTDOWN never reach the crew.
        assert!(stats.completed >= 405, "completed = {}", stats.completed);
    }
}
