//! Ablation benches for the design choices DESIGN.md calls out:
//! fairness period (throughput-vs-Gini frontier) and spin-then-park
//! budget, both on the simulated RandArray at 32 threads.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use malthus_workloads::{randarray, LockChoice};

fn fairness_period(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_fairness_period");
    g.measurement_time(Duration::from_secs(3)).sample_size(10);
    // The simulated run is deterministic; criterion measures the
    // harness, while the interesting output (throughput + Gini) is
    // printed once per period.
    for period in [10u64, 100, 1000, 10_000] {
        let r = {
            use malthus::policy::FairnessTrigger;
            use malthus_machinesim::{LockKind, LockSpec, MachineConfig, Simulation, WaitMode};
            let mut sim = Simulation::new(MachineConfig::t5_socket());
            sim.add_lock(LockSpec {
                kind: LockKind::Cr {
                    fairness: FairnessTrigger::new(period, 7),
                    cull_slack: 0,
                },
                wait: WaitMode::SpinThenPark,
            });
            for _ in 0..32 {
                sim.add_thread(Box::new(randarray::RandArrayThread::new()));
            }
            sim.run(0.02)
        };
        println!(
            "fairness period {period}: throughput {:.0}/s, Gini {:.3}",
            r.throughput(),
            malthus_metrics::gini_coefficient(&r.per_thread_iterations)
        );
        g.bench_with_input(BenchmarkId::from_parameter(period), &period, |b, &p| {
            b.iter(|| {
                // Tiny deterministic slice so criterion has work.
                randarray::sim(8, LockChoice::McsCrStp)
                    .run(0.0002)
                    .total_iterations
                    + p
            })
        });
    }
    g.finish();
}

criterion_group!(benches, fairness_period);
criterion_main!(benches);
