//! Ablation benches for the design choices DESIGN.md calls out
//! (`cargo bench --bench ablation`): the fairness-period
//! throughput-vs-Gini frontier on the simulated RandArray at 32
//! threads. Dependency-free (`harness = false`); the simulator is
//! deterministic, so a single run per period suffices.

use malthus::policy::FairnessTrigger;
use malthus_machinesim::{LockKind, LockSpec, MachineConfig, Simulation, WaitMode};
use malthus_workloads::randarray;

fn main() {
    println!("# ablation: fairness period vs throughput/Gini (RandArray, 32 simulated threads)");
    println!("{:>10} {:>14} {:>8}", "period", "throughput/s", "Gini");
    for period in [10u64, 100, 1000, 10_000] {
        let mut sim = Simulation::new(MachineConfig::t5_socket());
        sim.add_lock(LockSpec {
            kind: LockKind::Cr {
                fairness: FairnessTrigger::new(period, 7),
                cull_slack: 0,
            },
            wait: WaitMode::SpinThenPark,
        });
        for _ in 0..32 {
            sim.add_thread(Box::new(randarray::RandArrayThread::new()));
        }
        let r = sim.run(malthus_bench::sim_seconds());
        println!(
            "{period:>10} {:>14.0} {:>8.3}",
            r.throughput(),
            malthus_metrics::gini_coefficient(&r.per_thread_iterations)
        );
    }
}
