//! Criterion micro-benchmarks of the *live* lock implementations.
//!
//! These measure the real atomics/parking code on the host:
//! uncontended acquire/release latency and contended throughput for
//! each algorithm, with `std::sync::Mutex` and `parking_lot::Mutex`
//! as external baselines. Absolute host numbers are not comparable to
//! the paper's T5; orderings are.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use malthus::{
    ClhLock, LifoCrLock, LoiterLock, McsCrLock, McsCrnLock, McsLock, RawLock, TasLock,
    TatasLock, TicketLock,
};

fn uncontended(c: &mut Criterion) {
    let mut g = c.benchmark_group("uncontended_lock_unlock");
    g.measurement_time(Duration::from_secs(1)).sample_size(30);

    fn bench_raw<L: RawLock>(g: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>, name: &str, lock: L) {
        g.bench_function(name, |b| {
            b.iter(|| {
                lock.lock();
                // SAFETY: acquired on the line above, same thread.
                unsafe { lock.unlock() };
            })
        });
    }

    bench_raw(&mut g, "TAS", TasLock::new());
    bench_raw(&mut g, "TATAS", TatasLock::new());
    bench_raw(&mut g, "Ticket", TicketLock::new());
    bench_raw(&mut g, "CLH", ClhLock::new());
    bench_raw(&mut g, "MCS-STP", McsLock::stp());
    bench_raw(&mut g, "MCSCR-STP", McsCrLock::stp());
    bench_raw(&mut g, "MCSCRN-STP", McsCrnLock::stp());
    bench_raw(&mut g, "LIFO-CR-STP", LifoCrLock::stp());
    bench_raw(&mut g, "LOITER", LoiterLock::default());

    let std_mutex = std::sync::Mutex::new(());
    g.bench_function("std::sync::Mutex", |b| {
        b.iter(|| drop(std_mutex.lock().unwrap()))
    });
    let pl_mutex = parking_lot::Mutex::new(());
    g.bench_function("parking_lot::Mutex", |b| {
        b.iter(|| drop(pl_mutex.lock()))
    });
    g.finish();
}

fn contended(c: &mut Criterion) {
    let mut g = c.benchmark_group("contended_4_threads");
    g.measurement_time(Duration::from_secs(2)).sample_size(10);

    fn bench_contended<L: RawLock + 'static>(
        g: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>,
        name: &str,
        mk: impl Fn() -> L,
    ) {
        g.bench_function(name, |b| {
            b.iter_custom(|iters| {
                let lock = Arc::new(mk());
                let per_thread = (iters / 4).max(1);
                let start = std::time::Instant::now();
                let handles: Vec<_> = (0..4)
                    .map(|_| {
                        let lock = Arc::clone(&lock);
                        std::thread::spawn(move || {
                            for _ in 0..per_thread {
                                lock.lock();
                                // SAFETY: acquired above on this thread.
                                unsafe { lock.unlock() };
                            }
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
                start.elapsed()
            })
        });
    }

    bench_contended(&mut g, "TATAS", TatasLock::new);
    bench_contended(&mut g, "MCS-STP", McsLock::stp);
    bench_contended(&mut g, "MCSCR-STP", McsCrLock::stp);
    bench_contended(&mut g, "LIFO-CR-STP", LifoCrLock::stp);
    bench_contended(&mut g, "LOITER", LoiterLock::default);
    g.finish();
}

criterion_group!(benches, uncontended, contended);
criterion_main!(benches);
