//! Micro-benchmarks of the *live* lock implementations
//! (`cargo bench --bench live_locks`).
//!
//! Dependency-free (`harness = false`): measures uncontended
//! acquire/release latency and 4-thread contended throughput for each
//! algorithm, with `std::sync::Mutex` as the external baseline and the
//! pre-refactor `BaselineMcsCrLock` as the internal one. Absolute host
//! numbers are not comparable to the paper's T5; orderings are.

use std::sync::Arc;
use std::time::Instant;

use malthus::{
    ClhLock, LifoCrLock, LoiterLock, McsCrLock, McsCrnLock, McsLock, RawLock, TasLock, TatasLock,
    TicketLock,
};
use malthus_bench::baseline::BaselineMcsCrLock;
use malthus_bench::livebench::{
    contended_ops_per_sec, contended_ops_per_sec_with, uncontended_ns_per_op,
};

const UNCONTENDED_ITERS: u64 = 200_000;
const CONTENDED_MS: u64 = 150;
const CONTENDED_THREADS: usize = 4;

fn bench_raw<L: RawLock + 'static>(name: &str, mk: impl Fn() -> L) {
    let ns = uncontended_ns_per_op(&mk(), UNCONTENDED_ITERS);
    let ops = contended_ops_per_sec(Arc::new(mk()), CONTENDED_THREADS, CONTENDED_MS);
    println!("{name:<22} {ns:>10.1} ns/op   {ops:>12.0} ops/s @{CONTENDED_THREADS}T");
}

fn main() {
    println!(
        "# live lock micro-benchmarks ({} host CPUs)",
        std::thread::available_parallelism().map_or(0, |n| n.get())
    );
    println!("{:<22} {:>13}   {:>20}", "lock", "uncontended", "contended");

    bench_raw("TAS", TasLock::new);
    bench_raw("TATAS", TatasLock::new);
    bench_raw("Ticket", TicketLock::new);
    bench_raw("CLH", ClhLock::new);
    bench_raw("MCS-S", McsLock::spin);
    bench_raw("MCS-STP", McsLock::stp);
    bench_raw("MCSCR-S", McsCrLock::spin);
    bench_raw("MCSCR-STP", McsCrLock::stp);
    bench_raw("MCSCRN-STP", McsCrnLock::stp);
    bench_raw("LIFO-CR-STP", LifoCrLock::stp);
    bench_raw("LOITER", LoiterLock::default);
    bench_raw("baseline:MCSCR-S", BaselineMcsCrLock::spin);
    bench_raw("baseline:MCSCR-STP", BaselineMcsCrLock::stp);

    // std::sync::Mutex reference point (not a RawLock — its guard is
    // scoped — so it goes through the closure-based harness variant).
    let std_mutex = std::sync::Mutex::new(());
    let start = Instant::now();
    for _ in 0..UNCONTENDED_ITERS {
        drop(std_mutex.lock().unwrap());
    }
    let ns = start.elapsed().as_nanos() as f64 / UNCONTENDED_ITERS as f64;

    let m = Arc::new(std::sync::Mutex::new(()));
    let op: Arc<dyn Fn() + Send + Sync> = Arc::new(move || drop(m.lock().unwrap()));
    let ops = contended_ops_per_sec_with(op, CONTENDED_THREADS, CONTENDED_MS);
    println!(
        "{:<22} {ns:>10.1} ns/op   {ops:>12.0} ops/s @{CONTENDED_THREADS}T",
        "std::sync::Mutex"
    );
}
