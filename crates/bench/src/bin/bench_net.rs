//! `bench_net` — pipelined-KV throughput of the **reactor front-end**
//! over real loopback TCP: writes `BENCH_net.json`.
//!
//! Same sweep geometry as `bench_pipeline` (pipeline depth ×
//! connection count × shard count, windowed tagged clients), but
//! every cell boots `serve_async` — readiness-driven reactor workers
//! with Malthusian poll admission — instead of thread-per-connection
//! `kv::serve`. Series keep the `depth<D>@shards<S>` names and the
//! same connection-count cells, so `bench_compare
//! BENCH_pipeline.json BENCH_net.json` lines the two front-ends up
//! cell for cell and can gate the reactor against the threaded
//! baseline (CI runs `--fail-below 0.9`).
//!
//! Each cell also records exclusive DB-lock episodes per server-side
//! write and the mean drained batch size: the reactor drains a ready
//! connection as one batch, so the amortization evidence should
//! match the threaded path's, not just the headline ops/s.
//!
//! Environment knobs (same family as `bench_pipeline`):
//!
//! * `MALTHUS_PIPE_DEPTHS` — comma-separated depths (default
//!   `1,4,16`).
//! * `MALTHUS_PIPE_SHARDS` — shard counts (default `1,4`).
//! * `MALTHUS_THREAD_SWEEP` — connection counts (default `2,4`).
//! * `MALTHUS_PIPE_PUT_PCT` — PUT percentage (default 20).
//! * `MALTHUS_PIPE_KEYS` — key-space size (default 10000).
//! * `MALTHUS_BENCH_MS` — interval per cell in ms (default 300).
//! * `MALTHUS_BENCH_TRIALS` — trials per cell (default 5).
//! * `MALTHUS_BENCH_OUT` — output path (default `BENCH_net.json`).

use malthus_bench::livebench::{median, rel_spread, to_json, Series};
use malthus_bench::{env_sweep, env_u64, thread_sweep};
use malthus_workloads::pipeline::{run_pipeline_loop_async, PipelineShape};

/// One full measurement of (depth, shards, conns) against the
/// reactor: returns `(ops/s, exclusive episodes per write, mean
/// drained batch)`.
fn measure_cell(
    depth: usize,
    shards: usize,
    conns: usize,
    interval_ms: u64,
    keys: u64,
    put_pct: u32,
    seed: u64,
) -> (f64, f64, f64) {
    let shape = PipelineShape::new(keys, put_pct, depth);
    let report = run_pipeline_loop_async(shards, conns, interval_ms as f64 / 1_000.0, shape, seed);
    let secs = report.elapsed_secs.max(f64::EPSILON);
    (
        report.ops() as f64 / secs,
        report.exclusive_per_write(),
        report.mean_batch(),
    )
}

fn main() {
    let depths = env_sweep("MALTHUS_PIPE_DEPTHS", &[1, 4, 16]);
    let shard_counts = env_sweep("MALTHUS_PIPE_SHARDS", &[1, 4]);
    let conns = thread_sweep(&[2, 4]);
    let put_pct = env_u64("MALTHUS_PIPE_PUT_PCT", 20).min(100) as u32;
    let keys = env_u64("MALTHUS_PIPE_KEYS", 10_000).max(1);
    let interval_ms = env_u64("MALTHUS_BENCH_MS", 300);
    let out_path =
        std::env::var("MALTHUS_BENCH_OUT").unwrap_or_else(|_| "BENCH_net.json".to_string());
    let host_cpus = std::thread::available_parallelism().map_or(0, |n| n.get());
    let n_trials = malthus_bench::livebench::trials();

    eprintln!(
        "# bench_net: reactor front-end, depths {depths:?} x conns {conns:?} x shards \
         {shard_counts:?}, {put_pct}% PUT, {interval_ms} ms per cell, {n_trials} trials, \
         {host_cpus} host CPUs"
    );

    let series_defs: Vec<(String, usize, usize)> = depths
        .iter()
        .flat_map(|&d| {
            shard_counts
                .iter()
                .map(move |&s| (format!("depth{d}@shards{s}"), d, s))
        })
        .collect();

    // Interleaved trials: one full pass over every (series, cell) per
    // round, so slow host drift biases all series equally.
    let mut ops: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); conns.len()]; series_defs.len()];
    let mut excl: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); conns.len()]; series_defs.len()];
    let mut batch: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); conns.len()]; series_defs.len()];
    for round in 0..n_trials {
        for (i, (_, depth, shards)) in series_defs.iter().enumerate() {
            for (j, &c) in conns.iter().enumerate() {
                let seed = 0x4E45_0000 + (round * 1_000 + i * 10 + j) as u64;
                let (o, e, b) = measure_cell(*depth, *shards, c, interval_ms, keys, put_pct, seed);
                ops[i][j].push(o);
                excl[i][j].push(e);
                batch[i][j].push(b);
            }
        }
    }

    let series: Vec<Series> = series_defs
        .iter()
        .enumerate()
        .map(|(i, (name, _, _))| Series {
            name: name.clone(),
            // No uncontended single-thread latency cell in this sweep;
            // bench_compare only consumes the contended map.
            uncontended_ns: f64::NAN,
            contended: conns
                .iter()
                .enumerate()
                .map(|(j, &c)| (c, median(ops[i][j].clone())))
                .collect(),
            contended_spread: conns
                .iter()
                .enumerate()
                .map(|(j, &c)| (c, rel_spread(&ops[i][j])))
                .collect(),
        })
        .collect();

    // Per-cell admission diagnostics, median over trials.
    let cell_map = |data: &[Vec<Vec<f64>>]| -> String {
        let per_series: Vec<String> = series_defs
            .iter()
            .enumerate()
            .map(|(i, (name, _, _))| {
                let cells: Vec<String> = conns
                    .iter()
                    .enumerate()
                    .map(|(j, &c)| format!("\"{c}\": {:.3}", median(data[i][j].clone())))
                    .collect();
                format!("\"{name}\": {{{}}}", cells.join(", "))
            })
            .collect();
        format!("{{{}}}", per_series.join(", "))
    };

    let list = |xs: &[usize]| {
        xs.iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    };
    let extras = vec![
        ("front_end".to_string(), "\"reactor\"".to_string()),
        ("exclusive_episodes_per_write".to_string(), cell_map(&excl)),
        ("mean_drained_batch".to_string(), cell_map(&batch)),
        ("host_cpus".to_string(), host_cpus.to_string()),
        ("depth_sweep".to_string(), format!("[{}]", list(&depths))),
        (
            "shard_sweep".to_string(),
            format!("[{}]", list(&shard_counts)),
        ),
        ("threads_swept".to_string(), format!("[{}]", list(&conns))),
        ("put_pct".to_string(), put_pct.to_string()),
        ("keys".to_string(), keys.to_string()),
    ];

    println!(
        "{:<18} {}",
        "series",
        conns
            .iter()
            .map(|c| format!("{c:>22}C"))
            .collect::<Vec<_>>()
            .join(" ")
    );
    for (i, s) in series.iter().enumerate() {
        let cells: Vec<String> = s
            .contended
            .iter()
            .enumerate()
            .map(|(j, (_, o))| {
                format!(
                    "{o:>10.0}/s (b={:.1} x={:.2})",
                    median(batch[i][j].clone()),
                    median(excl[i][j].clone())
                )
            })
            .collect();
        println!("{:<18} {}", s.name, cells.join(" "));
    }
    println!("# b = mean drained batch, x = exclusive DB-lock episodes per write");

    let json = to_json(&series, &extras);
    std::fs::write(&out_path, &json).expect("write BENCH_net.json");
    eprintln!("# wrote {out_path}");
}
