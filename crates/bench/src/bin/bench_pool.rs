//! Work-crew throughput/latency harness: writes `BENCH_pool.json`.
//!
//! Puts an **unrestricted** pool and a **Malthusian** (concurrency
//! restricting) pool under the saturated KV workload of
//! [`malthus_workloads::pool_saturation`] at rising oversubscription
//! — `factor × host CPUs` workers for each factor in the sweep — and
//! records throughput plus p50/p99 submit-to-completion latency for
//! both. Cells are interleaved (unrestricted, Malthusian, repeat)
//! so host drift biases both series equally, and the reported cell is
//! the median of `MALTHUS_BENCH_TRIALS` rounds.
//!
//! Environment knobs:
//!
//! * `MALTHUS_POOL_FACTORS` — comma-separated oversubscription
//!   factors (default `1,2,4`).
//! * `MALTHUS_BENCH_MS` — measurement interval per cell in
//!   milliseconds (default 400).
//! * `MALTHUS_BENCH_TRIALS` — rounds per cell (default 3).
//! * `MALTHUS_BENCH_OUT` — output path (default `BENCH_pool.json`).

use std::time::Duration;

use malthus_bench::env_u64;
use malthus_bench::livebench::median;
use malthus_pool::PoolConfig;
use malthus_workloads::pool_saturation::{run_pool_saturation, SaturationReport, SaturationShape};

fn factors() -> Vec<usize> {
    match std::env::var("MALTHUS_POOL_FACTORS") {
        Ok(v) => {
            let parsed: Vec<usize> = v
                .split(',')
                .filter_map(|s| s.trim().parse().ok())
                .filter(|&f| f > 0)
                .collect();
            if parsed.is_empty() {
                eprintln!(
                    "warning: MALTHUS_POOL_FACTORS={v:?} contains no positive integers; \
                     using default 1,2,4"
                );
                vec![1, 2, 4]
            } else {
                parsed
            }
        }
        Err(_) => vec![1, 2, 4],
    }
}

/// One measured cell, median-of-trials.
struct Cell {
    ops_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
    culls: u64,
    reprovisions: u64,
    promotions: u64,
}

/// Median of a per-round counter, so every cell value shares one
/// provenance (the median round) instead of mixing median throughput
/// with last-round admission counters.
fn median_u64(rounds: &[SaturationReport], pick: impl Fn(&SaturationReport) -> u64) -> u64 {
    median(rounds.iter().map(|r| pick(r) as f64).collect()).round() as u64
}

fn summarize(rounds: &[SaturationReport]) -> Cell {
    Cell {
        ops_per_sec: median(rounds.iter().map(|r| r.ops_per_sec).collect()),
        p50_us: median(rounds.iter().map(|r| r.p50.as_secs_f64() * 1e6).collect()),
        p99_us: median(rounds.iter().map(|r| r.p99.as_secs_f64() * 1e6).collect()),
        culls: median_u64(rounds, |r| r.pool.culls),
        reprovisions: median_u64(rounds, |r| r.pool.reprovisions),
        promotions: median_u64(rounds, |r| r.pool.fairness_promotions),
    }
}

fn cell_json(c: &Cell) -> String {
    format!(
        "{{\"ops_per_sec\": {:.2}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \
         \"culls\": {}, \"reprovisions\": {}, \"promotions\": {}}}",
        c.ops_per_sec, c.p50_us, c.p99_us, c.culls, c.reprovisions, c.promotions
    )
}

fn main() {
    let factors = factors();
    let interval = Duration::from_millis(env_u64("MALTHUS_BENCH_MS", 400));
    let trials = env_u64("MALTHUS_BENCH_TRIALS", 3).max(1) as usize;
    let out_path =
        std::env::var("MALTHUS_BENCH_OUT").unwrap_or_else(|_| "BENCH_pool.json".to_string());
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let queue_bound = 64;
    let shape = SaturationShape::default();

    eprintln!(
        "# bench_pool: factors {factors:?}, {} ms interval, {trials} trials, {cpus} host CPUs",
        interval.as_millis()
    );

    // Interleaved rounds: (factor, variant) cells all measured once
    // per round, then repeated.
    let mut unrestricted: Vec<Vec<SaturationReport>> = vec![Vec::new(); factors.len()];
    let mut malthusian: Vec<Vec<SaturationReport>> = vec![Vec::new(); factors.len()];
    for round in 0..trials {
        for (i, &factor) in factors.iter().enumerate() {
            let workers = (cpus * factor).max(factor);
            unrestricted[i].push(run_pool_saturation(
                PoolConfig::unrestricted(workers, queue_bound),
                interval,
                shape,
            ));
            malthusian[i].push(run_pool_saturation(
                PoolConfig::malthusian(workers, queue_bound),
                interval,
                shape,
            ));
            eprintln!(
                "# round {}/{trials}: {factor}x ({workers} workers) done",
                round + 1
            );
        }
    }

    println!(
        "{:<6} {:>8} {:>14} {:>10} {:>10}   {:>14} {:>10} {:>10}",
        "factor",
        "workers",
        "unrest ops/s",
        "p50 us",
        "p99 us",
        "malthus ops/s",
        "p50 us",
        "p99 us"
    );
    let mut rows = Vec::new();
    for (i, &factor) in factors.iter().enumerate() {
        let workers = (cpus * factor).max(factor);
        let u = summarize(&unrestricted[i]);
        let m = summarize(&malthusian[i]);
        println!(
            "{:<6} {:>8} {:>14.0} {:>10.1} {:>10.1}   {:>14.0} {:>10.1} {:>10.1}",
            format!("{factor}x"),
            workers,
            u.ops_per_sec,
            u.p50_us,
            u.p99_us,
            m.ops_per_sec,
            m.p50_us,
            m.p99_us
        );
        rows.push((factor, workers, u, m));
    }

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"host_cpus\": {cpus},\n"));
    json.push_str(&format!("  \"queue_bound\": {queue_bound},\n"));
    json.push_str("  \"oversubscription\": {\n");
    for (i, (factor, workers, u, m)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        json.push_str(&format!(
            "    \"{factor}x\": {{\"workers\": {workers}, \"unrestricted\": {}, \
             \"malthusian\": {}}}{comma}\n",
            cell_json(u),
            cell_json(m)
        ));
    }
    json.push_str("  },\n");
    let speedups: Vec<String> = rows
        .iter()
        .map(|(factor, _, u, m)| format!("\"{factor}x\": {:.3}", m.ops_per_sec / u.ops_per_sec))
        .collect();
    json.push_str(&format!(
        "  \"malthusian_vs_unrestricted_throughput\": {{{}}}\n",
        speedups.join(", ")
    ));
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_pool.json");
    eprintln!("# wrote {out_path}");
}
