//! Figure 7: mmicro — malloc-free scalability over a central lock.

use malthus_bench::{run_figure, THREAD_SWEEP};
use malthus_workloads::{mmicro, LockChoice};

fn main() {
    run_figure(
        "Figure 7: mmicro (splay-tree allocator, central mutex)",
        "aggregate malloc-free pairs/sec",
        &LockChoice::FIGURE_SET,
        &THREAD_SWEEP,
        mmicro::sim,
    );
}
