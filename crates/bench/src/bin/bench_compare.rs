//! `bench_compare` — noise-aware diff of two bench JSON documents.
//!
//! ```sh
//! bench_compare OLD.json NEW.json
//! ```
//!
//! Compares every contended cell present in both documents (works on
//! `BENCH_locks.json` and `BENCH_rwlock.json` alike) and reports the
//! per-lock and overall **weighted geometric-mean** speedup of NEW
//! over OLD. Instead of trusting every median equally, each cell's
//! log-ratio is weighted by `1 / (1 + spread_old + spread_new)` using
//! the recorded `contended_rel_spread`, and cells whose thread count
//! oversubscribed either host (`oversubscribed_threads`) are
//! additionally discounted ×0.25 — scheduler-bound cells may inform
//! the verdict but not dominate it.
//!
//! Exits non-zero on unreadable/unparsable input or disjoint
//! documents.

use malthus_bench::compare::{compare, parse, OVERSUBSCRIBED_DISCOUNT};

fn load(path: &str) -> malthus_bench::compare::Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_compare: cannot read {path}: {e}");
        std::process::exit(2);
    });
    parse(&text).unwrap_or_else(|e| {
        eprintln!("bench_compare: {path} is not valid bench JSON: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() != 3 {
        eprintln!("usage: bench_compare <old.json> <new.json>");
        std::process::exit(2);
    }
    let (old_path, new_path) = (&args[1], &args[2]);
    let old = load(old_path);
    let new = load(new_path);

    let report = compare(&old, &new).unwrap_or_else(|e| {
        eprintln!("bench_compare: {e}");
        std::process::exit(2);
    });

    println!("# {new_path} vs {old_path} (ratio > 1 means the new document is faster)");
    println!(
        "{:<28} {:>8} {:>14} {:>14} {:>8} {:>8}  flags",
        "lock", "threads", "old ops/s", "new ops/s", "ratio", "weight"
    );
    for c in &report.cells {
        println!(
            "{:<28} {:>8} {:>14.0} {:>14.0} {:>8.3} {:>8.3}  {}",
            c.lock,
            c.threads,
            c.a,
            c.b,
            c.ratio,
            c.weight,
            if c.oversubscribed {
                format!("oversubscribed (x{OVERSUBSCRIBED_DISCOUNT})")
            } else {
                String::new()
            }
        );
    }
    println!();
    println!("# weighted geomean speedup (spread-weighted, oversubscription-discounted)");
    for (lock, g) in &report.per_lock {
        println!("{lock:<28} {g:>8.3}");
    }
    println!("{:<28} {:>8.3}", "OVERALL", report.overall);
}
