//! `bench_compare` — noise-aware diff of two bench JSON documents.
//!
//! ```sh
//! bench_compare OLD.json NEW.json [--fail-below <ratio>]
//! ```
//!
//! Compares every contended cell present in both documents (works on
//! `BENCH_locks.json`, `BENCH_rwlock.json` and `BENCH_shard.json`
//! alike) and reports the per-lock and overall **weighted
//! geometric-mean** speedup of NEW over OLD. Instead of trusting
//! every median equally, each cell's log-ratio is weighted by
//! `1 / (1 + spread_old + spread_new)` using the recorded
//! `contended_rel_spread`, and cells whose thread count
//! oversubscribed either host (`oversubscribed_threads`) are
//! additionally discounted ×0.25 — scheduler-bound cells may inform
//! the verdict but not dominate it.
//!
//! `--fail-below <ratio>` turns the tool into a CI regression gate:
//! when the overall weighted geomean comes out below `ratio` (e.g.
//! `0.95` = "NEW may be at most 5% slower than OLD"), the report is
//! still printed but the process exits with status 1.
//!
//! Exit status: 0 on success, 1 when the `--fail-below` gate fires,
//! 2 on unreadable/unparsable input, disjoint documents, or bad
//! usage.

use malthus_bench::compare::{compare, parse, OVERSUBSCRIBED_DISCOUNT};

const USAGE: &str = "usage: bench_compare <old.json> <new.json> [--fail-below <ratio>]";

fn load(path: &str) -> malthus_bench::compare::Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_compare: cannot read {path}: {e}");
        std::process::exit(2);
    });
    parse(&text).unwrap_or_else(|e| {
        eprintln!("bench_compare: {path} is not valid bench JSON: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut paths: Vec<&String> = Vec::new();
    let mut fail_below: Option<f64> = None;
    let mut i = 1;
    while i < args.len() {
        if args[i] == "--fail-below" {
            let ratio = args.get(i + 1).and_then(|v| v.parse::<f64>().ok());
            match ratio {
                Some(r) if r.is_finite() && r > 0.0 => fail_below = Some(r),
                _ => {
                    eprintln!("bench_compare: --fail-below needs a positive ratio");
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                }
            }
            i += 2;
        } else {
            paths.push(&args[i]);
            i += 1;
        }
    }
    if paths.len() != 2 {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    let (old_path, new_path) = (paths[0], paths[1]);
    let old = load(old_path);
    let new = load(new_path);

    let report = compare(&old, &new).unwrap_or_else(|e| {
        eprintln!("bench_compare: {e}");
        std::process::exit(2);
    });

    println!("# {new_path} vs {old_path} (ratio > 1 means the new document is faster)");
    println!(
        "{:<28} {:>8} {:>14} {:>14} {:>8} {:>8}  flags",
        "lock", "threads", "old ops/s", "new ops/s", "ratio", "weight"
    );
    for c in &report.cells {
        println!(
            "{:<28} {:>8} {:>14.0} {:>14.0} {:>8.3} {:>8.3}  {}",
            c.lock,
            c.threads,
            c.a,
            c.b,
            c.ratio,
            c.weight,
            if c.oversubscribed {
                format!("oversubscribed (x{OVERSUBSCRIBED_DISCOUNT})")
            } else {
                String::new()
            }
        );
    }
    println!();
    println!("# weighted geomean speedup (spread-weighted, oversubscription-discounted)");
    for (lock, g) in &report.per_lock {
        println!("{lock:<28} {g:>8.3}");
    }
    println!("{:<28} {:>8.3}", "OVERALL", report.overall);

    if let Some(threshold) = fail_below {
        // A NaN geomean (no finite cells) must fail the gate too.
        if report.overall.is_nan() || report.overall < threshold {
            eprintln!(
                "bench_compare: FAIL — overall weighted geomean {:.3} is below the \
                 --fail-below threshold {threshold:.3}",
                report.overall
            );
            std::process::exit(1);
        }
        eprintln!(
            "bench_compare: PASS — overall weighted geomean {:.3} >= {threshold:.3}",
            report.overall
        );
    }
}
