//! Figure 1: idealized impact of concurrency restriction.
//!
//! Reproduces the conceptual throughput-vs-threads curve from the
//! paper's §1 example (CS 1 µs, NCS 5 µs, saturation at 6 threads)
//! with the closed-form model: without CR the curve collapses beyond
//! saturation; with CR it holds the plateau.

use malthus_machinesim::AnalyticModel;
use malthus_metrics::{format_table, Column};

fn main() {
    let m = AnalyticModel::paper_example();
    println!("# Figure 1: Impact of Concurrency Restriction (idealized)");
    println!(
        "# CS=1us NCS=5us; saturation at {} threads\n",
        m.saturation()
    );
    let columns = vec![
        Column::right("threads"),
        Column::right("without-CR"),
        Column::right("with-CR"),
    ];
    let mut rows = Vec::new();
    for t in [1, 2, 3, 4, 5, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128] {
        rows.push(vec![
            t.to_string(),
            format!("{:.4}", m.throughput_without_cr(t)),
            format!("{:.4}", m.throughput_with_cr(t)),
        ]);
    }
    print!("{}", format_table(&columns, &rows));
}
