//! Figure 4 (table): in-depth RandArray measurements at 32 threads.
//!
//! Rows as in the paper: throughput, average LWSS, MTTR, Gini,
//! RSTDDEV, voluntary context switches, CPU utilization, L3 misses,
//! and modeled watts above idle.

use malthus_bench::{sim_seconds, steady_lwss, steady_mttr};
use malthus_metrics::{format_table, gini_coefficient, relative_stddev, Column};
use malthus_workloads::{randarray, LockChoice};

fn main() {
    println!("# Figure 4: in-depth RandArray measurements at 32 threads\n");
    let series = [
        LockChoice::McsS,
        LockChoice::McsStp,
        LockChoice::McsCrS,
        LockChoice::McsCrStp,
    ];
    let mut columns = vec![Column::left("Metric")];
    for s in &series {
        columns.push(Column::right(s.label()));
    }
    let reports: Vec<_> = series
        .iter()
        .map(|&s| randarray::sim(32, s).run(sim_seconds()))
        .collect();
    let metric = |name: &str, f: &dyn Fn(usize) -> String| -> Vec<String> {
        let mut row = vec![name.to_string()];
        for i in 0..reports.len() {
            row.push(f(i));
        }
        row
    };
    let rows = vec![
        metric("Throughput (ops/sec)", &|i| {
            format!("{:.2}M", reports[i].throughput() / 1e6)
        }),
        metric("Average LWSS (threads)", &|i| {
            format!("{:.1}", steady_lwss(&reports[i].admissions[0]))
        }),
        metric("MTTR (admissions)", &|i| {
            steady_mttr(&reports[i].admissions[0])
                .map(|m| format!("{m:.0}"))
                .unwrap_or_else(|| "-".into())
        }),
        metric("Gini Coefficient", &|i| {
            format!("{:.3}", gini_coefficient(&reports[i].per_thread_iterations))
        }),
        metric("RSTDDEV", &|i| {
            format!("{:.3}", relative_stddev(&reports[i].per_thread_iterations))
        }),
        metric("Voluntary Context Switches", &|i| {
            reports[i].voluntary_parks.to_string()
        }),
        metric("CPU Utilization", &|i| {
            format!("{:.1}x", reports[i].cpu_utilization())
        }),
        metric("L3 Misses", &|i| reports[i].llc_misses().to_string()),
        metric("Watts above idle (model)", &|i| {
            format!("{:.0}", reports[i].watts_above_idle)
        }),
    ];
    print!("{}", format_table(&columns, &rows));
}
