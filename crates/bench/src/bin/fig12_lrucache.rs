//! Figure 12: LRUCache — software-cache interference.

use malthus_bench::{run_figure, THREAD_SWEEP};
use malthus_workloads::{lrucache, LockChoice};

fn main() {
    run_figure(
        "Figure 12: LRUCache (CEPH SimpleLRU)",
        "aggregate ops/sec",
        &LockChoice::FIGURE_SET,
        &THREAD_SWEEP,
        lrucache::sim,
    );
}
