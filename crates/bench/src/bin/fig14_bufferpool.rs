//! Figure 14: Buffer Pool — the append-probability sweep.

use malthus_bench::sim_seconds;
use malthus_metrics::{format_table, Column};
use malthus_workloads::bufferpool;

fn main() {
    println!("# Figure 14: Buffer Pool (5 x 1MB buffers)");
    println!("# iterations/sec by condvar append probability\n");
    let threads = [1usize, 2, 5, 8, 16, 32, 64, 128];
    let mut columns = vec![Column::right("threads")];
    for (_, label) in bufferpool::APPEND_PROBABILITIES {
        columns.push(Column::right(label));
    }
    let mut rows = Vec::new();
    for &t in &threads {
        let mut row = vec![t.to_string()];
        for (append_p, _) in bufferpool::APPEND_PROBABILITIES {
            let r = bufferpool::sim_with_prepend(t, 1.0 - append_p).run(sim_seconds());
            row.push(format!("{:.0}", r.throughput()));
        }
        rows.push(row);
    }
    print!("{}", format_table(&columns, &rows));
}
