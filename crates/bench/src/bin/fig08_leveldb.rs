//! Figure 8: leveldb readwhilewriting.

use malthus_bench::{run_figure, THREAD_SWEEP};
use malthus_workloads::{readwhilewriting, LockChoice};

fn main() {
    run_figure(
        "Figure 8: leveldb readwhilewriting (MiniKv model)",
        "aggregate operations/sec",
        &LockChoice::FIGURE_SET,
        &THREAD_SWEEP,
        readwhilewriting::sim,
    );
}
