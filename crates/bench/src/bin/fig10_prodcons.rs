//! Figure 10: producer-consumer with 3 consumer threads.
//!
//! X axis = producers; reports messages conveyed per second plus the
//! acquisitions-per-message diagnostic (3 under FIFO pressure, toward
//! 2 in CR fast flow).

use malthus_bench::sim_seconds;
use malthus_metrics::{format_table, Column};
use malthus_workloads::{prodcons, LockChoice};

fn main() {
    println!("# Figure 10: producer_consumer, 3 consumers");
    println!("# messages/sec (acquisitions per message)\n");
    let series = LockChoice::FIGURE_SET;
    let mut columns = vec![Column::right("producers")];
    for s in &series {
        columns.push(Column::right(s.label()));
    }
    let mut rows = Vec::new();
    for p in [1usize, 2, 5, 8, 16, 32, 64, 128] {
        let mut row = vec![p.to_string()];
        for &s in &series {
            let r = prodcons::sim(p, s).run(sim_seconds());
            let msgs = prodcons::messages(&r, p);
            let per = r.admissions[0].len() as f64 / msgs.max(1) as f64;
            row.push(format!("{:.0} ({per:.2})", msgs as f64 / sim_seconds()));
        }
        rows.push(row);
    }
    print!("{}", format_table(&columns, &rows));
}
