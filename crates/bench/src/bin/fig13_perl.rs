//! Figure 13: RandArray transliterated to perl — CR via condvars.

use malthus_bench::sim_seconds;
use malthus_metrics::{format_table, Column};
use malthus_workloads::perlish;

fn main() {
    println!("# Figure 13: RandArray transliterated to perl");
    println!("# iterations/sec; CR applied at the condition variable\n");
    let columns = vec![
        Column::right("threads"),
        Column::right("FIFO"),
        Column::right("Mostly-LIFO"),
    ];
    let mut rows = Vec::new();
    for t in [1usize, 2, 5, 8, 16, 32, 64, 128, 192, 256] {
        let fifo = perlish::sim(t, false).run(sim_seconds());
        let lifo = perlish::sim(t, true).run(sim_seconds());
        rows.push(vec![
            t.to_string(),
            format!("{:.0}", fifo.throughput()),
            format!("{:.0}", lifo.throughput()),
        ]);
    }
    print!("{}", format_table(&columns, &rows));
}
