//! `bench_obs` — flight-recorder overhead sweep: writes
//! `BENCH_obs.json` plus per-mode part files for `bench_compare`.
//!
//! Runs the pipelined KV workload (real loopback TCP, windowed tagged
//! clients, batched under-lock execution) four times per cell: flight
//! recorder **off**, **on** (every event), **sampled** (1 in
//! `MALTHUS_OBS_SAMPLE`), and **spans** (recorder off, the per-batch
//! stage clocks of `malthus_obs::span` on), interleaved
//! median-of-trials. Both facilities are process-global, so enabling
//! them here instruments the in-process server exactly as `kv_server`
//! would. The first three modes force the span gate *off* so the
//! recorder baseline is clean; the spans mode is the only one paying
//! for stage clocks.
//!
//! The combined `BENCH_obs.json` carries one series per mode
//! (`recorder-off@shards<S>`, …) for eyeballing. The part files
//! (`BENCH_obs_off.json`, `BENCH_obs_on.json`,
//! `BENCH_obs_sampled.json`, `BENCH_obs_spans.json`) all name their
//! series plain `pipeline@shards<S>` — the *same* cells across files
//! — so `bench_compare BENCH_obs_off.json BENCH_obs_sampled.json
//! --fail-below 0.98` gates the sampled recorder at ≤2% overhead, and
//! `bench_compare BENCH_obs_off.json BENCH_obs_spans.json
//! --fail-below 0.98` gates always-on span tracing the same way.
//!
//! Environment knobs:
//!
//! * `MALTHUS_OBS_SAMPLE` — sampling stride of the sampled mode
//!   (default 64).
//! * `MALTHUS_OBS_TRACE_BUF` — per-thread ring capacity in events
//!   (default 4096).
//! * `MALTHUS_PIPE_SHARDS` — shard counts (default `2`).
//! * `MALTHUS_THREAD_SWEEP` — connection counts (default `2,4`).
//! * `MALTHUS_PIPE_DEPTH` — pipeline depth (default 8).
//! * `MALTHUS_PIPE_PUT_PCT` — PUT percentage (default 20).
//! * `MALTHUS_PIPE_KEYS` — key-space size (default 10000).
//! * `MALTHUS_BENCH_MS` — interval per cell in ms (default 300).
//! * `MALTHUS_BENCH_TRIALS` — trials per cell (default 5).
//! * `MALTHUS_BENCH_OUT` — combined output path (default
//!   `BENCH_obs.json`); part files replace its `.json` suffix with
//!   `_<mode>.json`.

use malthus_bench::livebench::{median, rel_spread, to_json, Series};
use malthus_bench::{env_sweep, env_u64, thread_sweep};
use malthus_workloads::pipeline::{run_pipeline_loop, PipelineShape};

/// The four observability configurations under test: recorder
/// `stride` of 0 means disabled, 1 records every event, N records one
/// in N; `spans` turns the per-batch stage clocks on (recorder off).
const MODES: [(&str, u32, bool); 4] = [
    ("off", 0, false),
    ("on", 1, false),
    ("sampled", 0 /* knob */, false),
    ("spans", 0, true),
];

/// The workload constants shared by every cell of the sweep.
struct SweepCfg {
    trace_buf: usize,
    interval_ms: u64,
    keys: u64,
    put_pct: u32,
    depth: usize,
}

fn measure_cell(
    cfg: &SweepCfg,
    stride: u32,
    spans: bool,
    shards: usize,
    conns: usize,
    seed: u64,
) -> f64 {
    if stride > 0 {
        malthus_obs::recorder::enable(cfg.trace_buf, stride);
    } else {
        malthus_obs::recorder::disable();
    }
    // The span gate defaults on process-wide; set it explicitly both
    // ways so the non-span modes measure a clean baseline.
    malthus_obs::span::set_enabled(spans);
    let shape = PipelineShape::new(cfg.keys, cfg.put_pct, cfg.depth);
    let report = run_pipeline_loop(shards, conns, cfg.interval_ms as f64 / 1_000.0, shape, seed);
    // Quiesced now (server and clients joined): drop the cell's rings
    // so a long sweep's ring memory stays flat.
    malthus_obs::recorder::disable();
    malthus_obs::recorder::clear();
    report.ops() as f64 / report.elapsed_secs.max(f64::EPSILON)
}

fn main() {
    let sample = env_u64("MALTHUS_OBS_SAMPLE", 64).max(2) as u32;
    let trace_buf = env_u64("MALTHUS_OBS_TRACE_BUF", 4_096).max(16) as usize;
    let shard_counts = env_sweep("MALTHUS_PIPE_SHARDS", &[2]);
    let conns = thread_sweep(&[2, 4]);
    let depth = env_u64("MALTHUS_PIPE_DEPTH", 8).max(1) as usize;
    let put_pct = env_u64("MALTHUS_PIPE_PUT_PCT", 20).min(100) as u32;
    let keys = env_u64("MALTHUS_PIPE_KEYS", 10_000).max(1);
    let interval_ms = env_u64("MALTHUS_BENCH_MS", 300);
    let out_path =
        std::env::var("MALTHUS_BENCH_OUT").unwrap_or_else(|_| "BENCH_obs.json".to_string());
    let host_cpus = std::thread::available_parallelism().map_or(0, |n| n.get());
    let n_trials = malthus_bench::livebench::trials();

    let modes: Vec<(&str, u32, bool)> = MODES
        .iter()
        .map(|&(name, stride, spans)| {
            (name, if name == "sampled" { sample } else { stride }, spans)
        })
        .collect();

    eprintln!(
        "# bench_obs: {{recorder off, on, 1-in-{sample}, spans}} x conns {conns:?} x \
         shards {shard_counts:?}, depth {depth}, {put_pct}% PUT, {interval_ms} ms per cell, \
         {n_trials} trials, {host_cpus} host CPUs"
    );

    let cfg = SweepCfg {
        trace_buf,
        interval_ms,
        keys,
        put_pct,
        depth,
    };

    // (mode index, shard index) → per-conn trial vectors, interleaved
    // rounds so host drift biases every mode equally.
    let n_cells = modes.len() * shard_counts.len();
    let mut ops: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); conns.len()]; n_cells];
    for round in 0..n_trials {
        for (mi, &(_, stride, spans)) in modes.iter().enumerate() {
            for (si, &shards) in shard_counts.iter().enumerate() {
                for (j, &c) in conns.iter().enumerate() {
                    let seed = 0x0B50_0000 + (round * 1_000 + mi * 100 + si * 10 + j) as u64;
                    let o = measure_cell(&cfg, stride, spans, shards, c, seed);
                    ops[mi * shard_counts.len() + si][j].push(o);
                }
            }
        }
    }
    // Leave the process-global gate in its default (on) state.
    malthus_obs::span::set_enabled(true);

    let build_series = |mi: usize, si: usize, name: String| -> Series {
        let i = mi * shard_counts.len() + si;
        Series {
            name,
            uncontended_ns: f64::NAN,
            contended: conns
                .iter()
                .enumerate()
                .map(|(j, &c)| (c, median(ops[i][j].clone())))
                .collect(),
            contended_spread: conns
                .iter()
                .enumerate()
                .map(|(j, &c)| (c, rel_spread(&ops[i][j])))
                .collect(),
        }
    };

    let list = |xs: &[usize]| {
        xs.iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    };
    let base_extras = vec![
        ("host_cpus".to_string(), host_cpus.to_string()),
        ("recorder_sample".to_string(), sample.to_string()),
        ("recorder_trace_buf".to_string(), trace_buf.to_string()),
        ("pipeline_depth".to_string(), depth.to_string()),
        (
            "shard_sweep".to_string(),
            format!("[{}]", list(&shard_counts)),
        ),
        ("threads_swept".to_string(), format!("[{}]", list(&conns))),
        (
            "oversubscribed_threads".to_string(),
            format!(
                "[{}]",
                list(
                    &conns
                        .iter()
                        .copied()
                        .filter(|&c| c > host_cpus.max(1))
                        .collect::<Vec<_>>()
                )
            ),
        ),
        ("put_pct".to_string(), put_pct.to_string()),
        ("keys".to_string(), keys.to_string()),
    ];

    // Combined document: one series per (mode, shards).
    let combined: Vec<Series> = modes
        .iter()
        .enumerate()
        .flat_map(|(mi, &(mode, _, _))| {
            shard_counts
                .iter()
                .enumerate()
                .map(move |(si, &s)| (mi, si, format!("recorder-{mode}@shards{s}")))
        })
        .map(|(mi, si, name)| build_series(mi, si, name))
        .collect();

    // Headline overhead ratios (median over the per-cell ratios of
    // medians): the number the CI gate enforces for sampled mode.
    let mode_ratio = |mi: usize| -> f64 {
        let mut ratios = Vec::new();
        for si in 0..shard_counts.len() {
            // Row `si` is the recorder-off baseline (mode 0).
            let mode_row = &ops[mi * shard_counts.len() + si];
            for (off_trials, mode_trials) in ops[si].iter().zip(mode_row) {
                let off = median(off_trials.clone());
                let m = median(mode_trials.clone());
                if off > 0.0 {
                    ratios.push(m / off);
                }
            }
        }
        median(ratios)
    };
    let on_ratio = mode_ratio(1);
    let sampled_ratio = mode_ratio(2);
    let spans_ratio = mode_ratio(3);

    let mut extras = base_extras.clone();
    extras.push(("recorder_on_vs_off".to_string(), format!("{on_ratio:.4}")));
    extras.push((
        "recorder_sampled_vs_off".to_string(),
        format!("{sampled_ratio:.4}"),
    ));
    extras.push(("spans_vs_off".to_string(), format!("{spans_ratio:.4}")));
    let json = to_json(&combined, &extras);
    std::fs::write(&out_path, &json).expect("write BENCH_obs.json");
    eprintln!("# wrote {out_path}");

    // Part files for bench_compare: same series names across modes so
    // every contended cell matches.
    let stem = out_path.strip_suffix(".json").unwrap_or(&out_path);
    for (mi, &(mode, _, _)) in modes.iter().enumerate() {
        let series: Vec<Series> = shard_counts
            .iter()
            .enumerate()
            .map(|(si, &s)| build_series(mi, si, format!("pipeline@shards{s}")))
            .collect();
        let mut extras = base_extras.clone();
        extras.push(("recorder_mode".to_string(), format!("\"{mode}\"")));
        let part = format!("{stem}_{mode}.json");
        std::fs::write(&part, to_json(&series, &extras)).expect("write part file");
        eprintln!("# wrote {part}");
    }

    println!(
        "{:<22} {}",
        "series",
        conns
            .iter()
            .map(|c| format!("{c:>12}C"))
            .collect::<Vec<_>>()
            .join(" ")
    );
    for s in &combined {
        let cells: Vec<String> = s
            .contended
            .iter()
            .map(|(_, o)| format!("{o:>11.0}/s"))
            .collect();
        println!("{:<22} {}", s.name, cells.join(" "));
    }
    println!(
        "# overhead: recorder on {on_ratio:.3}x of off, sampled (1-in-{sample}) \
         {sampled_ratio:.3}x of off, spans {spans_ratio:.3}x of off"
    );
}
