//! Figure 11: keymap — shared-map LLC occupancy.

use malthus_bench::{run_figure, THREAD_SWEEP};
use malthus_workloads::{keymap, LockChoice};

fn main() {
    run_figure(
        "Figure 11: keymap",
        "aggregate ops/sec",
        &LockChoice::FIGURE_SET,
        &THREAD_SWEEP,
        keymap::sim,
    );
}
