//! Figure 5: RingWalker — core-level DTLB pressure.

use malthus_bench::{run_figure, THREAD_SWEEP};
use malthus_workloads::{ringwalker, LockChoice};

fn main() {
    run_figure(
        "Figure 5: Core-level DTLB Pressure (RingWalker)",
        "aggregate steps/sec",
        &LockChoice::FIGURE_SET,
        &THREAD_SWEEP,
        ringwalker::sim,
    );
}
