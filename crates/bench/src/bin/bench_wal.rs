//! `bench_wal` — group-commit durability sweep over real loopback
//! TCP: writes `BENCH_wal.json`.
//!
//! Sweeps **pipeline depth × connection count** with the
//! `workloads::pipeline` live loop against a **durable** store
//! (`run_pipeline_loop_durable`): each cell boots a fresh `kv::serve`
//! instance over a fresh temporary data directory, drives it with
//! windowed tagged clients at 100% PUT (every op pays the WAL), and
//! tears both down. Series are named `depth<D>@shards<S>`, one
//! contended cell per connection count, interleaved
//! median-of-trials — the `BENCH_locks.json` shape every other bench
//! binary emits, so `bench_compare` consumes it unchanged.
//!
//! The headline metric is **fsyncs per acked write** (the
//! `fsyncs_per_write` extras map): 1.0 at depth 1 — every PUT pays
//! its own group commit — and far below it once drain-per-wakeup
//! batching lets one fsync cover a whole per-shard write group. The
//! ops/s series shows what that amortization buys in throughput.
//!
//! Environment knobs:
//!
//! * `MALTHUS_WAL_DEPTHS` — comma-separated depths (default
//!   `1,4,16`).
//! * `MALTHUS_WAL_SHARDS` — shard counts (default `1`: one WAL, the
//!   hardest group-commit case).
//! * `MALTHUS_THREAD_SWEEP` — connection counts (default `2,4`).
//! * `MALTHUS_WAL_KEYS` — key-space size (default 10000).
//! * `MALTHUS_BENCH_MS` — interval per cell in ms (default 300).
//! * `MALTHUS_BENCH_TRIALS` — trials per cell (default 5).
//! * `MALTHUS_BENCH_OUT` — output path (default `BENCH_wal.json`).

use std::path::PathBuf;

use malthus_bench::livebench::{median, rel_spread, to_json, Series};
use malthus_bench::{env_sweep, env_u64, thread_sweep};
use malthus_workloads::pipeline::{run_pipeline_loop_durable, PipelineShape};

/// A fresh, collision-free data directory for one measurement cell.
/// Seed-keyed (the harness avoids wall-clock entropy) plus pid so
/// concurrent bench runs cannot collide.
fn fresh_dir(seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!("malthus-bench-wal-{}-{seed:x}", std::process::id()))
}

/// One full measurement of (depth, shards, conns) on a fresh data
/// directory: returns `(ops/s, fsyncs per write, mean drained
/// batch)`.
fn measure_cell(
    depth: usize,
    shards: usize,
    conns: usize,
    interval_ms: u64,
    keys: u64,
    seed: u64,
) -> (f64, f64, f64) {
    let dir = fresh_dir(seed);
    let _ = std::fs::remove_dir_all(&dir);
    // 100% PUT: every operation must reach the log, so the
    // fsyncs-per-write ratio is undiluted by reads.
    let shape = PipelineShape::new(keys, 100, depth);
    let report = run_pipeline_loop_durable(
        &dir,
        shards,
        conns,
        interval_ms as f64 / 1_000.0,
        shape,
        seed,
    )
    .expect("open fresh WAL dir");
    let _ = std::fs::remove_dir_all(&dir);
    let secs = report.elapsed_secs.max(f64::EPSILON);
    (
        report.ops() as f64 / secs,
        report.fsyncs_per_write(),
        report.mean_batch(),
    )
}

fn main() {
    let depths = env_sweep("MALTHUS_WAL_DEPTHS", &[1, 4, 16]);
    let shard_counts = env_sweep("MALTHUS_WAL_SHARDS", &[1]);
    let conns = thread_sweep(&[2, 4]);
    let keys = env_u64("MALTHUS_WAL_KEYS", 10_000).max(1);
    let interval_ms = env_u64("MALTHUS_BENCH_MS", 300);
    let out_path =
        std::env::var("MALTHUS_BENCH_OUT").unwrap_or_else(|_| "BENCH_wal.json".to_string());
    let host_cpus = std::thread::available_parallelism().map_or(0, |n| n.get());
    let n_trials = malthus_bench::livebench::trials();

    eprintln!(
        "# bench_wal: depths {depths:?} x conns {conns:?} x shards {shard_counts:?}, \
         100% PUT (durable), {interval_ms} ms per cell, {n_trials} trials, {host_cpus} host CPUs"
    );

    let series_defs: Vec<(String, usize, usize)> = depths
        .iter()
        .flat_map(|&d| {
            shard_counts
                .iter()
                .map(move |&s| (format!("depth{d}@shards{s}"), d, s))
        })
        .collect();

    // Interleaved trials: one full pass over every (series, cell) per
    // round, so slow host drift biases all series equally.
    let mut ops: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); conns.len()]; series_defs.len()];
    let mut fsync: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); conns.len()]; series_defs.len()];
    let mut batch: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); conns.len()]; series_defs.len()];
    for round in 0..n_trials {
        for (i, (_, depth, shards)) in series_defs.iter().enumerate() {
            for (j, &c) in conns.iter().enumerate() {
                let seed = 0x7A1_0000 + (round * 1_000 + i * 10 + j) as u64;
                let (o, f, b) = measure_cell(*depth, *shards, c, interval_ms, keys, seed);
                ops[i][j].push(o);
                fsync[i][j].push(f);
                batch[i][j].push(b);
            }
        }
    }

    let series: Vec<Series> = series_defs
        .iter()
        .enumerate()
        .map(|(i, (name, _, _))| Series {
            name: name.clone(),
            // No uncontended single-thread latency cell in this sweep;
            // bench_compare only consumes the contended map.
            uncontended_ns: f64::NAN,
            contended: conns
                .iter()
                .enumerate()
                .map(|(j, &c)| (c, median(ops[i][j].clone())))
                .collect(),
            contended_spread: conns
                .iter()
                .enumerate()
                .map(|(j, &c)| (c, rel_spread(&ops[i][j])))
                .collect(),
        })
        .collect();

    // Per-cell durability diagnostics: fsyncs per acked write and
    // mean drained batch, median over trials.
    let cell_map = |data: &[Vec<Vec<f64>>]| -> String {
        let per_series: Vec<String> = series_defs
            .iter()
            .enumerate()
            .map(|(i, (name, _, _))| {
                let cells: Vec<String> = conns
                    .iter()
                    .enumerate()
                    .map(|(j, &c)| format!("\"{c}\": {:.3}", median(data[i][j].clone())))
                    .collect();
                format!("\"{name}\": {{{}}}", cells.join(", "))
            })
            .collect();
        format!("{{{}}}", per_series.join(", "))
    };

    let list = |xs: &[usize]| {
        xs.iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    };
    let extras = vec![
        ("fsyncs_per_write".to_string(), cell_map(&fsync)),
        ("mean_drained_batch".to_string(), cell_map(&batch)),
        ("host_cpus".to_string(), host_cpus.to_string()),
        ("depth_sweep".to_string(), format!("[{}]", list(&depths))),
        (
            "shard_sweep".to_string(),
            format!("[{}]", list(&shard_counts)),
        ),
        ("threads_swept".to_string(), format!("[{}]", list(&conns))),
        ("put_pct".to_string(), "100".to_string()),
        ("keys".to_string(), keys.to_string()),
    ];

    println!(
        "{:<18} {}",
        "series",
        conns
            .iter()
            .map(|c| format!("{c:>24}C"))
            .collect::<Vec<_>>()
            .join(" ")
    );
    for (i, s) in series.iter().enumerate() {
        let cells: Vec<String> = s
            .contended
            .iter()
            .enumerate()
            .map(|(j, (_, o))| {
                format!(
                    "{o:>10.0}/s (b={:.1} f={:.3})",
                    median(batch[i][j].clone()),
                    median(fsync[i][j].clone())
                )
            })
            .collect();
        println!("{:<18} {}", s.name, cells.join(" "));
    }
    println!("# b = mean drained batch, f = fsyncs per acked write");

    // The headline ratio: fsync amortization at the deepest depth.
    if let Some(&base_depth) = depths.iter().min() {
        let deepest = *depths.iter().max().unwrap();
        if deepest > base_depth {
            for (si, &s) in shard_counts.iter().enumerate() {
                for (j, &c) in conns.iter().enumerate() {
                    let deep_i = depths.iter().position(|&d| d == deepest).unwrap()
                        * shard_counts.len()
                        + si;
                    println!(
                        "# depth{deepest} @shards{s}, {c} conns: {:.3} fsyncs per acked write",
                        median(fsync[deep_i][j].clone())
                    );
                }
            }
        }
    }

    let json = to_json(&series, &extras);
    std::fs::write(&out_path, &json).expect("write BENCH_wal.json");
    eprintln!("# wrote {out_path}");
}
