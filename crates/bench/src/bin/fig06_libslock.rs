//! Figure 6: libslock stress_latency — pipeline competition.

use malthus_bench::{run_figure, THREAD_SWEEP};
use malthus_workloads::{stress_latency, LockChoice};

fn main() {
    run_figure(
        "Figure 6: libslock stress_latency",
        "aggregate lock acquires/sec",
        &LockChoice::FIGURE_SET,
        &THREAD_SWEEP,
        stress_latency::sim,
    );
}
