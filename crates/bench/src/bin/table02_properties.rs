//! Figure 2 (table): property comparison of TAS and MCS locks.
//!
//! Qualitative, straight from §5 of the paper; printed so the full
//! evaluation set regenerates from one `cargo run` sweep.

use malthus_metrics::{format_table, Column};

fn main() {
    println!("# Figure 2: Comparison of TAS and MCS locks\n");
    let columns = vec![
        Column::left("Property"),
        Column::left("TAS"),
        Column::left("MCS"),
    ];
    let rows: Vec<Vec<String>> = [
        ("Succession", "Competitive", "Direct handoff"),
        ("Able to use spin-then-park waiting", "No", "Yes"),
        ("Polite local spinning (coherence)", "No", "Yes"),
        (
            "Low contention performance - latency",
            "Preferred",
            "Inferior to TAS",
        ),
        (
            "High contention performance - throughput",
            "Inferior to MCS",
            "Preferred",
        ),
        (
            "Performance under preemption",
            "Preferred",
            "Lock-waiter preemption",
        ),
        ("Fairness", "Unbounded unfairness", "Fair (FIFO)"),
        ("Requires back-off tuning", "Yes", "No"),
    ]
    .iter()
    .map(|(p, t, m)| vec![p.to_string(), t.to_string(), m.to_string()])
    .collect();
    print!("{}", format_table(&columns, &rows));
}
