//! Live RW-lock throughput harness: writes `BENCH_rwlock.json`.
//!
//! Sweeps read fraction × thread count for the Malthusian RW-CR lock
//! against a `std::sync::RwLock` baseline, using the live
//! `rwreadwrite` workload (every op is a whole-table read or a
//! whole-table stamping write; torn reads would fail the run, so the
//! numbers double as an exclusion check). Output follows the
//! `BENCH_locks.json` interleaved median-of-trials format — one
//! series per (lock, fraction), named `<lock>@r<pct>` — so
//! `bench_compare` consumes it unchanged.
//!
//! Environment knobs:
//!
//! * `MALTHUS_RW_FRACTIONS` — comma-separated read percentages
//!   (default `50,90,99`).
//! * `MALTHUS_THREAD_SWEEP` — contended thread counts (default
//!   `2,4,8`).
//! * `MALTHUS_BENCH_ITERS` — uncontended read iterations (default
//!   200000).
//! * `MALTHUS_BENCH_MS` — contended interval per cell in milliseconds
//!   (default 300).
//! * `MALTHUS_BENCH_TRIALS` — trials per cell (default 5).
//! * `MALTHUS_BENCH_OUT` — output path (default `BENCH_rwlock.json`).

use std::sync::Arc;

use malthus_bench::livebench::{to_json, Series};
use malthus_bench::rwbench::{measure_rw_interleaved, RwFactory, BENCH_TABLE_SLOTS};
use malthus_bench::{env_u64, thread_sweep};
use malthus_rwlock::{RwCrLock, RwCrMutex, RwMutex};
use malthus_workloads::rwreadwrite::SharedTableRw;

fn fractions() -> Vec<u32> {
    match std::env::var("MALTHUS_RW_FRACTIONS") {
        Ok(v) => {
            let parsed: Vec<u32> = v
                .split(',')
                .filter_map(|s| s.trim().parse().ok())
                .filter(|&f| f <= 100)
                .collect();
            if parsed.is_empty() {
                eprintln!(
                    "warning: MALTHUS_RW_FRACTIONS={v:?} contains no percentages; \
                     using default 50,90,99"
                );
                vec![50, 90, 99]
            } else {
                parsed
            }
        }
        Err(_) => vec![50, 90, 99],
    }
}

fn main() {
    let fractions = fractions();
    let threads = thread_sweep(&[2, 4, 8]);
    let uncontended_iters = env_u64("MALTHUS_BENCH_ITERS", 200_000);
    let contended_ms = env_u64("MALTHUS_BENCH_MS", 300);
    let out_path =
        std::env::var("MALTHUS_BENCH_OUT").unwrap_or_else(|_| "BENCH_rwlock.json".to_string());
    let host_cpus = std::thread::available_parallelism().map_or(0, |n| n.get());

    eprintln!(
        "# bench_rwlock: fractions {fractions:?} x threads {threads:?}, \
         {contended_ms} ms per cell, {host_cpus} host CPUs"
    );

    let named: Vec<(&str, RwFactory)> = vec![
        (
            "std::RwLock",
            Box::new(|| {
                Arc::new(std::sync::RwLock::new(vec![0u64; BENCH_TABLE_SLOTS]))
                    as Arc<dyn SharedTableRw>
            }),
        ),
        (
            "RW-CR-S",
            Box::new(|| {
                Arc::new(RwMutex::with_raw(
                    RwCrLock::spin(),
                    vec![0u64; BENCH_TABLE_SLOTS],
                )) as Arc<dyn SharedTableRw>
            }),
        ),
        (
            "RW-CR-STP",
            Box::new(|| {
                Arc::new(RwCrMutex::default_cr(vec![0u64; BENCH_TABLE_SLOTS]))
                    as Arc<dyn SharedTableRw>
            }),
        ),
    ];
    let series: Vec<Series> = measure_rw_interleaved(
        &named,
        &fractions,
        &threads,
        uncontended_iters,
        contended_ms,
    );

    // RW-CR vs std speedups per fraction (weighted aggregation is
    // bench_compare's job; these are the raw per-cell ratios).
    let speedup = |cr_name: &str| -> String {
        let per_fraction: Vec<String> = fractions
            .iter()
            .map(|f| {
                let cr = series
                    .iter()
                    .find(|s| s.name == format!("{cr_name}@r{f}"))
                    .expect("series measured");
                let base = series
                    .iter()
                    .find(|s| s.name == format!("std::RwLock@r{f}"))
                    .expect("series measured");
                let cells: Vec<String> = cr
                    .contended
                    .iter()
                    .zip(&base.contended)
                    .map(|(&(t, n), &(_, b))| format!("\"{t}\": {:.3}", n / b))
                    .collect();
                format!("\"r{f}\": {{{}}}", cells.join(", "))
            })
            .collect();
        format!("{{{}}}", per_fraction.join(", "))
    };
    let extras = vec![
        (
            "speedup_vs_std_contended".to_string(),
            format!(
                "{{\"RW-CR-S\": {}, \"RW-CR-STP\": {}}}",
                speedup("RW-CR-S"),
                speedup("RW-CR-STP")
            ),
        ),
        ("host_cpus".to_string(), host_cpus.to_string()),
        (
            "read_fractions".to_string(),
            format!(
                "[{}]",
                fractions
                    .iter()
                    .map(|f| f.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        ),
        (
            "threads_swept".to_string(),
            format!(
                "[{}]",
                threads
                    .iter()
                    .map(|t| t.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        ),
        (
            "oversubscribed_threads".to_string(),
            format!(
                "[{}]",
                threads
                    .iter()
                    .filter(|&&t| t > host_cpus.max(1))
                    .map(|t| t.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        ),
    ];

    println!(
        "{:<22} {:>14}  contended ops/s (reads+writes)",
        "series", "uncont read"
    );
    for s in &series {
        let cont: Vec<String> = s
            .contended
            .iter()
            .map(|(t, ops)| format!("{t}T:{ops:.0}"))
            .collect();
        println!(
            "{:<22} {:>11.1} ns  {}",
            s.name,
            s.uncontended_ns,
            cont.join("  ")
        );
    }

    let json = to_json(&series, &extras);
    std::fs::write(&out_path, &json).expect("write BENCH_rwlock.json");
    eprintln!("# wrote {out_path}");
}
