//! `bench_shard` — sharded-KV throughput sweep: writes
//! `BENCH_shard.json`.
//!
//! Sweeps **shard count × thread count × key skew** over the live
//! [`ShardedKv`](malthus_storage::ShardedKv) using the
//! `sharded_contention` workload (PUT-heavy by default — writes are
//! what a single hot lock pair serializes, so they are where sharding
//! must pay). Series are named `shards<N>@<uniform|skewed>`, one
//! contended cell per thread count, interleaved median-of-trials —
//! the same `BENCH_locks.json` shape the other bench binaries emit,
//! so `bench_compare` consumes it unchanged (e.g. diffing a skewed
//! sweep against a uniform one, or this host against another).
//!
//! Each measured cell also records the hottest shard's write share,
//! so the skewed runs show *one hot shard degrading while the others
//! stay fast* rather than an undifferentiated total.
//!
//! Environment knobs:
//!
//! * `MALTHUS_SHARD_SWEEP` — comma-separated shard counts (default
//!   `1,2,4`).
//! * `MALTHUS_THREAD_SWEEP` — contended thread counts (default
//!   `2,4`).
//! * `MALTHUS_SHARD_SKEW` — the skewed series' exponent (default 6;
//!   the uniform series is always exponent 1).
//! * `MALTHUS_SHARD_PUT_PCT` — PUT percentage (default 80).
//! * `MALTHUS_SHARD_KEYS` — key-space size (default 10000).
//! * `MALTHUS_BENCH_MS` — interval per cell in ms (default 300).
//! * `MALTHUS_BENCH_TRIALS` — trials per cell (default 5).
//! * `MALTHUS_BENCH_OUT` — output path (default `BENCH_shard.json`).

use std::sync::Arc;

use malthus_bench::livebench::{median, rel_spread, to_json, trials, Series};
use malthus_bench::{env_sweep, env_u64, thread_sweep};
use malthus_storage::ShardedKv;
use malthus_workloads::sharded_contention::{run_sharded_loop, ShardedShape};

/// Per-shard memtable limit and cache blocks for the bench store:
/// small enough to freeze runs during a cell (so the GET path touches
/// the block cache), large enough that compaction is not the
/// bottleneck.
const MEMTABLE_LIMIT: usize = 1_024;
const CACHE_BLOCKS: usize = 4_096;

/// One full measurement of (shards, skew) across the thread sweep:
/// returns `(ops/s per thread count, hottest-shard share per thread
/// count)`.
fn measure_cell(
    shards: usize,
    threads: usize,
    interval_ms: u64,
    shape: ShardedShape,
    seed: u64,
) -> (f64, f64) {
    let kv = Arc::new(ShardedKv::new(shards, MEMTABLE_LIMIT, CACHE_BLOCKS));
    // Prefill so the GET side of the mix can hit.
    for k in 0..shape.keys {
        kv.put(k, k).expect("memory-only store cannot go read-only");
    }
    let report = run_sharded_loop(
        Arc::clone(&kv),
        threads,
        interval_ms as f64 / 1_000.0,
        shape,
        seed,
    );
    // Divide by the worker-stamped span, not the nominal interval:
    // on an oversubscribed host the coordinator's sleep overshoots
    // while workers keep completing ops.
    let secs = report.elapsed_secs.max(f64::EPSILON);
    (report.ops() as f64 / secs, report.hottest_write_share())
}

fn main() {
    let shard_counts = env_sweep("MALTHUS_SHARD_SWEEP", &[1, 2, 4]);
    let threads = thread_sweep(&[2, 4]);
    let skew = env_u64("MALTHUS_SHARD_SKEW", 6).max(1) as f64;
    let put_pct = env_u64("MALTHUS_SHARD_PUT_PCT", 80).min(100) as u32;
    let keys = env_u64("MALTHUS_SHARD_KEYS", 10_000).max(1);
    let interval_ms = env_u64("MALTHUS_BENCH_MS", 300);
    let out_path =
        std::env::var("MALTHUS_BENCH_OUT").unwrap_or_else(|_| "BENCH_shard.json".to_string());
    let host_cpus = std::thread::available_parallelism().map_or(0, |n| n.get());
    let n_trials = trials();

    eprintln!(
        "# bench_shard: shards {shard_counts:?} x threads {threads:?} x skew [1, {skew}], \
         {put_pct}% PUT, {interval_ms} ms per cell, {n_trials} trials, {host_cpus} host CPUs"
    );

    let skews: Vec<(&str, f64)> = vec![("uniform", 1.0), ("skewed", skew)];
    let series_defs: Vec<(String, usize, f64)> = shard_counts
        .iter()
        .flat_map(|&s| {
            skews
                .iter()
                .map(move |&(label, e)| (format!("shards{s}@{label}"), s, e))
        })
        .collect();

    // Interleaved trials: one full pass over every (series, cell) per
    // round, so slow host drift biases all series equally.
    let mut ops: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); threads.len()]; series_defs.len()];
    let mut hot: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); threads.len()]; series_defs.len()];
    for round in 0..n_trials {
        for (i, (_, shards, exponent)) in series_defs.iter().enumerate() {
            for (j, &t) in threads.iter().enumerate() {
                let shape = ShardedShape::new(keys, put_pct, *exponent);
                let seed = 0xBE6C_0000 + (round * 1_000 + i * 10 + j) as u64;
                let (o, h) = measure_cell(*shards, t, interval_ms, shape, seed);
                ops[i][j].push(o);
                hot[i][j].push(h);
            }
        }
    }

    let series: Vec<Series> = series_defs
        .iter()
        .enumerate()
        .map(|(i, (name, _, _))| Series {
            name: name.clone(),
            // No uncontended single-thread latency cell in this sweep;
            // bench_compare only consumes the contended map.
            uncontended_ns: f64::NAN,
            contended: threads
                .iter()
                .enumerate()
                .map(|(j, &t)| (t, median(ops[i][j].clone())))
                .collect(),
            contended_spread: threads
                .iter()
                .enumerate()
                .map(|(j, &t)| (t, rel_spread(&ops[i][j])))
                .collect(),
        })
        .collect();

    // The skew diagnostic: median hottest-shard write share per cell.
    let hot_json = {
        let per_series: Vec<String> = series_defs
            .iter()
            .enumerate()
            .map(|(i, (name, _, _))| {
                let cells: Vec<String> = threads
                    .iter()
                    .enumerate()
                    .map(|(j, &t)| format!("\"{t}\": {:.3}", median(hot[i][j].clone())))
                    .collect();
                format!("\"{name}\": {{{}}}", cells.join(", "))
            })
            .collect();
        format!("{{{}}}", per_series.join(", "))
    };

    let list = |xs: &[usize]| {
        xs.iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    };
    let extras = vec![
        ("hottest_shard_write_share".to_string(), hot_json),
        ("host_cpus".to_string(), host_cpus.to_string()),
        (
            "shard_sweep".to_string(),
            format!("[{}]", list(&shard_counts)),
        ),
        ("threads_swept".to_string(), format!("[{}]", list(&threads))),
        (
            "oversubscribed_threads".to_string(),
            format!(
                "[{}]",
                list(
                    &threads
                        .iter()
                        .copied()
                        .filter(|&t| t > host_cpus.max(1))
                        .collect::<Vec<_>>()
                )
            ),
        ),
        ("skew_exponent".to_string(), format!("{skew:.1}")),
        ("put_pct".to_string(), put_pct.to_string()),
        ("keys".to_string(), keys.to_string()),
    ];

    println!(
        "{:<18} {}",
        "series",
        threads
            .iter()
            .map(|t| format!("{t:>12}T"))
            .collect::<Vec<_>>()
            .join(" ")
    );
    for (i, s) in series.iter().enumerate() {
        let cells: Vec<String> = s
            .contended
            .iter()
            .enumerate()
            .map(|(j, (_, o))| format!("{o:>10.0}/s ({:.0}%)", 100.0 * median(hot[i][j].clone())))
            .collect();
        println!("{:<18} {}", s.name, cells.join(" "));
    }
    println!("# (n%) = hottest shard's write share");

    let json = to_json(&series, &extras);
    std::fs::write(&out_path, &json).expect("write BENCH_shard.json");
    eprintln!("# wrote {out_path}");
}
