//! Live-lock throughput harness: writes `BENCH_locks.json`.
//!
//! Measures uncontended lock/unlock latency (ns/op) and a contended
//! throughput sweep (ops/s) for the MCS family on the host, including
//! the pre-refactor [`BaselineMcsCrLock`] so every run records the
//! padded/arena refactor's delta alongside the current numbers.
//!
//! Each contended cell also records its per-trial relative spread
//! (`contended_rel_spread`), and thread counts above the host's CPU
//! count are flagged in `oversubscribed_threads`: those cells are
//! scheduler-noise-dominated and downstream comparisons should
//! discount them.
//!
//! Environment knobs:
//!
//! * `MALTHUS_THREAD_SWEEP` — comma-separated contended thread counts
//!   (default `1,4,8`).
//! * `MALTHUS_BENCH_ITERS` — uncontended iterations (default 300000).
//! * `MALTHUS_BENCH_MS` — contended measurement interval per
//!   (lock, thread-count) cell in milliseconds (default 300).
//! * `MALTHUS_BENCH_OUT` — output path (default `BENCH_locks.json`).

use std::sync::Arc;

use malthus::{McsCrLock, McsLock, RawLock};
use malthus_bench::baseline::BaselineMcsCrLock;
use malthus_bench::livebench::{measure_interleaved, to_json, LockFactory, Series};
use malthus_bench::{env_u64, thread_sweep};

fn main() {
    let threads = thread_sweep(&[1, 4, 8]);
    let uncontended_iters = env_u64("MALTHUS_BENCH_ITERS", 300_000);
    let contended_ms = env_u64("MALTHUS_BENCH_MS", 300);
    let out_path =
        std::env::var("MALTHUS_BENCH_OUT").unwrap_or_else(|_| "BENCH_locks.json".to_string());

    eprintln!(
        "# bench_locks: threads {threads:?}, {uncontended_iters} uncontended iters, \
         {contended_ms} ms contended interval, {} host CPUs",
        std::thread::available_parallelism().map_or(0, |n| n.get())
    );

    fn factory<L: RawLock + 'static>(mk: fn() -> L) -> LockFactory {
        Box::new(move || Arc::new(mk()) as Arc<dyn RawLock>)
    }
    let named: Vec<(&str, LockFactory)> = vec![
        ("MCS-S", factory(McsLock::spin)),
        ("MCS-STP", factory(McsLock::stp)),
        ("MCSCR-S", factory(McsCrLock::spin)),
        ("MCSCR-STP", factory(McsCrLock::stp)),
        ("baseline:MCSCR-S", factory(BaselineMcsCrLock::spin)),
        ("baseline:MCSCR-STP", factory(BaselineMcsCrLock::stp)),
    ];
    let series: Vec<Series> =
        measure_interleaved(&named, &threads, uncontended_iters, contended_ms);

    // Refactor-vs-baseline speedups (contended sweep), recorded so the
    // JSON carries both absolute numbers and the comparison.
    let speedup = |new_name: &str, base_name: &str| -> String {
        let new = series.iter().find(|s| s.name == new_name).unwrap();
        let base = series.iter().find(|s| s.name == base_name).unwrap();
        let per_thread: Vec<String> = new
            .contended
            .iter()
            .zip(&base.contended)
            .map(|(&(t, n), &(_, b))| format!("\"{t}\": {:.3}", n / b))
            .collect();
        format!("{{{}}}", per_thread.join(", "))
    };
    let geomean = |new_name: &str, base_name: &str| -> f64 {
        let new = series.iter().find(|s| s.name == new_name).unwrap();
        let base = series.iter().find(|s| s.name == base_name).unwrap();
        let log_sum: f64 = new
            .contended
            .iter()
            .zip(&base.contended)
            .map(|(&(_, n), &(_, b))| (n / b).ln())
            .sum();
        (log_sum / new.contended.len() as f64).exp()
    };
    let extras = vec![
        (
            "speedup_vs_baseline_contended".to_string(),
            format!(
                "{{\"MCSCR-S\": {}, \"MCSCR-STP\": {}}}",
                speedup("MCSCR-S", "baseline:MCSCR-S"),
                speedup("MCSCR-STP", "baseline:MCSCR-STP")
            ),
        ),
        (
            "speedup_vs_baseline_uncontended".to_string(),
            format!(
                "{{\"MCSCR-S\": {:.3}, \"MCSCR-STP\": {:.3}}}",
                series
                    .iter()
                    .find(|s| s.name == "baseline:MCSCR-S")
                    .unwrap()
                    .uncontended_ns
                    / series
                        .iter()
                        .find(|s| s.name == "MCSCR-S")
                        .unwrap()
                        .uncontended_ns,
                series
                    .iter()
                    .find(|s| s.name == "baseline:MCSCR-STP")
                    .unwrap()
                    .uncontended_ns
                    / series
                        .iter()
                        .find(|s| s.name == "MCSCR-STP")
                        .unwrap()
                        .uncontended_ns
            ),
        ),
        (
            "speedup_vs_baseline_contended_geomean".to_string(),
            format!(
                "{{\"MCSCR-S\": {:.3}, \"MCSCR-STP\": {:.3}}}",
                geomean("MCSCR-S", "baseline:MCSCR-S"),
                geomean("MCSCR-STP", "baseline:MCSCR-STP")
            ),
        ),
        (
            "host_cpus".to_string(),
            std::thread::available_parallelism()
                .map_or(0, |n| n.get())
                .to_string(),
        ),
        (
            "threads_swept".to_string(),
            format!(
                "[{}]",
                threads
                    .iter()
                    .map(|t| t.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        ),
        // Cells where the sweep oversubscribes the host: scheduler
        // noise dominates there (cross-check contended_rel_spread),
        // so downstream comparisons should discount them.
        (
            "oversubscribed_threads".to_string(),
            format!(
                "[{}]",
                threads
                    .iter()
                    .filter(|&&t| {
                        t > std::thread::available_parallelism().map_or(usize::MAX, |n| n.get())
                    })
                    .map(|t| t.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        ),
    ];

    // Human-readable table.
    println!("{:<22} {:>14} contended ops/s", "lock", "uncontended");
    for s in &series {
        let cont: Vec<String> = s
            .contended
            .iter()
            .map(|(t, ops)| format!("{t}T:{ops:.0}"))
            .collect();
        println!(
            "{:<22} {:>11.1} ns  {}",
            s.name,
            s.uncontended_ns,
            cont.join("  ")
        );
    }

    let json = to_json(&series, &extras);
    std::fs::write(&out_path, &json).expect("write BENCH_locks.json");
    eprintln!("# wrote {out_path}");
}
