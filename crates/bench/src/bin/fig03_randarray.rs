//! Figure 3: Random Access Array throughput vs thread count.

use malthus_bench::{run_figure, THREAD_SWEEP};
use malthus_workloads::{randarray, LockChoice};

fn main() {
    let series = [
        LockChoice::McsS,
        LockChoice::McsStp,
        LockChoice::McsCrS,
        LockChoice::McsCrStp,
        LockChoice::Null,
    ];
    run_figure(
        "Figure 3: Random Access Array",
        "aggregate steps/sec",
        &series,
        &THREAD_SWEEP,
        randarray::sim,
    );
}
