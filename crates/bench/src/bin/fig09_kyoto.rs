//! Figure 9: Kyoto Cabinet kccachetest.

use malthus_bench::{run_figure, THREAD_SWEEP};
use malthus_workloads::{kccachetest, LockChoice};

fn main() {
    run_figure(
        "Figure 9: KyotoCabinet kccachetest (CacheDB model)",
        "aggregate steps/sec",
        &LockChoice::FIGURE_SET,
        &THREAD_SWEEP,
        kccachetest::sim,
    );
}
