//! Wall-clock measurement harness for the *live* lock implementations.
//!
//! Dependency-free (the container ships no criterion): plain
//! `Instant`-based timing with warmup, used by the `bench_locks`
//! binary and the `cargo bench` targets. Absolute host numbers are not
//! comparable to the paper's T5; orderings and refactor deltas are.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

use malthus::RawLock;

/// Measures single-thread lock/unlock latency in nanoseconds per
/// operation (one op = one acquire + one release).
pub fn uncontended_ns_per_op<L: RawLock + ?Sized>(lock: &L, iters: u64) -> f64 {
    // Warmup: populate the node arena / branch predictors.
    for _ in 0..(iters / 10).max(1) {
        lock.lock();
        // SAFETY: acquired on the line above, same thread.
        unsafe { lock.unlock() };
    }
    let start = Instant::now();
    for _ in 0..iters {
        lock.lock();
        // SAFETY: acquired on the line above, same thread.
        unsafe { lock.unlock() };
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Measures contended throughput of an arbitrary lock/unlock closure
/// in operations per second: `threads` threads run `op` in a loop for
/// (at least) `interval_ms` after a barrier.
///
/// Timing is taken *inside* each worker (own start/stop stamps) and
/// the span is `max(stop) - min(start)`: on an oversubscribed host the
/// coordinating thread can be descheduled around the barrier for
/// longer than the whole measurement, so its clock cannot be trusted.
pub fn contended_ops_per_sec_with(
    op: Arc<dyn Fn() + Send + Sync>,
    threads: usize,
    interval_ms: u64,
) -> f64 {
    let barrier = Arc::new(Barrier::new(threads + 1));
    let stop = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let op = Arc::clone(&op);
            let barrier = Arc::clone(&barrier);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                barrier.wait();
                let start = Instant::now();
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    op();
                    ops += 1;
                }
                (start, Instant::now(), ops)
            })
        })
        .collect();
    barrier.wait();
    std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    stop.store(true, Ordering::Relaxed);
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let first_start = results.iter().map(|r| r.0).min().unwrap();
    let last_stop = results.iter().map(|r| r.1).max().unwrap();
    let total_ops: u64 = results.iter().map(|r| r.2).sum();
    let elapsed = last_stop.duration_since(first_start).as_secs_f64();
    total_ops as f64 / elapsed.max(f64::EPSILON)
}

/// [`contended_ops_per_sec_with`] specialized to a [`RawLock`]: each
/// operation is one acquire + token critical section + release.
pub fn contended_ops_per_sec<L: RawLock + ?Sized + 'static>(
    lock: Arc<L>,
    threads: usize,
    interval_ms: u64,
) -> f64 {
    let op: Arc<dyn Fn() + Send + Sync> = Arc::new(move || {
        lock.lock();
        // A token critical section so the queue machinery
        // (culling/reprovisioning) is actually exercised.
        std::hint::black_box(());
        // SAFETY: acquired on the line above, same thread.
        unsafe { lock.unlock() };
    });
    contended_ops_per_sec_with(op, threads, interval_ms)
}

/// One measured series: a lock name and its per-thread-count results.
#[derive(Debug, Clone)]
pub struct Series {
    /// Lock label (e.g. `MCSCR-STP`).
    pub name: String,
    /// Uncontended latency, ns per lock/unlock pair.
    pub uncontended_ns: f64,
    /// `(threads, ops_per_sec)` pairs of the contended sweep.
    pub contended: Vec<(usize, f64)>,
    /// `(threads, (max-min)/median)` relative spread across the
    /// trials of each contended cell: the noise floor of that cell.
    /// On a host where `threads > host_cpus` the cell is scheduler-
    /// bound and the spread shows it — downstream comparisons should
    /// discount such cells (see `oversubscribed_threads` in the
    /// emitted JSON).
    pub contended_spread: Vec<(usize, f64)>,
}

/// Number of repetitions per contended cell; the reported figure is
/// the median, which shrugs off scheduler noise on oversubscribed
/// hosts. Override with `MALTHUS_BENCH_TRIALS`.
pub const DEFAULT_TRIALS: usize = 5;

/// Number of trials per cell, honouring `MALTHUS_BENCH_TRIALS`.
pub fn trials() -> usize {
    std::env::var("MALTHUS_BENCH_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&t| t > 0)
        .unwrap_or(DEFAULT_TRIALS)
}

/// Median of a sample (upper median for even lengths); the cell
/// aggregator shared by the bench binaries.
///
/// # Panics
///
/// Panics if `xs` is empty or contains NaN.
pub fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

/// Relative spread of a cell's trials: `(max - min) / median`.
/// Zero for a single trial; the measure of how much scheduler noise
/// the median had to shrug off.
pub fn rel_spread(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = median(xs.to_vec());
    if m <= 0.0 {
        return 0.0;
    }
    let max = xs.iter().cloned().fold(f64::MIN, f64::max);
    let min = xs.iter().cloned().fold(f64::MAX, f64::min);
    (max - min) / m
}

/// A type-erased lock factory for interleaved comparisons.
pub type LockFactory = Box<dyn Fn() -> Arc<dyn RawLock>>;

/// Measures several lock types with **interleaved** trial rounds
/// (lock₁ cell, lock₂ cell, …, repeated `MALTHUS_BENCH_TRIALS`
/// times, medians per cell). Interleaving makes the baseline
/// comparison a paired experiment: slow drift in host load biases
/// every series equally instead of whichever happened to run last.
pub fn measure_interleaved(
    named: &[(&str, LockFactory)],
    threads: &[usize],
    uncontended_iters: u64,
    contended_interval_ms: u64,
) -> Vec<Series> {
    let n = trials();
    let mut uncont: Vec<Vec<f64>> = vec![Vec::new(); named.len()];
    let mut cont: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); threads.len()]; named.len()];
    for _round in 0..n {
        for (i, (_, mk)) in named.iter().enumerate() {
            uncont[i].push(uncontended_ns_per_op(&*mk(), uncontended_iters));
            for (j, &t) in threads.iter().enumerate() {
                cont[i][j].push(contended_ops_per_sec(mk(), t, contended_interval_ms));
            }
        }
    }
    named
        .iter()
        .enumerate()
        .map(|(i, (name, _))| Series {
            name: name.to_string(),
            uncontended_ns: median(uncont[i].clone()),
            contended: threads
                .iter()
                .enumerate()
                .map(|(j, &t)| (t, median(cont[i][j].clone())))
                .collect(),
            contended_spread: threads
                .iter()
                .enumerate()
                .map(|(j, &t)| (t, rel_spread(&cont[i][j])))
                .collect(),
        })
        .collect()
}

/// Serializes measured series (plus an optional extras map) as the
/// `BENCH_locks.json` document. Hand-rolled JSON — no serde in the
/// container.
pub fn to_json(series: &[Series], extras: &[(String, String)]) -> String {
    fn num(x: f64) -> String {
        if x.is_finite() {
            format!("{x:.2}")
        } else {
            "null".to_string()
        }
    }
    let mut out = String::from("{\n");
    out.push_str("  \"uncontended_ns_per_op\": {\n");
    for (i, s) in series.iter().enumerate() {
        let comma = if i + 1 < series.len() { "," } else { "" };
        out.push_str(&format!(
            "    \"{}\": {}{}\n",
            s.name,
            num(s.uncontended_ns),
            comma
        ));
    }
    out.push_str("  },\n");
    out.push_str("  \"contended_ops_per_sec\": {\n");
    for (i, s) in series.iter().enumerate() {
        let comma = if i + 1 < series.len() { "," } else { "" };
        let body: Vec<String> = s
            .contended
            .iter()
            .map(|(t, ops)| format!("\"{t}\": {}", num(*ops)))
            .collect();
        out.push_str(&format!(
            "    \"{}\": {{{}}}{}\n",
            s.name,
            body.join(", "),
            comma
        ));
    }
    out.push_str("  },\n");
    // Per-cell trial spread so downstream comparisons can weigh cells
    // by their noise floor instead of trusting every median equally.
    out.push_str("  \"contended_rel_spread\": {\n");
    for (i, s) in series.iter().enumerate() {
        let comma = if i + 1 < series.len() { "," } else { "" };
        let body: Vec<String> = s
            .contended_spread
            .iter()
            .map(|(t, spread)| format!("\"{t}\": {spread:.3}"))
            .collect();
        out.push_str(&format!(
            "    \"{}\": {{{}}}{}\n",
            s.name,
            body.join(", "),
            comma
        ));
    }
    out.push_str("  }");
    for (k, v) in extras {
        out.push_str(&format!(",\n  \"{k}\": {v}"));
    }
    out.push_str("\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use malthus::McsLock;

    #[test]
    fn harness_measures_positive_numbers() {
        std::env::set_var("MALTHUS_BENCH_TRIALS", "1");
        let named: Vec<(&str, LockFactory)> = vec![(
            "MCS-STP",
            Box::new(|| Arc::new(McsLock::stp()) as Arc<dyn RawLock>),
        )];
        let out = measure_interleaved(&named, &[1, 2], 1_000, 20);
        assert_eq!(out.len(), 1);
        let s = &out[0];
        assert!(s.uncontended_ns > 0.0);
        assert_eq!(s.contended.len(), 2);
        assert!(s.contended.iter().all(|&(_, ops)| ops > 0.0));
        // One trial: spreads recorded, all zero.
        assert_eq!(s.contended_spread.len(), 2);
        assert!(s.contended_spread.iter().all(|&(_, sp)| sp == 0.0));
    }

    #[test]
    fn rel_spread_captures_trial_noise() {
        assert_eq!(rel_spread(&[100.0]), 0.0);
        assert!((rel_spread(&[90.0, 100.0, 110.0]) - 0.2).abs() < 1e-12);
        assert_eq!(rel_spread(&[]), 0.0);
    }

    #[test]
    fn json_shape_is_well_formed() {
        let s = Series {
            name: "X".into(),
            uncontended_ns: 12.5,
            contended: vec![(1, 100.0), (4, 50.0)],
            contended_spread: vec![(1, 0.05), (4, 0.8)],
        };
        let j = to_json(
            std::slice::from_ref(&s),
            &[("note".into(), "\"hi\"".into())],
        );
        assert!(j.contains("\"X\": 12.50"));
        assert!(j.contains("\"1\": 100.00, \"4\": 50.00"));
        assert!(j.contains("contended_rel_spread"));
        assert!(j.contains("\"1\": 0.050, \"4\": 0.800"));
        assert!(j.contains("\"note\": \"hi\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
