//! Read-fraction × thread-count measurement harness for the live
//! reader-writer locks (the `bench_rwlock` binary).
//!
//! Same discipline as [`livebench`](crate::livebench): interleaved
//! trial rounds (every series measured once per round, medians per
//! cell) so slow host drift biases all series equally, per-cell
//! relative spread recorded for downstream weighting. Each read
//! fraction becomes its own [`Series`] named `<lock>@r<pct>`, so the
//! emitted JSON has exactly the `BENCH_locks.json` shape and the
//! `bench_compare` tooling works on it unchanged.

use std::sync::Arc;
use std::time::Instant;

use malthus_workloads::rwreadwrite::{run_rw_loop, RwLoopShape, SharedTableRw};

use crate::livebench::{median, rel_spread, trials, Series};

/// A type-erased factory producing a fresh shared table per trial.
pub type RwFactory = Box<dyn Fn() -> Arc<dyn SharedTableRw>>;

/// Table slots used by the benchmark loop (every write stamps all of
/// them, every read scans all of them — a small but real critical
/// section on both sides).
pub const BENCH_TABLE_SLOTS: usize = 64;

/// Measures single-thread shared-acquisition latency in nanoseconds
/// per read section (acquire + whole-table scan + release).
pub fn uncontended_read_ns(table: &dyn SharedTableRw, iters: u64) -> f64 {
    let mut sink = 0u64;
    for _ in 0..(iters / 10).max(1) {
        table.read_section(&mut |slots| sink = sink.wrapping_add(slots[0]));
    }
    let start = Instant::now();
    for _ in 0..iters {
        table.read_section(&mut |slots| sink = sink.wrapping_add(slots[0]));
    }
    std::hint::black_box(sink);
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Measures the full (lock × fraction × threads) grid with
/// interleaved trial rounds; one [`Series`] per (lock, fraction).
///
/// # Panics
///
/// Panics if a trial observes a torn read: that means the lock under
/// measurement failed reader/writer exclusion, and its throughput
/// number would be meaningless.
pub fn measure_rw_interleaved(
    named: &[(&str, RwFactory)],
    fractions: &[u32],
    threads: &[usize],
    uncontended_iters: u64,
    interval_ms: u64,
) -> Vec<Series> {
    let rounds = trials();
    let cells = named.len() * fractions.len();
    // The uncontended read latency is independent of the read
    // fraction (single thread, reads only), so it is measured once
    // per lock per round and shared across that lock's fractions.
    let mut uncont: Vec<Vec<f64>> = vec![Vec::new(); named.len()];
    let mut cont: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); threads.len()]; cells];
    for round in 0..rounds {
        for (li, (_, mk)) in named.iter().enumerate() {
            uncont[li].push(uncontended_read_ns(&*mk(), uncontended_iters));
            for (fi, &frac) in fractions.iter().enumerate() {
                let idx = li * fractions.len() + fi;
                for (ti, &t) in threads.iter().enumerate() {
                    let shape = RwLoopShape::new(BENCH_TABLE_SLOTS, frac);
                    let seed = 0xBE9C_0000 ^ (round as u64) << 16 ^ (idx as u64) << 8 ^ ti as u64;
                    let report = run_rw_loop(mk(), t, interval_ms as f64 / 1_000.0, shape, seed);
                    assert_eq!(
                        report.torn_reads, 0,
                        "torn reads under {} at r{frac}/t{t}",
                        named[li].0
                    );
                    let secs = (interval_ms as f64 / 1_000.0).max(f64::EPSILON);
                    cont[idx][ti].push(report.ops() as f64 / secs);
                }
            }
        }
    }
    named
        .iter()
        .enumerate()
        .flat_map(|(li, (name, _))| {
            let uncont = &uncont;
            let cont = &cont;
            fractions.iter().enumerate().map(move |(fi, &frac)| {
                let idx = li * fractions.len() + fi;
                Series {
                    name: format!("{name}@r{frac}"),
                    uncontended_ns: median(uncont[li].clone()),
                    contended: threads
                        .iter()
                        .enumerate()
                        .map(|(ti, &t)| (t, median(cont[idx][ti].clone())))
                        .collect(),
                    contended_spread: threads
                        .iter()
                        .enumerate()
                        .map(|(ti, &t)| (t, rel_spread(&cont[idx][ti])))
                        .collect(),
                }
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use malthus_rwlock::RwCrMutex;

    #[test]
    fn rw_harness_measures_positive_numbers() {
        std::env::set_var("MALTHUS_BENCH_TRIALS", "1");
        let named: Vec<(&str, RwFactory)> = vec![(
            "RW-CR-STP",
            Box::new(|| {
                Arc::new(RwCrMutex::default_cr(vec![0u64; BENCH_TABLE_SLOTS]))
                    as Arc<dyn SharedTableRw>
            }),
        )];
        let series = measure_rw_interleaved(&named, &[50, 99], &[1, 2], 500, 20);
        assert_eq!(series.len(), 2);
        for s in &series {
            assert!(s.name.starts_with("RW-CR-STP@r"), "{}", s.name);
            assert!(s.uncontended_ns > 0.0);
            assert_eq!(s.contended.len(), 2);
            assert!(s.contended.iter().all(|&(_, ops)| ops > 0.0));
        }
    }
}
