//! Noise-aware comparison of two `BENCH_locks.json`-shaped documents
//! (the `bench_compare` binary).
//!
//! A naive A/B diff trusts every contended median equally, but the
//! bench JSON carries two quality signals per cell: the per-trial
//! relative spread (`contended_rel_spread` — the noise floor the
//! median had to shrug off) and whether the thread count
//! oversubscribes the host (`oversubscribed_threads` — cells that are
//! scheduler-bound by construction). This module weights each cell's
//! log-ratio by `1 / (1 + spread_a + spread_b)` and additionally
//! discounts oversubscribed cells by [`OVERSUBSCRIBED_DISCOUNT`], so
//! the aggregate speedup is dominated by the cells that actually
//! isolate instruction-path costs.
//!
//! The container ships no serde, so a ~hundred-line recursive-descent
//! parser for the JSON subset the bench binaries emit lives here too.

use std::collections::BTreeMap;

/// Weight multiplier for cells whose thread count oversubscribes the
/// host in either input: they are scheduler-noise-dominated, so they
/// may inform but must not dominate the verdict.
pub const OVERSUBSCRIBED_DISCOUNT: f64 = 0.25;

/// A parsed JSON value (the subset the bench binaries emit).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is irrelevant to the comparison, so
    /// a sorted map keeps lookups simple.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on an object; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The object map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The array, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found '{}'",
                b as char, self.pos, self.bytes[self.pos] as char
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        // Accumulate raw bytes and decode once: pushing bytes as chars
        // would mangle multibyte UTF-8 content.
        let mut out = Vec::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or("unterminated string".to_string())?;
            self.pos += 1;
            match b {
                b'"' => {
                    return String::from_utf8(out)
                        .map_err(|_| format!("invalid UTF-8 in string ending at {}", self.pos))
                }
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or("unterminated escape".to_string())?;
                    self.pos += 1;
                    out.push(match esc {
                        b'"' => b'"',
                        b'\\' => b'\\',
                        b'/' => b'/',
                        b'n' => b'\n',
                        b't' => b'\t',
                        b'r' => b'\r',
                        other => return Err(format!("unsupported escape '\\{}'", other as char)),
                    });
                }
                other => out.push(other),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => {
                self.expect(b'{')?;
                let mut map = BTreeMap::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    map.insert(key, self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Json::Obj(map));
                        }
                        other => {
                            return Err(format!("expected ',' or '}}', got '{}'", other as char))
                        }
                    }
                }
            }
            b'[' => {
                self.expect(b'[')?;
                let mut arr = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Json::Arr(arr));
                }
                loop {
                    arr.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Json::Arr(arr));
                        }
                        other => {
                            return Err(format!("expected ',' or ']', got '{}'", other as char))
                        }
                    }
                }
            }
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }
}

/// Parses one JSON document (the subset the bench binaries emit).
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

/// One compared contended cell.
#[derive(Debug, Clone)]
pub struct CellDiff {
    /// Series (lock) name.
    pub lock: String,
    /// Thread-count key of the cell.
    pub threads: String,
    /// ops/s in document A.
    pub a: f64,
    /// ops/s in document B.
    pub b: f64,
    /// `b / a` (> 1 means B is faster here).
    pub ratio: f64,
    /// The cell's weight in the aggregates.
    pub weight: f64,
    /// Whether either document flagged this thread count as
    /// oversubscribing its host.
    pub oversubscribed: bool,
}

/// The full comparison: per-cell diffs plus weighted aggregates.
#[derive(Debug, Clone)]
pub struct CompareReport {
    /// Every cell present in both documents.
    pub cells: Vec<CellDiff>,
    /// Weighted geometric-mean ratio per lock.
    pub per_lock: Vec<(String, f64)>,
    /// Weighted geometric-mean ratio over all cells.
    pub overall: f64,
}

fn oversubscribed_set(doc: &Json) -> Vec<String> {
    doc.get("oversubscribed_threads")
        .and_then(Json::as_arr)
        .map(|arr| {
            arr.iter()
                .filter_map(Json::as_f64)
                .map(|t| format!("{}", t as u64))
                .collect()
        })
        .unwrap_or_default()
}

fn spread_of(doc: &Json, lock: &str, threads: &str) -> f64 {
    doc.get("contended_rel_spread")
        .and_then(|s| s.get(lock))
        .and_then(|s| s.get(threads))
        .and_then(Json::as_f64)
        .unwrap_or(0.0)
}

fn weighted_geomean(cells: &[&CellDiff]) -> f64 {
    let (log_sum, weight_sum) = cells
        .iter()
        .filter(|c| c.ratio.is_finite() && c.ratio > 0.0)
        .fold((0.0, 0.0), |(ls, ws), c| {
            (ls + c.weight * c.ratio.ln(), ws + c.weight)
        });
    if weight_sum == 0.0 {
        f64::NAN
    } else {
        (log_sum / weight_sum).exp()
    }
}

/// Compares two parsed bench documents.
///
/// Cells are matched on (lock, thread-count) pairs present in both
/// documents' `contended_ops_per_sec`; each cell's weight is
/// `1 / (1 + spread_a + spread_b)`, discounted by
/// [`OVERSUBSCRIBED_DISCOUNT`] when either document flags the thread
/// count as oversubscribed. Errors if the documents share no cells.
pub fn compare(a: &Json, b: &Json) -> Result<CompareReport, String> {
    let a_ops = a
        .get("contended_ops_per_sec")
        .and_then(Json::as_obj)
        .ok_or("document A lacks contended_ops_per_sec")?;
    let b_ops = b
        .get("contended_ops_per_sec")
        .and_then(Json::as_obj)
        .ok_or("document B lacks contended_ops_per_sec")?;
    let mut over = oversubscribed_set(a);
    over.extend(oversubscribed_set(b));

    let mut cells = Vec::new();
    for (lock, a_cells) in a_ops {
        let (Some(a_cells), Some(b_cells)) =
            (a_cells.as_obj(), b_ops.get(lock).and_then(Json::as_obj))
        else {
            continue;
        };
        for (threads, a_val) in a_cells {
            let (Some(av), Some(bv)) =
                (a_val.as_f64(), b_cells.get(threads).and_then(Json::as_f64))
            else {
                continue;
            };
            let spread = spread_of(a, lock, threads) + spread_of(b, lock, threads);
            let oversubscribed = over.contains(threads);
            let mut weight = 1.0 / (1.0 + spread);
            if oversubscribed {
                weight *= OVERSUBSCRIBED_DISCOUNT;
            }
            cells.push(CellDiff {
                lock: lock.clone(),
                threads: threads.clone(),
                a: av,
                b: bv,
                ratio: if av > 0.0 { bv / av } else { f64::NAN },
                weight,
                oversubscribed,
            });
        }
    }
    if cells.is_empty() {
        return Err("the documents share no contended cells".to_string());
    }

    let mut locks: Vec<String> = cells.iter().map(|c| c.lock.clone()).collect();
    locks.sort();
    locks.dedup();
    let per_lock = locks
        .into_iter()
        .map(|lock| {
            let of_lock: Vec<&CellDiff> = cells.iter().filter(|c| c.lock == lock).collect();
            let g = weighted_geomean(&of_lock);
            (lock, g)
        })
        .collect();
    let overall = weighted_geomean(&cells.iter().collect::<Vec<_>>());
    Ok(CompareReport {
        cells,
        per_lock,
        overall,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC_A: &str = r#"{
        "uncontended_ns_per_op": {"X": 20.0, "Y": 25.0},
        "contended_ops_per_sec": {
            "X": {"1": 100.0, "4": 50.0},
            "Y": {"1": 200.0, "4": 80.0}
        },
        "contended_rel_spread": {
            "X": {"1": 0.1, "4": 3.0},
            "Y": {"1": 0.0, "4": 1.0}
        },
        "host_cpus": 1,
        "oversubscribed_threads": [4]
    }"#;

    fn doc_b() -> String {
        DOC_A
            .replace("\"1\": 100.0", "\"1\": 150.0")
            .replace("\"1\": 200.0", "\"1\": 100.0")
    }

    #[test]
    fn parser_round_trips_the_bench_shape() {
        let doc = parse(DOC_A).unwrap();
        assert_eq!(doc.get("host_cpus").and_then(Json::as_f64), Some(1.0));
        assert_eq!(
            doc.get("contended_ops_per_sec")
                .and_then(|o| o.get("X"))
                .and_then(|o| o.get("4"))
                .and_then(Json::as_f64),
            Some(50.0)
        );
        assert_eq!(
            doc.get("oversubscribed_threads")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(1)
        );
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{} trailing").is_err());
    }

    #[test]
    fn parser_preserves_multibyte_utf8() {
        let doc = parse("{\"note\": \"p99 µs ±3%\"}").unwrap();
        assert_eq!(doc.get("note"), Some(&Json::Str("p99 µs ±3%".into())));
    }

    #[test]
    fn parser_handles_real_emitted_json() {
        // The exact shape `to_json` emits, including extras.
        let doc = parse(
            "{\n  \"uncontended_ns_per_op\": {\n    \"A\": 12.50\n  },\n  \
             \"contended_ops_per_sec\": {\n    \"A\": {\"1\": 100.00}\n  },\n  \
             \"contended_rel_spread\": {\n    \"A\": {\"1\": 0.050}\n  },\n  \
             \"note\": \"hi\",\n  \"threads_swept\": [1, 2]\n}\n",
        )
        .unwrap();
        assert_eq!(doc.get("note"), Some(&Json::Str("hi".into())));
    }

    #[test]
    fn self_compare_is_unity() {
        let a = parse(DOC_A).unwrap();
        let r = compare(&a, &a).unwrap();
        assert_eq!(r.cells.len(), 4);
        assert!((r.overall - 1.0).abs() < 1e-12, "overall = {}", r.overall);
        for (_, g) in &r.per_lock {
            assert!((g - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn weighting_discounts_noisy_and_oversubscribed_cells() {
        let a = parse(DOC_A).unwrap();
        let b = parse(&doc_b()).unwrap();
        let r = compare(&a, &b).unwrap();
        // X: 1-thread ratio 1.5 (clean), 4-thread ratio 1.0 (noisy +
        // oversubscribed). The weighted geomean must sit much closer
        // to 1.5 than the unweighted geomean (~1.22) would.
        let x = r.per_lock.iter().find(|(l, _)| l == "X").unwrap().1;
        assert!(x > 1.4, "clean cell must dominate: {x}");
        // Y: 1-thread ratio 0.5 dominates symmetrically.
        let y = r.per_lock.iter().find(|(l, _)| l == "Y").unwrap().1;
        assert!(y < 0.55, "clean cell must dominate: {y}");
        // The noisy oversubscribed cells carry OVERSUBSCRIBED_DISCOUNT
        // on top of the spread weight.
        let cell = r
            .cells
            .iter()
            .find(|c| c.lock == "X" && c.threads == "4")
            .unwrap();
        assert!(cell.oversubscribed);
        let expected = 1.0 / (1.0 + 6.0) * OVERSUBSCRIBED_DISCOUNT;
        assert!((cell.weight - expected).abs() < 1e-12, "{}", cell.weight);
    }

    #[test]
    fn disjoint_documents_error() {
        let a = parse(DOC_A).unwrap();
        let b = parse("{\"contended_ops_per_sec\": {\"Z\": {\"1\": 5.0}}}").unwrap();
        assert!(compare(&a, &b).is_err());
    }
}
