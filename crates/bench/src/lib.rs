//! Shared harness plumbing for the figure/table binaries.
//!
//! Every binary regenerates one figure or table from the paper's
//! evaluation (§6) on the simulated T5 (see DESIGN.md). Output is a
//! plain-text table: thread count on the first column, one series per
//! lock, matching the figure's legend. `MALTHUS_SIM_SECONDS` scales
//! the simulated measurement interval (default 0.02 s; the paper used
//! 10 s on real hardware — shapes converge long before that in the
//! deterministic simulator).

#![warn(missing_docs)]

pub mod baseline;
pub mod compare;
pub mod livebench;
pub mod rwbench;

use malthus_machinesim::{RunReport, Simulation};
use malthus_metrics::{format_table, Column};
use malthus_workloads::LockChoice;

/// The default simulated measurement interval in seconds.
pub const DEFAULT_SIM_SECONDS: f64 = 0.02;

/// The thread counts swept by the line figures (log-ish spacing, as
/// in the paper's log-scale X axis).
pub const THREAD_SWEEP: [usize; 10] = [1, 2, 5, 8, 16, 32, 64, 128, 192, 256];

/// Returns the simulated interval, honouring `MALTHUS_SIM_SECONDS`.
pub fn sim_seconds() -> f64 {
    std::env::var("MALTHUS_SIM_SECONDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SIM_SECONDS)
}

/// Reads a `u64` environment knob, falling back to `default` when the
/// variable is unset or unparsable. Shared by the bench binaries.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Reads a comma-separated list of positive integers from the
/// environment variable `name`, falling back to `default` when the
/// variable is unset — with a warning (not a silent fallback) when it
/// is set but unusable, so a typo'd CI override cannot quietly run a
/// full-size sweep.
pub fn env_sweep(name: &str, default: &[usize]) -> Vec<usize> {
    match std::env::var(name) {
        Ok(v) => {
            let parsed: Vec<usize> = v
                .split(',')
                .filter_map(|s| s.trim().parse().ok())
                .filter(|&t| t > 0)
                .collect();
            if parsed.is_empty() {
                eprintln!(
                    "warning: {name}={v:?} contains no positive integers; \
                     using default sweep {default:?}"
                );
                default.to_vec()
            } else {
                parsed
            }
        }
        Err(_) => default.to_vec(),
    }
}

/// Returns the thread counts to sweep: `MALTHUS_THREAD_SWEEP` (a
/// comma-separated list, e.g. `1,2,4`) when set and non-empty,
/// otherwise `default`. CI smoke runs use the override so figure
/// binaries don't sweep to 256 simulated threads.
pub fn thread_sweep(default: &[usize]) -> Vec<usize> {
    env_sweep("MALTHUS_THREAD_SWEEP", default)
}

/// Runs a figure: for each thread count and lock series, build a
/// simulation and report throughput; prints the paper-style table.
///
/// `threads` is the figure's default sweep; setting
/// `MALTHUS_THREAD_SWEEP` (see [`thread_sweep`]) overrides it for
/// every figure binary at once.
pub fn run_figure(
    title: &str,
    unit: &str,
    series: &[LockChoice],
    threads: &[usize],
    build: impl Fn(usize, LockChoice) -> Simulation,
) {
    let threads = thread_sweep(threads);
    println!("# {title}");
    println!("# Y axis: {unit}; simulated interval {} s\n", sim_seconds());
    let mut columns = vec![Column::right("threads")];
    for s in series {
        columns.push(Column::right(s.label()));
    }
    let mut rows = Vec::new();
    for &t in &threads {
        let mut row = vec![t.to_string()];
        for &s in series {
            let report = build(t, s).run(sim_seconds());
            row.push(format!("{:.0}", report.throughput()));
        }
        rows.push(row);
    }
    print!("{}", format_table(&columns, &rows));
}

/// Runs a single configuration and returns its report (used by the
/// table-style binaries).
pub fn run_one(build: impl Fn() -> Simulation) -> RunReport {
    build().run(sim_seconds())
}

/// Steady-state (post-warmup) average LWSS over 500-admission windows.
pub fn steady_lwss(history: &[u32]) -> f64 {
    if history.len() <= 500 {
        return malthus_metrics::AdmissionLog::from_history(history.to_vec()).average_lwss(500);
    }
    let tail = &history[500..];
    malthus_metrics::AdmissionLog::from_history(tail.to_vec()).average_lwss(500)
}

/// Steady-state median time to reacquire.
pub fn steady_mttr(history: &[u32]) -> Option<f64> {
    let tail = if history.len() > 500 {
        &history[500..]
    } else {
        history
    };
    malthus_metrics::AdmissionLog::from_history(tail.to_vec()).median_time_to_reacquire()
}
