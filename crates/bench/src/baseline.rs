//! A faithful copy of the *pre-refactor* MCSCR hot path, kept as a
//! measurable baseline.
//!
//! The padded/arena refactor claims three wins on the hot path:
//!
//! 1. one TLS access per `lock()` instead of three (`ensure_reaper`,
//!    the free-list lookup, and the NUMA-id lookup);
//! 2. cache-line-padded queue nodes and a padded `tail` word instead
//!    of unpadded allocations that false-share;
//! 3. plain lock-protected counter stores instead of three
//!    `fetch_add`s on the line next to `tail`.
//!
//! [`BaselineMcsCrLock`] deliberately reproduces the old costs —
//! unpadded nodes, the triple-TLS allocation dance, sanitize-on-alloc,
//! and `AtomicU64::fetch_add` counters living beside `tail` — so the
//! benchmark harness can put a number on the difference. It is **not**
//! part of the lock library; do not use it outside benchmarks.

use std::cell::{Cell, RefCell, UnsafeCell};
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

use malthus::policy::{FairnessTrigger, DEFAULT_FAIRNESS_PERIOD};
use malthus::RawLock;
use malthus_park::{SpinThenYield, WaitCell, WaitPolicy, XorShift64};

/// The seed's queue node: unpadded, so adjacent nodes share cache
/// lines and a waiter's cell spin false-shares with its neighbour's
/// link stores.
struct Node {
    cell: WaitCell,
    next: AtomicPtr<Node>,
    pprev: Cell<*mut Node>,
    pnext: Cell<*mut Node>,
    #[allow(dead_code)]
    numa: Cell<u32>,
}

impl Node {
    fn new() -> Self {
        Node {
            cell: WaitCell::new(),
            next: AtomicPtr::new(ptr::null_mut()),
            pprev: Cell::new(ptr::null_mut()),
            pnext: Cell::new(ptr::null_mut()),
            numa: Cell::new(0),
        }
    }
}

struct NodeCache(RefCell<Vec<*mut Node>>);

impl Drop for NodeCache {
    fn drop(&mut self) {
        for node in self.0.borrow_mut().drain(..) {
            // SAFETY: cached nodes are quiescent and thread-owned.
            drop(unsafe { Box::from_raw(node) });
        }
    }
}

thread_local! {
    static NODE_CACHE: NodeCache = const { NodeCache(RefCell::new(Vec::new())) };
    static CURRENT_NUMA: Cell<u32> = const { Cell::new(0) };
}

/// The seed's first TLS access: force destructor registration.
fn ensure_reaper() {
    let _ = NODE_CACHE.try_with(|_| {});
}

/// The seed's second and third TLS accesses: pop a node, then
/// sanitize it and look up the NUMA id.
fn alloc_node() -> *mut Node {
    let node = NODE_CACHE
        .try_with(|c| c.0.borrow_mut().pop())
        .ok()
        .flatten()
        .unwrap_or_else(|| Box::into_raw(Box::new(Node::new())));
    // SAFETY: thread-owned node; sanitize-on-alloc as the seed did.
    unsafe {
        (*node).next.store(ptr::null_mut(), Ordering::Relaxed);
        (*node).pprev.set(ptr::null_mut());
        (*node).pnext.set(ptr::null_mut());
        (*node).numa.set(CURRENT_NUMA.with(|c| c.get()));
    }
    node
}

/// # Safety
///
/// `node` must be unreachable by other threads and owned by the
/// calling thread.
unsafe fn free_node(node: *mut Node) {
    const CACHE_CAP: usize = 32;
    // SAFETY: caller contract.
    unsafe { (*node).cell.reset() };
    let overflow = NODE_CACHE
        .try_with(|c| {
            let mut cache = c.0.borrow_mut();
            if cache.len() < CACHE_CAP {
                cache.push(node);
                None
            } else {
                Some(node)
            }
        })
        .unwrap_or(Some(node));
    if let Some(node) = overflow {
        // SAFETY: caller contract; Box-allocated.
        drop(unsafe { Box::from_raw(node) });
    }
}

/// # Safety
///
/// An arrival must be in flight for `node` (tail has moved past it).
unsafe fn wait_link(node: *mut Node) -> *mut Node {
    let mut spin = SpinThenYield::new();
    loop {
        // SAFETY: caller guarantees `node` is live.
        let next = unsafe { (*node).next.load(Ordering::Acquire) };
        if !next.is_null() {
            return next;
        }
        spin.pause();
    }
}

struct PassiveList {
    head: *mut Node,
    tail: *mut Node,
    len: usize,
}

impl PassiveList {
    const fn new() -> Self {
        PassiveList {
            head: ptr::null_mut(),
            tail: ptr::null_mut(),
            len: 0,
        }
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// # Safety
    ///
    /// `node` live, in no list; caller holds the lock.
    unsafe fn push_head(&mut self, node: *mut Node) {
        // SAFETY: caller contract.
        unsafe {
            (*node).pprev.set(ptr::null_mut());
            (*node).pnext.set(self.head);
            (*node).next.store(ptr::null_mut(), Ordering::Relaxed);
            if self.head.is_null() {
                self.tail = node;
            } else {
                (*self.head).pprev.set(node);
            }
        }
        self.head = node;
        self.len += 1;
    }

    /// # Safety
    ///
    /// Caller holds the lock.
    unsafe fn pop_head(&mut self) -> *mut Node {
        let node = self.head;
        if node.is_null() {
            return node;
        }
        // SAFETY: caller contract.
        unsafe {
            self.head = (*node).pnext.get();
            if self.head.is_null() {
                self.tail = ptr::null_mut();
            } else {
                (*self.head).pprev.set(ptr::null_mut());
            }
            (*node).pnext.set(ptr::null_mut());
        }
        self.len -= 1;
        node
    }

    /// # Safety
    ///
    /// Caller holds the lock.
    unsafe fn pop_tail(&mut self) -> *mut Node {
        let node = self.tail;
        if node.is_null() {
            return node;
        }
        // SAFETY: caller contract.
        unsafe {
            self.tail = (*node).pprev.get();
            if self.tail.is_null() {
                self.head = ptr::null_mut();
            } else {
                (*self.tail).pnext.set(ptr::null_mut());
            }
            (*node).pprev.set(ptr::null_mut());
        }
        self.len -= 1;
        node
    }
}

/// The pre-refactor MCSCR lock: unpadded field layout with the
/// `fetch_add` counters sitting directly beside the contended `tail`.
pub struct BaselineMcsCrLock {
    tail: AtomicPtr<Node>,
    owner: UnsafeCell<*mut Node>,
    passive: UnsafeCell<PassiveList>,
    fairness: UnsafeCell<FairnessTrigger>,
    policy: WaitPolicy,
    culls: AtomicU64,
    reprovisions: AtomicU64,
    fairness_grants: AtomicU64,
}

// SAFETY: as for McsCrLock — `tail`/counters atomic, the rest
// lock-protected.
unsafe impl Send for BaselineMcsCrLock {}
// SAFETY: see above.
unsafe impl Sync for BaselineMcsCrLock {}

impl BaselineMcsCrLock {
    /// Creates a baseline lock with the given waiting policy and the
    /// paper's default fairness period.
    pub fn new(policy: WaitPolicy) -> Self {
        BaselineMcsCrLock {
            tail: AtomicPtr::new(ptr::null_mut()),
            owner: UnsafeCell::new(ptr::null_mut()),
            passive: UnsafeCell::new(PassiveList::new()),
            fairness: UnsafeCell::new(FairnessTrigger::new(
                DEFAULT_FAIRNESS_PERIOD,
                XorShift64::from_entropy().next_u64(),
            )),
            policy,
            culls: AtomicU64::new(0),
            reprovisions: AtomicU64::new(0),
            fairness_grants: AtomicU64::new(0),
        }
    }

    /// Polite-spin variant (baseline for `MCSCR-S`).
    pub fn spin() -> Self {
        Self::new(WaitPolicy::spin())
    }

    /// Spin-then-park variant (baseline for `MCSCR-STP`).
    pub fn stp() -> Self {
        Self::new(WaitPolicy::spin_then_park())
    }

    /// # Safety
    ///
    /// Caller holds the lock; `me` is the owner's node; `node` is live
    /// and in no list.
    unsafe fn graft_as_successor(&self, me: *mut Node, node: *mut Node) {
        // SAFETY: caller contract (pre-refactor orderings preserved).
        unsafe {
            let succ = (*me).next.load(Ordering::Acquire);
            if succ.is_null() {
                (*node).next.store(ptr::null_mut(), Ordering::Relaxed);
                if self
                    .tail
                    .compare_exchange(me, node, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    (*node).cell.signal();
                    free_node(me);
                    return;
                }
                let succ = wait_link(me);
                (*node).next.store(succ, Ordering::Release);
                (*node).cell.signal();
                free_node(me);
                return;
            }
            (*node).next.store(succ, Ordering::Release);
            (*node).cell.signal();
            free_node(me);
        }
    }
}

// SAFETY: identical protocol to McsCrLock (see crates/core); only the
// memory layout, TLS discipline and counter style differ.
unsafe impl RawLock for BaselineMcsCrLock {
    fn lock(&self) {
        ensure_reaper();
        let node = alloc_node();
        let prev = self.tail.swap(node, Ordering::AcqRel);
        if !prev.is_null() {
            // SAFETY: `prev` is live until it observes our link.
            unsafe {
                (*prev).next.store(node, Ordering::Release);
                (*node).cell.wait(self.policy);
            }
        }
        // SAFETY: we hold the lock.
        unsafe { *self.owner.get() = node };
    }

    fn try_lock(&self) -> bool {
        ensure_reaper();
        let node = alloc_node();
        if self
            .tail
            .compare_exchange(ptr::null_mut(), node, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            // SAFETY: we hold the lock.
            unsafe { *self.owner.get() = node };
            true
        } else {
            // SAFETY: never published.
            unsafe { free_node(node) };
            false
        }
    }

    unsafe fn unlock(&self) {
        // SAFETY: caller holds the lock.
        unsafe {
            let me = *self.owner.get();
            let passive = &mut *self.passive.get();

            if !passive.is_empty() && (*self.fairness.get()).fire() {
                let eldest = passive.pop_tail();
                self.fairness_grants.fetch_add(1, Ordering::Relaxed);
                self.graft_as_successor(me, eldest);
                return;
            }

            let mut succ = (*me).next.load(Ordering::Acquire);
            if succ.is_null() {
                if !passive.is_empty() {
                    let warm = passive.pop_head();
                    (*warm).next.store(ptr::null_mut(), Ordering::Relaxed);
                    if self
                        .tail
                        .compare_exchange(me, warm, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        self.reprovisions.fetch_add(1, Ordering::Relaxed);
                        (*warm).cell.signal();
                        free_node(me);
                        return;
                    }
                    passive.push_head(warm);
                    succ = wait_link(me);
                } else {
                    if self
                        .tail
                        .compare_exchange(me, ptr::null_mut(), Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        free_node(me);
                        return;
                    }
                    succ = wait_link(me);
                }
            }

            if succ != self.tail.load(Ordering::Acquire) {
                let next = wait_link(succ);
                passive.push_head(succ);
                self.culls.fetch_add(1, Ordering::Relaxed);
                succ = next;
            }

            (*succ).cell.signal();
            free_node(me);
        }
    }

    fn name(&self) -> &'static str {
        match self.policy {
            WaitPolicy::Spin => "baseline:MCSCR-S",
            WaitPolicy::SpinThenPark { .. } => "baseline:MCSCR-STP",
            WaitPolicy::Park => "baseline:MCSCR-P",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn baseline_mutual_exclusion() {
        let lock = Arc::new(BaselineMcsCrLock::stp());
        let counter = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1_000 {
                    lock.lock();
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                    // SAFETY: we hold the lock.
                    unsafe { lock.unlock() };
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 4_000);
    }

    #[test]
    fn baseline_names() {
        assert_eq!(BaselineMcsCrLock::spin().name(), "baseline:MCSCR-S");
        assert_eq!(BaselineMcsCrLock::stp().name(), "baseline:MCSCR-STP");
    }
}
