//! A coarse, lazy timer wheel for idle-connection reaping.
//!
//! The threaded server gets idle timeouts for free from
//! `SO_RCVTIMEO`; a reactor cannot block per connection, so deadlines
//! move into a shared structure ticked by whichever polling worker
//! happens to return from `epoll_wait` past the next tick stamp. The
//! wheel is deliberately *lazy and approximate*:
//!
//! - a connection is inserted once at registration and **not**
//!   rescheduled on activity — the hot path never touches the wheel;
//! - when a slot comes due, the reaper validates each token against
//!   the connection's `last_active` stamp and re-inserts the still
//!   -live ones one timeout further out;
//! - duplicates and stale tokens (closed or recycled slots) are
//!   harmless: validation at reap time is the only source of truth.
//!
//! The result: a connection idle for `timeout` is reaped within
//! `[timeout, 2·timeout + granularity)` — the same "coarse but cheap"
//! contract as the threaded path's blocking-read timeout, at zero
//! per-request cost.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Lazily ticked slotted deadline store; see the module docs.
pub struct TimerWheel {
    /// Slot width in milliseconds.
    granularity_ms: u64,
    /// `slots[i]` holds tokens whose next check falls in slot `i`.
    slots: Mutex<Slots>,
    /// Monotonic-ms stamp before which no tick is due; a worker
    /// claims a tick by CAS-advancing this.
    next_tick_ms: AtomicU64,
}

struct Slots {
    ring: Vec<Vec<u64>>,
    /// Index of the slot the next tick will drain.
    cursor: usize,
}

impl TimerWheel {
    /// A wheel sized for `timeout`: slot width `timeout / 4`, clamped
    /// to `[100 ms, 1 s]`, with enough slots to place a deadline one
    /// full timeout ahead of the cursor.
    pub fn new(timeout: Duration) -> Self {
        let granularity_ms = (timeout.as_millis() as u64 / 4).clamp(100, 1_000);
        let span = timeout.as_millis() as u64 / granularity_ms + 2;
        TimerWheel {
            granularity_ms,
            slots: Mutex::new(Slots {
                ring: (0..span as usize).map(|_| Vec::new()).collect(),
                cursor: 0,
            }),
            next_tick_ms: AtomicU64::new(0),
        }
    }

    /// Slot width in milliseconds (test hook).
    pub fn granularity_ms(&self) -> u64 {
        self.granularity_ms
    }

    /// Inserts `token` to come due roughly `delay` after `now_ms`
    /// (both in the caller's monotonic-ms clock). The placement is
    /// rounded *up* a slot so a token never comes due early.
    pub fn schedule(&self, token: u64, now_ms: u64, delay: Duration) {
        let mut slots = self.slots.lock().expect("wheel mutex poisoned");
        let ahead = (delay.as_millis() as u64).div_ceil(self.granularity_ms) + 1;
        let len = slots.ring.len() as u64;
        let at = ((slots.cursor as u64 + ahead.min(len - 1)) % len) as usize;
        slots.ring[at].push(token);
        // First insertion starts the clock: a wheel with nothing
        // scheduled never owes a tick.
        let _ = self.next_tick_ms.compare_exchange(
            0,
            now_ms + self.granularity_ms,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }

    /// Claims and drains every tick due at `now_ms`, returning the
    /// tokens to validate. At most one caller wins each tick (CAS on
    /// the stamp), so concurrent pollers never double-drain a slot;
    /// everyone else gets an empty vec for free.
    pub fn due(&self, now_ms: u64) -> Vec<u64> {
        let mut out = Vec::new();
        loop {
            let next = self.next_tick_ms.load(Ordering::Acquire);
            if next == 0 || now_ms < next {
                return out;
            }
            if self
                .next_tick_ms
                .compare_exchange(
                    next,
                    next + self.granularity_ms,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_err()
            {
                continue; // another poller claimed this tick
            }
            let mut slots = self.slots.lock().expect("wheel mutex poisoned");
            let cursor = slots.cursor;
            slots.cursor = (cursor + 1) % slots.ring.len();
            out.append(&mut slots.ring[cursor]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_come_due_no_earlier_than_their_delay() {
        let wheel = TimerWheel::new(Duration::from_millis(400));
        assert_eq!(wheel.granularity_ms(), 100);
        wheel.schedule(7, 0, Duration::from_millis(400));
        // Walk the clock forward; the token must not surface before
        // 400 ms have elapsed.
        let mut seen_at = None;
        for now in (0..2_000).step_by(50) {
            let due = wheel.due(now);
            if due.contains(&7) {
                seen_at = Some(now);
                break;
            }
        }
        let at = seen_at.expect("token never came due");
        assert!(at >= 400, "came due early, at {at} ms");
    }

    #[test]
    fn each_tick_is_claimed_once() {
        let wheel = TimerWheel::new(Duration::from_millis(400));
        for t in 0..32 {
            wheel.schedule(t, 0, Duration::from_millis(100));
        }
        // Sweep far past every deadline: all 32 tokens surface, and a
        // second sweep of the same instant yields nothing.
        let first: Vec<u64> = wheel.due(10_000);
        assert_eq!(first.len(), 32);
        assert!(wheel.due(10_000).is_empty());
    }
}
