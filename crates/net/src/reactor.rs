//! A readiness-driven connection front-end whose *polling right* is
//! Malthusian.
//!
//! The classic reactor question — how many threads should call
//! `epoll_wait` on a shared instance — is exactly the paper's
//! admission question one level up. All `workers` threads exist, but
//! only an active circulating set of `acs_target` of them may poll
//! and drain ready sockets; the surplus is culled onto a LIFO passive
//! stack ([`malthus_park::Parker`]), where it stays cache-warm and
//! cheap. When every active worker is busy dispatching (nobody
//! polling, last poll return stale past the stall threshold), the
//! passive *stack top* self-promotes with a temporary ACS boost —
//! stall-based reprovisioning, [`policy::crew_has_surplus`] deciding
//! surplus exactly as the work crew does. Boost decays as polls come
//! back empty, and an episodic [`FairnessTrigger`] swap promotes the
//! *eldest* passive worker so LIFO residency stays long-term fair.
//!
//! Readiness dispatch uses `EPOLLONESHOT`: one worker owns a ready
//! connection until it re-arms it, so per-connection handler state
//! needs no cross-worker coordination beyond its mutex. A never-
//! drained level-triggered wake pipe makes shutdown wake *every*
//! poller at once. A ready connection is drained with a bounded read
//! budget, handed to the [`Handler`] as one batch, and its response
//! flushed nonblockingly — whatever doesn't fit rides an `EPOLLOUT`
//! re-arm. Idle connections cost one slab slot and one timer-wheel
//! token; no thread, no stack.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use malthus::policy::{self, FairnessTrigger};
use malthus_metrics::LatencyHistogram;
use malthus_park::{ParkResult, Parker, Unparker};

use crate::handler::{Action, CloseReason, Handler};
use crate::sys;
use crate::wheel::TimerWheel;

/// Token of the shutdown wake pipe's read end.
const TOKEN_WAKE: u64 = u64::MAX;
/// Token of the accept listener.
const TOKEN_LISTENER: u64 = u64::MAX - 1;

/// Ready events drained per `epoll_wait` call.
const EVENT_BATCH: usize = 64;
/// Upper bound on an active worker's sleep inside `epoll_wait`, so
/// boost decay and timer-wheel ticks happen even on a quiet server.
const POLL_MS: i32 = 100;
/// Socket reads per readable wakeup are capped at this many bytes;
/// the level-triggered one-shot re-arm redelivers whatever remains,
/// so a fire-hosing client cannot pin a reactor worker.
const READ_BUDGET: usize = 64 * 1024;
/// Read chunk growth quantum.
const READ_CHUNK: usize = 16 * 1024;
/// Accepts per listener wakeup before re-arming (the re-arm fires
/// again immediately if the backlog still has connections).
const ACCEPT_BUDGET: usize = 256;
/// A connection whose buffered partial request exceeds this is
/// protocol-broken (or hostile) and is closed.
const MAX_REQUEST_BYTES: usize = 1 << 20;

/// Reactor sizing and admission knobs.
#[derive(Clone)]
pub struct ReactorConfig {
    /// Total reactor worker threads (active + passive).
    pub workers: usize,
    /// Steady-state ACS limit on concurrent pollers; `workers`
    /// disables restriction.
    pub acs_target: usize,
    /// How stale the last `epoll_wait` return must be (with nobody
    /// polling) before the passive stack top self-promotes.
    pub stall_threshold: Duration,
    /// Average period (in ready-batch dispatches) of the episodic
    /// eldest-passive promotion; `None` disables it.
    pub fairness_period: Option<u64>,
    /// Seed for the fairness trigger's Bernoulli trials.
    pub seed: u64,
    /// Idle timeout: connections with no request bytes for this long
    /// are reaped by the timer wheel. `None` never reaps.
    pub read_timeout: Option<Duration>,
    /// External stop flag, checked on every accept wakeup: setting it
    /// and nudging the listener (a bare connect) shuts the reactor
    /// down — how `ServerControl::stop` reaches a reactor that has no
    /// blocking accept loop to break.
    pub stop_flag: Option<Arc<AtomicBool>>,
}

impl ReactorConfig {
    /// A Malthusian reactor: `workers` threads, ACS capped at the
    /// host's parallelism, 5 ms stall window, the paper's 1/1000
    /// fairness period.
    pub fn malthusian(workers: usize) -> Self {
        let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
        ReactorConfig {
            workers: workers.max(1),
            acs_target: workers.max(1).min(cpus),
            stall_threshold: Duration::from_millis(5),
            fairness_period: Some(policy::DEFAULT_FAIRNESS_PERIOD),
            seed: 0x4D414C54,
            read_timeout: None,
            stop_flag: None,
        }
    }

    /// Overrides the steady-state ACS limit (clamped to `workers`).
    pub fn with_acs_target(mut self, acs_target: usize) -> Self {
        self.acs_target = acs_target.clamp(1, self.workers);
        self
    }

    /// Sets the idle-connection reap timeout.
    pub fn with_read_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Overrides the poll-stall window.
    pub fn with_stall_threshold(mut self, stall: Duration) -> Self {
        self.stall_threshold = stall;
        self
    }

    /// Installs an external stop flag (see the field docs).
    pub fn with_stop_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.stop_flag = Some(flag);
        self
    }
}

/// Counter snapshot of reactor activity (racy while running, exact
/// after [`Reactor::join`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReactorStats {
    /// Connections currently registered.
    pub conns_open: usize,
    /// Workers currently in the active circulating set.
    pub active_workers: usize,
    /// Workers currently parked on the passive stack.
    pub passive_workers: usize,
    /// Total `epoll_wait` returns.
    pub epoll_waits: u64,
    /// Ready-connection dispatches (each is one handler batch).
    pub ready_batches: u64,
    /// Connections accepted.
    pub accepts: u64,
    /// Workers culled onto the passive stack.
    pub culls: u64,
    /// Passive workers self-promoted on poll stall.
    pub reprovisions: u64,
    /// Eldest-passive promotions by the fairness trigger.
    pub fairness_promotions: u64,
    /// Connections reaped by the idle timer wheel.
    pub idle_reaps: u64,
    /// Flush attempts that could not complete and re-armed `EPOLLOUT`.
    pub partial_flushes: u64,
}

/// One registered connection: sockets plus the buffer pair that
/// replaced the threaded server's thread + stack.
struct Connection<H: Handler> {
    stream: TcpStream,
    token: u64,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    /// How much of `write_buf` already left the socket.
    write_pos: usize,
    /// Monotonic-ms stamp of the last request bytes (idle-reap input).
    last_active_ms: u64,
    /// Close once the write buffer drains (QUIT, protocol errors).
    closing: bool,
    /// After the drain-close, also take the whole reactor down
    /// (SHUTDOWN verb).
    shutdown_on_close: bool,
    closed: bool,
    state: H::Conn,
}

impl<H: Handler> Connection<H> {
    fn write_pending(&self) -> bool {
        self.write_pos < self.write_buf.len()
    }
}

struct SlabEntry<H: Handler> {
    /// Bumped on every free; tokens embed it so a recycled slot
    /// cannot alias a stale epoll event.
    gen: u32,
    conn: Option<Arc<Mutex<Connection<H>>>>,
}

struct Slab<H: Handler> {
    entries: Vec<SlabEntry<H>>,
    free: Vec<u32>,
}

/// Poll-admission state: the work crew's membership machine with
/// "dequeue a task" replaced by "return from `epoll_wait`".
struct Admission {
    /// Workers currently active (polling or dispatching).
    active: AtomicUsize,
    /// Temporary ACS enlargement from reprovisioning; decays on empty
    /// polls.
    boost: AtomicUsize,
    /// Workers currently blocked inside `epoll_wait`. Zero while the
    /// last poll return goes stale means readiness may be sitting
    /// undelivered — the reprovision signal.
    waiting: AtomicUsize,
    /// Monotonic-ms stamp of the most recent `epoll_wait` return.
    last_poll_ms: AtomicU64,
    /// Passive worker ids; eldest at 0, LIFO top last.
    passive: Mutex<Vec<usize>>,
    fairness: Mutex<Option<FairnessTrigger>>,
    culls: AtomicU64,
    reprovisions: AtomicU64,
    fairness_promotions: AtomicU64,
}

struct Inner<H: Handler> {
    epfd: i32,
    wake_r: i32,
    wake_w: i32,
    fds_closed: AtomicBool,
    listener: TcpListener,
    handler: H,
    cfg: ReactorConfig,
    stall_ms: u64,
    epoch: Instant,
    shutdown: AtomicBool,
    slab: Mutex<Slab<H>>,
    conns_open: AtomicUsize,
    wheel: Option<TimerWheel>,
    adm: Admission,
    unparkers: Vec<Unparker>,
    epoll_waits: AtomicU64,
    ready_batches: AtomicU64,
    accepts: AtomicU64,
    idle_reaps: AtomicU64,
    partial_flushes: AtomicU64,
    /// Ready sockets per non-empty `epoll_wait` return.
    ready_hist: LatencyHistogram,
}

/// The reactor handle: spawns its workers at [`Reactor::start`],
/// stops them at [`Reactor::join`] (or on drop).
pub struct Reactor<H: Handler> {
    inner: Arc<Inner<H>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl<H: Handler> Reactor<H> {
    /// Takes ownership of `listener`, registers it with a fresh epoll
    /// instance, and spawns `cfg.workers` admission-managed reactor
    /// threads. Returns once the workers are running; serving needs
    /// no further calls.
    pub fn start(listener: TcpListener, handler: H, cfg: ReactorConfig) -> io::Result<Reactor<H>> {
        assert!(cfg.workers >= 1, "reactor needs at least one worker");
        assert!(
            (1..=cfg.workers).contains(&cfg.acs_target),
            "ACS target must be in 1..=workers"
        );
        listener.set_nonblocking(true)?;
        let epfd = sys::epoll_create()?;
        let (wake_r, wake_w) = match sys::wake_pipe() {
            Ok(p) => p,
            Err(e) => {
                sys::close_fd(epfd);
                return Err(e);
            }
        };
        // Level-triggered and never drained: once written, every
        // epoll_wait on every worker returns instantly, forever.
        sys::epoll_ctl_op(epfd, sys::EPOLL_CTL_ADD, wake_r, sys::EPOLLIN, TOKEN_WAKE)?;
        sys::epoll_ctl_op(
            epfd,
            sys::EPOLL_CTL_ADD,
            listener.as_raw_fd(),
            sys::EPOLLIN | sys::EPOLLONESHOT,
            TOKEN_LISTENER,
        )?;
        let parkers: Vec<Parker> = (0..cfg.workers).map(|_| Parker::new()).collect();
        let unparkers = parkers.iter().map(Parker::unparker).collect();
        let stall_ms = (cfg.stall_threshold.as_millis() as u64).max(1);
        let inner = Arc::new(Inner {
            epfd,
            wake_r,
            wake_w,
            fds_closed: AtomicBool::new(false),
            listener,
            handler,
            stall_ms,
            epoch: Instant::now(),
            shutdown: AtomicBool::new(false),
            slab: Mutex::new(Slab {
                entries: Vec::new(),
                free: Vec::new(),
            }),
            conns_open: AtomicUsize::new(0),
            wheel: cfg.read_timeout.map(TimerWheel::new),
            adm: Admission {
                active: AtomicUsize::new(cfg.workers),
                boost: AtomicUsize::new(0),
                waiting: AtomicUsize::new(0),
                last_poll_ms: AtomicU64::new(0),
                passive: Mutex::new(Vec::new()),
                fairness: Mutex::new(
                    cfg.fairness_period
                        .map(|p| FairnessTrigger::new(p, cfg.seed)),
                ),
                culls: AtomicU64::new(0),
                reprovisions: AtomicU64::new(0),
                fairness_promotions: AtomicU64::new(0),
            },
            unparkers,
            epoll_waits: AtomicU64::new(0),
            ready_batches: AtomicU64::new(0),
            accepts: AtomicU64::new(0),
            idle_reaps: AtomicU64::new(0),
            partial_flushes: AtomicU64::new(0),
            ready_hist: LatencyHistogram::new(),
            cfg,
        });
        let handles = parkers
            .into_iter()
            .enumerate()
            .map(|(id, parker)| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("reactor-{id}"))
                    .spawn(move || worker_loop(&inner, id, parker))
                    .expect("spawn reactor worker")
            })
            .collect();
        Ok(Reactor { inner, handles })
    }

    /// The address the reactor is accepting on.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.listener.local_addr()
    }

    /// Signals shutdown without waiting: wakes every poller through
    /// the wake pipe and every passive worker through its parker.
    pub fn shutdown(&self) {
        self.inner.initiate_shutdown();
    }

    /// Live counter snapshot.
    pub fn stats(&self) -> ReactorStats {
        self.inner.stats()
    }

    /// A cloneable, handler-type-erased window onto [`Reactor::stats`]
    /// — lets protocol code created *before* the reactor (the handler)
    /// read reactor counters once it is running.
    pub fn stats_probe(&self) -> StatsProbe {
        let inner = Arc::clone(&self.inner);
        StatsProbe(Arc::new(move || inner.stats()))
    }

    /// Shuts down, joins every worker, closes every remaining
    /// connection (handlers see [`CloseReason::ServerShutdown`]), and
    /// returns the final statistics.
    pub fn join(mut self) -> ReactorStats {
        self.inner.initiate_shutdown();
        self.finish()
    }

    /// Blocks until something else shuts the reactor down — a
    /// `SHUTDOWN` verb ([`Action::ShutdownServer`]), the configured
    /// stop flag, or [`Reactor::shutdown`] from another thread — then
    /// cleans up and returns the final statistics. The serve-loop
    /// analogue of a blocking accept loop.
    pub fn wait(mut self) -> ReactorStats {
        self.finish()
    }

    fn finish(&mut self) -> ReactorStats {
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        let remaining: Vec<Arc<Mutex<Connection<H>>>> = {
            let mut slab = self.inner.slab.lock().expect("reactor slab poisoned");
            slab.free.clear();
            slab.entries
                .iter_mut()
                .filter_map(|e| e.conn.take())
                .collect()
        };
        // Graceful drain: a connection with a response still parked in
        // `write_buf` gets a bounded chance to take delivery before we
        // force-close. The sockets are nonblocking, so busy-retry with
        // a short sleep under an overall deadline — shutdown must not
        // hang on a peer that stopped reading.
        let drain_deadline = Instant::now() + Duration::from_millis(250);
        for arc in remaining {
            let mut c = arc.lock().expect("reactor conn poisoned");
            let conn = &mut *c;
            while !conn.closed && conn.write_pending() && Instant::now() < drain_deadline {
                match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
                    Ok(0) => break,
                    Ok(n) => conn.write_pos += n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => break,
                }
            }
            if !c.closed {
                c.closed = true;
                self.inner.conns_open.fetch_sub(1, Ordering::SeqCst);
                self.inner
                    .handler
                    .on_close(&mut c.state, CloseReason::ServerShutdown);
            }
        }
        if !self.inner.fds_closed.swap(true, Ordering::SeqCst) {
            sys::close_fd(self.inner.epfd);
            sys::close_fd(self.inner.wake_r);
            sys::close_fd(self.inner.wake_w);
        }
        self.inner.stats()
    }

    /// Registers the reactor's gauges, counters and the ready-batch
    /// histogram with a metrics registry (idempotent: re-registration
    /// replaces the sources).
    pub fn register_metrics(&self, registry: &malthus_obs::Registry) {
        let no_labels: &[(&str, &str)] = &[];
        let i = Arc::clone(&self.inner);
        registry.gauge(
            "kv_conns_open",
            "Connections currently registered with the reactor.",
            no_labels,
            move || i.conns_open.load(Ordering::Relaxed) as f64,
        );
        let i = Arc::clone(&self.inner);
        registry.gauge(
            "kv_reactor_workers",
            "Reactor workers by admission state.",
            &[("state", "active")],
            move || i.adm.active.load(Ordering::Relaxed) as f64,
        );
        let i = Arc::clone(&self.inner);
        registry.gauge(
            "kv_reactor_workers",
            "Reactor workers by admission state.",
            &[("state", "passive")],
            move || {
                let passive = i.adm.passive.lock().expect("reactor admission poisoned");
                passive.len() as f64
            },
        );
        let i = Arc::clone(&self.inner);
        registry.counter(
            "kv_epoll_waits_total",
            "epoll_wait returns across all reactor workers.",
            no_labels,
            move || i.epoll_waits.load(Ordering::Relaxed),
        );
        let i = Arc::clone(&self.inner);
        registry.counter(
            "kv_reactor_culls_total",
            "Reactor workers passivated by poll admission.",
            no_labels,
            move || i.adm.culls.load(Ordering::Relaxed),
        );
        let i = Arc::clone(&self.inner);
        registry.counter(
            "kv_reactor_reprovisions_total",
            "Passive reactor workers self-promoted on poll stall.",
            no_labels,
            move || i.adm.reprovisions.load(Ordering::Relaxed),
        );
        let i = Arc::clone(&self.inner);
        registry.counter(
            "kv_reactor_partial_flushes_total",
            "Response flushes that re-armed EPOLLOUT to finish.",
            no_labels,
            move || i.partial_flushes.load(Ordering::Relaxed),
        );
        let i = Arc::clone(&self.inner);
        registry.counter(
            "kv_reactor_idle_reaps_total",
            "Connections reaped by the idle timer wheel.",
            no_labels,
            move || i.idle_reaps.load(Ordering::Relaxed),
        );
        let i = Arc::clone(&self.inner);
        registry.histogram(
            "kv_reactor_ready_batch",
            "Ready sockets drained per non-empty epoll_wait return.",
            no_labels,
            move || i.ready_hist.snapshot(),
        );
    }
}

impl<H: Handler> Drop for Reactor<H> {
    fn drop(&mut self) {
        if !self.handles.is_empty() {
            self.inner.initiate_shutdown();
            self.finish();
        }
    }
}

/// See [`Reactor::stats_probe`].
#[derive(Clone)]
pub struct StatsProbe(Arc<dyn Fn() -> ReactorStats + Send + Sync>);

impl StatsProbe {
    /// Current reactor counters.
    pub fn get(&self) -> ReactorStats {
        (self.0)()
    }
}

impl std::fmt::Debug for StatsProbe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StatsProbe").finish_non_exhaustive()
    }
}

impl<H: Handler> Inner<H> {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    fn acs_limit(&self) -> usize {
        (self.cfg.acs_target + self.adm.boost.load(Ordering::SeqCst)).min(self.cfg.workers)
    }

    fn initiate_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        sys::wake_write(self.wake_w);
        for u in &self.unparkers {
            u.unpark();
        }
    }

    fn stats(&self) -> ReactorStats {
        ReactorStats {
            conns_open: self.conns_open.load(Ordering::SeqCst),
            active_workers: self.adm.active.load(Ordering::SeqCst),
            passive_workers: self
                .adm
                .passive
                .lock()
                .expect("reactor admission poisoned")
                .len(),
            epoll_waits: self.epoll_waits.load(Ordering::Relaxed),
            ready_batches: self.ready_batches.load(Ordering::Relaxed),
            accepts: self.accepts.load(Ordering::Relaxed),
            culls: self.adm.culls.load(Ordering::Relaxed),
            reprovisions: self.adm.reprovisions.load(Ordering::Relaxed),
            fairness_promotions: self.adm.fairness_promotions.load(Ordering::Relaxed),
            idle_reaps: self.idle_reaps.load(Ordering::Relaxed),
            partial_flushes: self.partial_flushes.load(Ordering::Relaxed),
        }
    }

    /// Culls the calling worker if the ACS has surplus. The recheck
    /// under the passive mutex serializes concurrent cull decisions
    /// so the set never undershoots the limit.
    fn try_cull(&self, id: usize) -> bool {
        let mut passive = self.adm.passive.lock().expect("reactor admission poisoned");
        if self.shutdown.load(Ordering::Acquire)
            || !policy::crew_has_surplus(self.adm.active.load(Ordering::SeqCst), self.acs_limit())
        {
            return false;
        }
        passive.push(id);
        self.adm.active.fetch_sub(1, Ordering::SeqCst);
        self.adm.culls.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Parks a culled worker until promotion (returns `true`) or
    /// shutdown (`false`). Only the stack top may self-promote, and
    /// only when nobody is polling and the last poll return has gone
    /// stale — the reactor's analogue of a dequeue stall with backlog
    /// waiting.
    fn park_passive(&self, id: usize, parker: &Parker) -> bool {
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                return false;
            }
            match parker.park_timeout(self.cfg.stall_threshold) {
                ParkResult::Unparked => {
                    // A promoter (fairness swap or shutdown) already
                    // did the membership bookkeeping for us.
                    return !self.shutdown.load(Ordering::Acquire);
                }
                ParkResult::TimedOut => {
                    if self.adm.waiting.load(Ordering::SeqCst) != 0 {
                        continue;
                    }
                    let stale = self
                        .now_ms()
                        .saturating_sub(self.adm.last_poll_ms.load(Ordering::Acquire));
                    if stale < self.stall_ms {
                        continue;
                    }
                    let mut passive = self.adm.passive.lock().expect("reactor admission poisoned");
                    if passive.last() == Some(&id) {
                        passive.pop();
                        drop(passive);
                        self.adm.active.fetch_add(1, Ordering::SeqCst);
                        self.adm.boost.fetch_add(1, Ordering::SeqCst);
                        self.adm.reprovisions.fetch_add(1, Ordering::Relaxed);
                        return true;
                    }
                }
            }
        }
    }

    /// Sheds one unit of reprovisioning boost after an empty poll —
    /// readiness kept up with the enlarged set, so it relaxes back
    /// toward the target.
    fn decay_boost(&self) {
        let _ = self
            .adm
            .boost
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |b| b.checked_sub(1));
    }

    /// Episodic eldest-fairness: swap the calling worker for the
    /// eldest passive one. Returns `true` if the caller passivated
    /// (it must then park).
    fn fairness_swap(&self, id: usize) -> bool {
        let fired = {
            let mut trig = self
                .adm
                .fairness
                .lock()
                .expect("reactor admission poisoned");
            trig.as_mut().is_some_and(FairnessTrigger::fire)
        };
        if !fired {
            return false;
        }
        let mut passive = self.adm.passive.lock().expect("reactor admission poisoned");
        if passive.is_empty() || self.shutdown.load(Ordering::Acquire) {
            return false;
        }
        let eldest = passive.remove(0);
        passive.push(id);
        drop(passive);
        // A swap: the eldest joins the ACS here; the caller leaves it
        // (decrementing `active`) on its way to the passive park.
        self.adm.active.fetch_add(1, Ordering::SeqCst);
        self.unparkers[eldest].unpark();
        self.adm.fairness_promotions.fetch_add(1, Ordering::Relaxed);
        true
    }

    fn lookup(&self, token: u64) -> Option<Arc<Mutex<Connection<H>>>> {
        let index = (token & u64::from(u32::MAX)) as usize;
        let gen = (token >> 32) as u32;
        let slab = self.slab.lock().expect("reactor slab poisoned");
        let entry = slab.entries.get(index)?;
        if entry.gen != gen {
            return None;
        }
        entry.conn.clone()
    }

    /// Registers a freshly accepted stream: nonblocking, slab slot,
    /// handler state, timer-wheel deadline, one-shot read interest.
    fn register_conn(self: &Arc<Self>, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let fd = stream.as_raw_fd();
        let now = self.now_ms();
        let state = self.handler.on_open(&stream);
        let token = {
            let mut slab = self.slab.lock().expect("reactor slab poisoned");
            let index = match slab.free.pop() {
                Some(i) => i as usize,
                None => {
                    slab.entries.push(SlabEntry { gen: 0, conn: None });
                    slab.entries.len() - 1
                }
            };
            let token = (u64::from(slab.entries[index].gen) << 32) | index as u64;
            slab.entries[index].conn = Some(Arc::new(Mutex::new(Connection {
                stream,
                token,
                read_buf: Vec::new(),
                write_buf: Vec::new(),
                write_pos: 0,
                last_active_ms: now,
                closing: false,
                shutdown_on_close: false,
                closed: false,
                state,
            })));
            token
        };
        self.conns_open.fetch_add(1, Ordering::SeqCst);
        self.accepts.fetch_add(1, Ordering::Relaxed);
        if let (Some(wheel), Some(timeout)) = (&self.wheel, self.cfg.read_timeout) {
            wheel.schedule(token, now, timeout);
        }
        if let Err(e) = sys::epoll_ctl_op(
            self.epfd,
            sys::EPOLL_CTL_ADD,
            fd,
            sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLONESHOT,
            token,
        ) {
            eprintln!("# reactor: epoll register failed (dropping conn): {e}");
            if let Some(arc) = self.lookup(token) {
                let mut c = arc.lock().expect("reactor conn poisoned");
                self.close_locked(&mut c, CloseReason::Error, false);
            }
        }
    }

    /// Drains the accept backlog (bounded) and re-arms the listener.
    fn accept_ready(self: &Arc<Self>) {
        if let Some(flag) = &self.cfg.stop_flag {
            if flag.load(Ordering::SeqCst) {
                self.initiate_shutdown();
                return;
            }
        }
        for _ in 0..ACCEPT_BUDGET {
            match self.listener.accept() {
                Ok((stream, _)) => self.register_conn(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) => {
                    // One refused/aborted connection must not take
                    // down the reactor (same contract as the threaded
                    // accept loop).
                    eprintln!("# reactor: accept error (continuing): {e}");
                    break;
                }
            }
        }
        if !self.shutdown.load(Ordering::Acquire) {
            let _ = sys::epoll_ctl_op(
                self.epfd,
                sys::EPOLL_CTL_MOD,
                self.listener.as_raw_fd(),
                sys::EPOLLIN | sys::EPOLLONESHOT,
                TOKEN_LISTENER,
            );
        }
    }

    /// Nonblocking flush of the pending slice of `write_buf`.
    /// Returns `Ok(true)` when fully drained, `Ok(false)` on
    /// `WouldBlock` (caller re-arms `EPOLLOUT`).
    fn flush(&self, c: &mut Connection<H>) -> io::Result<bool> {
        while c.write_pending() {
            // An injected EAGAIN on the write side forces the partial-
            // flush path: the response parks in `write_buf` and waits
            // for a (real) EPOLLOUT.
            if malthus_fault::fire(malthus_fault::Site::NetEagain) {
                self.partial_flushes.fetch_add(1, Ordering::Relaxed);
                return Ok(false);
            }
            match c.stream.write(&c.write_buf[c.write_pos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => c.write_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.partial_flushes.fetch_add(1, Ordering::Relaxed);
                    return Ok(false);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        c.write_buf.clear();
        c.write_pos = 0;
        Ok(true)
    }

    /// One ready-connection dispatch: drain the socket (bounded),
    /// hand the bytes to the handler as a batch, flush the response,
    /// re-arm or close.
    fn conn_ready(self: &Arc<Self>, token: u64, mask: u32) {
        let Some(arc) = self.lookup(token) else {
            return; // already closed; stale one-shot event
        };
        let mut c = arc.lock().expect("reactor conn poisoned");
        if c.closed {
            return;
        }
        self.ready_batches.fetch_add(1, Ordering::Relaxed);
        let mut reason: Option<CloseReason> = None;
        let mut eof = false;
        if mask & sys::EPOLLERR != 0 {
            reason = Some(CloseReason::Error);
        }
        // Finish an in-flight partial response first: the peer just
        // told us it drained some of its receive window.
        if reason.is_none() && c.write_pending() && mask & sys::EPOLLOUT != 0 {
            let t0 = Instant::now();
            match self.flush(&mut c) {
                Ok(complete) => {
                    let ns = t0.elapsed().as_nanos() as u64;
                    self.handler.on_flushed(&mut c.state, ns, complete);
                }
                Err(_) => reason = Some(CloseReason::Error),
            }
        }
        let mut read_any = false;
        if reason.is_none()
            && !c.closing
            && mask & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP) != 0
        {
            let conn = &mut *c;
            let mut total = 0;
            loop {
                let len = conn.read_buf.len();
                conn.read_buf.resize(len + READ_CHUNK, 0);
                // Fault injection ahead of the real read: a planned
                // reset exercises the error-close path, a planned
                // EAGAIN the spurious-readiness re-arm path.
                let got = if malthus_fault::fire(malthus_fault::Site::NetReset) {
                    Err(io::Error::new(
                        io::ErrorKind::ConnectionReset,
                        "injected connection reset",
                    ))
                } else if malthus_fault::fire(malthus_fault::Site::NetEagain) {
                    Err(io::ErrorKind::WouldBlock.into())
                } else {
                    conn.stream.read(&mut conn.read_buf[len..])
                };
                match got {
                    Ok(0) => {
                        conn.read_buf.truncate(len);
                        eof = true;
                        break;
                    }
                    Ok(n) => {
                        conn.read_buf.truncate(len + n);
                        read_any = true;
                        total += n;
                        if total >= READ_BUDGET {
                            break; // re-arm redelivers the rest
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        conn.read_buf.truncate(len);
                        break;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                        conn.read_buf.truncate(len);
                    }
                    Err(_) => {
                        conn.read_buf.truncate(len);
                        reason = Some(CloseReason::Error);
                        break;
                    }
                }
            }
            conn.last_active_ms = self.epoch.elapsed().as_millis() as u64;
        }
        if reason.is_none() && read_any {
            let conn = &mut *c;
            match self
                .handler
                .on_data(&mut conn.state, &mut conn.read_buf, &mut conn.write_buf)
            {
                Action::Continue => {}
                Action::Close => conn.closing = true,
                Action::ShutdownServer => {
                    conn.closing = true;
                    conn.shutdown_on_close = true;
                }
            }
            if c.read_buf.len() > MAX_REQUEST_BYTES {
                // An unbounded partial line is a protocol violation;
                // drop it rather than buffer without limit.
                c.closing = true;
            }
            if c.write_pending() {
                let t0 = Instant::now();
                match self.flush(&mut c) {
                    Ok(complete) => {
                        let ns = t0.elapsed().as_nanos() as u64;
                        self.handler.on_flushed(&mut c.state, ns, complete);
                    }
                    Err(_) => reason = Some(CloseReason::Error),
                }
            }
        }
        if reason.is_none() {
            if eof {
                reason = Some(CloseReason::PeerClosed);
            } else if c.closing && !c.write_pending() {
                reason = Some(CloseReason::Requested);
            }
        }
        let shutdown_after = match reason {
            Some(r) => {
                let shutdown_after = c.shutdown_on_close;
                self.close_locked(&mut c, r, true);
                shutdown_after
            }
            None => {
                let mut m = sys::EPOLLRDHUP | sys::EPOLLONESHOT;
                if !c.closing {
                    m |= sys::EPOLLIN;
                }
                if c.write_pending() {
                    m |= sys::EPOLLOUT;
                }
                let fd = c.stream.as_raw_fd();
                if sys::epoll_ctl_op(self.epfd, sys::EPOLL_CTL_MOD, fd, m, token).is_err() {
                    self.close_locked(&mut c, CloseReason::Error, true);
                }
                false
            }
        };
        drop(c);
        if shutdown_after {
            self.initiate_shutdown();
        }
    }

    /// Closes a connection whose mutex the caller holds: deregisters
    /// the fd, runs the close hook once, frees the slab slot. Lock
    /// order stays conn → slab; the slab mutex is never held while a
    /// conn mutex is taken.
    fn close_locked(&self, c: &mut Connection<H>, reason: CloseReason, deregister: bool) {
        if c.closed {
            return;
        }
        c.closed = true;
        if deregister {
            let _ = sys::epoll_ctl_op(self.epfd, sys::EPOLL_CTL_DEL, c.stream.as_raw_fd(), 0, 0);
        }
        self.handler.on_close(&mut c.state, reason);
        let index = (c.token & u64::from(u32::MAX)) as usize;
        let gen = (c.token >> 32) as u32;
        let mut slab = self.slab.lock().expect("reactor slab poisoned");
        if let Some(entry) = slab.entries.get_mut(index) {
            if entry.gen == gen {
                entry.conn = None;
                entry.gen = entry.gen.wrapping_add(1);
                slab.free.push(index as u32);
            }
        }
        drop(slab);
        self.conns_open.fetch_sub(1, Ordering::SeqCst);
    }

    /// Claims due timer-wheel ticks and reaps connections idle past
    /// the timeout; still-live ones are rescheduled for the remainder.
    fn tick_wheel(self: &Arc<Self>) {
        let (Some(wheel), Some(timeout)) = (&self.wheel, self.cfg.read_timeout) else {
            return;
        };
        let now = self.now_ms();
        let timeout_ms = (timeout.as_millis() as u64).max(1);
        for token in wheel.due(now) {
            let Some(arc) = self.lookup(token) else {
                continue; // closed since scheduling; stale token
            };
            let mut c = arc.lock().expect("reactor conn poisoned");
            if c.closed {
                continue;
            }
            let idle = now.saturating_sub(c.last_active_ms);
            if idle >= timeout_ms {
                self.idle_reaps.fetch_add(1, Ordering::Relaxed);
                self.close_locked(&mut c, CloseReason::IdleTimeout, true);
            } else {
                wheel.schedule(token, now, Duration::from_millis(timeout_ms - idle));
            }
        }
    }
}

/// The reactor worker: the crew's admission state machine with
/// polling as the admitted work.
fn worker_loop<H: Handler>(inner: &Arc<Inner<H>>, id: usize, parker: Parker) {
    let mut events = vec![sys::EpollEvent { events: 0, data: 0 }; EVENT_BATCH];
    let mut is_active = true;
    loop {
        if inner.shutdown.load(Ordering::Acquire) {
            break;
        }
        // Admission gate: surplus pollers cull themselves onto the
        // passive stack before ever touching epoll.
        if policy::crew_has_surplus(inner.adm.active.load(Ordering::SeqCst), inner.acs_limit())
            && inner.try_cull(id)
        {
            is_active = false;
            if !inner.park_passive(id, &parker) {
                break;
            }
            is_active = true;
            continue;
        }
        inner.adm.waiting.fetch_add(1, Ordering::SeqCst);
        let polled = sys::epoll_wait_events(inner.epfd, &mut events, POLL_MS);
        inner.adm.waiting.fetch_sub(1, Ordering::SeqCst);
        inner
            .adm
            .last_poll_ms
            .store(inner.now_ms(), Ordering::Release);
        inner.epoll_waits.fetch_add(1, Ordering::Relaxed);
        if inner.shutdown.load(Ordering::Acquire) {
            break;
        }
        let n = match polled {
            Ok(n) => n,
            Err(e) => {
                eprintln!("# reactor: epoll_wait failed (worker {id} exiting): {e}");
                break;
            }
        };
        if n == 0 {
            inner.decay_boost();
        } else {
            let mut ready_conns = 0u64;
            for ev in &events[..n] {
                let token = { ev.data };
                let mask = { ev.events };
                if token == TOKEN_WAKE {
                    continue; // shutdown checked at loop top
                } else if token == TOKEN_LISTENER {
                    inner.accept_ready();
                } else {
                    ready_conns += 1;
                    inner.conn_ready(token, mask);
                }
            }
            if ready_conns > 0 {
                inner.ready_hist.record_ns(ready_conns);
                if inner.fairness_swap(id) {
                    inner.adm.active.fetch_sub(1, Ordering::SeqCst);
                    is_active = false;
                    if !inner.park_passive(id, &parker) {
                        break;
                    }
                    is_active = true;
                    continue;
                }
            }
        }
        inner.tick_wheel();
    }
    // Exit bookkeeping so post-shutdown gauges read zero.
    if is_active {
        inner.adm.active.fetch_sub(1, Ordering::SeqCst);
    } else {
        let mut passive = inner
            .adm
            .passive
            .lock()
            .expect("reactor admission poisoned");
        passive.retain(|&w| w != id);
    }
}
