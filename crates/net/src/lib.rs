//! `malthus-net`: a readiness-driven TCP front-end whose pollers are
//! admission-controlled by the Malthusian policy.
//!
//! The paper restricts *lock waiters* to a small active circulating
//! set; the work crew restricts *task-running threads*; this crate
//! restricts **concurrent `epoll_wait` callers** the same way. A
//! [`Reactor`] owns one epoll instance, a nonblocking listener and a
//! slab of nonblocking connections; its `workers` threads pass
//! through the familiar machine — cull to a LIFO passive stack when
//! the ACS has surplus, stall-based self-promotion of the stack top,
//! episodic eldest-fairness rotation — with "dequeue stalled" replaced
//! by "nobody is polling and the last poll return has gone stale".
//!
//! The protocol side stays out of this crate: implement [`Handler`]
//! (consume complete requests from the read buffer, append responses
//! to the write buffer) and the reactor does the readiness, buffer,
//! timer-wheel and partial-write bookkeeping. Everything is std +
//! the platform libc ([`sys`]); no external crates.

pub mod handler;
pub mod reactor;
pub mod sys;
pub mod wheel;

pub use handler::{Action, CloseReason, Handler};
pub use reactor::{Reactor, ReactorConfig, ReactorStats, StatsProbe};
pub use wheel::TimerWheel;
