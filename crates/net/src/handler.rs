//! The reactor↔protocol boundary.
//!
//! The reactor owns readiness, buffers and socket I/O; the
//! [`Handler`] owns the protocol. On each readable wakeup the reactor
//! appends whatever the socket had into the connection's read buffer
//! and hands both buffers to [`Handler::on_data`]: the handler
//! consumes the complete requests it finds (leaving any trailing
//! partial line in place), appends response bytes to the write
//! buffer, and says what should happen to the connection next. The
//! reactor then flushes nonblockingly, re-arming `EPOLLOUT` for
//! whatever didn't fit.

use std::net::TcpStream;

/// What the reactor should do with a connection after
/// [`Handler::on_data`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Keep the connection registered.
    Continue,
    /// Flush the pending response (riding `EPOLLOUT` if needed), then
    /// close — `QUIT`, oversized requests, protocol violations.
    Close,
    /// Flush, then initiate a full reactor shutdown — `SHUTDOWN`.
    ShutdownServer,
}

/// Why a connection is being closed (passed to [`Handler::on_close`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloseReason {
    /// The peer closed or half-closed the connection.
    PeerClosed,
    /// No request bytes arrived within the configured idle timeout;
    /// the timer wheel reaped it.
    IdleTimeout,
    /// A socket error (`EPOLLERR`, read/write failure).
    Error,
    /// The handler asked for the close ([`Action::Close`] /
    /// [`Action::ShutdownServer`]).
    Requested,
    /// The reactor is shutting down with the connection still open.
    ServerShutdown,
}

/// A connection-oriented protocol served by the reactor.
///
/// One handler instance serves every connection; per-connection
/// protocol state lives in [`Handler::Conn`], created at accept and
/// mutated only by the single reactor worker that owns the
/// connection's one-shot readiness at any moment.
pub trait Handler: Send + Sync + 'static {
    /// Per-connection protocol state.
    type Conn: Send + 'static;

    /// Called once per accepted connection.
    fn on_open(&self, stream: &TcpStream) -> Self::Conn;

    /// Called when new bytes have been read into `read_buf`. Consume
    /// complete requests from the front (`drain(..n)`), leave any
    /// trailing partial request in place, append responses to
    /// `write_buf`.
    fn on_data(
        &self,
        conn: &mut Self::Conn,
        read_buf: &mut Vec<u8>,
        write_buf: &mut Vec<u8>,
    ) -> Action;

    /// Called after each flush attempt that followed an
    /// [`Handler::on_data`]: `ns` is the time the write(s) took,
    /// `complete` whether the write buffer fully drained (false means
    /// the remainder rides an `EPOLLOUT` re-arm and another
    /// `on_flushed` will follow). Lets the protocol close out its
    /// per-request accounting (spans) when the response actually left.
    fn on_flushed(&self, conn: &mut Self::Conn, ns: u64, complete: bool) {
        let _ = (conn, ns, complete);
    }

    /// Called exactly once when the connection leaves the reactor.
    fn on_close(&self, conn: &mut Self::Conn, reason: CloseReason);
}
