//! Minimal `extern "C"` bindings to the platform libc for the epoll
//! facility — the one readiness primitive std does not expose.
//!
//! The workspace takes no external crates, so the reactor reaches
//! epoll the same way `std` itself reaches the kernel: through the
//! always-linked platform libc. Only what the reactor actually needs
//! is declared — `epoll_create1`/`epoll_ctl`/`epoll_wait`, a
//! self-wake pipe, and a socket-buffer knob the partial-write tests
//! use to force `EWOULDBLOCK` on small transfers. Sockets themselves
//! stay `std::net` types (`TcpListener`/`TcpStream` own their fds and
//! close them on drop); this module only ever borrows raw fds.

use std::io;
use std::os::fd::RawFd;

/// `EPOLL_CTL_ADD`: register a new fd with the epoll instance.
pub const EPOLL_CTL_ADD: i32 = 1;
/// `EPOLL_CTL_DEL`: remove a registered fd.
pub const EPOLL_CTL_DEL: i32 = 2;
/// `EPOLL_CTL_MOD`: change a registered fd's event mask (re-arm).
pub const EPOLL_CTL_MOD: i32 = 3;

/// Readable readiness.
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness (armed only while a partial write is pending).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (delivered regardless of the requested mask).
pub const EPOLLERR: u32 = 0x008;
/// Hang-up (delivered regardless of the requested mask).
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its write half.
pub const EPOLLRDHUP: u32 = 0x2000;
/// One-shot delivery: the fd is disarmed after one event, so exactly
/// one reactor worker owns a ready connection until it re-arms it.
/// Without `EPOLLET` the re-arm is level-triggered — if bytes are
/// still buffered when the worker re-arms, the fd fires again
/// immediately, so a bounded per-wakeup read budget loses nothing.
pub const EPOLLONESHOT: u32 = 1 << 30;

/// `O_CLOEXEC` / `EPOLL_CLOEXEC` / `O_NONBLOCK` for `pipe2`.
const EPOLL_CLOEXEC: i32 = 0o2000000;
const O_CLOEXEC: i32 = 0o2000000;
const O_NONBLOCK: i32 = 0o4000;

/// `struct epoll_event` — packed on x86-64 (the kernel declares it
/// `__attribute__((packed))` on that ABI), naturally aligned
/// elsewhere.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Ready-event mask (`EPOLLIN` | …).
    pub events: u32,
    /// The registration's opaque token (we pack slot index +
    /// generation).
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn pipe2(fds: *mut i32, flags: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn setsockopt(fd: i32, level: i32, optname: i32, optval: *const i32, optlen: u32) -> i32;
}

/// Creates a close-on-exec epoll instance.
pub fn epoll_create() -> io::Result<RawFd> {
    // SAFETY: no pointers involved; the kernel validates the flag.
    let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(fd)
}

/// Adds/modifies/removes `fd` on `epfd` with `mask` and `token`.
pub fn epoll_ctl_op(epfd: RawFd, op: i32, fd: RawFd, mask: u32, token: u64) -> io::Result<()> {
    let mut ev = EpollEvent {
        events: mask,
        data: token,
    };
    // SAFETY: `ev` outlives the call; DEL ignores the event pointer
    // on modern kernels but passing a valid one is always correct.
    let rc = unsafe { epoll_ctl(epfd, op, fd, &mut ev) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Blocks up to `timeout_ms` (-1 = forever) for ready events; fills
/// `events` and returns how many are valid. `EINTR` is reported as
/// `Ok(0)` — to a poll loop a signal is just a spurious wakeup.
pub fn epoll_wait_events(
    epfd: RawFd,
    events: &mut [EpollEvent],
    timeout_ms: i32,
) -> io::Result<usize> {
    // Injected EINTR takes the same path a real signal would: the
    // caller sees a spurious wakeup and must re-poll without losing
    // registered interest.
    if malthus_fault::fire(malthus_fault::Site::NetEintr) {
        return Ok(0);
    }
    // SAFETY: the pointer/len pair describes `events`, which lives
    // across the call; the kernel writes at most `len` entries.
    let rc = unsafe { epoll_wait(epfd, events.as_mut_ptr(), events.len() as i32, timeout_ms) };
    if rc < 0 {
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            return Ok(0);
        }
        return Err(err);
    }
    Ok(rc as usize)
}

/// A nonblocking close-on-exec pipe `(read_end, write_end)` — the
/// reactor's shutdown wake: registered level-triggered and never
/// drained, so one write makes every subsequent `epoll_wait` return
/// instantly on every worker.
pub fn wake_pipe() -> io::Result<(RawFd, RawFd)> {
    let mut fds = [0i32; 2];
    // SAFETY: `fds` is a valid 2-element buffer for the call.
    let rc = unsafe { pipe2(fds.as_mut_ptr(), O_CLOEXEC | O_NONBLOCK) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok((fds[0], fds[1]))
}

/// Writes one byte to the wake pipe's write end. A full pipe returns
/// `EAGAIN`, which is fine — the wake is already pending.
pub fn wake_write(fd: RawFd) {
    extern "C" {
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }
    let byte = 1u8;
    // SAFETY: one-byte buffer, valid for the call.
    let _ = unsafe { write(fd, &byte, 1) };
}

/// Closes a raw fd the reactor owns directly (epoll instance, wake
/// pipe). Socket fds are owned and closed by their std types.
pub fn close_fd(fd: RawFd) {
    // SAFETY: the caller owns `fd` and does not reuse it after this.
    let _ = unsafe { close(fd) };
}

const SOL_SOCKET: i32 = 1;
const SO_RCVBUF: i32 = 8;
const SO_SNDBUF: i32 = 7;

fn set_buf_opt(fd: RawFd, opt: i32, bytes: i32) -> io::Result<()> {
    // SAFETY: `bytes` outlives the call; optlen matches its size.
    let rc = unsafe {
        setsockopt(
            fd,
            SOL_SOCKET,
            opt,
            &bytes,
            std::mem::size_of::<i32>() as u32,
        )
    };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Shrinks a socket's kernel receive buffer (`SO_RCVBUF`) to roughly
/// `bytes`. Test-only in spirit: a tiny receive window makes a bulk
/// response overrun the sender's buffers, forcing the partial-write /
/// `EPOLLOUT` re-arm path deterministically.
pub fn set_recv_buffer(fd: RawFd, bytes: i32) -> io::Result<()> {
    set_buf_opt(fd, SO_RCVBUF, bytes)
}

/// Shrinks a socket's kernel send buffer (`SO_SNDBUF`) to roughly
/// `bytes` — the other half of forcing `EWOULDBLOCK` on small
/// transfers (loopback autotuning otherwise absorbs megabytes).
pub fn set_send_buffer(fd: RawFd, bytes: i32) -> io::Result<()> {
    set_buf_opt(fd, SO_SNDBUF, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoll_instance_creates_and_closes() {
        let fd = epoll_create().expect("epoll_create1");
        assert!(fd >= 0);
        close_fd(fd);
    }

    #[test]
    fn wake_pipe_triggers_epoll() {
        let ep = epoll_create().unwrap();
        let (r, w) = wake_pipe().unwrap();
        epoll_ctl_op(ep, EPOLL_CTL_ADD, r, EPOLLIN, 42).unwrap();
        let mut evs = [EpollEvent { events: 0, data: 0 }; 4];
        // Nothing written yet: a zero-timeout wait sees nothing.
        assert_eq!(epoll_wait_events(ep, &mut evs, 0).unwrap(), 0);
        wake_write(w);
        let n = epoll_wait_events(ep, &mut evs, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!({ evs[0].data }, 42);
        // Level-triggered and never drained: still ready.
        let n = epoll_wait_events(ep, &mut evs, 0).unwrap();
        assert_eq!(n, 1);
        close_fd(ep);
        close_fd(r);
        close_fd(w);
    }
}
