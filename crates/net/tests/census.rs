//! The headline claim, asserted: 1024 idle connections served by a
//! fixed worker count — no thread, no stack per connection.
//!
//! This test is alone in its file on purpose: integration tests in
//! one file share a process, and a concurrent test's threads would
//! skew the `/proc/self/status` census.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use malthus_net::{Action, CloseReason, Handler, Reactor, ReactorConfig};

#[derive(Clone)]
struct Echo;

impl Handler for Echo {
    type Conn = ();

    fn on_open(&self, _stream: &TcpStream) -> Self::Conn {}

    fn on_data(
        &self,
        _conn: &mut Self::Conn,
        read_buf: &mut Vec<u8>,
        write_buf: &mut Vec<u8>,
    ) -> Action {
        let Some(last_nl) = read_buf.iter().rposition(|&b| b == b'\n') else {
            return Action::Continue;
        };
        write_buf.extend_from_slice(&read_buf[..=last_nl]);
        read_buf.drain(..=last_nl);
        Action::Continue
    }

    fn on_close(&self, _conn: &mut Self::Conn, _reason: CloseReason) {}
}

/// Thread count of this process, from `/proc/self/status`.
fn proc_threads() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").unwrap();
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line in /proc/self/status")
}

fn read_line(stream: &mut TcpStream) -> String {
    let mut out = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => break,
            Ok(_) if byte[0] == b'\n' => break,
            Ok(_) => out.push(byte[0]),
            Err(e) => panic!("read_line: {e}"),
        }
    }
    String::from_utf8(out).unwrap()
}

#[test]
fn serves_1024_idle_connections_without_extra_threads() {
    const WORKERS: usize = 2;
    const CONNS: usize = 1024;
    let threads_before = proc_threads();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let reactor = Reactor::start(listener, Echo, ReactorConfig::malthusian(WORKERS)).unwrap();
    let addr = reactor.local_addr().unwrap();
    let threads_booted = proc_threads();
    assert_eq!(
        threads_booted - threads_before,
        WORKERS,
        "reactor boot should add exactly its worker threads"
    );
    let mut conns: Vec<TcpStream> = Vec::with_capacity(CONNS);
    for i in 0..CONNS {
        // The accept backlog can briefly fill while the reactor works
        // through a connect burst; retry rather than flake.
        let mut tries = 0;
        loop {
            match TcpStream::connect(addr) {
                Ok(c) => {
                    conns.push(c);
                    break;
                }
                Err(e) if tries < 50 => {
                    tries += 1;
                    let _ = (i, e);
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => panic!("connect #{i} failed after retries: {e}"),
            }
        }
    }
    let deadline = Instant::now() + Duration::from_secs(20);
    while reactor.stats().conns_open < CONNS {
        assert!(
            Instant::now() < deadline,
            "only {} of {CONNS} connections registered",
            reactor.stats().conns_open
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    // The whole fleet is held by the same threads that booted — the
    // per-connection cost is a slab slot and a buffer pair, not a
    // thread.
    assert_eq!(proc_threads(), threads_booted);
    // And the fleet is live, not just parked fds: every 97th
    // connection round-trips.
    for c in conns.iter_mut().step_by(97) {
        c.write_all(b"alive\n").unwrap();
        assert_eq!(read_line(c), "alive");
    }
    assert_eq!(proc_threads(), threads_booted);
    drop(conns);
    let stats = reactor.join();
    assert_eq!(stats.accepts as usize, CONNS);
}
