//! Reactor integration tests against a line-echo handler: readiness
//! dispatch, partial-write continuation, idle reaping, poll
//! admission.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use malthus_net::{sys, Action, CloseReason, Handler, Reactor, ReactorConfig};

/// Echoes every complete line back, uppercased; `quit` closes.
/// Cloneable so tests keep a counter handle after the reactor takes
/// the handler.
#[derive(Clone)]
struct Echo {
    closes: Arc<AtomicU64>,
    idle_reaps: Arc<AtomicU64>,
    /// When set, every accepted socket's send buffer is shrunk to
    /// this (partial-write tests).
    sndbuf: Option<i32>,
}

impl Echo {
    fn new() -> Self {
        Echo {
            closes: Arc::new(AtomicU64::new(0)),
            idle_reaps: Arc::new(AtomicU64::new(0)),
            sndbuf: None,
        }
    }
}

impl Handler for Echo {
    type Conn = ();

    fn on_open(&self, stream: &TcpStream) -> Self::Conn {
        if let Some(bytes) = self.sndbuf {
            sys::set_send_buffer(stream.as_raw_fd(), bytes).unwrap();
        }
    }

    fn on_data(
        &self,
        _conn: &mut Self::Conn,
        read_buf: &mut Vec<u8>,
        write_buf: &mut Vec<u8>,
    ) -> Action {
        let Some(last_nl) = read_buf.iter().rposition(|&b| b == b'\n') else {
            return Action::Continue;
        };
        let mut action = Action::Continue;
        for line in read_buf[..=last_nl].split(|&b| b == b'\n') {
            if line.is_empty() {
                continue;
            }
            if line == b"quit" {
                action = Action::Close;
                break;
            }
            write_buf.extend(line.iter().map(u8::to_ascii_uppercase));
            write_buf.push(b'\n');
        }
        read_buf.drain(..=last_nl);
        action
    }

    fn on_close(&self, _conn: &mut Self::Conn, reason: CloseReason) {
        self.closes.fetch_add(1, Ordering::SeqCst);
        if reason == CloseReason::IdleTimeout {
            self.idle_reaps.fetch_add(1, Ordering::SeqCst);
        }
    }
}

fn start_echo(cfg: ReactorConfig) -> (Reactor<Echo>, Echo, std::net::SocketAddr) {
    start_echo_with(cfg, Echo::new())
}

fn start_echo_with(cfg: ReactorConfig, echo: Echo) -> (Reactor<Echo>, Echo, std::net::SocketAddr) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let reactor = Reactor::start(listener, echo.clone(), cfg).unwrap();
    let addr = reactor.local_addr().unwrap();
    (reactor, echo, addr)
}

fn read_line(stream: &mut TcpStream) -> String {
    let mut out = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => break,
            Ok(_) if byte[0] == b'\n' => break,
            Ok(_) => out.push(byte[0]),
            Err(e) => panic!("read_line: {e}"),
        }
    }
    String::from_utf8(out).unwrap()
}

#[test]
fn echoes_lines_across_many_connections() {
    let (reactor, _echo, addr) = start_echo(ReactorConfig::malthusian(2));
    let mut conns: Vec<TcpStream> = (0..32).map(|_| TcpStream::connect(addr).unwrap()).collect();
    for (i, c) in conns.iter_mut().enumerate() {
        c.write_all(format!("hello-{i}\n").as_bytes()).unwrap();
    }
    for (i, c) in conns.iter_mut().enumerate() {
        assert_eq!(read_line(c), format!("HELLO-{i}"));
    }
    let stats = reactor.join();
    assert_eq!(stats.accepts, 32);
    assert!(stats.epoll_waits > 0);
}

#[test]
fn pipelined_burst_is_one_batch_in_order() {
    let (reactor, _echo, addr) = start_echo(ReactorConfig::malthusian(2));
    let mut c = TcpStream::connect(addr).unwrap();
    let mut burst = String::new();
    for i in 0..500 {
        burst.push_str(&format!("line-{i}\n"));
    }
    c.write_all(burst.as_bytes()).unwrap();
    for i in 0..500 {
        assert_eq!(read_line(&mut c), format!("LINE-{i}"));
    }
    drop(c);
    reactor.join();
}

#[test]
fn quit_closes_the_connection_after_flushing() {
    let (reactor, echo, addr) = start_echo(ReactorConfig::malthusian(1));
    let mut c = TcpStream::connect(addr).unwrap();
    c.write_all(b"one\nquit\n").unwrap();
    assert_eq!(read_line(&mut c), "ONE");
    // After quit the server closes: the next read sees EOF.
    let mut rest = Vec::new();
    c.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());
    assert_eq!(echo.closes.load(Ordering::SeqCst), 1);
    reactor.join();
}

#[test]
fn partial_writes_complete_via_epollout() {
    // Tiny kernel buffers on both sides (loopback autotuning would
    // otherwise absorb the whole response): the bulk echo must
    // overrun the server's send buffer while this client reads
    // nothing, forcing WouldBlock and the EPOLLOUT re-arm path.
    let mut echo = Echo::new();
    echo.sndbuf = Some(4096);
    let (reactor, _echo, addr) = start_echo_with(ReactorConfig::malthusian(2), echo);
    let c = TcpStream::connect(addr).unwrap();
    sys::set_recv_buffer(c.as_raw_fd(), 4096).unwrap();
    let line = "x".repeat(512);
    let lines = 512;
    let mut burst = String::new();
    for _ in 0..lines {
        burst.push_str(&line);
        burst.push('\n');
    }
    {
        let mut w = &c;
        w.write_all(burst.as_bytes()).unwrap();
    }
    // Only now start reading: the response completes only if the
    // reactor kept flushing as our receive window reopened.
    let expected = line.to_ascii_uppercase();
    let mut reader = std::io::BufReader::new(&c);
    let mut got = String::new();
    for _ in 0..lines {
        got.clear();
        std::io::BufRead::read_line(&mut reader, &mut got).unwrap();
        assert_eq!(got.trim_end(), expected);
    }
    drop(reader);
    drop(c);
    let stats = reactor.join();
    assert!(
        stats.partial_flushes > 0,
        "a {}KB echo against 4KB socket buffers never hit WouldBlock",
        lines * (line.len() + 1) / 1024,
    );
}

#[test]
fn idle_connections_are_reaped_by_the_wheel() {
    let cfg = ReactorConfig::malthusian(2).with_read_timeout(Some(Duration::from_millis(500)));
    let (reactor, echo, addr) = start_echo(cfg);
    let mut busy = TcpStream::connect(addr).unwrap();
    let _idle_a = TcpStream::connect(addr).unwrap();
    let _idle_b = TcpStream::connect(addr).unwrap();
    // Keep one connection chatty while the other two go idle.
    let deadline = Instant::now() + Duration::from_secs(5);
    while echo.idle_reaps.load(Ordering::SeqCst) < 2 {
        assert!(
            Instant::now() < deadline,
            "idle connections were not reaped within 5s"
        );
        busy.write_all(b"ping\n").unwrap();
        assert_eq!(read_line(&mut busy), "PING");
        std::thread::sleep(Duration::from_millis(50));
    }
    // The chatty connection survived the whole time.
    busy.write_all(b"still-here\n").unwrap();
    assert_eq!(read_line(&mut busy), "STILL-HERE");
    let stats = reactor.join();
    assert_eq!(stats.idle_reaps, 2);
}

#[test]
fn surplus_workers_cull_to_the_passive_stack() {
    let cfg = ReactorConfig::malthusian(4).with_acs_target(1);
    let (reactor, _echo, addr) = start_echo(cfg);
    // Give the admission machine a moment and some traffic.
    let mut c = TcpStream::connect(addr).unwrap();
    for _ in 0..20 {
        c.write_all(b"hi\n").unwrap();
        assert_eq!(read_line(&mut c), "HI");
    }
    let stats = reactor.stats();
    assert!(
        stats.culls >= 3,
        "expected ≥3 culls with 4 workers and ACS 1, saw {}",
        stats.culls
    );
    // Membership settles to active + passive == workers once no
    // promotion/cull is mid-flight; poll until it does.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let s = reactor.stats();
        if s.active_workers + s.passive_workers == 4 && s.passive_workers >= 2 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "membership never settled: active={} passive={}",
            s.active_workers,
            s.passive_workers
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    drop(c);
    reactor.join();
}

// The 1024-idle-connection thread census lives in tests/census.rs:
// it needs its own process so other tests' threads cannot skew
// /proc/self/status.
