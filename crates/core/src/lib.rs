//! Malthusian locks: concurrency restriction for contended mutexes.
//!
//! This crate reproduces the lock algorithms from *Malthusian Locks*
//! (Dave Dice, EuroSys 2017). Under sustained contention, classic fair
//! locks circulate ownership over every participating thread, letting
//! the combined working set trample shared caches, TLBs, pipelines and
//! energy budgets — *scalability collapse*. Concurrency restriction
//! (CR) partitions the circulating threads into a minimal **active
//! circulating set** and a quiesced **passive set**, admitting only
//! enough threads to keep the lock saturated, while periodic
//! randomized promotion of the eldest passive thread bounds long-term
//! unfairness.
//!
//! # Lock algorithms
//!
//! | Type | Policy | Role in the paper |
//! |---|---|---|
//! | [`McsCrLock`] | CR via queue editing | the main contribution (§4) |
//! | [`LoiterLock`] | CR via outer-TAS/inner-MCS | appendix A.1 |
//! | [`LifoCrLock`] | CR via LIFO stack | appendix A.2 |
//! | [`McsCrnLock`] | NUMA-aware CR | §9.1 (future work) |
//! | [`McsLock`] | strict FIFO baseline | §4, Figure 2 |
//! | [`TicketLock`] | FIFO global-spin baseline | §5.4 |
//! | [`ClhLock`] | FIFO local-spin baseline | §5.4 |
//! | [`TasLock`], [`TatasLock`] | unfair competitive baselines | Figure 2, A.1 |
//!
//! Every algorithm implements [`RawLock`] and plugs into the
//! [`Mutex`]/[`MutexGuard`] RAII wrapper. CR is also available for
//! condition variables ([`CrCondvar`]) and semaphores
//! ([`CrSemaphore`]) via the mostly-LIFO admission discipline of
//! §6.10–6.11.
//!
//! # Quick start
//!
//! ```
//! use malthus::McsCrMutex;
//! use std::sync::Arc;
//!
//! // A drop-in mutex whose admission policy resists scalability
//! // collapse under heavy contention.
//! let hits = Arc::new(McsCrMutex::default_cr(0u64));
//! let workers: Vec<_> = (0..4)
//!     .map(|_| {
//!         let hits = Arc::clone(&hits);
//!         std::thread::spawn(move || {
//!             for _ in 0..1_000 {
//!                 *hits.lock() += 1;
//!             }
//!         })
//!     })
//!     .collect();
//! for w in workers {
//!     w.join().unwrap();
//! }
//! assert_eq!(*hits.lock(), 4_000);
//! ```

#![warn(missing_docs)]

mod aliases;
mod clh;
mod condvar;
mod instrument;
mod lifocr;
mod loiter;
mod mcs;
mod mcscr;
mod mcscrn;
mod mutex;
mod node;
pub mod pad;
pub mod policy;
mod raw;
mod semaphore;
mod tas;
mod ticket;

pub use aliases::{
    LifoCrMutex, LoiterMutex, McsCrMutex, McsCrnMutex, McsMutex, TasMutex, TicketMutex,
};
pub use clh::ClhLock;
pub use condvar::CrCondvar;
pub use instrument::{current_thread_index, Instrumented};
pub use lifocr::{LifoCrLock, LifoStats};
pub use loiter::{LoiterLock, LoiterStats};
pub use mcs::McsLock;
pub use mcscr::{CrStats, McsCrLock};
pub use mcscrn::{McsCrnLock, NumaStats};
pub use mutex::{Mutex, MutexGuard};
pub use node::{current_numa_node, set_current_numa_node};
pub use pad::{CachePadded, LockCounter};
pub use raw::RawLock;
pub use semaphore::CrSemaphore;
pub use tas::{TasLock, TatasLock};
pub use ticket::TicketLock;

// Re-export the waiting-policy vocabulary so downstream users need
// only this crate.
pub use malthus_park::{WaitPolicy, DEFAULT_SPIN_CYCLES};
