//! MCSCR: the Malthusian MCS lock with concurrency restriction (§4).
//!
//! MCSCR is a classic MCS lock whose *unlock* path edits the queue:
//!
//! * **Culling** — if nodes exist strictly between the owner's node and
//!   the tail, the queue holds surplus threads; one is excised per
//!   unlock and pushed onto the head of an explicit *passive list*
//!   where it remains quiesced (spinning politely or parked, per the
//!   waiting policy).
//! * **Reprovisioning** — if the queue would go empty while passive
//!   threads exist, the head of the passive list (the most recently
//!   passivated, hence warmest, thread) is re-inserted and granted the
//!   lock, keeping the admission policy work conserving.
//! * **Long-term fairness** — with probability `1/period` per unlock
//!   (default 1/1000, via a Marsaglia xorshift Bernoulli trial), the
//!   *tail* of the passive list — the least recently arrived thread —
//!   is grafted into the chain immediately after the owner and granted
//!   the lock.
//!
//! The lock-acquire path is exactly classic MCS; all CR manipulations
//! happen while holding the lock, so the passive list is protected by
//! the lock itself. Absent contention MCSCR behaves precisely like MCS.

use std::cell::UnsafeCell;
use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};

use malthus_park::{WaitPolicy, XorShift64};

use crate::mcs::wait_link;
use crate::node::{alloc_node, free_node, QNode};
use crate::pad::{CachePadded, LockCounter};
use crate::policy::{FairnessTrigger, DEFAULT_FAIRNESS_PERIOD};
use crate::raw::RawLock;

/// Monotonic counters describing CR activity on one lock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CrStats {
    /// Nodes excised from the main chain into the passive list.
    pub culls: u64,
    /// Passive threads promoted because the main queue drained.
    pub reprovisions: u64,
    /// Passive-tail promotions from the fairness Bernoulli trial.
    pub fairness_grants: u64,
}

/// A doubly-linked list of passivated nodes, protected by the lock.
///
/// Head = most recently passivated ("warm" end, used to reprovision);
/// tail = least recently arrived ("cold" end, used for fairness).
pub(crate) struct PassiveList {
    head: *mut QNode,
    tail: *mut QNode,
    len: usize,
}

impl PassiveList {
    pub(crate) const fn new() -> Self {
        PassiveList {
            head: ptr::null_mut(),
            tail: ptr::null_mut(),
            len: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pushes `node` at the head.
    ///
    /// # Safety
    ///
    /// `node` must be live, not in any list, and the caller must hold
    /// the lock that protects this list.
    pub(crate) unsafe fn push_head(&mut self, node: *mut QNode) {
        // SAFETY: caller guarantees exclusive, live access.
        unsafe {
            (*node).pprev.set(ptr::null_mut());
            (*node).pnext.set(self.head);
            // Sanitize the chain link so a later graft starts clean.
            (*node).next.store(ptr::null_mut(), Ordering::Relaxed);
            if self.head.is_null() {
                self.tail = node;
            } else {
                (*self.head).pprev.set(node);
            }
        }
        self.head = node;
        self.len += 1;
    }

    /// Pops the head (most recently passivated), or null if empty.
    ///
    /// # Safety
    ///
    /// Caller must hold the protecting lock.
    pub(crate) unsafe fn pop_head(&mut self) -> *mut QNode {
        let node = self.head;
        if node.is_null() {
            return node;
        }
        // SAFETY: `node` is live and ours.
        unsafe {
            self.head = (*node).pnext.get();
            if self.head.is_null() {
                self.tail = ptr::null_mut();
            } else {
                (*self.head).pprev.set(ptr::null_mut());
            }
            (*node).pnext.set(ptr::null_mut());
        }
        self.len -= 1;
        node
    }

    /// Pops the tail (least recently arrived), or null if empty.
    ///
    /// # Safety
    ///
    /// Caller must hold the protecting lock.
    pub(crate) unsafe fn pop_tail(&mut self) -> *mut QNode {
        let node = self.tail;
        if node.is_null() {
            return node;
        }
        // SAFETY: `node` is live and ours.
        unsafe {
            self.tail = (*node).pprev.get();
            if self.tail.is_null() {
                self.head = ptr::null_mut();
            } else {
                (*self.tail).pnext.set(ptr::null_mut());
            }
            (*node).pprev.set(ptr::null_mut());
        }
        self.len -= 1;
        node
    }

    /// Removes an arbitrary interior node.
    ///
    /// # Safety
    ///
    /// `node` must currently be a member of this list; the caller must
    /// hold the protecting lock.
    pub(crate) unsafe fn unlink(&mut self, node: *mut QNode) {
        // SAFETY: membership guaranteed by caller.
        unsafe {
            let prev = (*node).pprev.get();
            let next = (*node).pnext.get();
            if prev.is_null() {
                self.head = next;
            } else {
                (*prev).pnext.set(next);
            }
            if next.is_null() {
                self.tail = prev;
            } else {
                (*next).pprev.set(prev);
            }
            (*node).pprev.set(ptr::null_mut());
            (*node).pnext.set(ptr::null_mut());
        }
        self.len -= 1;
    }

    /// Returns the tail (eldest) node without removing it, or null.
    pub(crate) fn tail_node(&self) -> *mut QNode {
        self.tail
    }

    /// Iterates from tail (eldest) toward head.
    ///
    /// # Safety
    ///
    /// Caller must hold the protecting lock; the visitor must not
    /// mutate the list.
    pub(crate) unsafe fn for_each_from_tail(&self, mut f: impl FnMut(*mut QNode)) {
        let mut cur = self.tail;
        while !cur.is_null() {
            // SAFETY: list membership keeps nodes live.
            let prev = unsafe { (*cur).pprev.get() };
            f(cur);
            cur = prev;
        }
    }
}

/// The MCSCR lock: MCS with concurrency restriction.
///
/// # Examples
///
/// ```
/// use malthus::{McsCrLock, Mutex};
///
/// // MCSCR-STP: the paper's best-performing configuration.
/// let m: Mutex<u64, McsCrLock> = Mutex::with_raw(McsCrLock::stp(), 0);
/// *m.lock() += 1;
/// assert_eq!(*m.lock(), 1);
/// ```
pub struct McsCrLock {
    /// The arrival-contended word: every `lock()` RMWs it. Isolated on
    /// its own cache line so holder-side CR edits never ping-pong with
    /// arrivals.
    tail: CachePadded<AtomicPtr<QNode>>,
    /// All lock-protected state, grouped on a separate line from
    /// `tail`: only the current holder touches any of it.
    cr: CachePadded<CrState>,
    policy: WaitPolicy,
}

/// Holder-only state of an [`McsCrLock`]; serialized by the lock
/// itself (§4: "the MCS lock protects the excess list").
struct CrState {
    /// Owner's node.
    owner: UnsafeCell<*mut QNode>,
    /// The passive set.
    passive: UnsafeCell<PassiveList>,
    /// Fairness Bernoulli trial state.
    fairness: UnsafeCell<FairnessTrigger>,
    culls: LockCounter,
    reprovisions: LockCounter,
    fairness_grants: LockCounter,
}

// SAFETY: `tail` is an atomic and the counters tolerate racy reads;
// `owner`, `passive` and `fairness` are accessed only by the current
// lock holder, so the lock itself serializes them.
unsafe impl Send for McsCrLock {}
// SAFETY: see above.
unsafe impl Sync for McsCrLock {}

impl Default for McsCrLock {
    fn default() -> Self {
        Self::stp()
    }
}

impl McsCrLock {
    /// Creates an MCSCR lock with explicit policy, fairness period and
    /// PRNG seed.
    pub fn with_params(policy: WaitPolicy, fairness_period: u64, seed: u64) -> Self {
        McsCrLock {
            tail: CachePadded::new(AtomicPtr::new(ptr::null_mut())),
            cr: CachePadded::new(CrState {
                owner: UnsafeCell::new(ptr::null_mut()),
                passive: UnsafeCell::new(PassiveList::new()),
                fairness: UnsafeCell::new(FairnessTrigger::new(fairness_period, seed)),
                culls: LockCounter::new(),
                reprovisions: LockCounter::new(),
                fairness_grants: LockCounter::new(),
            }),
            policy,
        }
    }

    /// Creates an MCSCR lock with the given waiting policy and the
    /// paper's default 1/1000 fairness period.
    pub fn new(policy: WaitPolicy) -> Self {
        Self::with_params(
            policy,
            DEFAULT_FAIRNESS_PERIOD,
            XorShift64::from_entropy().next_u64(),
        )
    }

    /// `MCSCR-S`: unbounded polite spinning.
    pub fn spin() -> Self {
        Self::new(WaitPolicy::spin())
    }

    /// `MCSCR-STP`: spin-then-park (the paper's preferred form).
    pub fn stp() -> Self {
        Self::new(WaitPolicy::spin_then_park())
    }

    /// Number of threads currently quiesced in the passive set.
    ///
    /// Exact only when sampled by the lock holder; racy otherwise.
    pub fn passive_len(&self) -> usize {
        // SAFETY: reading a usize is fine for a diagnostic; the value
        // may be stale but never tears on supported platforms. We
        // still go through the UnsafeCell pointer read.
        unsafe { (*self.cr.passive.get()).len() }
    }

    /// Snapshot of CR activity counters.
    ///
    /// **Raciness contract:** the counters are written only while the
    /// lock is held (plain stores, no atomic RMWs), so a snapshot taken
    /// while other threads contend may lag in-flight unlocks and may
    /// observe the three counters at slightly different instants.
    /// Individual values never tear. Invariants that span counters
    /// (e.g. `culls == reprovisions + fairness_grants`) are only
    /// guaranteed to balance once the lock is quiescent — after all
    /// contending threads have been joined.
    pub fn cr_stats(&self) -> CrStats {
        CrStats {
            culls: self.cr.culls.get(),
            reprovisions: self.cr.reprovisions.get(),
            fairness_grants: self.cr.fairness_grants.get(),
        }
    }

    /// The flight-recorder identity of this lock instance: its
    /// address, stable for the lock's lifetime.
    fn id(&self) -> u64 {
        self as *const Self as usize as u64
    }

    /// Grants the lock to `node` by grafting it immediately after the
    /// owner `me`, inheriting the rest of the chain.
    ///
    /// # Safety
    ///
    /// Caller must hold the lock; `me` must be the owner's node and
    /// `node` must be a live node in no list.
    unsafe fn graft_as_successor(&self, me: *mut QNode, node: *mut QNode) {
        // SAFETY: caller contract; see each step.
        unsafe {
            let succ = (*me).next.load(Ordering::Acquire);
            if succ.is_null() {
                // `node.next` must be null *before* the CAS can publish
                // `node` as the tail: the instant it is tail, arrivals
                // may link through it.
                (*node).next.store(ptr::null_mut(), Ordering::Relaxed);
                // Success needs only Release (publish `node`'s null
                // link); nothing is read through the swapped-out value.
                // Failure needs nothing at all: the returned pointer is
                // unused and `wait_link` below supplies the Acquire
                // edge for the successor dereference.
                if self
                    .tail
                    .compare_exchange(me, node, Ordering::Release, Ordering::Relaxed)
                    .is_ok()
                {
                    (*node).cell.signal();
                    free_node(me);
                    return;
                }
                // An arrival got in first; wait for its link.
                let succ = wait_link(me);
                (*node).next.store(succ, Ordering::Release);
                (*node).cell.signal();
                free_node(me);
                return;
            }
            (*node).next.store(succ, Ordering::Release);
            (*node).cell.signal();
            free_node(me);
        }
    }
}

impl Drop for McsCrLock {
    fn drop(&mut self) {
        debug_assert!(
            self.tail.get_mut().is_null(),
            "McsCrLock dropped while held or contended"
        );
        debug_assert!(
            // SAFETY: exclusive access in Drop.
            unsafe { (*self.cr.passive.get()).is_empty() },
            "McsCrLock dropped with passivated waiters"
        );
    }
}

// SAFETY: arrivals follow the classic MCS protocol. Every queue edit
// in `unlock` happens while holding the lock, and each waiting node is
// signalled exactly once across all paths (normal handoff, cull →
// later reprovision/graft, fairness graft), so mutual exclusion and
// liveness are preserved.
unsafe impl RawLock for McsCrLock {
    fn lock(&self) {
        let node = alloc_node();
        let prev = self.tail.swap(node, Ordering::AcqRel);
        if !prev.is_null() {
            // Span tracing: the uncontended path above never reads the
            // clock; this already-blocking slow path stamps its wait so
            // the service can attribute lock admission cost per batch.
            let t0 = if malthus_obs::span::enabled() {
                malthus_obs::span::now_ns()
            } else {
                0
            };
            // SAFETY: `prev` is live until it observes our link.
            unsafe {
                (*prev).next.store(node, Ordering::Release);
                (*node).cell.wait(self.policy);
            }
            if t0 != 0 {
                let total = malthus_obs::span::now_ns().saturating_sub(t0);
                // If a holder culled us to the passive list it stamped
                // the moment into our node (the wake signal orders the
                // stamp before this read); split the wait there —
                // before the stamp was ordinary MCS admission, after it
                // was Malthusian passive-list residency.
                // SAFETY: we hold the lock; the node is ours again.
                let culled_at = unsafe { (*node).culled_at.swap(0, Ordering::Relaxed) };
                if culled_at > t0 {
                    let admission = culled_at - t0;
                    malthus_obs::span::add_lock_wait(admission);
                    malthus_obs::span::add_cull_wait(total.saturating_sub(admission));
                } else {
                    malthus_obs::span::add_lock_wait(total);
                }
            }
        }
        // SAFETY: we hold the lock.
        unsafe { *self.cr.owner.get() = node };
    }

    fn try_lock(&self) -> bool {
        let node = alloc_node();
        // Success: Acquire pairs with the previous owner's releasing
        // CAS/graft so the critical section is ordered, and Release
        // publishes `node`'s sanitized `next = null` store to the
        // arrival that will link through it (see McsLock::try_lock).
        // Failure: the observed pointer is unused.
        if self
            .tail
            .compare_exchange(ptr::null_mut(), node, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            // SAFETY: we hold the lock.
            unsafe { *self.cr.owner.get() = node };
            true
        } else {
            // SAFETY: never published.
            unsafe { free_node(node) };
            false
        }
    }

    unsafe fn unlock(&self) {
        // SAFETY: caller holds the lock; all fields below are
        // lock-protected.
        unsafe {
            let me = *self.cr.owner.get();
            debug_assert!(!me.is_null());
            let passive = &mut *self.cr.passive.get();

            // Long-term fairness: occasionally cede to the eldest
            // passivated thread (the passive tail).
            if !passive.is_empty() && (*self.cr.fairness.get()).fire() {
                let eldest = passive.pop_tail();
                self.cr.fairness_grants.bump();
                malthus_obs::record(malthus_obs::EventKind::LockFairnessGrant, self.id(), 0);
                self.graft_as_successor(me, eldest);
                return;
            }

            let mut succ = (*me).next.load(Ordering::Acquire);
            if succ.is_null() {
                // Chain is (apparently) just us. Work conservation:
                // reprovision from the passive head before the lock can
                // go idle.
                if !passive.is_empty() {
                    let warm = passive.pop_head();
                    (*warm).next.store(ptr::null_mut(), Ordering::Relaxed);
                    // Success: Release publishes `warm`'s null link (and
                    // the critical section, for the eventual next owner).
                    // Failure: observed value unused; `wait_link`
                    // supplies the Acquire edge.
                    if self
                        .tail
                        .compare_exchange(me, warm, Ordering::Release, Ordering::Relaxed)
                        .is_ok()
                    {
                        self.cr.reprovisions.bump();
                        malthus_obs::record(malthus_obs::EventKind::LockReprovision, self.id(), 0);
                        (*warm).cell.signal();
                        free_node(me);
                        return;
                    }
                    // A real arrival appeared; undo and treat it as the
                    // successor.
                    passive.push_head(warm);
                    succ = wait_link(me);
                } else {
                    // Orderings as above: Release hands the critical
                    // section to the next lock()/try_lock() acquirer.
                    if self
                        .tail
                        .compare_exchange(me, ptr::null_mut(), Ordering::Release, Ordering::Relaxed)
                        .is_ok()
                    {
                        free_node(me);
                        return;
                    }
                    succ = wait_link(me);
                }
            }

            // Culling: if `succ` is not the tail there is at least one
            // node beyond it, i.e. surplus. Excise one node per unlock.
            // Relaxed suffices: the Acquire load that produced `succ`
            // synchronized with its arrival, whose tail swap therefore
            // happened-before this load — we cannot observe a tail
            // older than `succ`, and observing `succ` or newer only
            // ever skips a cull (conservative, safe).
            if succ != self.tail.load(Ordering::Relaxed) {
                let next = wait_link(succ);
                // Span tracing: stamp the cull moment into the victim's
                // node so it can split its wait into admission vs
                // passive residency on wake (the eventual signal orders
                // this store before the victim's read).
                if malthus_obs::span::enabled() {
                    (*succ)
                        .culled_at
                        .store(malthus_obs::span::now_ns(), Ordering::Relaxed);
                }
                passive.push_head(succ);
                self.cr.culls.bump();
                malthus_obs::record(malthus_obs::EventKind::LockCull, self.id(), 0);
                succ = next;
            }

            malthus_obs::record(malthus_obs::EventKind::LockHandoff, self.id(), 0);
            (*succ).cell.signal();
            free_node(me);
        }
    }

    fn name(&self) -> &'static str {
        match self.policy {
            WaitPolicy::Spin => "MCSCR-S",
            WaitPolicy::SpinThenPark { .. } => "MCSCR-STP",
            WaitPolicy::Park => "MCSCR-P",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn passive_list_push_pop_head() {
        let mut l = PassiveList::new();
        let a = alloc_node();
        let b = alloc_node();
        // SAFETY: test owns the nodes and the (conceptual) lock.
        unsafe {
            l.push_head(a);
            l.push_head(b);
            assert_eq!(l.len(), 2);
            assert_eq!(l.pop_head(), b);
            assert_eq!(l.pop_head(), a);
            assert!(l.pop_head().is_null());
            free_node(a);
            free_node(b);
        }
    }

    #[test]
    fn passive_list_pop_tail_is_eldest() {
        let mut l = PassiveList::new();
        let a = alloc_node();
        let b = alloc_node();
        let c = alloc_node();
        // SAFETY: test owns everything.
        unsafe {
            l.push_head(a); // a is eldest (pushed first = culled first)
            l.push_head(b);
            l.push_head(c);
            assert_eq!(l.pop_tail(), a);
            assert_eq!(l.pop_tail(), b);
            assert_eq!(l.pop_tail(), c);
            assert!(l.is_empty());
            free_node(a);
            free_node(b);
            free_node(c);
        }
    }

    #[test]
    fn passive_list_unlink_interior() {
        let mut l = PassiveList::new();
        let a = alloc_node();
        let b = alloc_node();
        let c = alloc_node();
        // SAFETY: test owns everything.
        unsafe {
            l.push_head(a);
            l.push_head(b);
            l.push_head(c);
            l.unlink(b);
            assert_eq!(l.len(), 2);
            assert_eq!(l.pop_head(), c);
            assert_eq!(l.pop_head(), a);
            free_node(a);
            free_node(b);
            free_node(c);
        }
    }

    #[test]
    fn passive_list_tail_iteration_order() {
        let mut l = PassiveList::new();
        let a = alloc_node();
        let b = alloc_node();
        // SAFETY: test owns everything.
        unsafe {
            l.push_head(a);
            l.push_head(b);
            let mut seen = Vec::new();
            l.for_each_from_tail(|n| seen.push(n));
            assert_eq!(seen, vec![a, b]);
            l.pop_head();
            l.pop_head();
            free_node(a);
            free_node(b);
        }
    }

    fn hammer(lock: Arc<McsCrLock>, threads: usize, iters: usize) -> u64 {
        let counter = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..threads {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..iters {
                    lock.lock();
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                    // SAFETY: we hold the lock.
                    unsafe { lock.unlock() };
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        counter.load(Ordering::SeqCst)
    }

    #[test]
    fn mutual_exclusion_spin() {
        assert_eq!(hammer(Arc::new(McsCrLock::spin()), 8, 2_000), 16_000);
    }

    #[test]
    fn mutual_exclusion_stp() {
        assert_eq!(hammer(Arc::new(McsCrLock::stp()), 8, 2_000), 16_000);
    }

    #[test]
    fn all_threads_finish_with_aggressive_fairness() {
        // Period 2: fairness grants fire constantly, exercising the
        // graft paths.
        let lock = Arc::new(McsCrLock::with_params(
            WaitPolicy::spin_then_park_with(200),
            2,
            7,
        ));
        assert_eq!(hammer(lock, 8, 1_000), 8_000);
    }

    /// Holds the lock while `n` waiter threads enqueue, then releases
    /// and joins them, returning the lock for inspection.
    fn run_with_queued_waiters(lock: Arc<McsCrLock>, n: usize) {
        lock.lock();
        let mut handles = Vec::new();
        for _ in 0..n {
            let lock = Arc::clone(&lock);
            handles.push(std::thread::spawn(move || {
                lock.lock();
                // SAFETY: we hold the lock.
                unsafe { lock.unlock() };
            }));
        }
        // Give the waiters ample time to enqueue behind us.
        std::thread::sleep(std::time::Duration::from_millis(100));
        // SAFETY: held since before the spawns.
        unsafe { lock.unlock() };
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn culling_happens_with_queued_surplus() {
        // Deterministic queue shape: owner + 3 waiters. The first
        // unlock must find intermediates and cull exactly one; the
        // drain then reprovisions it. (Fairness period is high and the
        // seed fixed, so trials do not interfere.)
        let lock = Arc::new(McsCrLock::with_params(WaitPolicy::spin(), 1_000_000, 3));
        run_with_queued_waiters(Arc::clone(&lock), 3);
        let stats = lock.cr_stats();
        assert!(stats.culls >= 1, "surplus must be culled: {stats:?}");
        // Conservation: every culled thread was eventually promoted.
        assert_eq!(
            stats.culls,
            stats.reprovisions + stats.fairness_grants,
            "promotions must balance culls: {stats:?}"
        );
        assert_eq!(lock.passive_len(), 0, "no thread may remain passivated");
    }

    #[test]
    fn fairness_grant_promotes_eldest_deterministically() {
        // Period 1: every unlock with a non-empty passive set promotes
        // the passive tail.
        let lock = Arc::new(McsCrLock::with_params(WaitPolicy::spin(), 1, 17));
        run_with_queued_waiters(Arc::clone(&lock), 3);
        let stats = lock.cr_stats();
        assert!(stats.culls >= 1, "{stats:?}");
        assert!(stats.fairness_grants >= 1, "{stats:?}");
        assert_eq!(stats.culls, stats.reprovisions + stats.fairness_grants);
        assert_eq!(lock.passive_len(), 0);
    }

    #[test]
    fn uncontended_behaves_like_mcs() {
        let l = McsCrLock::stp();
        for _ in 0..1_000 {
            l.lock();
            // SAFETY: held.
            unsafe { l.unlock() };
        }
        let stats = l.cr_stats();
        assert_eq!(stats.culls, 0);
        assert_eq!(stats.reprovisions, 0);
        assert_eq!(stats.fairness_grants, 0);
    }

    #[test]
    fn try_lock_round_trip() {
        let l = McsCrLock::spin();
        assert!(l.try_lock());
        assert!(!l.try_lock());
        // SAFETY: held.
        unsafe { l.unlock() };
        assert!(l.try_lock());
        // SAFETY: held.
        unsafe { l.unlock() };
    }

    #[test]
    fn names_follow_policy() {
        assert_eq!(McsCrLock::spin().name(), "MCSCR-S");
        assert_eq!(McsCrLock::stp().name(), "MCSCR-STP");
    }
}
