//! Cache-line isolation primitives for the lock hot paths.
//!
//! The scalability-collapse mechanism the paper warns about in §3 is
//! cache-line ping-pong on lock metadata: every arrival RMWs the
//! lock's `tail`/`top` word, so any other field sharing that line —
//! the owner's scratch state, statistics counters — turns holder-side
//! work into remote coherence misses. The fix is structural: put the
//! arrival-contended word on its own line, and group all
//! *lock-protected* state (touched only by the current holder) on a
//! different line.
//!
//! 128-byte alignment covers both 128-byte-line machines (POWER,
//! Apple silicon) and the adjacent-line prefetcher on 64-byte-line
//! x86, which otherwise pulls neighbouring lines into the same
//! coherence traffic.
//!
//! The primitives are public so sibling lock crates (e.g.
//! `malthus-rwlock`) can apply the same field-grouping discipline
//! without reimplementing it.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};

/// Aligns (and thereby pads) a value to a 128-byte boundary so it
/// shares no cache line — nor prefetch pair — with its neighbours.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in its own cache-line-aligned slot.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

/// A statistics counter serialized by the lock that owns it.
///
/// CR activity counters (culls, reprovisions, fairness grants, …) are
/// only ever *written* by the current lock holder, so they need no
/// atomic read-modify-write: [`LockCounter::bump`] is a plain
/// load+store pair — a single unlocked `mov` round trip on x86 —
/// rather than a `lock xadd` on the unlock critical path.
///
/// Snapshot reads ([`LockCounter::get`]) may run on any thread and are
/// **racy by contract**: tear-free (the underlying cell is an atomic)
/// and monotonic per observer, but possibly stale relative to in-flight
/// unlocks. Exact totals are only guaranteed once the lock is
/// quiescent (e.g. after joining all contending threads).
#[derive(Debug, Default)]
pub struct LockCounter(AtomicU64);

impl LockCounter {
    /// Creates a zeroed counter.
    pub const fn new() -> Self {
        LockCounter(AtomicU64::new(0))
    }

    /// Increments the counter. Caller must hold the owning lock: the
    /// lock serializes writers, which is what makes the non-atomic
    /// load+store pair lossless.
    #[inline]
    pub fn bump(&self) {
        self.0
            .store(self.0.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
    }

    /// Adds `n` to the counter under the same contract as
    /// [`LockCounter::bump`].
    #[inline]
    pub fn add(&self, n: u64) {
        self.0
            .store(self.0.load(Ordering::Relaxed) + n, Ordering::Relaxed);
    }

    /// Racy snapshot read; see the type docs for the freshness
    /// contract.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_padded_is_128_aligned_and_derefs() {
        let p = CachePadded::new(7u8);
        assert_eq!(std::mem::align_of_val(&p), 128);
        assert_eq!(*p, 7);
        let mut q = CachePadded::new(1u32);
        *q += 1;
        assert_eq!(*q, 2);
    }

    #[test]
    fn padded_neighbours_do_not_share_lines() {
        struct Two {
            a: CachePadded<u64>,
            b: CachePadded<u64>,
        }
        let t = Two {
            a: CachePadded::new(0),
            b: CachePadded::new(0),
        };
        let a = &t.a as *const _ as usize;
        let b = &t.b as *const _ as usize;
        assert!(a.abs_diff(b) >= 128);
    }

    #[test]
    fn lock_counter_bumps_and_reads() {
        let c = LockCounter::new();
        assert_eq!(c.get(), 0);
        for _ in 0..5 {
            c.bump();
        }
        assert_eq!(c.get(), 5);
    }
}
