//! Queue nodes shared by the MCS-family locks, with a per-thread arena.
//!
//! MCS, MCSCR and MCSCRN all enqueue one node per acquisition. Because
//! [`RawLock`](crate::RawLock) carries no guard token, nodes live on
//! the heap rather than the waiter's stack; a thread-local arena
//! amortizes the allocation to nearly nothing on the hot path. A node's
//! embedded [`WaitCell`] is bound to its creating thread, which is why
//! the arena must be (and is) thread-local.
//!
//! # Hot-path discipline
//!
//! The arena is designed so `lock()` costs exactly **one** TLS access:
//! the free list and the thread's NUMA id live in the same
//! thread-local [`NodeArena`], and nodes are **sanitized on `free`**
//! (wait cell rearmed, links nulled) rather than on `alloc`, so
//! [`alloc_node`] is a pop plus one `Cell` store of the NUMA id.
//! Initializing the TLS slot on first use also registers the arena's
//! destructor, so thread exit reclaims every cached node.

use std::cell::{Cell, RefCell};
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

use malthus_park::WaitCell;

/// A queue node for the MCS family.
///
/// `next` is the MCS chain link (written by the successor's arrival).
/// `pprev`/`pnext` link the node into a lock-private doubly-linked
/// list — the passive set for MCSCR, the remote set for MCSCRN — and
/// are only ever touched by the current lock holder. `numa` is the
/// arriving thread's NUMA node id, used by MCSCRN's culling criterion.
/// `culled_at` is a span-tracing stamp: the lock holder stores the
/// monotonic time it moved this node to the passive list (0 = never
/// culled), and the waiter reads it back on wake to split its total
/// wait into admission time vs passive-list residency.
///
/// The node is aligned (hence padded) to 128 bytes so that two nodes
/// never share a cache line or a prefetch pair: a waiter spins on its
/// own node's `cell` while its predecessor's arrival-time `next` store
/// and the owner's unlock-time reads land on *other* nodes, and
/// unpadded adjacent nodes would turn that private spin into coherence
/// ping-pong (§3's collapse mechanism in miniature).
#[repr(align(128))]
pub(crate) struct QNode {
    pub(crate) cell: WaitCell,
    pub(crate) next: AtomicPtr<QNode>,
    pub(crate) pprev: Cell<*mut QNode>,
    pub(crate) pnext: Cell<*mut QNode>,
    pub(crate) numa: Cell<u32>,
    pub(crate) culled_at: AtomicU64,
}

impl QNode {
    fn new() -> Self {
        QNode {
            cell: WaitCell::new(),
            next: AtomicPtr::new(ptr::null_mut()),
            pprev: Cell::new(ptr::null_mut()),
            pnext: Cell::new(ptr::null_mut()),
            numa: Cell::new(0),
            culled_at: AtomicU64::new(0),
        }
    }
}

/// How many quiescent nodes a thread retains before overflowing to the
/// global allocator.
const CACHE_CAP: usize = 32;

/// Per-thread node arena; one TLS access yields a sanitized node plus
/// the thread's NUMA id. Reclaims its contents at thread exit.
struct NodeArena {
    free: RefCell<Vec<*mut QNode>>,
    numa: Cell<u32>,
}

impl NodeArena {
    /// Pops a pre-sanitized cached node, or allocates a fresh one.
    fn acquire(&self) -> *mut QNode {
        let node = self
            .free
            .borrow_mut()
            .pop()
            .unwrap_or_else(|| Box::into_raw(Box::new(QNode::new())));
        // Nodes are sanitized when freed; only the NUMA id can have
        // changed since then.
        // SAFETY: the node came from this thread's arena or a fresh
        // Box; no other thread references it.
        unsafe { (*node).numa.set(self.numa.get()) };
        node
    }

    /// Caches a sanitized node; returns it back if the arena is full.
    fn release(&self, node: *mut QNode) -> Option<*mut QNode> {
        let mut free = self.free.borrow_mut();
        if free.len() < CACHE_CAP {
            free.push(node);
            None
        } else {
            Some(node)
        }
    }
}

impl Drop for NodeArena {
    fn drop(&mut self) {
        for node in self.free.borrow_mut().drain(..) {
            // SAFETY: cached nodes are quiescent and owned by this
            // thread; they were created by `Box::into_raw`.
            drop(unsafe { Box::from_raw(node) });
        }
    }
}

thread_local! {
    static NODE_ARENA: NodeArena = const {
        NodeArena {
            free: RefCell::new(Vec::new()),
            numa: Cell::new(0),
        }
    };
}

/// Declares the calling thread's NUMA node id for MCSCRN culling.
///
/// Defaults to node 0. On a real deployment this would query the OS
/// (e.g. `getcpu`); tests and benchmarks assign ids explicitly. A call
/// during thread teardown (TLS destroyed) is ignored.
pub fn set_current_numa_node(node: u32) {
    let _ = NODE_ARENA.try_with(|a| a.numa.set(node));
}

/// Returns the calling thread's declared NUMA node id (0 during
/// thread teardown).
pub fn current_numa_node() -> u32 {
    NODE_ARENA.try_with(|a| a.numa.get()).unwrap_or(0)
}

/// Allocates (or reuses) a node owned by the calling thread.
///
/// The returned node has a fresh (unsignalled) wait cell, a null
/// `next`, clear list links, and the caller's NUMA id. Exactly one
/// thread-local access.
pub(crate) fn alloc_node() -> *mut QNode {
    NODE_ARENA
        .try_with(NodeArena::acquire)
        // TLS already destroyed (thread exiting): fresh heap node.
        .unwrap_or_else(|_| Box::into_raw(Box::new(QNode::new())))
}

/// Sanitizes a quiescent node and returns it to the calling thread's
/// arena (or the allocator if the arena is full or gone).
///
/// # Safety
///
/// The caller must guarantee that no other thread can still reach the
/// node (the MCS release protocol establishes this), and that the
/// calling thread is the one that allocated it (the wait cell is bound
/// to it).
pub(crate) unsafe fn free_node(node: *mut QNode) {
    // Sanitize now so the next `alloc_node` is a bare pop.
    // SAFETY: per the contract, we have exclusive access.
    unsafe {
        (*node).cell.reset();
        (*node).next.store(ptr::null_mut(), Ordering::Relaxed);
        (*node).pprev.set(ptr::null_mut());
        (*node).pnext.set(ptr::null_mut());
        (*node).culled_at.store(0, Ordering::Relaxed);
    }
    let overflow = NODE_ARENA
        .try_with(|a| a.release(node))
        // TLS already destroyed (thread exiting): free directly.
        .unwrap_or(Some(node));
    if let Some(node) = overflow {
        // SAFETY: exclusive access; the node was created by Box::into_raw.
        drop(unsafe { Box::from_raw(node) });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn alloc_gives_clean_node() {
        let n = alloc_node();
        // SAFETY: freshly allocated, owned by this thread.
        unsafe {
            assert!((*n).next.load(Ordering::Relaxed).is_null());
            assert!((*n).pprev.get().is_null());
            assert!((*n).pnext.get().is_null());
            free_node(n);
        }
    }

    #[test]
    fn qnode_is_cache_line_padded() {
        assert!(std::mem::align_of::<QNode>() >= 128);
        assert_eq!(std::mem::size_of::<QNode>() % 128, 0);
    }

    #[test]
    fn cache_reuses_nodes() {
        let a = alloc_node();
        // SAFETY: owned by this thread, quiescent.
        unsafe { free_node(a) };
        let b = alloc_node();
        assert_eq!(a, b, "expected the cached node back");
        // SAFETY: owned by this thread, quiescent.
        unsafe { free_node(b) };
    }

    #[test]
    fn cache_reuse_across_reentrant_alloc() {
        // Two live nodes at once (as in a lock()-within-signal window),
        // freed in FIFO order, must both round-trip through the arena.
        let a = alloc_node();
        let b = alloc_node();
        assert_ne!(a, b);
        // SAFETY: both owned by this thread, quiescent.
        unsafe {
            free_node(a);
            free_node(b);
        }
        let c = alloc_node();
        let d = alloc_node();
        assert!(c == a || c == b);
        assert!(d == a || d == b);
        assert_ne!(c, d);
        // SAFETY: owned by this thread, quiescent.
        unsafe {
            free_node(c);
            free_node(d);
        }
    }

    #[test]
    fn reused_node_is_sanitized() {
        let a = alloc_node();
        // SAFETY: we own the node.
        unsafe {
            (*a).next.store(a, Ordering::Relaxed);
            (*a).pnext.set(a);
            free_node(a);
        }
        let b = alloc_node();
        assert_eq!(a, b);
        // SAFETY: we own the node.
        unsafe {
            assert!((*b).next.load(Ordering::Relaxed).is_null());
            assert!((*b).pnext.get().is_null());
            free_node(b);
        }
    }

    #[test]
    fn cache_cap_overflow_falls_back_to_box_drop() {
        // Hold CACHE_CAP + 8 live nodes, then free them all: the first
        // CACHE_CAP land in the arena, the rest take the Box-drop path.
        // (Leaks would be caught by Miri / LeakSanitizer.)
        let nodes: Vec<_> = (0..CACHE_CAP + 8).map(|_| alloc_node()).collect();
        for &n in &nodes {
            // SAFETY: owned by this thread, quiescent.
            unsafe { free_node(n) };
        }
        // The arena is now exactly full; another round trip still works.
        let n = alloc_node();
        // SAFETY: owned by this thread, quiescent.
        unsafe { free_node(n) };
    }

    #[test]
    fn thread_exit_reclaims_cached_nodes() {
        // A thread that caches nodes and exits must not leak them: the
        // arena destructor runs at thread exit (verified under Miri,
        // which reports leaks; see README "Miri" section).
        std::thread::spawn(|| {
            let nodes: Vec<_> = (0..8).map(|_| alloc_node()).collect();
            for &n in &nodes {
                // SAFETY: owned by this thread, quiescent.
                unsafe { free_node(n) };
            }
        })
        .join()
        .unwrap();
    }

    #[test]
    fn numa_id_defaults_and_sets() {
        std::thread::spawn(|| {
            assert_eq!(current_numa_node(), 0);
            set_current_numa_node(3);
            assert_eq!(current_numa_node(), 3);
            let n = alloc_node();
            // SAFETY: we own the node.
            unsafe {
                assert_eq!((*n).numa.get(), 3);
                free_node(n);
            }
        })
        .join()
        .unwrap();
    }
}
