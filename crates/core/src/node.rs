//! Queue nodes shared by the MCS-family locks, with per-thread caching.
//!
//! MCS, MCSCR and MCSCRN all enqueue one node per acquisition. Because
//! [`RawLock`](crate::RawLock) carries no guard token, nodes live on
//! the heap rather than the waiter's stack; a thread-local free list
//! amortizes the allocation to nearly nothing on the hot path. A node's
//! embedded [`WaitCell`] is bound to its creating thread, which is why
//! the cache must be (and is) thread-local.

use std::cell::{Cell, RefCell};
use std::ptr;
use std::sync::atomic::AtomicPtr;

use malthus_park::WaitCell;

/// A queue node for the MCS family.
///
/// `next` is the MCS chain link (written by the successor's arrival).
/// `pprev`/`pnext` link the node into a lock-private doubly-linked
/// list — the passive set for MCSCR, the remote set for MCSCRN — and
/// are only ever touched by the current lock holder. `numa` is the
/// arriving thread's NUMA node id, used by MCSCRN's culling criterion.
pub(crate) struct QNode {
    pub(crate) cell: WaitCell,
    pub(crate) next: AtomicPtr<QNode>,
    pub(crate) pprev: Cell<*mut QNode>,
    pub(crate) pnext: Cell<*mut QNode>,
    pub(crate) numa: Cell<u32>,
}

impl QNode {
    fn new() -> Self {
        QNode {
            cell: WaitCell::new(),
            next: AtomicPtr::new(ptr::null_mut()),
            pprev: Cell::new(ptr::null_mut()),
            pnext: Cell::new(ptr::null_mut()),
            numa: Cell::new(0),
        }
    }
}

/// Per-thread node free list; reclaims its contents at thread exit.
struct NodeCache(RefCell<Vec<*mut QNode>>);

impl Drop for NodeCache {
    fn drop(&mut self) {
        for node in self.0.borrow_mut().drain(..) {
            // SAFETY: cached nodes are quiescent and owned by this
            // thread; they were created by `Box::into_raw`.
            drop(unsafe { Box::from_raw(node) });
        }
    }
}

thread_local! {
    static NODE_CACHE: NodeCache = const { NodeCache(RefCell::new(Vec::new())) };
    static CURRENT_NUMA: Cell<u32> = const { Cell::new(0) };
}

/// Declares the calling thread's NUMA node id for MCSCRN culling.
///
/// Defaults to node 0. On a real deployment this would query the OS
/// (e.g. `getcpu`); tests and benchmarks assign ids explicitly.
pub fn set_current_numa_node(node: u32) {
    CURRENT_NUMA.with(|c| c.set(node));
}

/// Returns the calling thread's declared NUMA node id.
pub fn current_numa_node() -> u32 {
    CURRENT_NUMA.with(|c| c.get())
}

/// Allocates (or reuses) a node owned by the calling thread.
///
/// The returned node has a fresh (unsignalled) wait cell, a null
/// `next`, clear list links, and the caller's NUMA id.
pub(crate) fn alloc_node() -> *mut QNode {
    let node = NODE_CACHE
        .try_with(|c| c.0.borrow_mut().pop())
        .ok()
        .flatten()
        .unwrap_or_else(|| Box::into_raw(Box::new(QNode::new())));
    // SAFETY: the node came from this thread's cache or a fresh Box;
    // no other thread references it.
    unsafe {
        (*node).next.store(ptr::null_mut(), std::sync::atomic::Ordering::Relaxed);
        (*node).pprev.set(ptr::null_mut());
        (*node).pnext.set(ptr::null_mut());
        (*node).numa.set(current_numa_node());
    }
    node
}

/// Returns a quiescent node to the calling thread's cache.
///
/// # Safety
///
/// The caller must guarantee that no other thread can still reach the
/// node (the MCS release protocol establishes this), and that the
/// calling thread is the one that allocated it (the wait cell is bound
/// to it).
pub(crate) unsafe fn free_node(node: *mut QNode) {
    const CACHE_CAP: usize = 32;
    // SAFETY: per the contract, we have exclusive access.
    unsafe {
        (*node).cell.reset();
    }
    let overflow = NODE_CACHE
        .try_with(|c| {
            let mut cache = c.0.borrow_mut();
            if cache.len() < CACHE_CAP {
                cache.push(node);
                None
            } else {
                Some(node)
            }
        })
        // TLS already destroyed (thread exiting): free directly.
        .unwrap_or(Some(node));
    if let Some(node) = overflow {
        // SAFETY: exclusive access; the node was created by Box::into_raw.
        drop(unsafe { Box::from_raw(node) });
    }
}

/// Forces initialization of the thread's cache so its destructor is
/// registered before any nodes can be cached.
pub(crate) fn ensure_reaper() {
    let _ = NODE_CACHE.try_with(|_| {});
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn alloc_gives_clean_node() {
        let n = alloc_node();
        // SAFETY: freshly allocated, owned by this thread.
        unsafe {
            assert!((*n).next.load(Ordering::Relaxed).is_null());
            assert!((*n).pprev.get().is_null());
            assert!((*n).pnext.get().is_null());
            free_node(n);
        }
    }

    #[test]
    fn cache_reuses_nodes() {
        let a = alloc_node();
        // SAFETY: owned by this thread, quiescent.
        unsafe { free_node(a) };
        let b = alloc_node();
        assert_eq!(a, b, "expected the cached node back");
        // SAFETY: owned by this thread, quiescent.
        unsafe { free_node(b) };
    }

    #[test]
    fn reused_node_is_sanitized() {
        let a = alloc_node();
        // SAFETY: we own the node.
        unsafe {
            (*a).next.store(a, Ordering::Relaxed);
            (*a).pnext.set(a);
            free_node(a);
        }
        let b = alloc_node();
        assert_eq!(a, b);
        // SAFETY: we own the node.
        unsafe {
            assert!((*b).next.load(Ordering::Relaxed).is_null());
            assert!((*b).pnext.get().is_null());
            free_node(b);
        }
    }

    #[test]
    fn numa_id_defaults_and_sets() {
        std::thread::spawn(|| {
            assert_eq!(current_numa_node(), 0);
            set_current_numa_node(3);
            assert_eq!(current_numa_node(), 3);
            let n = alloc_node();
            // SAFETY: we own the node.
            unsafe {
                assert_eq!((*n).numa.get(), 3);
                free_node(n);
            }
        })
        .join()
        .unwrap();
    }
}
