//! MCSCRN: NUMA-aware concurrency restriction (§9.1 "Future Work").
//!
//! MCSCRN starts from MCSCR but changes the culling *criterion*:
//! instead of passivating surplus threads generally, the unlock path
//! culls threads that are **remote** — running on a NUMA node other
//! than the currently preferred *home* node — onto an explicit remote
//! list. Periodically the unlock operator selects a new home node from
//! the remote list (the eldest waiter's node, conferring long-term
//! fairness) and drains that node's threads back into the main chain.
//! A deficit on the main chain reprovisions from the remote list, so
//! the policy stays work conserving. Unlike cohort locks, MCSCRN is
//! non-hierarchical: one small fixed-size lock word, no per-node
//! sublocks.
//!
//! Threads declare their NUMA node via
//! [`set_current_numa_node`](crate::set_current_numa_node); a real
//! deployment would sample `getcpu`-style topology information.

use std::cell::UnsafeCell;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, Ordering};

use malthus_park::{WaitPolicy, XorShift64};

use crate::mcs::wait_link;
use crate::mcscr::PassiveList;
use crate::node::{alloc_node, ensure_reaper, free_node, QNode};
use crate::policy::FairnessTrigger;
use crate::raw::RawLock;

/// Sentinel meaning "no home node selected yet".
const NO_HOME: u32 = u32::MAX;

/// Counters describing MCSCRN activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NumaStats {
    /// Remote threads culled from the main chain.
    pub remote_culls: u64,
    /// Threads promoted because the main chain drained.
    pub reprovisions: u64,
    /// Home-node rotations (fairness events).
    pub home_rotations: u64,
    /// Threads drained back into the chain by rotations.
    pub drained: u64,
}

/// The MCSCRN NUMA-aware lock.
///
/// # Examples
///
/// ```
/// use malthus::{McsCrnLock, Mutex};
///
/// let m: Mutex<u32, McsCrnLock> = Mutex::with_raw(McsCrnLock::stp(), 0);
/// *m.lock() += 1;
/// ```
pub struct McsCrnLock {
    tail: AtomicPtr<QNode>,
    /// Owner's node; lock-protected.
    owner: UnsafeCell<*mut QNode>,
    /// Remote (culled) threads; lock-protected. Head = most recently
    /// culled, tail = eldest.
    remote: UnsafeCell<PassiveList>,
    /// Currently preferred home node ([`NO_HOME`] until first
    /// contended unlock).
    home: AtomicU32,
    /// Rotation Bernoulli trial; lock-protected.
    rotation: UnsafeCell<FairnessTrigger>,
    policy: WaitPolicy,
    remote_culls: AtomicU64,
    reprovisions: AtomicU64,
    home_rotations: AtomicU64,
    drained: AtomicU64,
}

// SAFETY: `tail`, `home` and counters are atomics; `owner`, `remote`
// and `rotation` are accessed only by the current lock holder.
unsafe impl Send for McsCrnLock {}
// SAFETY: see above.
unsafe impl Sync for McsCrnLock {}

impl Default for McsCrnLock {
    fn default() -> Self {
        Self::stp()
    }
}

impl McsCrnLock {
    /// Creates an MCSCRN lock with explicit parameters.
    pub fn with_params(policy: WaitPolicy, rotation_period: u64, seed: u64) -> Self {
        McsCrnLock {
            tail: AtomicPtr::new(ptr::null_mut()),
            owner: UnsafeCell::new(ptr::null_mut()),
            remote: UnsafeCell::new(PassiveList::new()),
            home: AtomicU32::new(NO_HOME),
            rotation: UnsafeCell::new(FairnessTrigger::new(rotation_period, seed)),
            policy,
            remote_culls: AtomicU64::new(0),
            reprovisions: AtomicU64::new(0),
            home_rotations: AtomicU64::new(0),
            drained: AtomicU64::new(0),
        }
    }

    /// Creates an MCSCRN lock with the default 1/1000 rotation period.
    pub fn new(policy: WaitPolicy) -> Self {
        Self::with_params(policy, 1000, XorShift64::from_entropy().next_u64())
    }

    /// Unbounded polite spinning variant.
    pub fn spin() -> Self {
        Self::new(WaitPolicy::spin())
    }

    /// Spin-then-park variant.
    pub fn stp() -> Self {
        Self::new(WaitPolicy::spin_then_park())
    }

    /// The currently preferred home NUMA node, if any.
    pub fn home_node(&self) -> Option<u32> {
        match self.home.load(Ordering::Relaxed) {
            NO_HOME => None,
            n => Some(n),
        }
    }

    /// Snapshot of NUMA-CR counters.
    pub fn numa_stats(&self) -> NumaStats {
        NumaStats {
            remote_culls: self.remote_culls.load(Ordering::Relaxed),
            reprovisions: self.reprovisions.load(Ordering::Relaxed),
            home_rotations: self.home_rotations.load(Ordering::Relaxed),
            drained: self.drained.load(Ordering::Relaxed),
        }
    }

    /// Grafts the chain `first ..= last` (already linked through
    /// `next`) immediately after owner `me` and grants to `first`.
    ///
    /// # Safety
    ///
    /// Caller holds the lock; the chain nodes are live and in no list;
    /// `last.next` is writable by us.
    unsafe fn graft_chain(&self, me: *mut QNode, first: *mut QNode, last: *mut QNode) {
        // SAFETY: caller contract.
        unsafe {
            let succ = (*me).next.load(Ordering::Acquire);
            if succ.is_null() {
                (*last).next.store(ptr::null_mut(), Ordering::Relaxed);
                if self
                    .tail
                    .compare_exchange(me, last, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    (*first).cell.signal();
                    free_node(me);
                    return;
                }
                let succ = wait_link(me);
                (*last).next.store(succ, Ordering::Release);
                (*first).cell.signal();
                free_node(me);
                return;
            }
            (*last).next.store(succ, Ordering::Release);
            (*first).cell.signal();
            free_node(me);
        }
    }
}

impl Drop for McsCrnLock {
    fn drop(&mut self) {
        debug_assert!(
            self.tail.get_mut().is_null(),
            "McsCrnLock dropped while held or contended"
        );
        debug_assert!(
            // SAFETY: exclusive access in Drop.
            unsafe { (*self.remote.get()).is_empty() },
            "McsCrnLock dropped with culled waiters"
        );
    }
}

// SAFETY: as for MCSCR — classic MCS arrivals; all edits under the
// lock; every waiter signalled exactly once (normal handoff, cull →
// reprovision/drain).
unsafe impl RawLock for McsCrnLock {
    fn lock(&self) {
        ensure_reaper();
        let node = alloc_node();
        let prev = self.tail.swap(node, Ordering::AcqRel);
        if !prev.is_null() {
            // SAFETY: `prev` is live until it observes our link.
            unsafe {
                (*prev).next.store(node, Ordering::Release);
                (*node).cell.wait(self.policy);
            }
        }
        // SAFETY: we hold the lock.
        unsafe { *self.owner.get() = node };
    }

    fn try_lock(&self) -> bool {
        ensure_reaper();
        let node = alloc_node();
        if self
            .tail
            .compare_exchange(ptr::null_mut(), node, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            // SAFETY: we hold the lock.
            unsafe { *self.owner.get() = node };
            true
        } else {
            // SAFETY: never published.
            unsafe { free_node(node) };
            false
        }
    }

    unsafe fn unlock(&self) {
        // SAFETY: caller holds the lock; fields below lock-protected.
        unsafe {
            let me = *self.owner.get();
            debug_assert!(!me.is_null());
            let remote = &mut *self.remote.get();

            // Adopt a home node lazily: the first contended unlock
            // anoints the owner's node.
            if self.home.load(Ordering::Relaxed) == NO_HOME {
                self.home.store((*me).numa.get(), Ordering::Relaxed);
            }

            // Periodic rotation: pick the eldest remote waiter's node
            // as the new home and drain that node's threads back.
            if !remote.is_empty() && (*self.rotation.get()).fire() {
                let eldest = remote.tail_node();
                let new_home = (*eldest).numa.get();
                self.home.store(new_home, Ordering::Relaxed);
                self.home_rotations.fetch_add(1, Ordering::Relaxed);

                // Collect matching nodes eldest-first and unlink them.
                let mut matches: Vec<*mut QNode> = Vec::new();
                remote.for_each_from_tail(|n| {
                    if (*n).numa.get() == new_home {
                        matches.push(n);
                    }
                });
                for &n in &matches {
                    remote.unlink(n);
                }
                self.drained
                    .fetch_add(matches.len() as u64, Ordering::Relaxed);
                // Link them into a chain: eldest first.
                for pair in matches.windows(2) {
                    (*pair[0]).next.store(pair[1], Ordering::Relaxed);
                }
                let first = matches[0];
                let last = *matches.last().expect("non-empty by construction");
                self.graft_chain(me, first, last);
                return;
            }

            let mut succ = (*me).next.load(Ordering::Acquire);
            if succ.is_null() {
                // Work conservation: reprovision from the remote list.
                if !remote.is_empty() {
                    let warm = remote.pop_head();
                    (*warm).next.store(ptr::null_mut(), Ordering::Relaxed);
                    if self
                        .tail
                        .compare_exchange(me, warm, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        self.reprovisions.fetch_add(1, Ordering::Relaxed);
                        // The newcomer's node becomes the de-facto home.
                        self.home.store((*warm).numa.get(), Ordering::Relaxed);
                        (*warm).cell.signal();
                        free_node(me);
                        return;
                    }
                    remote.push_head(warm);
                    succ = wait_link(me);
                } else {
                    if self
                        .tail
                        .compare_exchange(me, ptr::null_mut(), Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        free_node(me);
                        return;
                    }
                    succ = wait_link(me);
                }
            }

            // NUMA culling: if the successor is remote *and* not the
            // tail (work conservation needs somebody left), cull it.
            let home = self.home.load(Ordering::Relaxed);
            if (*succ).numa.get() != home && succ != self.tail.load(Ordering::Acquire) {
                let next = wait_link(succ);
                remote.push_head(succ);
                self.remote_culls.fetch_add(1, Ordering::Relaxed);
                succ = next;
            }

            (*succ).cell.signal();
            free_node(me);
        }
    }

    fn name(&self) -> &'static str {
        match self.policy {
            WaitPolicy::Spin => "MCSCRN-S",
            WaitPolicy::SpinThenPark { .. } => "MCSCRN-STP",
            WaitPolicy::Park => "MCSCRN-P",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::set_current_numa_node;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    fn hammer_numa(lock: Arc<McsCrnLock>, threads: usize, nodes: u32, iters: usize) -> u64 {
        let counter = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for t in 0..threads {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                set_current_numa_node(t as u32 % nodes);
                for _ in 0..iters {
                    lock.lock();
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                    // SAFETY: we hold the lock.
                    unsafe { lock.unlock() };
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        counter.load(Ordering::SeqCst)
    }

    #[test]
    fn mutual_exclusion_two_nodes() {
        let lock = Arc::new(McsCrnLock::stp());
        assert_eq!(hammer_numa(lock, 8, 2, 2_000), 16_000);
    }

    /// Adopts home node 0, holds the lock while `n` remote (node 1)
    /// waiters enqueue, then releases and joins them.
    fn run_with_remote_waiters(lock: Arc<McsCrnLock>, n: usize) {
        set_current_numa_node(0);
        // Adopt node 0 as home.
        lock.lock();
        // SAFETY: held.
        unsafe { lock.unlock() };

        lock.lock();
        let mut handles = Vec::new();
        for _ in 0..n {
            let lock = Arc::clone(&lock);
            handles.push(std::thread::spawn(move || {
                set_current_numa_node(1);
                lock.lock();
                // SAFETY: we hold the lock.
                unsafe { lock.unlock() };
            }));
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
        // SAFETY: held since before the spawns.
        unsafe { lock.unlock() };
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn remote_waiters_are_culled_deterministically() {
        // Rotation period is astronomically high: only culling and
        // reprovisioning can move threads.
        let lock = Arc::new(McsCrnLock::with_params(WaitPolicy::spin(), 1_000_000, 9));
        run_with_remote_waiters(Arc::clone(&lock), 3);
        let stats = lock.numa_stats();
        assert!(
            stats.remote_culls >= 1,
            "remote successor with surplus must be culled: {stats:?}"
        );
        assert_eq!(
            stats.remote_culls,
            stats.reprovisions + stats.drained,
            "culled remotes must all be promoted: {stats:?}"
        );
    }

    #[test]
    fn rotation_drains_new_home_node() {
        // Period 1: the first unlock with a non-empty remote list
        // rotates the home node and drains the eldest's node.
        let lock = Arc::new(McsCrnLock::with_params(WaitPolicy::spin(), 1, 13));
        run_with_remote_waiters(Arc::clone(&lock), 3);
        let stats = lock.numa_stats();
        assert!(stats.home_rotations >= 1, "{stats:?}");
        assert!(stats.drained >= 1, "{stats:?}");
        assert_eq!(lock.home_node(), Some(1), "home must follow the drain");
    }

    #[test]
    fn single_node_behaves_like_mcs() {
        let lock = Arc::new(McsCrnLock::spin());
        hammer_numa(Arc::clone(&lock), 4, 1, 2_000);
        let stats = lock.numa_stats();
        assert_eq!(stats.remote_culls, 0, "same-node threads are never remote");
    }

    #[test]
    fn home_is_adopted_lazily() {
        let l = McsCrnLock::stp();
        assert_eq!(l.home_node(), None);
        l.lock();
        // SAFETY: held.
        unsafe { l.unlock() };
        assert_eq!(l.home_node(), Some(0));
    }

    #[test]
    fn try_lock_round_trip() {
        let l = McsCrnLock::spin();
        assert!(l.try_lock());
        assert!(!l.try_lock());
        // SAFETY: held.
        unsafe { l.unlock() };
    }
}
